#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: run every experiment and record
paper-vs-measured for each table and figure.

    python tools/gen_experiments_md.py [--paper-scale]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import EXPERIMENTS, run_experiment

# Paper claim text per experiment (what the original reports).
PAPER_CLAIMS = {
    "fig2a": "Message rate degrades proportionally to thread count, up to "
             "four-fold for small messages; negligible for large messages "
             "(network-bound).",
    "fig2b": "Scatter binding is 1.5-2x worse than compact (NUMA amplifies "
             "runtime contention).",
    "fig3a": "Mutex biases arbitration ~2x at the core level and ~1.25x at "
             "the socket level on average across message sizes.",
    "fig3c": "The number of dangling requests is high under the mutex "
             "(starving windows delay freeing and reissue).",
    "fig5a": "The ticket lock keeps the number of dangling requests very "
             "low.",
    "fig5b": "Ticket improves 1-byte throughput by 68% at 4 threads "
             "(compact); loses slightly to mutex at 2 threads scatter; the "
             "fairness benefit grows with concurrency.",
    "fig5c": "Ticket outperforms mutex by ~30% on average below 4 KiB; the "
             "gap closes by 32 KiB.",
    "fig6b": "The priority lock improves N2N throughput by ~33% on average "
             "below 32 KiB by keeping receives posted ahead of arrivals.",
    "fig8a": "Ticket and priority throughput are similar and beat the "
             "mutex, but reach only ~36% of single-threaded performance.",
    "fig8b": "Ticket reduces latency by up to 3.5x over mutex; "
             "multithreaded latency beats single-threaded by up to 3.6x "
             "for messages above 128 B (pipelined requests feed the "
             "network).",
    "fig9":  "Fair arbitration speeds up RMA with async progress by up to "
             "5x (the progress thread monopolizes the mutex).",
    "fig10a": "Single-node BFS scales linearly to 4 cores and loses ~10% "
              "efficiency at 8 (intersocket data movement).",
    "fig10b": "With 16 processes, fair locks yield thread speedups up to "
              "4 threads; the mutex shows no apparent speedup.",
    "fig10c": "Weak scaling: close to 2x improvement for the fair locks; "
              "the priority lock shows no advantage (MPI_Test-only "
              "polling keeps every thread at high priority).",
    "fig11a": "Fair locks improve stencil performance for problems "
              "<= 1 MiB per core; methods converge for larger problems.",
    "fig11b": "The MPI share of execution shrinks as the per-core problem "
              "grows, bounding the arbitration benefit.",
    "fig12b": "SWAP assembly runs ~2x faster with fair locks, independent "
              "of core count, with no application changes.",
    "fig_chaos": "(beyond the paper) The paper assumes a loss-free fabric; "
                 "this run degrades it (`repro.faults`, e.g. `--faults "
                 "drop=0.01`) and shows the remedies hold: with NIC-level "
                 "ACK/retransmit every lock keeps >= 90% of its zero-loss "
                 "goodput at 1% internode drop, and without retransmission "
                 "the progress watchdog turns the resulting hang into a "
                 "diagnosable abort (per-domain queue depths, lock holders, "
                 "dangling counts).",
    "fig_service": "(beyond the paper) The paper's benchmarks are "
                   "closed-loop; this run drives an open-loop RPC service "
                   "(`repro.workloads.service`) past saturation across the "
                   "same runtime variants and shows the overload remedies "
                   "(`repro.robust`: deadlines, retry budgets, "
                   "deadline-aware admission, degraded mode) hold goodput "
                   ">= 70% of peak at 1.5x capacity with bounded tail "
                   "latency, while the unprotected baseline collapses "
                   "below 40%; at 1% drop with transport reliability off, "
                   "client retries plus server replay-cache dedup recover "
                   "the loss end to end.",
}

# Known, documented deviations.
DEVIATIONS = {
    "fig6b": "Reproduced as direction + mechanism, not magnitude: the "
             "priority lock eliminates the ticket lock's unexpected-queue "
             "traffic (see the unexp columns) and never loses, but gains "
             "only a few percent instead of 33%. In our symmetric fabric "
             "model an unexpected eager message costs one extra copy; the "
             "paper's MXM runtime pays allocation + deferred matching + "
             "delayed rendezvous clearance, which our cost model "
             "under-prices. The ablation bench "
             "`test_ablation_unexpected_copy` shows the gap widening as "
             "that cost grows.",
    "fig8b": "The multithreaded-beats-single crossover sits near our "
             "rendezvous threshold (16 KiB) rather than the paper's 128 B: "
             "our fabric charges full per-message serialization on the "
             "eager path, so pipelining only wins once transfer time "
             "dominates. The `test_ablation_eager_threshold` bench shows "
             "the crossover tracking the protocol switch, as in MXM.",
    "fig10b": "Ordering reproduces (ticket > mutex for >= 2 threads, "
              "priority == ticket) but the mutex still gains some thread "
              "speedup here, because at our quick scales computation "
              "dominates communication more than in the paper's "
              "scale-28/16-process runs.",
}

HEADER = """\
# EXPERIMENTS -- paper vs. measured

Reproduction of every table and figure in the evaluation of
*MPI+Threads: Runtime Contention and Remedies* (PPoPP'15).

Absolute numbers come from the calibrated simulator
(`repro.machine.CostModel` + `repro.network.NetworkConfig`), so they are
not expected to match the authors' Nehalem/QDR testbed; the **shape
checks** encode what must match: who wins, by roughly what factor, and
where crossovers fall. Regenerate with
`python tools/gen_experiments_md.py` (add `--paper-scale` for the full
parameter grid; the quick grid below runs in a few minutes).

**Table 1** (testbed spec) is encoded as
`repro.machine.MachineSpec`/`nehalem_node()` and asserted in
`tests/machine/test_topology.py`. **Figure 3b** (the request state
diagram) is encoded in `repro.mpi.request` and asserted in
`tests/mpi/test_request.py`. Figures 1, 4, 6a, 7 and 12a are diagrams /
pseudo-code, implemented by `repro.locks` and `repro.mpi` directly.

"""


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--paper-scale", action="store_true")
    ap.add_argument("--out", default="EXPERIMENTS.md")
    args = ap.parse_args()
    quick = not args.paper_scale

    parts = [HEADER]
    summary = []
    for name in EXPERIMENTS:
        t0 = time.time()  # simlint: disable=wall-clock
        # seed=1 pinned: EXPERIMENTS.md was generated at that seed and
        # regenerating must stay comparable across runs.
        res = run_experiment(name, quick=quick, seed=1)
        dt = time.time() - t0  # simlint: disable=wall-clock
        status = "all shape checks pass" if res.ok else (
            "FAILED: " + ", ".join(res.failed_checks()))
        summary.append((name, res.ok))
        parts.append(f"## {res.exp_id}: {res.title}\n")
        parts.append(f"**Paper:** {PAPER_CLAIMS.get(name, '(n/a)')}\n")
        parts.append("**Measured** "
                     f"({'quick' if quick else 'paper'} preset, {dt:.0f}s):\n")
        parts.append("```")
        parts.append(res.format())
        parts.append("```\n")
        if name in DEVIATIONS:
            parts.append(f"**Deviation:** {DEVIATIONS[name]}\n")
        print(f"{name:8s} {dt:6.1f}s {status}", file=sys.stderr)

    ok = sum(1 for _, o in summary if o)
    parts.insert(1, f"**Status: {ok}/{len(summary)} experiments pass all "
                    f"shape checks.**\n")
    Path(args.out).write_text("\n".join(parts))
    print(f"wrote {args.out}", file=sys.stderr)


if __name__ == "__main__":
    main()
