#!/usr/bin/env python
"""Render a reproduced figure as an ASCII chart in the terminal.

    python tools/plot_experiments.py fig5c
    python tools/plot_experiments.py fig8b --width 72

Supports the experiments whose results are series over message size or
thread count; the rest are tables (use ``python -m repro run <fig>``).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.ascii_chart import ascii_chart
from repro.experiments import run_experiment


def _series_from(result):
    """Extract named (x, y) series from an experiment's raw data."""
    exp = result.exp_id
    d = result.data
    if exp == "fig2a":
        rates = d["rates"]
        tpns = sorted({t for _, t in rates})
        return {
            f"{t} tpn": sorted(
                (s, r) for (s, tt), r in rates.items() if tt == t
            )
            for t in tpns
        }, "message size (B)", "10^3 msg/s"
    if exp in ("fig5c", "fig8a"):
        rates = d["rates"]
        methods = sorted({m for m, _ in rates})
        return {
            m: sorted((s, r) for (mm, s), r in rates.items() if mm == m)
            for m in methods
        }, "message size (B)", "10^3 msg/s"
    if exp == "fig8b":
        lat = d["latency_us"]
        methods = sorted({m for m, _ in lat})
        return {
            m: sorted((s, v) for (mm, s), v in lat.items() if mm == m)
            for m in methods
        }, "message size (B)", "latency (us)"
    if exp == "fig3a":
        return {
            "core bias": sorted(d["core"].items()),
            "socket bias": sorted(d["socket"].items()),
        }, "message size (B)", "bias factor"
    raise SystemExit(
        f"{exp} is tabular; run `python -m repro run {exp}` instead"
    )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("figure", help="fig2a | fig3a | fig5c | fig8a | fig8b")
    ap.add_argument("--paper", action="store_true")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--width", type=int, default=64)
    ap.add_argument("--height", type=int, default=18)
    args = ap.parse_args()

    result = run_experiment(args.figure, quick=not args.paper, seed=args.seed)
    series, xlabel, ylabel = _series_from(result)
    print(ascii_chart(
        series, width=args.width, height=args.height,
        title=f"[{result.exp_id}] {result.title}",
        xlabel=xlabel, ylabel=ylabel,
    ))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
