"""The discrete-event simulator core.

:class:`Simulator` owns the event heap and the simulated clock.  All
behaviour in the reproduction -- threads contending on locks, the MPI
progress engine, network packet delivery -- is expressed as processes and
events scheduled here.  Time is a ``float`` in **seconds**; the calibrated
cost model works at nanosecond scale (1e-9).

Cancelled events (:meth:`~repro.sim.events.Event.cancel`) are deleted
*lazily*: the heap entry stays where it is, is skipped at pop time without
being dispatched, and a compaction sweep rebuilds the heap in place once
more than half of it is dead.  Skipping is schedule-neutral -- the heap is
totally ordered by ``(time, seq)``, so live events dispatch at exactly the
times and in exactly the order they would have without any cancellations.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Optional

from .events import AllOf, AnyOf, Event, Timeout
from .process import Process
from .rng import RngStreams

__all__ = ["Simulator", "SimulationError"]

#: Lazy-deletion compaction gate: never rebuild a heap carrying fewer dead
#: entries than this, however high the dead fraction (tiny heaps are
#: cheaper to drain than to rebuild).
_COMPACT_MIN_DEAD = 64


class SimulationError(RuntimeError):
    """Raised when a process dies with an unhandled exception."""


class Simulator:
    """Event heap + clock + factory for events and processes.

    Parameters
    ----------
    seed:
        Master seed for the named RNG streams (see :class:`RngStreams`).
        Two simulators constructed with the same seed and driven by the
        same (deterministic) model produce bit-identical traces.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self._heap: list = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        self._crashed: list = []
        self.rng = RngStreams(seed)
        #: Observability bus (:class:`repro.obs.Instrument`) or None.
        #: Every component holding a ``sim`` reference emits through
        #: this single attach point; ``None`` means instrumentation is
        #: disabled and costs one attribute check.
        self.obs = None
        #: Cancelled entries currently sitting on the heap (lazy deletion).
        self._dead = 0
        #: Live events dispatched (popped and their callbacks run).
        self.dispatched = 0
        #: Cancelled entries removed without dispatch (pop-time skips plus
        #: compaction sweeps) -- each one is a dispatch the old
        #: fire-and-filter timer scheme would have paid for.
        self.skipped = 0
        #: In-place heap rebuilds triggered by the >50%-dead threshold.
        self.compactions = 0

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create an untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event that fires after ``delay`` seconds."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a new process driving ``gen``."""
        return Process(self, gen, name=name)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def call_after(self, delay: float, fn: Callable, *args) -> Timeout:
        """Run ``fn(*args)`` after ``delay`` seconds from now (plain
        callback).  The argument is a *relative* delay, not an absolute
        time -- schedule at an absolute ``t`` with
        ``call_after(t - sim.now, ...)``.

        Returns the underlying :class:`Timeout` as a cancellable handle:
        ``handle.cancel()`` guarantees ``fn`` never runs (a no-op if the
        timer already fired)."""
        ev = Timeout(self, delay)
        ev.add_callback(lambda _ev: fn(*args))
        return ev

    # ------------------------------------------------------------------
    # Scheduling internals
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), event))

    def _note_cancelled(self) -> None:
        """Account a cancelled heap entry; compact when >50% is dead.

        The rebuild mutates ``self._heap`` *in place* (slice assignment +
        heapify) because the run loops hold a local reference to the list.
        """
        self._dead += 1
        heap = self._heap
        if self._dead >= _COMPACT_MIN_DEAD and self._dead * 2 > len(heap):
            heap[:] = [entry for entry in heap if not entry[2]._cancelled]
            heapq.heapify(heap)
            self.skipped += self._dead
            self.compactions += 1
            self._dead = 0

    def _crash(self, process: Process, exc: BaseException) -> None:
        self._crashed.append((process, exc))

    def _raise_crash(self) -> None:
        process, exc = self._crashed.pop()
        raise SimulationError(
            f"process {process.name!r} died at t={self.now:.9f}s: {exc!r}"
        ) from exc

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Dispatch the next live event, skipping cancelled entries.
        Raises IndexError if no live event remains on the heap."""
        heap = self._heap
        when, _seq, event = heapq.heappop(heap)
        while event._cancelled:
            self._dead -= 1
            self.skipped += 1
            when, _seq, event = heapq.heappop(heap)
        self.now = when
        self.dispatched += 1
        obs = self.obs
        if obs is not None and event.name and obs.wants("sim"):
            obs.instant("sim", "dispatch", args={"event": event.name})
        event._process()
        if self._crashed:
            self._raise_crash()

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``   -- run until no live event remains on the heap.
            ``float``  -- run until the clock reaches this time.
            ``Event``  -- run until this event has been processed and
            return its value (raising if it failed).

        The ``None`` and ``float`` forms inline the dispatch loop (no
        per-event ``step()`` call): this is the simulator's hot path.
        """
        if until is None:
            heap = self._heap
            pop = heapq.heappop
            while len(heap) > self._dead:
                when, _seq, event = pop(heap)
                if event._cancelled:
                    self._dead -= 1
                    self.skipped += 1
                    continue
                self.now = when
                self.dispatched += 1
                obs = self.obs
                if obs is not None and event.name and obs.wants("sim"):
                    obs.instant("sim", "dispatch", args={"event": event.name})
                event._process()
                if self._crashed:
                    self._raise_crash()
            if heap:
                # Only cancelled entries remain: drop them wholesale.
                self.skipped += len(heap)
                heap.clear()
                self._dead = 0
            return None

        if isinstance(until, Event):
            stop = until
            if stop.callbacks is not None:
                # Register interest so a failing process delivers its
                # exception here rather than crashing the event loop.
                stop.add_callback(lambda _ev: None)
            while not stop.processed:
                if len(self._heap) <= self._dead:
                    raise SimulationError(
                        f"simulation ran out of events before {stop!r} fired "
                        f"(deadlock?)"
                    )
                self.step()
            if not stop.ok:
                stop._defused = True
                raise stop.value
            return stop.value

        horizon = float(until)
        if horizon < self.now:
            raise ValueError(f"cannot run until {horizon} < now ({self.now})")
        heap = self._heap
        while heap:
            when, _seq, event = heap[0]
            if event._cancelled:
                heapq.heappop(heap)
                self._dead -= 1
                self.skipped += 1
                continue
            if when > horizon:
                break
            heapq.heappop(heap)
            self.now = when
            self.dispatched += 1
            obs = self.obs
            if obs is not None and event.name and obs.wants("sim"):
                obs.instant("sim", "dispatch", args={"event": event.name})
            event._process()
            if self._crashed:
                self._raise_crash()
        self.now = horizon
        return None

    # ------------------------------------------------------------------
    @property
    def queued_events(self) -> int:
        """Number of *live* (non-cancelled) events still on the heap."""
        return len(self._heap) - self._dead

    @property
    def dead_events(self) -> int:
        """Cancelled heap entries awaiting lazy removal."""
        return self._dead

    @property
    def heap_size(self) -> int:
        """Raw heap length, live plus dead."""
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self.now:.9f}s queued={self.queued_events} "
            f"dead={self._dead}>"
        )
