"""The discrete-event simulator core.

:class:`Simulator` owns the simulated clock and an
:class:`~repro.sim.equeue.EventQueue` holding the pending events.  All
behaviour in the reproduction -- threads contending on locks, the MPI
progress engine, network packet delivery -- is expressed as processes and
events scheduled here.  Time is a ``float`` in **seconds**; the calibrated
cost model works at nanosecond scale (1e-9).

The queue is pluggable (``Simulator(scheduler="heap"|"calendar")``, see
:mod:`repro.sim.equeue`); every implementation honours the same
``(time, seq)`` total order, so the dispatch schedule -- and therefore
every bit-identity pin in the test suite -- is independent of the queue
chosen.  The run loops pull *batches* of same-timestamp entries and
dispatch them in one tight loop, and dispatched :class:`Timeout` objects
are recycled through a small free pool when provably unreferenced, so
the per-event Python overhead is paid once per batch where possible.

Cancelled events (:meth:`~repro.sim.events.Event.cancel`) are deleted
*lazily*: the queue entry stays where it is, is skipped at pop time
without being dispatched, and a compaction sweep rebuilds the queue in
place once more than half of it is dead.  Skipping is schedule-neutral
-- live events dispatch at exactly the times and in exactly the order
they would have without any cancellations.
"""

from __future__ import annotations

from itertools import count
from sys import getrefcount as _getrefcount
from typing import Any, Callable, Generator, Optional

from .equeue import _COMPACT_MIN_DEAD as _COMPACT_MIN_DEAD  # re-export, tests
from .equeue import EventQueue, SCHEDULERS, make_queue
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process
from .rng import RngStreams

__all__ = ["Simulator", "SimulationError", "EventQueue", "SCHEDULERS"]

#: Free-pool cap: enough to absorb the working set of in-flight timers
#: in the macro workloads without pinning unbounded garbage.
_POOL_MAX = 512

#: A dispatched Timeout reachable only from the batch entry, the loop
#: local and the getrefcount argument itself is provably dropped by all
#: user code and safe to recycle.
_POOL_REFS = 3


class SimulationError(RuntimeError):
    """Raised when a process dies with an unhandled exception."""


class Simulator:
    """Event queue + clock + factory for events and processes.

    Construction is keyword-only.

    Parameters
    ----------
    seed:
        Master seed for the named RNG streams (see :class:`RngStreams`).
        Two simulators constructed with the same seed and driven by the
        same (deterministic) model produce bit-identical traces.
    scheduler:
        Event-queue implementation: a name from
        :data:`~repro.sim.equeue.SCHEDULERS` (``"heap"``, the default
        and bit-identity reference, or ``"calendar"``) or a
        pre-constructed :class:`EventQueue`.
    """

    def __init__(self, *, seed: int = 0, scheduler="heap"):
        self.now: float = 0.0
        self.queue: EventQueue = make_queue(scheduler)
        #: Bound ``queue.push``, cached: scheduling happens several times
        #: per dispatched event, and the queue never changes after
        #: construction.
        self._push = self.queue.push
        self._seq = count()
        self._active_process: Optional[Process] = None
        self._crashed: list = []
        self.rng = RngStreams(seed)
        #: Observability bus (:class:`repro.obs.Instrument`) or None.
        #: Every component holding a ``sim`` reference emits through
        #: this single attach point; ``None`` means instrumentation is
        #: disabled and costs one attribute check.
        self.obs = None
        #: Live events dispatched (popped and their callbacks run).
        self.dispatched = 0
        #: Timeout objects served from the free pool instead of being
        #: allocated (see the pooling notes in DESIGN.md section 9).
        self.pool_hits = 0
        #: Batch entries extracted but not yet dispatched.  Nonzero only
        #: while a run loop is inside a batch; ``queued_events`` folds it
        #: back in so callbacks (e.g. the progress watchdog's idle
        #: check) see their same-timestamp siblings as still pending.
        self._inflight = 0
        self._pool: list = []

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create an untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event that fires after ``delay`` seconds.

        Served from the free pool when possible: a recycled Timeout is
        indistinguishable from a fresh one (same ``(time, seq)`` key
        allocation, reset state), so pooling is schedule-neutral.
        """
        pool = self._pool
        if pool and delay >= 0.0:
            ev = pool.pop()
            ev.name = name
            ev.delay = delay
            ev._value = value
            ev._triggered = False
            self._push(self.now + delay, next(self._seq), ev)
            self.pool_hits += 1
            return ev
        return Timeout(self, delay, value=value, name=name)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a new process driving ``gen``."""
        return Process(self, gen, name=name)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def call_after(self, delay: float, fn: Callable, *args) -> Timeout:
        """Run ``fn(*args)`` after ``delay`` seconds from now (plain
        callback).  The argument is a *relative* delay, not an absolute
        time -- schedule at an absolute ``t`` with
        ``call_after(t - sim.now, ...)``.

        Returns the underlying :class:`Timeout` as a cancellable handle:
        ``handle.cancel()`` guarantees ``fn`` never runs (a no-op if the
        timer already fired)."""
        ev = self.timeout(delay)
        ev.callbacks.append(lambda _ev: fn(*args))
        return ev

    # ------------------------------------------------------------------
    # Scheduling internals
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        self._push(self.now + delay, next(self._seq), event)

    def _note_cancelled(self) -> None:
        self.queue.note_cancelled()

    def _crash(self, process: Process, exc: BaseException) -> None:
        self._crashed.append((process, exc))

    def _raise_crash(self) -> None:
        process, exc = self._crashed.pop()
        raise SimulationError(
            f"process {process.name!r} died at t={self.now:.9f}s: {exc!r}"
        ) from exc

    def _abort_batch(self, batch: list, n: int) -> None:
        """Hand the undispatched tail of ``batch`` back to the queue
        (early stop: the until-event fired or a process crashed)."""
        rest = self._inflight
        if rest:
            self.queue.requeue(batch[n - rest:])
            self.dispatched -= rest
            self._inflight = 0

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Dispatch the next live event, skipping cancelled entries.
        Raises IndexError if no live event remains in the queue."""
        when, _seq, event = self.queue.pop()
        self.now = when
        self.dispatched += 1
        obs = self.obs
        if obs is not None and event.name and obs.wants("sim"):
            obs.instant("sim", "dispatch", args={"event": event.name})
        event._process()
        if self._crashed:
            self._raise_crash()

    def _dispatch_batch_slow(self, batch: list, obs, stop: Optional[Event]) -> None:
        """Instrumented batch dispatch: per-event obs instants, no
        pooling.  Books and schedule match the fast loop exactly,
        including the early-out when ``stop`` fires mid-batch."""
        q = self.queue
        n = len(batch)
        for entry in batch:
            self._inflight -= 1
            event = entry[2]
            if event._cancelled:
                self.dispatched -= 1
                q.skip_inflight()
                continue
            if event.name and obs.wants("sim"):
                obs.instant("sim", "dispatch", args={"event": event.name})
            event._process()
            if self._crashed:
                self._abort_batch(batch, n)
                self._raise_crash()
            if stop is not None and stop.callbacks is None:
                self._abort_batch(batch, n)
                return

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``   -- run until no live event remains in the queue.
            ``float``  -- run until the clock reaches this time.
            ``Event``  -- run until this event has been processed and
            return its value (raising if it failed).

        All forms share one inlined loop dispatching batches of
        same-timestamp events -- this is the simulator's hot path.  A
        singleton batch (the common case in the MPI workloads) skips the
        in-flight bookkeeping entirely: with no same-timestamp sibling,
        nothing can cancel the event between extraction and dispatch.
        """
        stop: Optional[Event] = None
        horizon: Optional[float] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
                if stop.callbacks is not None:
                    # Register interest so a failing process delivers
                    # its exception here rather than crashing the loop.
                    stop.add_callback(_consume)
            else:
                horizon = float(until)
                if horizon < self.now:
                    raise ValueError(
                        f"cannot run until {horizon} < now ({self.now})"
                    )

        q = self.queue
        pop_batch = q.pop_batch
        pool = self._pool
        pool_append = pool.append
        getrc = _getrefcount

        while stop is None or stop.callbacks is not None:
            batch = pop_batch(horizon)
            if batch is None:
                if stop is not None:
                    raise SimulationError(
                        f"simulation ran out of events before {stop!r} "
                        f"fired (deadlock?)"
                    )
                if horizon is not None:
                    self.now = horizon
                return None
            if type(batch) is tuple:
                # Singleton batch, returned as a bare entry.
                self.now = batch[0]
                obs = self.obs
                if obs is not None and obs.wants("sim"):
                    self.dispatched += 1
                    self._inflight = 1
                    self._dispatch_batch_slow([batch], obs, stop)
                    continue
                event = batch[2]
                self.dispatched += 1
                event._triggered = True
                callbacks = event.callbacks
                event.callbacks = None
                for cb in callbacks:
                    cb(event)
                if self._crashed:
                    self._raise_crash()
                if (
                    type(event) is Timeout
                    and getrc(event) == _POOL_REFS
                    and len(pool) < _POOL_MAX
                ):
                    callbacks.clear()
                    event.callbacks = callbacks
                    pool_append(event)
                continue
            self.now = batch[0][0]
            obs = self.obs
            if obs is not None and obs.wants("sim"):
                n = len(batch)
                self.dispatched += n
                self._inflight = n
                self._dispatch_batch_slow(batch, obs, stop)
                continue
            n = len(batch)
            self.dispatched += n
            self._inflight = n
            for entry in batch:
                self._inflight -= 1
                event = entry[2]
                if event._cancelled:
                    self.dispatched -= 1
                    q.skip_inflight()
                    continue
                event._triggered = True
                callbacks = event.callbacks
                event.callbacks = None
                for cb in callbacks:
                    cb(event)
                if self._crashed:
                    self._abort_batch(batch, n)
                    self._raise_crash()
                if (
                    type(event) is Timeout
                    and getrc(event) == _POOL_REFS
                    and len(pool) < _POOL_MAX
                ):
                    callbacks.clear()
                    event.callbacks = callbacks
                    pool_append(event)
                if stop is not None and stop.callbacks is None:
                    self._abort_batch(batch, n)
                    break

        if not stop.ok:
            stop._defused = True
            raise stop.value
        return stop.value

    # ------------------------------------------------------------------
    # Queue accounting.  Delegated so obs summaries and tests read the
    # same fields whichever queue implementation is plugged in.
    # ------------------------------------------------------------------
    @property
    def queued_events(self) -> int:
        """Number of *live* (non-cancelled) events still pending,
        including the undispatched tail of the batch currently in
        flight."""
        return self.queue.live + self._inflight

    @property
    def dead_events(self) -> int:
        """Cancelled queue entries awaiting lazy removal."""
        return self.queue.dead

    @property
    def heap_size(self) -> int:
        """Raw queue length, live plus dead (name kept from the
        heap-only era; sized the same for every queue impl)."""
        return self.queue.size

    @property
    def skipped(self) -> int:
        """Cancelled entries removed without dispatch."""
        return self.queue.skipped

    @property
    def compactions(self) -> int:
        """In-place queue rebuilds triggered by the >50%-dead threshold."""
        return self.queue.compactions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self.now:.9f}s queued={self.queued_events} "
            f"dead={self.queue.dead} scheduler={self.queue.kind}>"
        )


def _consume(_event) -> None:
    """Stop-event sentinel callback (see Simulator.run(until=Event))."""
