"""The discrete-event simulator core.

:class:`Simulator` owns the event heap and the simulated clock.  All
behaviour in the reproduction -- threads contending on locks, the MPI
progress engine, network packet delivery -- is expressed as processes and
events scheduled here.  Time is a ``float`` in **seconds**; the calibrated
cost model works at nanosecond scale (1e-9).
"""

from __future__ import annotations

import heapq
import warnings
from itertools import count
from typing import Any, Callable, Generator, Optional

from .events import AllOf, AnyOf, Event, Timeout
from .process import Process
from .rng import RngStreams

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when a process dies with an unhandled exception."""


class Simulator:
    """Event heap + clock + factory for events and processes.

    Parameters
    ----------
    seed:
        Master seed for the named RNG streams (see :class:`RngStreams`).
        Two simulators constructed with the same seed and driven by the
        same (deterministic) model produce bit-identical traces.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self._heap: list = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        self._crashed: list = []
        self.rng = RngStreams(seed)
        #: Observability bus (:class:`repro.obs.Instrument`) or None.
        #: Every component holding a ``sim`` reference emits through
        #: this single attach point; ``None`` means instrumentation is
        #: disabled and costs one attribute check.
        self.obs = None

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create an untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event that fires after ``delay`` seconds."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a new process driving ``gen``."""
        return Process(self, gen, name=name)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def call_after(self, delay: float, fn: Callable, *args) -> Event:
        """Run ``fn(*args)`` after ``delay`` seconds from now (plain
        callback).  The argument is a *relative* delay, not an absolute
        time -- schedule at an absolute ``t`` with
        ``call_after(t - sim.now, ...)``."""
        ev = Timeout(self, delay)
        ev.add_callback(lambda _ev: fn(*args))
        return ev

    def call_at(self, delay: float, fn: Callable, *args) -> Event:
        """Deprecated alias for :meth:`call_after`.

        Despite the name, this has always taken a relative *delay* (the
        name suggested an absolute timestamp).  Use ``call_after``.
        """
        warnings.warn(
            "Simulator.call_at takes a relative delay and has been renamed "
            "to call_after; call_at will be removed in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.call_after(delay, fn, *args)

    # ------------------------------------------------------------------
    # Scheduling internals
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), event))

    def _crash(self, process: Process, exc: BaseException) -> None:
        self._crashed.append((process, exc))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the next event. Raises IndexError if the heap is empty."""
        when, _seq, event = heapq.heappop(self._heap)
        if when < self.now:
            raise AssertionError("time went backwards")  # pragma: no cover
        self.now = when
        obs = self.obs
        if obs is not None and event.name and obs.wants("sim"):
            obs.instant("sim", "dispatch", args={"event": event.name})
        event._process()
        if self._crashed:
            process, exc = self._crashed.pop()
            raise SimulationError(
                f"process {process.name!r} died at t={self.now:.9f}s: {exc!r}"
            ) from exc

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``   -- run until the event heap is empty.
            ``float``  -- run until the clock reaches this time.
            ``Event``  -- run until this event has been processed and
            return its value (raising if it failed).
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, Event):
            stop = until
            if stop.callbacks is not None:
                # Register interest so a failing process delivers its
                # exception here rather than crashing the event loop.
                stop.add_callback(lambda _ev: None)
            while not stop.processed:
                if not self._heap:
                    raise SimulationError(
                        f"simulation ran out of events before {stop!r} fired "
                        f"(deadlock?)"
                    )
                self.step()
            if not stop.ok:
                stop._defused = True
                raise stop.value
            return stop.value

        horizon = float(until)
        if horizon < self.now:
            raise ValueError(f"cannot run until {horizon} < now ({self.now})")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self.now = horizon
        return None

    # ------------------------------------------------------------------
    @property
    def queued_events(self) -> int:
        """Number of events still waiting on the heap."""
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now:.9f}s queued={len(self._heap)}>"
