"""Pluggable event queues for the simulator core.

The :class:`~repro.sim.engine.Simulator` no longer owns a heap: it owns
an :class:`EventQueue`, a small priority-queue interface over
``(time, seq, event)`` entries.  Every implementation must honour the
same total order -- ``(time, seq)`` with ``seq`` allocated at push time
-- so the dispatch schedule is bit-identical whichever queue is plugged
in.  Two implementations ship:

``heap``
    The lazy-deletion binary heap the engine always had (the
    bit-identity reference).  ``heapq`` keeps the entries totally
    ordered; cancelled entries are skipped at pop time and swept by an
    in-place compaction once more than half of the heap is dead.

``calendar``
    An array-backed calendar (bucket) queue tuned to the sim's
    short-horizon timer distribution (network hops, RTO timers).  Time
    is divided into fixed-width buckets kept in a dict keyed by the
    *absolute* bucket number ``int(t / width)``; a cursor walks the
    buckets in order and each bucket is Timsort-sorted on first touch
    (near-free on the mostly-presorted runs the sim produces).  The
    bucket width adapts: it narrows when buckets grow crowded and widens
    when the calendar goes sparse, each rebuild costing one O(n) pass.

Both queues extract *batches*: the leading run of entries sharing the
minimal timestamp.  The engine dispatches a batch in one tight loop,
amortizing the clock store, the obs gate and the counter updates over
the whole run.  A batch never mixes timestamps, so zero-delay events
scheduled *during* a batch (they land at the same time with a higher
seq) are picked up by the next ``pop_batch`` call in exactly the order
the one-event-at-a-time loop would have produced.

Cancellation while an entry is *in flight* (extracted into a batch but
not yet dispatched) is the one case the queue cannot see: the engine
compensates by calling :meth:`EventQueue.skip_inflight` when it reaches
the entry, and :meth:`EventQueue.requeue` hands back the undispatched
tail of a batch when a run stops early (stop event fired, crash).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Optional

__all__ = [
    "EventQueue",
    "HeapQueue",
    "CalendarQueue",
    "SCHEDULERS",
    "make_queue",
]

#: Lazy-deletion compaction gate: never sweep a queue carrying fewer
#: dead entries than this, however high the dead fraction (tiny queues
#: are cheaper to drain than to rebuild).
_COMPACT_MIN_DEAD = 64


class EventQueue:
    """Priority queue of ``(time, seq, event)`` entries.

    Concrete queues implement ``push`` / ``pop`` / ``pop_batch`` /
    ``note_cancelled`` and the ``size`` property; the bookkeeping that
    must read identically across implementations (``live``, ``dead``,
    ``skipped``, ``compactions``) lives here.
    """

    __slots__ = ("skipped", "compactions", "_dead")

    #: Registry name, reported by :meth:`stats`.
    kind = "abstract"

    def __init__(self) -> None:
        #: Cancelled entries removed without dispatch (pop-time skips
        #: plus compaction sweeps).
        self.skipped = 0
        #: In-place rebuilds triggered by the >50%-dead threshold.
        self.compactions = 0
        #: Cancelled entries not yet removed (lazy deletion).  Includes
        #: cancelled in-flight entries until the engine resolves them.
        self._dead = 0

    # -- accounting ----------------------------------------------------
    @property
    def size(self) -> int:
        """Entries currently stored, live plus dead."""
        raise NotImplementedError

    @property
    def dead(self) -> int:
        """Cancelled entries awaiting lazy removal."""
        return self._dead

    @property
    def live(self) -> int:
        """Non-cancelled entries still queued."""
        return self.size - self._dead

    def stats(self) -> dict:
        """Uniform per-queue counters for obs summaries and benches."""
        return {
            "scheduler": self.kind,
            "live": self.live,
            "dead": self._dead,
            "size": self.size,
            "skipped": self.skipped,
            "compactions": self.compactions,
        }

    # -- operations ----------------------------------------------------
    def push(self, when: float, seq: int, event) -> None:
        raise NotImplementedError

    def pop(self):
        """Remove and return the minimal live entry.

        Leading cancelled entries are consumed (and accounted as
        skipped) on the way; raises ``IndexError`` when no live entry
        remains."""
        raise NotImplementedError

    def pop_batch(self, horizon: Optional[float] = None):
        """Remove and return the leading run of live entries sharing the
        minimal timestamp, or ``None`` when no live entry remains (or
        the next one is past ``horizon``).  Dead entries crossed on the
        way are consumed and accounted.

        A run of length one -- the overwhelmingly common case in the MPI
        workloads, where nanosecond timestamps rarely collide -- is
        returned as the bare ``(time, seq, event)`` tuple; longer runs
        come back as a list of entries.  Callers distinguish the two by
        type, which spares the hot path a one-element list allocation
        per event."""
        raise NotImplementedError

    def note_cancelled(self) -> None:
        """Account one freshly-cancelled entry; may trigger a sweep."""
        raise NotImplementedError

    def skip_inflight(self) -> None:
        """Resolve an entry that was cancelled *after* extraction into a
        batch: it left the queue at extraction time, so only the books
        move."""
        self._dead -= 1
        self.skipped += 1

    def requeue(self, entries) -> None:
        """Hand back the undispatched tail of a batch (early stop).

        Live entries re-enter the queue under their original
        ``(time, seq)`` key, so the total order is undisturbed; entries
        cancelled while in flight are resolved as skips."""
        push = self.push
        for entry in entries:
            if entry[2]._cancelled:
                self._dead -= 1
                self.skipped += 1
            else:
                push(entry[0], entry[1], entry[2])


class HeapQueue(EventQueue):
    """The lazy-deletion binary heap (bit-identity reference)."""

    __slots__ = ("_heap",)

    kind = "heap"

    def __init__(self) -> None:
        super().__init__()
        self._heap: list = []

    @property
    def size(self) -> int:
        return len(self._heap)

    def push(self, when: float, seq: int, event) -> None:
        heappush(self._heap, (when, seq, event))

    def pop(self):
        heap = self._heap
        entry = heappop(heap)
        while entry[2]._cancelled:
            self._dead -= 1
            self.skipped += 1
            entry = heappop(heap)
        return entry

    def pop_batch(self, horizon: Optional[float] = None):
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2]._cancelled:
                heappop(heap)
                self._dead -= 1
                self.skipped += 1
                continue
            when = head[0]
            if horizon is not None and when > horizon:
                return None
            heappop(heap)
            if not heap or heap[0][0] != when:
                return head
            batch = [head]
            append = batch.append
            while heap:
                head = heap[0]
                if head[0] != when:
                    break
                heappop(heap)
                if head[2]._cancelled:
                    self._dead -= 1
                    self.skipped += 1
                else:
                    append(head)
            if len(batch) == 1:
                # Interior entries were all dead: the run collapsed back
                # to a singleton.
                return batch[0]
            return batch
        return None

    def note_cancelled(self) -> None:
        self._dead = dead = self._dead + 1
        heap = self._heap
        if dead >= _COMPACT_MIN_DEAD and dead * 2 > len(heap):
            # The rebuild mutates the list *in place* (slice assignment
            # + heapify): the run loops hold a local reference.
            old = len(heap)
            heap[:] = [e for e in heap if not e[2]._cancelled]
            heapify(heap)
            removed = old - len(heap)
            self.skipped += removed
            self._dead -= removed
            self.compactions += 1


class CalendarQueue(EventQueue):
    """Array-backed calendar queue with adaptive bucket width.

    Buckets are keyed by absolute bucket number, so there is no wrap
    handling: far-future entries simply sit in far-away keys until the
    cursor (or a ``min()`` scan across the keys, on a gap) reaches them.
    The default width suits nanosecond-scale hop/RTO timers; the adaptive
    resize recovers quickly when a workload lives on another scale.
    """

    __slots__ = (
        "_buckets", "_width", "_inv_width", "_count", "_cur",
        "_grow_at", "_jumps", "resizes",
    )

    kind = "calendar"

    #: Starting bucket width in seconds (64 ns: a handful of short-hop
    #: timers per bucket at the cost model's nanosecond scale).
    DEFAULT_WIDTH = 64e-9

    def __init__(self, width: float = DEFAULT_WIDTH) -> None:
        super().__init__()
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width!r}")
        self._buckets: dict = {}
        self._width = width
        self._inv_width = 1.0 / width
        self._count = 0
        self._cur = 0
        #: Next entry count at which the resize policy re-evaluates.
        self._grow_at = 512
        #: Consecutive expensive cursor jumps; widen when it saturates.
        self._jumps = 0
        self.resizes = 0

    @property
    def size(self) -> int:
        return self._count

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    @property
    def bucket_width(self) -> float:
        return self._width

    def stats(self) -> dict:
        s = super().stats()
        s["buckets"] = len(self._buckets)
        s["bucket_width_s"] = self._width
        s["resizes"] = self.resizes
        return s

    # ------------------------------------------------------------------
    def push(self, when: float, seq: int, event) -> None:
        buckets = self._buckets
        key = int(when * self._inv_width)
        lst = buckets.get(key)
        if lst is None:
            buckets[key] = [(when, seq, event)]
        else:
            lst.append((when, seq, event))
        self._count = n = self._count + 1
        if n > self._grow_at:
            self._maybe_narrow()

    def pop(self):
        batch = self.pop_batch()
        if batch is None:
            raise IndexError("pop from an empty calendar queue")
        if type(batch) is tuple:
            return batch
        # Single-step callers (Simulator.step) want exactly one event;
        # hand the rest of the run straight back.
        self.requeue(batch[1:])
        return batch[0]

    def pop_batch(self, horizon: Optional[float] = None):
        buckets = self._buckets
        cur = self._cur
        while True:
            lst = buckets.get(cur)
            if lst is None:
                if not buckets:
                    self._cur = cur
                    return None
                # Walk a short run of adjacent keys before paying for a
                # min() scan over every key: gaps of a few empty buckets
                # are the common case when the width roughly matches the
                # inter-event spacing.
                hi = cur + 32
                nxt = cur + 1
                while nxt != hi and nxt not in buckets:
                    nxt += 1
                if nxt != hi:
                    self._jumps = 0
                    cur = nxt
                    continue
                # Gap: jump to the earliest occupied bucket.  Each such
                # jump costs a min() scan over every key, so a calendar
                # that keeps landing here is mis-sized: either it has
                # gone sparse (mostly-singleton buckets) or the width is
                # far below the real inter-event spacing (long jumps --
                # the failure mode a tie-heavy workload leaves behind,
                # since narrowing cannot split a single-timestamp pile
                # but still shrinks the width).  A few jumps in a row
                # trigger a widen sized to the observed jump distance.
                # (The width<1.0 guard keeps the rebuild a guaranteed
                # change; the clamp in _rebuild caps widths at 1 s.)
                nxt = min(buckets)
                if self._width < 1.0 and (
                    nxt - cur > 64
                    or (len(buckets) > 64
                        and len(buckets) << 1 > self._count)
                ):
                    self._jumps += 1
                    if self._jumps >= 4:
                        self._jumps = 0
                        self._widen(nxt - cur)
                        buckets = self._buckets
                        cur = self._cur
                        continue
                cur = nxt
                continue
            lst.sort()
            # Purge the leading dead run.
            i = 0
            n = len(lst)
            while i < n and lst[i][2]._cancelled:
                i += 1
            if i == n:
                del buckets[cur]
                self._count -= n
                self._dead -= n
                self.skipped += n
                continue
            if i:
                del lst[:i]
                self._count -= i
                self._dead -= i
                self.skipped += i
                n -= i
            when = lst[0][0]
            if horizon is not None and when > horizon:
                self._cur = cur
                return None
            j = 1
            while j < n and lst[j][0] == when:
                j += 1
            # Stay on this bucket: events scheduled during the batch may
            # land in the same time window.
            self._cur = cur
            if j == 1:
                # Singleton run; the leading purge above guarantees the
                # head entry is live.
                entry = lst[0]
                if n == 1:
                    del buckets[cur]
                else:
                    del lst[:1]
                self._count -= 1
                return entry
            if j == n:
                batch = lst
                del buckets[cur]
            else:
                batch = lst[:j]
                del lst[:j]
            self._count -= j
            if self._dead:
                live = [e for e in batch if not e[2]._cancelled]
                d = j - len(live)
                if d:
                    self._dead -= d
                    self.skipped += d
                    if not live:
                        continue
                    if len(live) == 1:
                        return live[0]
                    batch = live
            return batch

    def note_cancelled(self) -> None:
        self._dead = dead = self._dead + 1
        if dead >= _COMPACT_MIN_DEAD and dead * 2 > self._count:
            removed = 0
            buckets = self._buckets
            for key in list(buckets):
                lst = buckets[key]
                kept = [e for e in lst if not e[2]._cancelled]
                removed += len(lst) - len(kept)
                if kept:
                    buckets[key] = kept
                else:
                    del buckets[key]
            self._count -= removed
            self._dead -= removed
            self.skipped += removed
            self.compactions += 1

    # ------------------------------------------------------------------
    # Adaptive width.  Target average occupancy is ~8 entries per
    # bucket: enough that per-bucket costs amortize, small enough that
    # the per-bucket sort stays cheap.
    def _maybe_narrow(self) -> None:
        n = self._count
        nb = len(self._buckets)
        if n >= nb << 4 and not self._ties_dominate():
            self._rebuild(self._width * (nb * 8.0) / n)
        # Re-arm with a cooldown either way, so a pathological pile-up
        # (thousands of entries at one timestamp, which no width can
        # split) costs at most one O(n) pass per doubling.
        self._grow_at = max(n * 2, 512)

    def _ties_dominate(self) -> bool:
        """High occupancy caused by timestamp *ties* cannot be split by
        any width; narrowing would only shrink the width below the real
        inter-event spacing (and leave the cursor jumping gaps).  Sample
        one bucket: if nearly all its entries share a timestamp, skip
        the narrow."""
        head = next(iter(self._buckets.values()))[:64]
        return len(head) >= 8 and len({e[0] for e in head}) << 3 <= len(head)

    def _widen(self, jump: int = 0) -> None:
        # Grow to whichever estimate asks for more: the occupancy target
        # (~8 entries per bucket) or the observed cursor jump distance
        # (make the next occupied bucket an adjacent key).
        nb = len(self._buckets)
        factor = max(nb * 8.0 / max(self._count, 1),
                     float(min(jump, 1 << 40)), 2.0)
        self._rebuild(self._width * factor)

    def _rebuild(self, width: float) -> None:
        width = min(max(width, 1e-15), 1.0)
        if width == self._width:
            return
        self._width = width
        inv = self._inv_width = 1.0 / width
        old = self._buckets
        buckets = self._buckets = {}
        for lst in old.values():
            for entry in lst:
                key = int(entry[0] * inv)
                dst = buckets.get(key)
                if dst is None:
                    buckets[key] = [entry]
                else:
                    dst.append(entry)
        if buckets:
            self._cur = min(buckets)
        self.resizes += 1


#: Scheduler registry: name -> EventQueue class.  ``heap`` is the
#: default and the bit-identity reference; both must produce identical
#: dispatch schedules (see tests/property/test_queue_differential.py).
SCHEDULERS = {
    "heap": HeapQueue,
    "calendar": CalendarQueue,
}


def make_queue(scheduler) -> EventQueue:
    """Resolve a scheduler selector to a fresh queue instance.

    Accepts a registry name (``"heap"`` / ``"calendar"``) or an
    already-constructed :class:`EventQueue` (tests plug in instrumented
    queues this way)."""
    if isinstance(scheduler, EventQueue):
        return scheduler
    try:
        return SCHEDULERS[scheduler]()
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown scheduler {scheduler!r}; valid schedulers: "
            f"{', '.join(sorted(SCHEDULERS))}"
        ) from None
