"""Event primitives for the discrete-event simulation engine.

The engine follows the classic process-interaction style (as popularized by
SimPy): simulated activities are Python generators that ``yield`` events and
are resumed when those events *fire*.  An :class:`Event` carries an optional
value (delivered as the result of the ``yield``) or an exception (thrown into
the waiting generator).

Events are *triggered* by calling :meth:`Event.succeed` or :meth:`Event.fail`
and are *processed* (their callbacks run) when the simulator pops them off
the event queue.  Triggering schedules processing at the current simulation
time, so callback execution order is always governed by the queue's
``(time, seq)`` total order -- this keeps re-entrancy out of user code.

Events can also be *cancelled* (:meth:`Event.cancel`): a cancelled event
never runs its callbacks and its queue entry is deleted lazily -- skipped at
pop time, or swept out by the queue's periodic compaction (see
``Simulator._note_cancelled``).  Cancellation is a race the caller may
legitimately lose: cancelling an event that already triggered (or was
already processed, or already cancelled) is a no-op returning ``False``,
never an error; symmetrically, triggering a cancelled event is a no-op.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

__all__ = ["Event", "Timeout", "AnyOf", "AllOf"]

_PENDING = object()


class Event:
    """A one-shot occurrence at a point in simulated time.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulator`.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = (
        "sim", "name", "callbacks", "_value", "_ok",
        "_scheduled", "_triggered", "_cancelled", "_defused",
    )

    def __init__(self, sim, name: str = ""):
        self.sim = sim
        self.name = name
        #: Callables ``cb(event)`` invoked when the event is processed.
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._scheduled = False
        self._triggered = False
        self._cancelled = False
        # A failed event whose exception was delivered to at least one
        # waiter is "defused"; undefused failures surface in Simulator.run.
        self._defused = False

    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has fired (value available)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def cancelled(self) -> bool:
        """True once the event has been cancelled (it will never fire)."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful when triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception when failed)."""
        if self._value is _PENDING:
            raise RuntimeError(f"value of {self!r} is not yet available")
        return self._value

    # ------------------------------------------------------------------
    def cancel(self) -> bool:
        """Cancel the event: its callbacks will never run.

        Returns True if this call killed the event.  The no-op cases --
        already cancelled, already triggered, already processed -- return
        False: cancelling after the fact is a race the caller
        legitimately loses, not an error.  Likewise, triggering a
        cancelled event is a no-op.

        A cancelled queue entry is *lazily* deleted: it is skipped at pop
        time (or swept by compaction) and never dispatched.  Any process
        still waiting on a cancelled event is parked forever, so cancel
        an event only when every waiter is being torn down with it (the
        intended idiom for service-loop timers).  Cancelling a
        :class:`~repro.sim.process.Process` does *not* stop its
        generator -- use :meth:`Process.interrupt` for that.
        """
        if self._cancelled or self._triggered or self.callbacks is None:
            return False
        self._cancelled = True
        # Drop waiter references now; nothing will ever run them.
        self.callbacks = []
        if self._scheduled:
            self.sim._note_cancelled()
        return True

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Triggering a cancelled event is a no-op (the losing side of the
        cancel/trigger race).
        """
        if self._cancelled:
            return self
        if self._scheduled or self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._value = value
        self._ok = True
        self._triggered = True
        # Inlined Simulator._schedule: triggering is on the hot path of
        # every request completion / mailbox put.
        sim = self.sim
        sim._push(sim.now, next(sim._seq), self)
        self._scheduled = True
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is thrown into every waiting process.  Failing a
        cancelled event is a no-op, like :meth:`succeed`.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() expects an exception, got {exception!r}")
        if self._cancelled:
            return self
        if self._scheduled or self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._value = exception
        self._ok = False
        self._triggered = True
        sim = self.sim
        sim._push(sim.now, next(sim._seq), self)
        self._scheduled = True
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed.

        If the event was already processed the callback runs immediately;
        on a cancelled event this is a no-op (the callback will never run).
        """
        if self._cancelled:
            return
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    # Internal: run callbacks.  Called by the simulator main loop only.
    def _process(self) -> None:
        self._triggered = True  # Timeouts fire at pop time.
        callbacks, self.callbacks = self.callbacks, None
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "cancelled" if self._cancelled
            else "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation.

    Prefer :meth:`Simulator.timeout` over constructing directly: the
    factory recycles dispatched Timeouts through a free pool (only when
    provably unreferenced -- see the pooling notes in DESIGN.md section
    9), which this constructor cannot.  A pooled instance is reset to
    exactly the state this constructor establishes.
    """

    __slots__ = ("delay",)

    def __init__(self, sim, delay: float, value: Any = None, name: str = ""):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(sim, name=name)
        self.delay = delay
        self._value = value
        self._ok = True
        sim._push(sim.now + delay, next(sim._seq), self)
        self._scheduled = True


class _Condition(Event):
    """Base for composite events over a fixed set of child events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim, events):
        super().__init__(sim)
        self.events = tuple(events)
        self._n_fired = 0
        if not self.events:
            # An empty condition is immediately true.
            self.succeed({})
            return
        for ev in self.events:
            if ev.sim is not sim:
                raise ValueError("all events must belong to the same simulator")
            ev.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _detach(self) -> None:
        """Drop this condition's ``_check`` from every losing child.

        Once the condition has triggered, the remaining children's
        callbacks are dead weight: on a long-lived child (e.g. a NIC
        activity signal raced against repeated timeouts) they would
        otherwise accumulate without bound.
        """
        check = self._check
        for ev in self.events:
            cbs = ev.callbacks
            if cbs:
                cbs[:] = [cb for cb in cbs if cb != check]

    def _collect(self) -> dict:
        return {ev: ev.value for ev in self.events if ev.triggered and ev.ok}


class AnyOf(_Condition):
    """Fires as soon as any child event fires (or fails)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event._defused = True
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
        else:
            self.succeed(self._collect())
        self._detach()


class AllOf(_Condition):
    """Fires once every child event has fired; fails fast on any failure."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event._defused = True
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            self._detach()
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed(self._collect())
