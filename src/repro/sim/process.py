"""Generator-based simulated processes.

A :class:`Process` drives a Python generator: every object the generator
yields must be an :class:`~repro.sim.events.Event`; the process suspends
until the event fires and is resumed with the event's value (or the event's
exception is thrown into it).  A process is itself an event that fires with
the generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

from typing import Generator

from .events import Event

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self):
        return self.args[0] if self.args else None


class Process(Event):
    """Wraps a generator and schedules it on the simulator.

    The process starts at the simulation time current when it is created
    (it is scheduled with zero delay, so creation never runs user code
    synchronously).
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim, gen: Generator, name: str = ""):
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise TypeError(f"Process expects a generator, got {type(gen).__name__}")
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Event | None = None
        # Kick off via an initialization event so user code always runs
        # from the event loop.
        init = Event(sim, name=f"init:{self.name}")
        init.add_callback(self._resume)
        init.succeed()

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause=None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already terminated")
        ev = Event(self.sim, name=f"interrupt:{self.name}")
        # Detach from whatever we were waiting on; the stale callback
        # becomes a no-op because _resume checks identity.
        ev.add_callback(self._resume_interrupt)
        ev._value = Interrupt(cause)
        ev._ok = False
        ev._defused = True
        self.sim._schedule(ev, 0.0)
        ev._scheduled = True

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        # The per-event wake path: every dispatched event with a waiting
        # process funnels through here, so attribute loads are hoisted
        # and the common send/park tail stays branch-lean.
        if self._triggered:
            return
        if event is not self._waiting_on and self._waiting_on is not None:
            # Stale wakeup from an event we stopped waiting on (interrupt).
            return
        self._waiting_on = None
        sim = self.sim
        obs = sim.obs
        if obs is not None and obs.wants("sim"):
            obs.instant("sim", "wake", args={"process": self.name})
        sim._active_process, prev = self, sim._active_process
        if event._ok:
            to_throw: BaseException | None = None
        else:
            to_throw = event._value
            event._defused = True
        send = self._gen.send
        throw = self._gen.throw
        while True:
            try:
                if to_throw is None:
                    target = send(event._value)
                else:
                    target = throw(to_throw)
            except StopIteration as stop:
                sim._active_process = prev
                self.succeed(stop.value)
                return
            except BaseException as exc:
                sim._active_process = prev
                if not self.callbacks:
                    # Nobody is waiting on this process: surface in run().
                    sim._crash(self, exc)
                    self._value = exc
                    self._ok = False
                    self._triggered = True
                    sim._schedule(self, 0.0)
                    return
                self.fail(exc)
                return

            if not isinstance(target, Event):
                # Deliver the misuse as an exception at the offending yield.
                to_throw = TypeError(
                    f"process {self.name!r} yielded {target!r}; only Event "
                    f"instances may be yielded"
                )
                continue
            if target.sim is not sim:
                to_throw = ValueError(
                    f"process {self.name!r} yielded an event from a "
                    f"different simulator"
                )
                continue
            break
        sim._active_process = prev
        self._waiting_on = target
        # Inlined add_callback: on this path the target is known live
        # far more often than processed, and never needs the cancelled
        # no-op (parking on a cancelled event is still a park).
        cbs = target.callbacks
        if cbs is None:
            self._resume(target)
        elif not target._cancelled:
            cbs.append(self._resume)

    def _resume_interrupt(self, event: Event) -> None:
        # Interrupt delivery: bypass the identity check on _waiting_on.
        if self.triggered:
            return
        self._waiting_on = event
        self._resume(event)
