"""Discrete-event simulation engine (substrate).

Public surface::

    from repro.sim import Simulator
    sim = Simulator(seed=42)

    def worker():
        yield sim.timeout(1e-6)
        return "done"

    proc = sim.process(worker())
    sim.run(until=proc)
"""

from .engine import SimulationError, Simulator
from .equeue import SCHEDULERS, CalendarQueue, EventQueue, HeapQueue, make_queue
from .events import AllOf, AnyOf, Event, Timeout
from .process import Interrupt, Process
from .rng import RngStreams, stable_hash
from .sync import CompletionLatch, Mailbox, Signal, SimBarrier, SimSemaphore

__all__ = [
    "Simulator",
    "SimulationError",
    "EventQueue",
    "HeapQueue",
    "CalendarQueue",
    "SCHEDULERS",
    "make_queue",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Process",
    "Interrupt",
    "RngStreams",
    "stable_hash",
    "CompletionLatch",
    "Mailbox",
    "Signal",
    "SimBarrier",
    "SimSemaphore",
]
