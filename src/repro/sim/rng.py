"""Named, seeded random-number streams.

Every stochastic choice in the simulation (CAS-race jitter, workload
payloads, graph generation) draws from a stream obtained by name, so adding
a new consumer never perturbs existing streams and whole-cluster runs are
reproducible from a single master seed.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngStreams", "stable_hash"]


def stable_hash(name: str) -> int:
    """A process-stable 32-bit hash of ``name`` (unlike builtin ``hash``)."""
    return zlib.crc32(name.encode("utf-8"))


class RngStreams:
    """Factory and cache of named :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self.master_seed, spawn_key=(stable_hash(name),)
            )
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RngStreams seed={self.master_seed} streams={len(self._streams)}>"
