"""Synchronization helpers built on the event primitives.

These are *modeling* conveniences for workload code (e.g. the OpenMP-style
barrier at the end of a stencil iteration).  They are distinct from the
locks under :mod:`repro.locks`, which model the *subject* of the paper --
hardware-arbitrated critical sections with NUMA-dependent hand-off.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .engine import Simulator
from .events import Event

__all__ = [
    "CompletionLatch", "Signal", "SimBarrier", "SimSemaphore", "Mailbox",
]


class Signal:
    """A re-armable broadcast: ``wait()`` returns an event fired by ``fire()``."""

    __slots__ = ("sim", "name", "_event", "_waiters")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._event = sim.event(name=name)
        #: Parked ThreadCtx's registered via ``wait(ctx=...)`` -- pure
        #: introspection for the deadlock detector's waits-for graph
        #: (cleared on fire; never touches simulator state).
        self._waiters: list = []

    @property
    def waiters(self) -> tuple:
        return tuple(self._waiters)

    def wait(self, ctx: Any = None) -> Event:
        if ctx is not None:
            self._waiters.append(ctx)
        return self._event

    def fire(self, value: Any = None) -> None:
        ev, self._event = self._event, self.sim.event(name=self.name)
        del self._waiters[:]
        ev.succeed(value)


class CompletionLatch:
    """The degenerate-continuation condition behind the blocking calls.

    A :class:`~repro.mpi.runtime.MpiRuntime` wait/test expresses "these
    requests are done" as a latch over the request set: each pending
    request carries a *sync* continuation that calls :meth:`fire` from
    the runtime's completion path, so the caller reads two plain
    counters (``n_pending`` / ``n_fired``) instead of re-scanning
    request states.

    The latch is **schedule-neutral until somebody waits**: counting
    down touches no simulator state (no events, no time, no RNG), which
    is what lets the refactored polling path reproduce the hand-rolled
    loops bit-for-bit.  Continuation-mode waiters call :meth:`wait`,
    which lazily arms a :class:`Signal` fired on every subsequent
    count-down.
    """

    __slots__ = ("sim", "name", "n_pending", "n_fired", "_signal")

    def __init__(self, sim: Simulator, n_pending: int = 0, name: str = ""):
        if n_pending < 0:
            raise ValueError(f"negative pending count {n_pending}")
        self.sim = sim
        self.name = name
        #: Requests attached and not yet completed.
        self.n_pending = n_pending
        #: Completions observed (including ones already complete at
        #: attach time, via :meth:`note_fired`).
        self.n_fired = 0
        self._signal: "Signal | None" = None

    @property
    def done(self) -> bool:
        """True once every tracked request has completed."""
        return self.n_pending == 0

    @property
    def any_fired(self) -> bool:
        """True once at least one tracked request has completed."""
        return self.n_fired > 0

    def add(self, n: int = 1) -> None:
        """Track ``n`` more pending completions."""
        self.n_pending += n

    def note_fired(self, n: int = 1) -> None:
        """Account completions that happened before attach (an
        already-complete request joins as fired, not pending)."""
        self.n_fired += n

    def fire(self, _req=None) -> None:
        """One tracked completion (the sync-continuation callback)."""
        self.n_pending -= 1
        self.n_fired += 1
        if self._signal is not None:
            self._signal.fire()

    def wait(self, ctx: Any = None) -> Event:
        """An event fired at the next completion (arms the signal).

        ``ctx`` optionally registers the parked thread for waits-for
        introspection (see :attr:`Signal.waiters`)."""
        if self._signal is None:
            self._signal = Signal(self.sim, name=self.name or "latch")
        return self._signal.wait(ctx)

    @property
    def waiters(self) -> tuple:
        """Parked threads registered through ``wait(ctx=...)``."""
        return self._signal.waiters if self._signal is not None else ()


class SimBarrier:
    """An N-party barrier: the Nth arrival releases everyone.

    Models intra-process thread barriers (e.g. ``#pragma omp barrier``) with
    an optional per-arrival overhead charged by the caller.
    """

    __slots__ = ("sim", "parties", "name", "_arrived", "_event", "generation")

    def __init__(self, sim: Simulator, parties: int, name: str = ""):
        if parties < 1:
            raise ValueError("barrier needs at least 1 party")
        self.sim = sim
        self.parties = parties
        self.name = name
        self._arrived = 0
        self._event = sim.event(name=name)
        self.generation = 0

    def arrive(self) -> Event:
        """Register arrival; returns the event releasing this generation."""
        ev = self._event
        self._arrived += 1
        if self._arrived == self.parties:
            self._arrived = 0
            self.generation += 1
            self._event = self.sim.event(name=self.name)
            ev.succeed(self.generation)
        return ev


class SimSemaphore:
    """Counting semaphore with FIFO wakeup order."""

    __slots__ = ("sim", "name", "_value", "_waiters")

    def __init__(self, sim: Simulator, value: int = 1, name: str = ""):
        if value < 0:
            raise ValueError("initial value must be >= 0")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        ev = self.sim.event(name=f"sem:{self.name}")
        if self._value > 0:
            self._value -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        # A waiter cancelled while queued (teardown) must not swallow
        # the permit: succeed() on a cancelled event is a no-op, so
        # hand the permit to the next live waiter instead.
        waiters = self._waiters
        while waiters:
            ev = waiters.popleft()
            if not ev.cancelled:
                ev.succeed()
                return
        self._value += 1


class Mailbox:
    """An unbounded FIFO channel between processes.

    ``put`` never blocks; ``get`` returns an event fired with the oldest
    item.  Used for in-simulation plumbing (e.g. NIC receive queues).
    """

    __slots__ = ("sim", "name", "_items", "_getters")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: deque = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        # Skip getters cancelled while queued; delivering to one would
        # silently drop the item (succeed() on cancelled is a no-op).
        getters = self._getters
        while getters:
            ev = getters.popleft()
            if not ev.cancelled:
                ev.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        ev = self.sim.event(name=f"mbox:{self.name}")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Any:
        """Non-blocking pop; returns None when empty."""
        return self._items.popleft() if self._items else None
