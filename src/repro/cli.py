"""Command-line interface.

::

    python -m repro list                     # experiments and what they show
    python -m repro run fig5c                # run one figure, print its table
    python -m repro run all                  # run everything
    python -m repro run fig2b --format json  # machine-readable result
    python -m repro trace fig2a --out trace.json   # Chrome trace of a run
    python -m repro locks                    # available locking methods
    python -m repro spec                     # Table 1 machine specification
    python -m repro throughput --lock ticket --threads 8 --size 64
    python -m repro lint                     # simlint over src/repro
    python -m repro lint --list-rules        # rule catalogue
    python -m repro lint --format json       # machine-readable findings
    python -m repro deadcheck src            # lock-order / deadlock analysis
    python -m repro deadcheck --order-witness fig_vci --quick
                                             # diff static edges vs runtime
    python -m repro sanitize fig2 --quick    # lockset-sanitize fig2a+fig2b
    python -m repro ablate --experiments fig2 --jobs 2 --report
                                             # component ablation matrix
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .analysis import format_table
from .experiments import EXPERIMENTS, run_experiment
from .experiments.registry import EXPERIMENT_TITLES, select_experiments
from .locks import LOCK_CLASSES
from .machine import MachineSpec

__all__ = ["main"]


def _cmd_list(args) -> int:
    rows = [
        [name, EXPERIMENT_TITLES.get(name, "")] for name in EXPERIMENTS
    ]
    print(format_table(["experiment", "reproduces"], rows,
                       title="Reproduced tables and figures"))
    return 0


def _cmd_run(args) -> int:
    names = list(EXPERIMENTS) if args.name == "all" else [args.name]
    if args.name != "all" and args.name not in EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; try `python -m repro list`",
              file=sys.stderr)
        return 2
    failed = []
    errored = []
    results = []
    for name in names:
        # One raising experiment must not eat the rest of a sweep (or
        # the whole JSON payload): record it, keep going, exit non-zero.
        try:
            res = run_experiment(name, quick=not args.paper, seed=args.seed)
        except Exception as exc:
            errored.append(name)
            entry = {"exp_id": name, "error": f"{type(exc).__name__}: {exc}"}
            if args.format == "json":
                results.append(entry)
            else:
                print(f"[{name}] ERROR: {entry['error']}", file=sys.stderr)
            continue
        if args.format == "json":
            results.append(res.to_dict())
        else:
            print(res.format())
            print()
        if not res.ok:
            failed.append(name)
    if args.format == "json":
        payload = results[0] if args.name != "all" else results
        print(json.dumps(payload, indent=2))
    if errored:
        print(f"experiments ERRORED: {', '.join(errored)}", file=sys.stderr)
    if failed:
        print(f"shape checks FAILED for: {', '.join(failed)}", file=sys.stderr)
    return 1 if (failed or errored) else 0


def _cmd_trace(args) -> int:
    from .obs import Recording

    if args.name not in EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; try `python -m repro list`",
              file=sys.stderr)
        return 2
    categories = tuple(
        c.strip() for c in args.categories.split(",") if c.strip()
    )
    rec = Recording(categories=categories, max_events=args.max_events)
    res = run_experiment(args.name, quick=not args.paper, seed=args.seed,
                         obs=rec.bus)
    rec.write_chrome_trace(args.out)
    if args.counters:
        with open(args.counters, "w") as fh:
            json.dump(rec.counters_dump(), fh, indent=2)
    print(rec.summary())
    print()
    print(f"[{res.exp_id}] shape checks: "
          f"{'all pass' if res.ok else 'FAILED: ' + ', '.join(res.failed_checks())}")
    print(f"chrome trace written to {args.out} "
          f"(load in chrome://tracing or https://ui.perfetto.dev)")
    if args.counters:
        print(f"counter series written to {args.counters}")
    return 0 if res.ok else 1


def _cmd_locks(args) -> int:
    rows = []
    for name, cls in LOCK_CLASSES.items():
        doc = (cls.__doc__ or "").strip().splitlines()
        rows.append([name, cls.__name__, doc[0] if doc else ""])
    print(format_table(["name", "class", "description"], rows,
                       title="Critical-section arbitration methods"))
    return 0


def _cmd_spec(args) -> int:
    spec = MachineSpec()
    rows = [
        ["Architecture", spec.architecture],
        ["Processor", spec.processor],
        ["Clock frequency", f"{spec.clock_ghz} GHz"],
        ["Number of sockets", spec.n_sockets],
        ["Cores per socket", spec.cores_per_socket],
        ["L3 Size", f"{spec.l3_kib} KB"],
        ["L2 Size", f"{spec.l2_kib} KB"],
        ["Interconnect", spec.interconnect],
    ]
    print(format_table(["property", "value"], rows,
                       title="Simulated testbed (paper Table 1)"))
    return 0


def _cmd_throughput(args) -> int:
    from .workloads import ThroughputConfig, run_throughput, throughput_cluster

    cluster = throughput_cluster(
        lock=args.lock, threads_per_rank=args.threads,
        binding=args.binding, seed=args.seed, cs=args.cs,
        faults=args.faults, reliability=args.retransmit,
        scheduler=args.scheduler,
    )
    res = run_throughput(cluster, ThroughputConfig(
        msg_size=args.size, n_windows=args.windows))
    rows = [[args.lock, cluster.config.cs.spec(), args.threads, args.size,
             f"{res.msg_rate_k:.0f}", f"{res.dangling.mean:.1f}"]]
    headers = ["lock", "cs", "threads", "size (B)", "rate (10^3 msg/s)",
               "avg dangling"]
    inj = cluster.fault_injector
    if inj is not None or args.retransmit:
        headers += ["faults", "drops", "retransmits"]
        drops = inj.stats.total_drops if inj is not None else 0
        retx = sum(
            rt.rel_stats.retransmits for rt in cluster.runtimes
            if rt.rel_stats is not None
        )
        rows[0] += [str(cluster.config.faults or "none"), str(drops), str(retx)]
    print(format_table(headers, rows, title="pt2pt throughput"))
    return 0


def _cmd_lint(args) -> int:
    from .check.lint import RULES, LintError, format_findings, run_lint

    if args.list_rules:
        rows = []
        for name, fn in sorted(RULES.items()):
            doc = (fn.__doc__ or "").strip().splitlines()
            rows.append([name, doc[0] if doc else ""])
        print(format_table(["rule", "checks"], rows, title="simlint rules"))
        return 0
    paths = args.paths
    if not paths:
        # Default target: the package sources, wherever they're installed.
        import repro

        paths = [str(next(iter(repro.__path__)))]
    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
    try:
        findings = run_lint(paths, select=select, exclude=args.exclude or ())
    except LintError as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        from .check.lint import format_findings_json

        out = format_findings_json(findings)
        if out:
            print(out)
    else:
        print(format_findings(findings))
    return 1 if findings else 0


def _cmd_deadcheck(args) -> int:
    from .check.deadcheck import (
        DeadcheckError,
        classify_witness,
        format_report,
        run_deadcheck,
    )
    from .check.lint import format_findings_json

    paths = args.paths
    if not paths:
        import repro

        paths = [str(next(iter(repro.__path__)))]
    try:
        result = run_deadcheck(paths, exclude=args.exclude or ())
    except DeadcheckError as exc:
        print(f"deadcheck: error: {exc}", file=sys.stderr)
        return 2
    findings = list(result.findings)
    witness_lines = []
    if args.order_witness:
        from .check.sanitize import run_order_witness

        names = select_experiments(args.order_witness)
        if not names:
            print(f"unknown experiment {args.order_witness!r}; "
                  "try `python -m repro list`", file=sys.stderr)
            return 2
        runtime_edges = {}
        for name in names:
            witness, _res = run_order_witness(
                name, quick=not args.paper, seed=args.seed,
            )
            for edge, n in witness.edges.items():
                runtime_edges[edge] = runtime_edges.get(edge, 0) + n
        findings.extend(classify_witness(result, runtime_edges))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        witness_lines.append(
            f"order witness over {', '.join(names)}: "
            f"{len(runtime_edges)} distinct runtime edge(s)"
        )
        for held, acq in result.confirmed:
            witness_lines.append(f"  confirmed:    {held} -> {acq} "
                                 f"(seen {runtime_edges[(held, acq)]}x)")
        for held, acq in result.unwitnessed:
            witness_lines.append(f"  unwitnessed:  {held} -> {acq}")
        for held, acq in result.runtime_only:
            witness_lines.append(f"  RUNTIME-ONLY: {held} -> {acq}")
    if args.format == "json":
        out = format_findings_json(findings)
        if out:
            print(out)
    else:
        for line in witness_lines:
            print(line)
        print(format_report(result, findings))
    return 1 if findings else 0


def _cmd_sanitize(args) -> int:
    from .check.sanitize import sanitize_experiment

    # Prefix expansion: "fig2" covers fig2a and fig2b.
    names = select_experiments(args.name)
    if not names:
        print(f"unknown experiment {args.name!r}; try `python -m repro list`",
              file=sys.stderr)
        return 2
    bad = []
    for name in names:
        out = sanitize_experiment(name, quick=not args.paper, seed=args.seed)
        san = out.sanitizer
        print(f"== {name} ==")
        print(san.report())
        if not out.result.ok:
            print(f"shape checks FAILED: {', '.join(out.result.failed_checks())}")
        print()
        if not san.ok or not out.result.ok:
            bad.append(name)
    if bad:
        print(f"simsan FAILED for: {', '.join(bad)}", file=sys.stderr)
        return 1
    print("simsan: all runs clean")
    return 0


def _cmd_ablate(args) -> int:
    from .analysis.ablation import (
        COMPONENTS,
        build_matrix,
        importance_report,
        run_matrix,
    )

    names = select_experiments(args.experiments)
    if not names:
        print(f"unknown experiment {args.experiments!r}; "
              "try `python -m repro list`", file=sys.stderr)
        return 2
    components = None
    if args.components:
        components = [c.strip() for c in args.components.split(",") if c.strip()]
    try:
        cells = build_matrix(
            names, components=components, seed=args.seed,
            quick=not args.paper, pairwise=args.pairwise,
        )
    except ValueError as exc:
        print(f"ablate: error: {exc}", file=sys.stderr)
        return 2
    comp_names = components or list(COMPONENTS)
    print(f"ablating {len(comp_names)} components over "
          f"{len(names)} experiment(s): {', '.join(names)}")
    records = run_matrix(
        cells, jobs=args.jobs, journal_path=args.journal, progress=print,
    )
    n_failed = sum(r.get("status") == "failed" for r in records)
    n_checkfail = sum(
        r.get("status") == "ok" and not r.get("ok", True) for r in records
    )
    print(f"done: {len(records)} cells, {n_failed} failed, "
          f"{n_checkfail} with failing shape checks")
    if args.report:
        print()
        print(importance_report(records))
    return 1 if n_failed else 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'MPI+Threads: Runtime Contention and "
                    "Remedies' (PPoPP'15)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproduced figures").set_defaults(fn=_cmd_list)

    run_p = sub.add_parser("run", help="run an experiment (or 'all')")
    run_p.add_argument("name")
    run_mode = run_p.add_mutually_exclusive_group()
    run_mode.add_argument("--quick", action="store_true",
                          help="reduced sweep sizes (the default)")
    run_mode.add_argument("--paper", action="store_true",
                          help="paper-scale parameters (slow)")
    run_p.add_argument("--seed", type=int, default=0,
                       help="master RNG seed (default 0, matching "
                            "run_experiment's default)")
    run_p.add_argument("--format", choices=("table", "json"), default="table",
                       help="output format (json uses ExperimentResult.to_dict)")
    run_p.set_defaults(fn=_cmd_run)

    tr = sub.add_parser(
        "trace", help="run an experiment with the observability bus attached "
                      "and export a Chrome trace")
    tr.add_argument("name")
    tr.add_argument("--out", default="trace.json",
                    help="Chrome trace output path (default: trace.json)")
    tr.add_argument("--paper", action="store_true",
                    help="paper-scale parameters (slow)")
    tr.add_argument("--seed", type=int, default=0,
                    help="master RNG seed (default 0, matching "
                         "run_experiment's default)")
    tr.add_argument("--categories",
                    default=",".join(("lock", "mpi", "net", "fault", "meta")),
                    help="comma-separated event categories to record "
                         "(sim is high-volume and off by default)")
    tr.add_argument("--max-events", type=int, default=500_000,
                    help="cap on recorded events; drops past the cap are "
                         "counted, never silent (default: 500000)")
    tr.add_argument("--counters", default=None, metavar="PATH",
                    help="also dump counter timeseries JSON to PATH")
    tr.set_defaults(fn=_cmd_trace)

    sub.add_parser("locks", help="list locking methods").set_defaults(fn=_cmd_locks)
    sub.add_parser("spec", help="print the Table-1 machine spec").set_defaults(fn=_cmd_spec)

    tp = sub.add_parser("throughput", help="ad-hoc throughput run")
    tp.add_argument("--lock", choices=sorted(LOCK_CLASSES), default="mutex")
    tp.add_argument("--threads", type=int, default=8)
    tp.add_argument("--size", type=int, default=8)
    tp.add_argument("--windows", type=int, default=6)
    tp.add_argument("--binding", choices=("compact", "scatter"), default="compact")
    tp.add_argument("--cs", default="global", metavar="POLICY",
                    help="critical-section domain policy: 'global' (paper), "
                         "'per-peer', 'per-tag:N', 'per-vci:N' or "
                         "'per-vci:N:LOCK' (default: global)")
    tp.add_argument("--faults", default=None, metavar="SPEC",
                    help="fault plan, e.g. 'drop=0.01,dup=0.001' "
                         "(see repro.faults.parse_fault_plan)")
    tp.add_argument("--retransmit", action="store_true",
                    help="enable the ACK/retransmit reliability layer")
    tp.add_argument("--scheduler", choices=("heap", "calendar"),
                    default="heap",
                    help="simulator event-queue implementation; both give "
                         "bit-identical schedules, calendar batches "
                         "dispatch for speed (default: heap)")
    tp.add_argument("--seed", type=int, default=0,
                    help="master RNG seed (default 0, matching the "
                         "experiment runners)")
    tp.set_defaults(fn=_cmd_throughput)

    lint_p = sub.add_parser(
        "lint", help="run simlint, the repo-specific static analyzer")
    lint_p.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: the "
                             "installed repro package sources)")
    lint_p.add_argument("--exclude", action="append", default=[], metavar="DIR",
                        help="skip this directory during directory walks "
                             "(repeatable; e.g. tests/check/fixtures)")
    lint_p.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated subset of rules to run")
    lint_p.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    lint_p.add_argument("--format", choices=("text", "json"), default="text",
                        help="json emits one {path,line,col,rule,message} "
                             "record per finding (machine-readable)")
    lint_p.set_defaults(fn=_cmd_lint)

    dc = sub.add_parser(
        "deadcheck",
        help="run deadcheck, the interprocedural lock-order / deadlock "
             "analyzer (optionally diffed against a runtime witness)")
    dc.add_argument("paths", nargs="*",
                    help="files/directories to analyze (default: the "
                         "installed repro package sources)")
    dc.add_argument("--exclude", action="append", default=[], metavar="DIR",
                    help="skip this directory during directory walks "
                         "(repeatable; e.g. tests/check/fixtures)")
    dc.add_argument("--format", choices=("text", "json"), default="text",
                    help="json emits one {path,line,col,rule,message} "
                         "record per finding (machine-readable)")
    dc.add_argument("--order-witness", default=None, metavar="EXPT",
                    help="also run this experiment (name, prefix or 'all') "
                         "with the order witness attached and classify "
                         "every static lock-order edge as confirmed/"
                         "unwitnessed; runtime-only edges become "
                         "order-witness-gap findings")
    dc_mode = dc.add_mutually_exclusive_group()
    dc_mode.add_argument("--quick", action="store_true",
                         help="reduced witness sweep sizes (the default)")
    dc_mode.add_argument("--paper", action="store_true",
                         help="paper-scale witness parameters (slow)")
    dc.add_argument("--seed", type=int, default=0,
                    help="witness RNG seed (default 0, matching "
                         "run_experiment's default)")
    dc.set_defaults(fn=_cmd_deadcheck)

    san_p = sub.add_parser(
        "sanitize",
        help="run experiments under simsan, the runtime lockset sanitizer")
    san_p.add_argument("name",
                       help="experiment name, prefix ('fig2' = fig2a+fig2b) "
                            "or 'all'")
    san_mode = san_p.add_mutually_exclusive_group()
    san_mode.add_argument("--quick", action="store_true",
                          help="reduced sweep sizes (the default)")
    san_mode.add_argument("--paper", action="store_true",
                          help="paper-scale parameters (slow)")
    san_p.add_argument("--seed", type=int, default=0,
                       help="master RNG seed (default 0, matching "
                            "run_experiment's default)")
    san_p.set_defaults(fn=_cmd_sanitize)

    ab = sub.add_parser(
        "ablate",
        help="run a component-ablation matrix (baseline + leave-one-out) "
             "and rank components by metric impact")
    ab.add_argument("--experiments", default="all", metavar="PREFIX",
                    help="experiment selector: exact name, prefix "
                         "('fig2' = fig2a+fig2b) or 'all' (default)")
    ab.add_argument("--components", default=None, metavar="NAMES",
                    help="comma-separated component subset (default: all; "
                         "see repro.analysis.ablation.COMPONENTS)")
    ab.add_argument("--pairwise", action="store_true",
                    help="also generate pairwise (two components off) cells")
    ab.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes (the DES is single-threaded; "
                         "cells are embarrassingly parallel)")
    ab.add_argument("--journal", default=None, metavar="PATH",
                    help="JSONL journal: completed cells are appended and "
                         "skipped on re-run (resumable sweeps)")
    ab.add_argument("--report", action="store_true",
                    help="print the ranked component-importance report")
    ab_mode = ab.add_mutually_exclusive_group()
    ab_mode.add_argument("--quick", action="store_true",
                         help="reduced sweep sizes (the default)")
    ab_mode.add_argument("--paper", action="store_true",
                         help="paper-scale parameters (slow)")
    ab.add_argument("--seed", type=int, default=0,
                    help="master RNG seed baked into every run ID "
                         "(default 0)")
    ab.set_defaults(fn=_cmd_ablate)
    return ap


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
