"""repro.check -- the simcheck correctness suite for the reproduction.

Three complementary tools, all repo-specific (generic tools cannot know
that runtime state is sharded into arbitration domains or that the
whole simulation must stay deterministic):

* **simlint** (:mod:`repro.check.lint`) -- an AST-based *intraprocedural*
  static analyzer (``python -m repro lint``) enforcing the coding
  discipline every perf PR relies on: no unseeded randomness, no
  wall-clock reads, generator yield discipline, lock acquire/release
  pairing, ``__slots__`` completeness, valid observability categories,
  queue encapsulation, and non-blocking continuation callbacks.
* **deadcheck** (:mod:`repro.check.deadcheck`) -- an *interprocedural*
  static analyzer (``python -m repro deadcheck``) over the shared call
  graph (:mod:`repro.check.graph`): computes the lock-acquisition-order
  graph, reports order cycles as potential deadlocks and blocking
  operations transitively reachable under a held lock.  Its *runtime
  half* (in :mod:`repro.check.sanitize`) checks a waits-for graph for
  cycles at watchdog early-warning / idle-stall, and witnesses observed
  lock-order edges at grant time so ``--order-witness`` can diff the
  static graph against reality.
* **simsan** (:mod:`repro.check.sanitize`) -- an Eraser-style *runtime*
  lockset sanitizer (``python -m repro sanitize``): annotated accesses
  to shared runtime state are checked against the lockset actually held
  by the executing :class:`~repro.machine.threads.ThreadCtx`, and any
  access whose candidate lockset goes empty is reported.

All three are observation-only: none perturbs simulated time, RNG
streams or the event schedule (pinned by
``tests/check/test_sanitizer.py``).  Findings share one suppression
mechanism (``# simcheck: disable=RULE`` / legacy ``# simlint:``
spelling) and one exit-code convention (0 clean / 1 findings / 2 tool
error).
"""

from .deadcheck import (
    DeadcheckError,
    DeadcheckResult,
    classify_witness,
    format_report,
    run_deadcheck,
)
from .graph import CallGraph, GraphError, SourceModule
from .lint import (
    Finding,
    LintError,
    RULES,
    format_findings,
    format_findings_json,
    run_lint,
)
from .sanitize import (
    CellReport,
    DeadlockDetector,
    LocksetSanitizer,
    OrderWitness,
    Violation,
    WaitsForGraph,
    run_order_witness,
    sanitize_experiment,
)

__all__ = [
    "Finding",
    "LintError",
    "RULES",
    "run_lint",
    "format_findings",
    "format_findings_json",
    "CallGraph",
    "GraphError",
    "SourceModule",
    "DeadcheckError",
    "DeadcheckResult",
    "run_deadcheck",
    "classify_witness",
    "format_report",
    "LocksetSanitizer",
    "Violation",
    "CellReport",
    "sanitize_experiment",
    "WaitsForGraph",
    "DeadlockDetector",
    "OrderWitness",
    "run_order_witness",
]
