"""repro.check -- correctness tooling for the reproduction.

Two complementary halves, both repo-specific (generic tools cannot know
that runtime state is sharded into arbitration domains or that the whole
simulation must stay deterministic):

* **simlint** (:mod:`repro.check.lint`) -- an AST-based static analyzer
  (``python -m repro lint``) enforcing the coding discipline every perf
  PR relies on: no unseeded randomness, no wall-clock reads, generator
  yield discipline, lock acquire/release pairing, ``__slots__``
  completeness, and valid observability categories.
* **simsan** (:mod:`repro.check.sanitize`) -- an Eraser-style *runtime*
  lockset sanitizer (``python -m repro sanitize``): annotated accesses
  to shared runtime state are checked against the lockset actually held
  by the executing :class:`~repro.machine.threads.ThreadCtx`, and any
  access whose candidate lockset goes empty is reported.

Both are observation-only: neither perturbs simulated time, RNG streams
or the event schedule (pinned by ``tests/check/test_sanitizer.py``).
"""

from .lint import Finding, LintError, RULES, format_findings, run_lint
from .sanitize import CellReport, LocksetSanitizer, Violation, sanitize_experiment

__all__ = [
    "Finding",
    "LintError",
    "RULES",
    "run_lint",
    "format_findings",
    "LocksetSanitizer",
    "Violation",
    "CellReport",
    "sanitize_experiment",
]
