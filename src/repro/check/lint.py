"""simlint: the repo-specific static analyzer (``python -m repro lint``).

Generic linters cannot know this codebase's contracts; simlint encodes
them as AST rules (stdlib :mod:`ast`, no new dependencies):

``unseeded-rng``
    Every stochastic choice must come from a named, seeded stream
    (:class:`repro.sim.rng.RngStreams`).  Stdlib ``random`` and ad-hoc
    ``np.random.<fn>`` calls silently break run-to-run determinism; only
    ``np.random.default_rng(seed)`` / ``SeedSequence`` construction with
    an explicit seed is allowed.
``wall-clock``
    Simulated time is ``sim.now``; reading the host clock
    (``time.time``, ``datetime.now``, ...) inside the model makes
    results machine-dependent.
``yield-discipline``
    Sim processes are generators that must only yield
    :class:`~repro.sim.events.Event` values.  Yielding a bare literal is
    always a bug -- the engine would raise at runtime, but only on the
    path that executes it.
``lock-pairing``
    Every critical-section acquire needs a matching release on all
    paths: a function that acquires and never releases, or returns
    between an acquire and the next release (outside a ``try/finally``
    whose ``finally`` releases), starves every other thread forever.
``slots-complete``
    A class that declares ``__slots__`` but assigns an attribute missing
    from it either crashes (no ``__dict__``) or -- when a base class
    leaks one -- silently loses the memory win the slots audit bought.
``obs-category``
    Observability emit sites must use a category from
    :data:`repro.obs.events.CATEGORIES`; a typo'd category records
    nothing and is invisible to every subscriber filter.
``broad-except``
    ``except Exception:`` handlers that neither re-raise nor examine the
    exception swallow model bugs that determinism tests would otherwise
    surface.
``queue-encapsulation``
    The simulator's event queue is pluggable
    (:mod:`repro.sim.equeue`); only the engine and the queue
    implementations themselves may import :mod:`heapq` or touch queue
    internals (``sim._heap``-era attributes, bucket state, the free
    pool).  Everything else goes through the :class:`EventQueue`
    interface and the ``Simulator`` properties, or the calendar queue
    silently diverges from the heap.
``continuation-discipline``
    Callbacks registered via ``attach_continuation`` fire inside the
    runtime's completion dispatch; callbacks handed to the timer paths
    (``sim.call_after``, ``DeadlineTimer.arm`` -- the deadline-expiry
    machinery) fire inside the engine's dispatch loop.  Both are plain
    functions, not sim processes, so a blocking call (``wait``/
    ``waitall``/``waitany``/``acquire``) can never yield its event and
    would wedge or corrupt the dispatch.  Callbacks must stay O(1)
    bookkeeping; a callback that needs to block should set a flag or
    fire a latch a real process waits on.

Any finding is suppressible on its line with ``# simlint:
disable=RULE`` (comma-separated rules, or ``all``; ``# simcheck:
disable=`` is an interchangeable spelling shared with deadcheck).
Suppression is line-scoped and rule-scoped by design: blanket waivers
hide new bugs.
"""

from __future__ import annotations

import ast
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from ..obs.events import CATEGORIES
from .graph import CallGraph, GraphError, SourceModule, iter_py_files

__all__ = [
    "Finding", "LintError", "RULES", "run_lint", "format_findings",
    "format_findings_json",
]


class LintError(RuntimeError):
    """Lint could not run (bad path, unparseable source)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


def format_findings(findings: Sequence[Finding]) -> str:
    out = [f.format() for f in findings]
    out.append(
        f"simlint: {len(findings)} finding(s)" if findings else "simlint: clean"
    )
    return "\n".join(out)


def format_findings_json(findings: Sequence[Finding]) -> str:
    """One JSON record per line: ``{path, line, col, rule, message}``.

    Machine-readable (CI annotations); no summary line, so an empty
    finding list formats to the empty string."""
    return "\n".join(json.dumps(asdict(f), sort_keys=True) for f in findings)


# ======================================================================
# Per-file context
# ======================================================================

class _Module(SourceModule):
    """Parsed source plus the line-scoped suppression table.

    The parsing and suppression machinery lives in
    :class:`repro.check.graph.SourceModule` (shared with deadcheck);
    this subclass only maps parse failures onto :class:`LintError`.
    """

    def __init__(self, path: str, source: str):
        try:
            super().__init__(path, source)
        except SyntaxError as exc:
            raise LintError(f"{path}: cannot parse: {exc}") from exc


# ======================================================================
# Shared AST helpers
# ======================================================================

def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string, or None for non-trivial expressions."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ======================================================================
# Rules
# ======================================================================

RuleFn = Callable[[_Module], Iterator[Finding]]
RULES: Dict[str, RuleFn] = {}


def _rule(name: str) -> Callable[[RuleFn], RuleFn]:
    def deco(fn: RuleFn) -> RuleFn:
        RULES[name] = fn
        return fn
    return deco


#: numpy.random constructors that take an explicit seed and are the
#: sanctioned way to build a generator.
_SEEDED_NP = frozenset({"SeedSequence", "Generator"})


@_rule("unseeded-rng")
def _check_unseeded_rng(mod: _Module) -> Iterator[Finding]:
    """no unseeded randomness (stdlib random, bare np.random.*)"""
    for node in ast.walk(mod.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            names = (
                [node.module] if isinstance(node, ast.ImportFrom)
                else [a.name for a in node.names]
            )
            if "random" in names:
                yield Finding(
                    mod.path, node.lineno, node.col_offset, "unseeded-rng",
                    "stdlib random is seeded per-process; draw from a named "
                    "stream (sim.rng.stream(name)) instead",
                )
            continue
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        if not isinstance(f, ast.Attribute):
            continue
        v = f.value
        if isinstance(v, ast.Name) and v.id == "random":
            yield Finding(
                mod.path, node.lineno, node.col_offset, "unseeded-rng",
                f"random.{f.attr}() draws from the process-global stream; "
                "use sim.rng.stream(name)",
            )
        elif (
            isinstance(v, ast.Attribute)
            and v.attr == "random"
            and isinstance(v.value, ast.Name)
            and v.value.id in ("np", "numpy")
        ):
            if f.attr in _SEEDED_NP:
                continue
            if f.attr == "default_rng":
                if node.args or node.keywords:
                    continue  # default_rng(seed): the sanctioned form
                yield Finding(
                    mod.path, node.lineno, node.col_offset, "unseeded-rng",
                    "np.random.default_rng() without a seed is entropy-"
                    "seeded; pass an explicit seed",
                )
            else:
                yield Finding(
                    mod.path, node.lineno, node.col_offset, "unseeded-rng",
                    f"np.random.{f.attr}() uses the unseeded global "
                    "generator; use np.random.default_rng(seed) or a named "
                    "stream",
                )


_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "date.today", "datetime.date.today",
})


@_rule("wall-clock")
def _check_wall_clock(mod: _Module) -> Iterator[Finding]:
    """no host-clock reads (time.time, datetime.now, ...)"""
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if name in _WALL_CLOCK:
            yield Finding(
                mod.path, node.lineno, node.col_offset, "wall-clock",
                f"{name}() reads the host clock; simulated time is sim.now "
                "(results must not depend on the machine running them)",
            )


def _is_literal_value(node: ast.AST) -> bool:
    """Literal-ish expressions that can never be a sim Event."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return True
    if isinstance(node, ast.Dict):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_literal_value(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_literal_value(node.left) and _is_literal_value(node.right)
    if isinstance(node, ast.JoinedStr):
        return True
    return False


@_rule("yield-discipline")
def _check_yield_discipline(mod: _Module) -> Iterator[Finding]:
    """sim processes must not yield bare literal values"""
    for fn in _functions(mod.tree):
        for node in _own_nodes(fn):
            if not isinstance(node, ast.Yield):
                continue
            v = node.value
            if v is None:
                # Bare ``yield`` after ``return``: the unreachable
                # generator-marker idiom (NullLock.acquire).
                continue
            if _is_literal_value(v):
                yield Finding(
                    mod.path, node.lineno, node.col_offset, "yield-discipline",
                    f"process {fn.name!r} yields a bare literal; sim "
                    "processes may only yield Event/Process values",
                )


_ACQUIRE_ATTRS = frozenset({"acquire", "_cs_acquire"})
_RELEASE_ATTRS = frozenset({"release", "_cs_release"})


def _expr_lock_ops(stmt: ast.stmt) -> List[str]:
    """``"acq"``/``"rel"`` for lock-protocol calls in one *simple*
    statement (no nested statements), in source order."""
    ops = []
    for n in ast.walk(stmt):
        if isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute):
            if n.func.attr in _ACQUIRE_ATTRS:
                ops.append((n.lineno, n.col_offset, "acq"))
            elif n.func.attr in _RELEASE_ATTRS:
                ops.append((n.lineno, n.col_offset, "rel"))
    ops.sort()
    return [k for _, _, k in ops]


class _PairScan:
    """Branch-aware acquire/release balance over a function body.

    A structural walk, not real data-flow: ``if``/``elif`` branches are
    evaluated independently and the *maximum* resulting balance
    survives (both arms of ``if p: acquire(...) else: acquire(...)``
    count once); a ``try`` whose ``finally`` releases covers returns in
    its body.  Good enough for this codebase's straight-line lock
    usage; anything cleverer belongs under a suppression comment.
    """

    def __init__(self, mod: _Module, fn_name: str):
        self.mod = mod
        self.fn_name = fn_name
        self.findings: List[Finding] = []
        self.saw_acquire = False
        self.first_op: Optional[str] = None

    def _note(self, op: str) -> None:
        if self.first_op is None:
            self.first_op = op
        if op == "acq":
            self.saw_acquire = True

    def scan(self, stmts: Sequence[ast.stmt], bal: int,
             guarded: bool = False) -> int:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            elif isinstance(stmt, ast.If):
                b1 = self.scan(stmt.body, bal, guarded)
                b2 = self.scan(stmt.orelse, bal, guarded)
                bal = max(b1, b2)
            elif isinstance(stmt, (ast.For, ast.While)):
                for op in _expr_lock_ops_iterable(stmt):
                    self._note(op)
                    bal = bal + 1 if op == "acq" else max(0, bal - 1)
                bal = self.scan(stmt.body, bal, guarded)
                bal = self.scan(stmt.orelse, bal, guarded)
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    for op in _expr_lock_ops(item.context_expr):
                        self._note(op)
                        bal = bal + 1 if op == "acq" else max(0, bal - 1)
                bal = self.scan(stmt.body, bal, guarded)
            elif isinstance(stmt, ast.Try):
                releases_in_finally = any(
                    op == "rel"
                    for s in stmt.finalbody
                    for op in _expr_lock_ops(s)
                )
                b = self.scan(stmt.body, bal,
                              guarded or releases_in_finally)
                for h in stmt.handlers:
                    b = max(b, self.scan(h.body, bal, guarded))
                b = self.scan(stmt.orelse, b, guarded)
                bal = self.scan(stmt.finalbody, b, guarded)
            elif isinstance(stmt, ast.Return):
                if bal > 0 and not guarded:
                    self.findings.append(Finding(
                        self.mod.path, stmt.lineno, stmt.col_offset,
                        "lock-pairing",
                        f"{self.fn_name!r} returns with a lock still held "
                        "(no release between the acquire and this return)",
                    ))
                bal = 0
            else:
                for op in _expr_lock_ops(stmt):
                    self._note(op)
                    bal = bal + 1 if op == "acq" else max(0, bal - 1)
        return bal


def _expr_lock_ops_iterable(stmt) -> List[str]:
    """Lock ops in a loop header (iterable/test expression only)."""
    target = stmt.iter if isinstance(stmt, ast.For) else stmt.test
    return _expr_lock_ops(target)


@_rule("lock-pairing")
def _check_lock_pairing(mod: _Module) -> Iterator[Finding]:
    """lock acquire/release pairing on all paths (incl. try/finally)"""
    for fn in _functions(mod.tree):
        lowered = fn.name.lower()
        if "acquire" in lowered or "release" in lowered:
            # Lock-protocol wrappers legitimately do one half.
            continue
        scan = _PairScan(mod, fn.name)
        bal = scan.scan(fn.body, 0)
        if not scan.saw_acquire:
            continue
        yield from iter(scan.findings)
        if bal > 0 and scan.first_op != "rel":
            # release-first functions are re-entry gap wrappers
            # (release .. work .. acquire); their net +1 is deliberate.
            yield Finding(
                mod.path, fn.lineno, fn.col_offset, "lock-pairing",
                f"{fn.name!r} acquires a lock but never releases it",
            )


def _literal_slots(cls: ast.ClassDef) -> Optional[set]:
    """The class's own ``__slots__`` names, or None if absent/dynamic."""
    for stmt in cls.body:
        targets = []
        value = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not any(
            isinstance(t, ast.Name) and t.id == "__slots__" for t in targets
        ):
            continue
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return {value.value}
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            names = set()
            for elt in value.elts:
                if not (
                    isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                ):
                    return None  # dynamic slots: not checkable
                names.add(elt.value)
            return names
        return None
    return None


@_rule("slots-complete")
def _check_slots_complete(mod: _Module) -> Iterator[Finding]:
    """every self.X assignment covered by __slots__"""
    classes = {
        n.name: n for n in ast.walk(mod.tree) if isinstance(n, ast.ClassDef)
    }

    def slots_chain(cls: ast.ClassDef, seen: set) -> Optional[set]:
        """Union of slots over the in-module base chain; None when a
        base is unresolvable (can't prove anything then)."""
        if cls.name in seen:
            return set()
        seen.add(cls.name)
        own = _literal_slots(cls)
        if own is None:
            return None
        total = set(own)
        for base in cls.bases:
            if isinstance(base, ast.Name):
                if base.id == "object":
                    continue
                parent = classes.get(base.id)
                if parent is None:
                    return None
                inherited = slots_chain(parent, seen)
                if inherited is None:
                    return None
                total |= inherited
            else:
                return None
        return total

    for cls in classes.values():
        if _literal_slots(cls) is None:
            continue
        allowed = slots_chain(cls, set())
        if allowed is None:
            continue
        for fn in cls.body:
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not fn.args.args or fn.args.args[0].arg != "self":
                continue
            for node in _own_nodes(fn):
                target = None
                if isinstance(node, ast.Assign):
                    for t in node.targets:
                        if (
                            isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == "self"
                        ):
                            target = t
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    t = node.target
                    if (
                        isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"
                    ):
                        target = t
                if target is not None and target.attr not in allowed:
                    yield Finding(
                        mod.path, target.lineno, target.col_offset,
                        "slots-complete",
                        f"{cls.name}.{target.attr} is assigned but missing "
                        f"from __slots__",
                    )


_OBS_METHODS = frozenset({
    "span_begin", "span_end", "async_begin", "async_end",
    "counter", "instant", "span", "wants",
})
#: Receiver identifiers that denote the observability bus.
_OBS_RECEIVERS = frozenset({"obs", "bus", "instrument"})


@_rule("obs-category")
def _check_obs_category(mod: _Module) -> Iterator[Finding]:
    """obs emit sites use a category from CATEGORIES"""
    valid = set(CATEGORIES)
    for node in ast.walk(mod.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _OBS_METHODS
        ):
            continue
        recv = node.func.value
        tail = recv.attr if isinstance(recv, ast.Attribute) else (
            recv.id if isinstance(recv, ast.Name) else None
        )
        if tail not in _OBS_RECEIVERS:
            continue
        if not node.args:
            continue
        cat = node.args[0]
        if isinstance(cat, ast.Constant) and isinstance(cat.value, str):
            if cat.value not in valid:
                yield Finding(
                    mod.path, cat.lineno, cat.col_offset, "obs-category",
                    f"unknown obs category {cat.value!r}; valid: "
                    f"{', '.join(CATEGORIES)}",
                )


_BROAD = frozenset({"Exception", "BaseException"})


def _handler_is_broad(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if t is None:
        return True
    if isinstance(t, ast.Name) and t.id in _BROAD:
        return True
    if isinstance(t, ast.Tuple):
        return any(
            isinstance(e, ast.Name) and e.id in _BROAD for e in t.elts
        )
    return False


@_rule("broad-except")
def _check_broad_except(mod: _Module) -> Iterator[Finding]:
    """broad handlers must re-raise or examine the exception"""
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.ExceptHandler) or not _handler_is_broad(node):
            continue
        reraises = any(
            isinstance(n, ast.Raise) for stmt in node.body for n in ast.walk(stmt)
        )
        uses_binding = node.name is not None and any(
            isinstance(n, ast.Name) and n.id == node.name
            for stmt in node.body
            for n in ast.walk(stmt)
        )
        if not (reraises or uses_binding):
            what = (
                "bare except" if node.type is None
                else f"except {ast.unparse(node.type)}"
            )
            yield Finding(
                mod.path, node.lineno, node.col_offset, "broad-except",
                f"{what} swallows the exception (neither re-raised nor "
                "examined); catch the specific error or handle it",
            )


#: Files allowed to import heapq / touch queue internals: the engine,
#: the queue implementations, and the event primitives (whose
#: trigger-time scheduling is deliberately inlined into the push fast
#: path).
_QUEUE_WHITELIST = (
    "repro/sim/engine.py",
    "repro/sim/equeue.py",
    "repro/sim/events.py",
)

#: Attribute names that are queue internals wherever they appear
#: (heap array, calendar bucket state).
_QUEUE_PRIVATE_ANY = frozenset({
    "_heap", "_buckets", "_inv_width", "_grow_at",
})

#: Attribute names that are queue internals only on a simulator or
#: queue receiver (generic enough to exist on unrelated classes).
_QUEUE_PRIVATE_SIM = frozenset({
    "_dead", "_pool", "_push", "_seq", "_cur", "_width", "_count",
})

#: Receiver spellings that denote the simulator or its queue.
_QUEUE_RECEIVERS = frozenset({"sim", "queue", "q", "equeue"})


@_rule("queue-encapsulation")
def _check_queue_encapsulation(mod: _Module) -> Iterator[Finding]:
    """queue internals stay behind the EventQueue interface"""
    path = mod.path.replace("\\", "/")
    if path.endswith(_QUEUE_WHITELIST):
        return
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "heapq":
                    yield Finding(
                        mod.path, node.lineno, node.col_offset,
                        "queue-encapsulation",
                        "heapq import outside the sim engine: the event "
                        "queue is pluggable, schedule through "
                        "Simulator/EventQueue instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "heapq":
                yield Finding(
                    mod.path, node.lineno, node.col_offset,
                    "queue-encapsulation",
                    "heapq import outside the sim engine: the event "
                    "queue is pluggable, schedule through "
                    "Simulator/EventQueue instead",
                )
        elif isinstance(node, ast.Attribute):
            attr = node.attr
            if attr in _QUEUE_PRIVATE_ANY:
                yield Finding(
                    mod.path, node.lineno, node.col_offset,
                    "queue-encapsulation",
                    f"direct access to queue internal {attr!r}; use the "
                    "EventQueue interface (push/pop/pop_batch/stats) or "
                    "the Simulator accounting properties",
                )
            elif attr in _QUEUE_PRIVATE_SIM:
                recv = node.value
                tail = (
                    recv.attr if isinstance(recv, ast.Attribute)
                    else recv.id if isinstance(recv, ast.Name)
                    else None
                )
                if tail in _QUEUE_RECEIVERS:
                    yield Finding(
                        mod.path, node.lineno, node.col_offset,
                        "queue-encapsulation",
                        f"direct access to {tail}.{attr}: queue and pool "
                        "internals are private to the sim engine; use the "
                        "EventQueue interface or Simulator properties",
                    )


#: Methods a continuation callback must never call: blocking waits and
#: critical-section entry.  (``test*`` are nonblocking but still enter
#: the CS through ``_cs_acquire``, which this set also covers.)
_BLOCKING_ATTRS = frozenset({
    "wait", "waitall", "waitany", "acquire", "_cs_acquire",
})


#: Callback registration points -> positional index of the callback.
#: ``attach_continuation(fn)`` is the completion path; ``call_after(
#: delay, fn, *args)`` and ``DeadlineTimer.arm(at_s, fn, *args)`` are
#: the timer paths (deadline expiry) -- all three dispatch the callback
#: in the same no-blocking callback context.
_CALLBACK_SITES = {
    "attach_continuation": 0,
    "call_after": 1,
    "arm": 1,
}


#: Recursion cap for transitive callback checking: the repo's callback
#: chains are 1-2 calls deep; 6 bounds pathological fixture graphs.
_CALLBACK_DEPTH = 6


@_rule("continuation-discipline")
def _check_continuation_discipline(mod: _Module) -> Iterator[Finding]:
    """continuation/timer callbacks must not call blocking ops"""
    graph = CallGraph.for_module(mod)

    def blocking_calls(roots, scope, seen, depth=0):
        """(call, via-chain) for blocking ops reachable from ``roots``,
        following calls the graph can resolve (``self.method``, locally
        defined ``def``s, module functions)."""
        if depth > _CALLBACK_DEPTH:
            return
        stack = list(roots)
        while stack:
            n = stack.pop()
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
                # Nested defs/lambdas only run if called; calls to the
                # resolvable ones are followed at their call sites.
                continue
            stack.extend(ast.iter_child_nodes(n))
            if not isinstance(n, ast.Call):
                continue
            if (
                isinstance(n.func, ast.Attribute)
                and n.func.attr in _BLOCKING_ATTRS
            ):
                yield n, ()  # simlint: disable=yield-discipline
                continue
            callee = graph.resolve_call(n, scope)
            if callee is not None and callee.key not in seen:
                seen.add(callee.key)
                for call, via in blocking_calls(
                    callee.node.body, callee, seen, depth + 1,
                ):
                    yield call, (callee.name,) + via  # simlint: disable=yield-discipline

    def scoped_nodes():
        for node in _own_nodes(mod.tree):
            yield None, node  # simlint: disable=yield-discipline
        for fi in graph.functions_of(mod):
            for node in _own_nodes(fi.node):
                yield fi, node  # simlint: disable=yield-discipline

    for scope, node in scoped_nodes():
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _CALLBACK_SITES
        ):
            continue
        idx = _CALLBACK_SITES[node.func.attr]
        cb = node.args[idx] if len(node.args) > idx else None
        if cb is None:
            for kw in node.keywords:
                if kw.arg == "fn":
                    cb = kw.value
                    break
        if isinstance(cb, ast.Lambda):
            roots: Sequence[ast.AST] = (cb.body,)
            cb_scope, seen = scope, set()
        else:
            fi = graph.resolve_callable(cb, scope) if cb is not None else None
            if fi is None:
                # Unresolvable expressions (callables from data
                # structures, externals): nothing to prove.
                continue
            roots = fi.node.body
            cb_scope, seen = fi, {fi.key}
        for call, via in blocking_calls(roots, cb_scope, seen):
            through = f" (via {' -> '.join(via)})" if via else ""
            yield Finding(
                mod.path, call.lineno, call.col_offset,
                "continuation-discipline",
                f"callback registered via {node.func.attr!r} calls "
                f"blocking op {call.func.attr!r}{through}; completion and "
                "timer callbacks run inside the runtime's dispatch and "
                "must not block (no wait*/acquire) -- fire a latch or "
                "wake a real process that does the blocking work",
            )


# ======================================================================
# Runner
# ======================================================================

def _iter_py_files(
    paths: Iterable[str], exclude: Iterable[str] = ()
) -> Iterator[Path]:
    try:
        yield from iter_py_files(paths, exclude)
    except GraphError as exc:
        raise LintError(str(exc)) from exc


def run_lint(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    exclude: Iterable[str] = (),
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` with the selected rules
    (default: all).  Directories named in ``exclude`` are skipped during
    directory walks (explicit file arguments always lint).  Returns
    surviving (unsuppressed) findings sorted by location.

    Raises :class:`LintError` -- never a raw traceback -- for a missing
    path, an unreadable file (permissions, non-UTF-8 bytes), or a
    syntax error: all the exit-code-2 paths of ``python -m repro
    lint``."""
    if select is None:
        rules = dict(RULES)
    else:
        rules = {}
        for name in select:
            if name not in RULES:
                raise LintError(
                    f"unknown rule {name!r}; available: {', '.join(sorted(RULES))}"
                )
            rules[name] = RULES[name]
    findings: List[Finding] = []
    for path in _iter_py_files(paths, exclude):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise LintError(f"{path}: cannot read: {exc}") from exc
        mod = _Module(str(path), source)
        for fn in rules.values():
            findings.extend(f for f in fn(mod) if mod.allows(f))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
