"""deadcheck: interprocedural lock-order & blocking-under-CS analysis.

``python -m repro deadcheck [paths]`` -- the third simcheck tool.
simlint checks one function at a time; simsan watches one run at a
time.  deadcheck sits between them: a *static, interprocedural*
analysis over the call graph (:mod:`repro.check.graph`) that computes
the **lock-acquisition-order graph** -- "lock A can still be held when
an ``acquire`` on lock B is reached" -- and reports

``lock-order-cycle``
    A cycle in the order graph.  Two threads walking the cycle from
    different entry points deadlock; this is exactly the hazard class
    behind the PR-9 ablation deadlock, found here before any cell runs.
``blocking-under-cs``
    A blocking operation (``wait``/``waitall``/``waitany`` -- latch and
    signal waits, blocking MPI calls from the continuation-discipline
    table) transitively reachable while a lock is held.  Parking under
    a critical section starves every thread queued on that lock.
``order-witness-gap``
    Only with ``--order-witness EXPT``: a lock-order edge *observed at
    runtime* (at grant time, via the obs ``check`` category) with no
    static counterpart.  A runtime-only edge means the call graph
    failed to resolve a path the simulator actually executed -- a
    resolution gap to fix or waive, never to ignore.

How held-sets propagate (design notes, not user API):

* Lock identity is textual -- ``ast.unparse`` of the receiver
  expression (``self.ticket_b`` in class C becomes ``C.ticket_b``;
  ``rt._cs_acquire(dom, ...)`` becomes ``dom.lock``).  Identities are
  per-function-local names, so summaries also carry a *family* (class
  attribute or decoration-stripped name) used to match runtime
  witnesses.
* Each function gets a memoized **summary**: the acquire/blocking
  events an entry can reach, each tagged with the set of identities
  *released on the path before it* (its ``kills``).  At a call site, a
  held lock only pairs with a summary event if its identity is not in
  the event's kills -- this is how ``release(A) ... acquire(A)``
  re-entry gaps (``_charge_copy``) avoid false edges, and it reuses the
  same try/finally must-release reasoning as simlint's ``_PairScan``:
  ``finally`` releases apply to everything *after* the try statement.
* Branches merge may-held (union) with must-released (intersection);
  loop bodies are scanned twice so cross-iteration orders appear.

Findings share simlint's :class:`~repro.check.lint.Finding` shape,
suppression mechanism (``# simcheck: disable=RULE`` or the legacy
``# simlint:`` spelling) and exit codes (0 clean / 1 findings /
2 cannot run).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Set, Tuple

from .graph import CallGraph, FunctionInfo, GraphError, iter_py_files, load_module
from .lint import Finding

__all__ = [
    "DeadcheckError",
    "DeadcheckResult",
    "OrderEdge",
    "run_deadcheck",
    "classify_witness",
    "format_report",
]


class DeadcheckError(RuntimeError):
    """deadcheck could not run (bad path, unreadable/unparseable file)."""


#: Direct lock-protocol operations (never spliced through the graph).
_ACQUIRE_ATTRS = frozenset({"acquire", "_cs_acquire"})
_RELEASE_ATTRS = frozenset({"release", "_cs_release"})
#: Blocking operations: latch/signal waits and the blocking MPI calls
#: from the continuation-discipline table.  ``acquire`` blocks too, but
#: is reported through the order graph, not as blocking-under-cs.
_BLOCKING_ATTRS = frozenset({"wait", "waitall", "waitany"})

#: Summary size cap per function; beyond this the function is treated
#: as opaque past the cap (bounds splice blowup on pathological input).
_MAX_EVENTS = 120


class LockId(NamedTuple):
    """A lock identity: the textual expression plus its witness family."""

    ident: str
    family: str


def _safe_unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except (ValueError, RecursionError):  # pragma: no cover - pathological input
        return "<expr>"


def _lock_id(call: ast.Call, scope: Optional[FunctionInfo]) -> LockId:
    """Identity of the lock a protocol call operates on."""
    func = call.func  # always an Attribute at call sites we inspect
    if func.attr in ("_cs_acquire", "_cs_release"):
        # Runtime wrappers: the domain is the first argument and the
        # guarded lock is ``dom.lock``.
        base = _safe_unparse(call.args[0]) if call.args else "?"
        ident = f"{base}.lock"
    else:
        ident = _safe_unparse(func.value)
    if (
        ident.startswith("self.")
        and scope is not None
        and scope.cls is not None
    ):
        # ``self.ticket_b`` in PriorityTicketLock -> a class-scoped
        # identity that doubles as the runtime witness family (matched
        # against SimLock.witness_family / order_class).
        scoped = scope.cls.name + ident[len("self"):]
        return LockId(scoped, scoped)
    # Last dotted segment, subscripts stripped: ``doms[cur].lock`` and
    # ``dom.lock`` are the same family of guard.
    fam = ident.split(".")[-1].split("[")[0] or ident
    return LockId(ident, fam)


@dataclass(frozen=True)
class _Ev:
    """One summary event: an acquire or blocking op reachable from the
    function's entry, with the identities released before it."""

    kind: str                 # "acq" | "block"
    lock: str                 # LockId.ident (acq) or the blocking attr
    family: str               # witness family ("" for block events)
    site: Tuple[str, int, int]
    kills: FrozenSet[str]


class OrderEdge(NamedTuple):
    """One lock-order edge: ``held`` can still be held at an acquire of
    ``acq``.  ``anchor`` is where suppressions apply (the acquire or
    the call that reaches it, in the function where the pairing was
    proven); ``op_site`` is the ultimate acquire location."""

    held: LockId
    acq: LockId
    anchor: Tuple[str, int, int]
    op_site: Tuple[str, int, int]
    chain: Tuple[str, ...]


class _BlockFinding(NamedTuple):
    held: LockId
    op: str
    anchor: Tuple[str, int, int]
    op_site: Tuple[str, int, int]
    chain: Tuple[str, ...]


@dataclass
class DeadcheckResult:
    """Everything one deadcheck run produced."""

    findings: List[Finding]
    edges: List[OrderEdge]
    blockings: List[_BlockFinding]
    cycles: List[Tuple[str, ...]]
    n_files: int = 0
    n_functions: int = 0
    #: Populated by ``classify_witness``.
    confirmed: List[Tuple[str, str]] = field(default_factory=list)
    unwitnessed: List[Tuple[str, str]] = field(default_factory=list)
    runtime_only: List[Tuple[str, str]] = field(default_factory=list)


class _State:
    """Held/released tracking during one structural scan."""

    __slots__ = ("held", "released")

    def __init__(self, held=None, released=None):
        #: ident -> (LockId, site of the acquire)
        self.held: Dict[str, Tuple[LockId, Tuple[str, int, int]]] = dict(held or {})
        self.released: Set[str] = set(released or ())

    def copy(self) -> "_State":
        return _State(self.held, self.released)

    def merge(self, *others: "_State") -> "_State":
        """Branch join: may-held union, must-released intersection."""
        held = dict(self.held)
        released = set(self.released)
        for o in others:
            for k, v in o.held.items():
                held.setdefault(k, v)
            released &= o.released
        return _State(held, released)


class DeadlockAnalysis:
    """Summary-based interprocedural lock analysis over a call graph."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self._memo: Dict[str, Tuple[List[_Ev], List[OrderEdge], List[_BlockFinding]]] = {}
        self._busy: Set[str] = set()

    # -- public ---------------------------------------------------------
    def run(self) -> Tuple[List[OrderEdge], List[_BlockFinding]]:
        edges: List[OrderEdge] = []
        blockings: List[_BlockFinding] = []
        for key in sorted(self.graph.functions):
            self.summary(self.graph.functions[key])
        seen_e: Set[Tuple[str, str]] = set()
        seen_b: Set[Tuple[Tuple[str, int, int], str, str]] = set()
        for key in sorted(self._memo):
            _evs, es, bs = self._memo[key]
            for e in es:
                k = (e.held.ident, e.acq.ident)
                if k not in seen_e:
                    seen_e.add(k)
                    edges.append(e)
            for b in bs:
                k = (b.anchor, b.held.ident, b.op)
                if k not in seen_b:
                    seen_b.add(k)
                    blockings.append(b)
        return edges, blockings

    def summary(self, fn: FunctionInfo) -> List[_Ev]:
        cached = self._memo.get(fn.key)
        if cached is not None:
            return cached[0]
        if fn.key in self._busy:
            return []  # recursion: the fixpoint of an empty seed
        self._busy.add(fn.key)
        try:
            triple = self._scan_function(fn)
        finally:
            self._busy.discard(fn.key)
        self._memo[fn.key] = triple
        return triple[0]

    # -- scan -----------------------------------------------------------
    def _scan_function(self, fn: FunctionInfo):
        events: List[_Ev] = []
        edges: List[OrderEdge] = []
        blockings: List[_BlockFinding] = []
        path = fn.module.path

        def site(node) -> Tuple[str, int, int]:
            return (path, node.lineno, node.col_offset)

        def on_acquire(lid: LockId, node, st: _State) -> None:
            if len(events) < _MAX_EVENTS:
                events.append(_Ev("acq", lid.ident, lid.family, site(node),
                                  frozenset(st.released)))
            for hid, (hlid, _hsite) in st.held.items():
                if hid != lid.ident:
                    edges.append(OrderEdge(hlid, lid, site(node), site(node),
                                           (fn.key,)))
            st.held[lid.ident] = (lid, site(node))
            st.released.discard(lid.ident)

        def on_release(lid: LockId, st: _State) -> None:
            st.held.pop(lid.ident, None)
            st.released.add(lid.ident)

        def on_blocking(attr: str, node, st: _State) -> None:
            if len(events) < _MAX_EVENTS:
                events.append(_Ev("block", attr, "", site(node),
                                  frozenset(st.released)))
            for hlid, _hsite in st.held.values():
                blockings.append(_BlockFinding(hlid, attr, site(node),
                                               site(node), (fn.key,)))

        def on_call(call: ast.Call, st: _State) -> None:
            callee = self.graph.resolve_call(call, fn)
            if callee is None or callee.key == fn.key:
                return
            for ev in self.summary(callee):
                kills = ev.kills | st.released
                if len(events) < _MAX_EVENTS:
                    events.append(_Ev(ev.kind, ev.lock, ev.family, ev.site,
                                      frozenset(kills)))
                exposed = [
                    (hlid, hsite)
                    for hid, (hlid, hsite) in st.held.items()
                    if hid not in kills and hid != ev.lock
                ]
                if not exposed:
                    continue
                chain = (fn.key, callee.key)
                for hlid, _hsite in exposed:
                    if ev.kind == "acq":
                        edges.append(OrderEdge(
                            hlid, LockId(ev.lock, ev.family),
                            site(call), ev.site, chain,
                        ))
                    else:
                        blockings.append(_BlockFinding(
                            hlid, ev.lock, site(call), ev.site, chain,
                        ))

        def process_expr(node, st: _State) -> None:
            """Ordered lock/blocking/call ops inside one simple
            statement or expression (source order)."""
            ops = []
            stack = [node]
            while stack:
                n = stack.pop()
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                    # Deferred bodies: their ops run when *called*, and
                    # resolvable calls splice their summaries instead.
                    continue
                stack.extend(ast.iter_child_nodes(n))
                if isinstance(n, ast.Call):
                    f = n.func
                    kind = "call"
                    if isinstance(f, ast.Attribute):
                        if f.attr in _ACQUIRE_ATTRS:
                            kind = "acq"
                        elif f.attr in _RELEASE_ATTRS:
                            kind = "rel"
                        elif f.attr in _BLOCKING_ATTRS:
                            kind = "block"
                    ops.append((n.lineno, n.col_offset, kind, n))
            ops.sort(key=lambda t: (t[0], t[1]))
            for _l, _c, kind, n in ops:
                if kind == "acq":
                    on_acquire(_lock_id(n, fn), n, st)
                elif kind == "rel":
                    on_release(_lock_id(n, fn), st)
                elif kind == "block":
                    on_blocking(n.func.attr, n, st)
                else:
                    on_call(n, st)

        def scan(stmts, st: _State) -> _State:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if isinstance(stmt, ast.If):
                    process_expr(stmt.test, st)
                    s1 = scan(stmt.body, st.copy())
                    s2 = scan(stmt.orelse, st.copy())
                    st = s1.merge(s2)
                elif isinstance(stmt, (ast.For, ast.While)):
                    header = stmt.iter if isinstance(stmt, ast.For) else stmt.test
                    process_expr(header, st)
                    # Twice: a second pass sees iteration-1 holds, so
                    # cross-iteration orders (acquire at loop tail,
                    # re-acquire at head) produce edges.
                    st = scan(stmt.body, st)
                    st = scan(stmt.body, st)
                    st = scan(stmt.orelse, st)
                elif isinstance(stmt, ast.With):
                    for item in stmt.items:
                        process_expr(item.context_expr, st)
                    st = scan(stmt.body, st)
                elif isinstance(stmt, ast.Try):
                    entry = st.copy()
                    body_out = scan(stmt.body, st)
                    handler_outs = [
                        scan(h.body, entry.copy()) for h in stmt.handlers
                    ]
                    body_out = scan(stmt.orelse, body_out)
                    merged = body_out.merge(*handler_outs) if handler_outs else body_out
                    # ``finally`` runs after on every path; its releases
                    # kill held locks for everything downstream -- the
                    # _PairScan must-release fact, applied positionally.
                    st = scan(stmt.finalbody, merged)
                else:
                    process_expr(stmt, st)
            return st

        scan(fn.node.body, _State())
        # Dedup events (loop double-scan duplicates them verbatim).
        uniq: Dict[Tuple, _Ev] = {}
        for ev in events:
            uniq.setdefault((ev.kind, ev.lock, ev.site, ev.kills), ev)
        return list(uniq.values()), edges, blockings


# ----------------------------------------------------------------------
# Cycle detection (iterative Tarjan over the ident order graph)
# ----------------------------------------------------------------------
def _sccs(adj: Dict[str, Set[str]]) -> List[List[str]]:
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    out: List[List[str]] = []
    counter = [0]

    for root in sorted(adj):
        if root in index:
            continue
        work = [(root, iter(sorted(adj.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in adj:
                    continue
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(adj.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                if len(comp) > 1:
                    out.append(sorted(comp))
    return out


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def run_deadcheck(
    paths: Iterable[str], exclude: Iterable[str] = ()
) -> DeadcheckResult:
    """Analyze every ``.py`` file under ``paths``; returns the result
    with unsuppressed findings sorted by location.  Raises
    :class:`DeadcheckError` (never a traceback) when a path is missing
    or a file cannot be read or parsed -- the exit-code-2 paths."""
    graph = CallGraph()
    n_files = 0
    try:
        for path in iter_py_files(paths, exclude):
            graph.add_module(load_module(path))
            n_files += 1
    except GraphError as exc:
        raise DeadcheckError(str(exc)) from exc
    graph.finalize()

    analysis = DeadlockAnalysis(graph)
    edges, blockings = analysis.run()

    def allowed(anchor: Tuple[str, int, int], rule: str) -> bool:
        mod = next(
            (m for m in graph.modules.values() if m.path == anchor[0]), None
        )
        if mod is None:
            return True
        return mod.allows(Finding(anchor[0], anchor[1], anchor[2], rule, ""))

    edges = [e for e in edges if allowed(e.anchor, "lock-order-cycle")]
    blockings = [
        b for b in blockings if allowed(b.anchor, "blocking-under-cs")
    ]

    adj: Dict[str, Set[str]] = {}
    by_pair: Dict[Tuple[str, str], OrderEdge] = {}
    for e in edges:
        adj.setdefault(e.held.ident, set()).add(e.acq.ident)
        adj.setdefault(e.acq.ident, set())
        by_pair[(e.held.ident, e.acq.ident)] = e

    findings: List[Finding] = []
    cycles: List[Tuple[str, ...]] = []
    for comp in _sccs(adj):
        members = set(comp)
        cyc_edges = [
            e for (a, b), e in sorted(by_pair.items())
            if a in members and b in members
        ]
        cycles.append(tuple(comp))
        anchor = cyc_edges[0].anchor
        detail = "; ".join(
            f"{e.held.ident} -> {e.acq.ident} at {e.op_site[0]}:{e.op_site[1]}"
            for e in cyc_edges
        )
        findings.append(Finding(
            anchor[0], anchor[1], anchor[2], "lock-order-cycle",
            f"potential deadlock: lock-order cycle over "
            f"{{{', '.join(comp)}}} ({detail}); two threads entering from "
            "different edges can each hold what the other waits for",
        ))

    for b in blockings:
        where = (
            "" if b.anchor == b.op_site
            else f" reached via {' -> '.join(b.chain[1:])} at "
                 f"{b.op_site[0]}:{b.op_site[1]}"
        )
        findings.append(Finding(
            b.anchor[0], b.anchor[1], b.anchor[2], "blocking-under-cs",
            f"blocking op {b.op!r}{where} while {b.held.ident!r} (acquired "
            "in this function) may still be held; parking inside a "
            "critical section starves every thread queued on it -- "
            "release before waiting, or fire a latch",
        ))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return DeadcheckResult(
        findings=findings,
        edges=edges,
        blockings=blockings,
        cycles=cycles,
        n_files=n_files,
        n_functions=len(graph.functions),
    )


def classify_witness(
    result: DeadcheckResult, runtime_edges: Iterable[Tuple[str, str]],
) -> List[Finding]:
    """Diff runtime-witnessed order edges (family pairs from
    :class:`repro.check.sanitize.OrderWitness`) against the static
    graph.  Mutates ``result``'s confirmed/unwitnessed/runtime_only
    lists and returns one ``order-witness-gap`` finding per
    runtime-only edge."""
    static_pairs = {(e.held.family, e.acq.family) for e in result.edges}
    runtime_pairs = set(runtime_edges)
    result.confirmed = sorted(static_pairs & runtime_pairs)
    result.unwitnessed = sorted(static_pairs - runtime_pairs)
    result.runtime_only = sorted(runtime_pairs - static_pairs)
    findings = []
    for held, acq in result.runtime_only:
        findings.append(Finding(
            "<order-witness>", 0, 0, "order-witness-gap",
            f"runtime lock-order edge {held} -> {acq} has no static "
            "counterpart: the call graph failed to resolve a path the "
            "simulator executed (fix the resolution gap or waive it)",
        ))
    return findings


def format_report(result: DeadcheckResult,
                  findings: List[Finding]) -> str:
    """Human-readable report: findings then a one-line summary."""
    out = [f.format() for f in findings]
    stats = (
        f"{result.n_functions} function(s) across {result.n_files} "
        f"file(s), {len(result.edges)} lock-order edge(s)"
    )
    if result.confirmed or result.unwitnessed or result.runtime_only:
        stats += (
            f"; witness: {len(result.confirmed)} confirmed, "
            f"{len(result.unwitnessed)} unwitnessed, "
            f"{len(result.runtime_only)} runtime-only"
        )
    if findings:
        out.append(f"deadcheck: {len(findings)} finding(s) ({stats})")
    else:
        out.append(f"deadcheck: clean ({stats})")
    return "\n".join(out)
