"""simsan: an Eraser-style runtime lockset sanitizer for shared runtime
state (``python -m repro sanitize``).

The paper's argument is about *who holds the critical section when*;
simsan mechanically checks the converse discipline: shared
``MpiRuntime``/domain state is only ever touched while holding its
owning :class:`~repro.locks.domain.ArbitrationDomain` lock.

How it works
------------
* Lock grant/release (:mod:`repro.locks.base`) maintains
  ``ThreadCtx.held`` -- the set of :class:`SimLock` objects the thread
  currently holds.  This costs one ``set.add``/``discard`` per
  transition and exists whether or not a sanitizer is attached.
* Annotated access sites in :class:`~repro.mpi.runtime.MpiRuntime` emit
  a ``check``-category ``san.access`` instant on the obs bus, carrying
  the state cell name, the held lockset, the cell's declared guard(s)
  and (for per-request cells) the owning thread.  Emission is gated on
  ``sim.obs is not None`` so a run without a bus pays one attribute
  check, and on ``obs.wants("check")`` so a bus without a sanitizer
  pays one set lookup.  Nothing on this path touches time or RNG:
  attaching simsan is schedule-neutral (pinned by
  ``tests/check/test_sanitizer.py``).
* This class applies the classic Eraser lockset refinement per cell
  ``(rank, state)``: the candidate lockset starts as the declared
  guards (or the first access's held set) and is intersected with the
  held set at each access.  An access that empties the candidate set is
  a violation -- no single lock protected every access to that cell.

One repo-specific twist: the runtime's documented ownership discipline
is "any thread may *complete* a request; only the owner frees/observes
it".  Accesses by a cell's declared owner thread therefore do not
refine the candidate set -- the owner may touch its own request/queue
entry lock-free by design, exactly like Eraser's first-thread
exemption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["LocksetSanitizer", "Violation", "CellReport", "sanitize_experiment"]

#: Cap on stored per-violation detail (counts keep accumulating past it).
_MAX_STORED = 100


@dataclass(frozen=True)
class Violation:
    """One access whose candidate lockset went empty."""

    state: str
    rank: int
    tid: int
    time: float
    held: Tuple[str, ...]
    guards: Optional[Tuple[str, ...]]

    def format(self) -> str:
        held = ",".join(self.held) if self.held else "(none)"
        want = ",".join(self.guards) if self.guards else "(any consistent lock)"
        return (
            f"t={self.time:.9f}s rank={self.rank} tid={self.tid} "
            f"state={self.state}: held={{{held}}} expected={{{want}}}"
        )


@dataclass
class CellReport:
    """Per-cell tally for the ranked report."""

    state: str
    rank: int
    accesses: int = 0
    violations: int = 0
    candidate: Optional[frozenset] = None


class LocksetSanitizer:
    """Subscriber applying Eraser lockset refinement to ``san.access``
    events.  Attach with :meth:`attach`; read :attr:`violations` /
    :meth:`report` afterwards."""

    def __init__(self) -> None:
        #: ``(rank, state) -> CellReport`` (candidate lockset + tallies).
        self.cells: Dict[Tuple[int, str], CellReport] = {}
        self.violations: List[Violation] = []
        self.total_accesses = 0
        self.total_violations = 0
        #: Watermark for sub-run detection (see :meth:`_on_event`).
        self._last_ts = 0.0

    # ------------------------------------------------------------------
    def attach(self, bus) -> "LocksetSanitizer":
        """Subscribe to the ``check`` category on ``bus``."""
        bus.subscribe(self._on_event, categories=("check",))
        return self

    def _on_event(self, ev) -> None:
        if ev.name != "san.access":
            return
        if ev.ts < self._last_ts:
            # Simulated time went backwards: the bus was rebound to a
            # fresh simulator (experiments sweep configurations through
            # one bus).  Locks -- and so candidate locksets -- do not
            # survive the boundary; tallies do.
            for cell in self.cells.values():
                cell.candidate = None
        self._last_ts = ev.ts
        args = ev.args or {}
        state = args.get("state", "?")
        held = frozenset(args.get("held", ()))
        guards = args.get("guards")
        owner = args.get("owner")
        key = (ev.rank, state)
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = CellReport(state=state, rank=ev.rank)
        cell.accesses += 1
        self.total_accesses += 1
        if owner is not None and owner == ev.tid:
            # Owner exemption: the documented discipline lets a cell's
            # owning thread observe/free it lock-free.
            return
        if cell.candidate is None:
            cell.candidate = frozenset(guards) if guards else held
        cell.candidate = cell.candidate & held
        if not cell.candidate:
            cell.violations += 1
            self.total_violations += 1
            if len(self.violations) < _MAX_STORED:
                self.violations.append(
                    Violation(
                        state=state,
                        rank=ev.rank,
                        tid=ev.tid,
                        time=ev.ts,
                        held=tuple(sorted(held)),
                        guards=tuple(sorted(guards)) if guards else None,
                    )
                )
            # Re-arm so each bad access site reports, instead of one
            # empty set poisoning every later (possibly correct) access.
            cell.candidate = frozenset(guards) if guards else None

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return self.total_violations == 0

    def report(self, limit: int = 20) -> str:
        """Ranked human-readable report: worst cells first."""
        lines = [
            f"simsan: {self.total_accesses} annotated accesses across "
            f"{len(self.cells)} cells, {self.total_violations} violation(s)"
        ]
        ranked = sorted(
            self.cells.values(),
            key=lambda c: (-c.violations, -c.accesses, c.rank, c.state),
        )
        shown = [c for c in ranked if c.violations > 0][:limit]
        if shown:
            lines.append("")
            lines.append(f"{'violations':>10}  {'accesses':>8}  rank  state")
            for c in shown:
                lines.append(
                    f"{c.violations:>10}  {c.accesses:>8}  {c.rank:>4}  {c.state}"
                )
            lines.append("")
            lines.append("first occurrences:")
            for v in self.violations[:limit]:
                lines.append("  " + v.format())
            if self.total_violations > len(self.violations):
                lines.append(
                    f"  ... ({self.total_violations - len(self.violations)} more)"
                )
        return "\n".join(lines)


@dataclass
class SanitizeResult:
    """What :func:`sanitize_experiment` hands back to the CLI."""

    name: str
    sanitizer: LocksetSanitizer
    result: object = field(repr=False, default=None)


def sanitize_experiment(name: str, quick: bool = True, seed: int = 1):
    """Run one registered experiment under simsan and return a
    :class:`SanitizeResult`.  Imports are lazy: ``repro.check`` must not
    drag the whole experiment registry in at lint time."""
    from ..experiments.registry import run_experiment
    from ..obs import Instrument

    bus = Instrument()
    san = LocksetSanitizer().attach(bus)
    result = run_experiment(name, quick=quick, seed=seed, obs=bus)
    return SanitizeResult(name=name, sanitizer=san, result=result)
