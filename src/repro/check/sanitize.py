"""simsan: an Eraser-style runtime lockset sanitizer for shared runtime
state (``python -m repro sanitize``).

The paper's argument is about *who holds the critical section when*;
simsan mechanically checks the converse discipline: shared
``MpiRuntime``/domain state is only ever touched while holding its
owning :class:`~repro.locks.domain.ArbitrationDomain` lock.

How it works
------------
* Lock grant/release (:mod:`repro.locks.base`) maintains
  ``ThreadCtx.held`` -- the set of :class:`SimLock` objects the thread
  currently holds.  This costs one ``set.add``/``discard`` per
  transition and exists whether or not a sanitizer is attached.
* Annotated access sites in :class:`~repro.mpi.runtime.MpiRuntime` emit
  a ``check``-category ``san.access`` instant on the obs bus, carrying
  the state cell name, the held lockset, the cell's declared guard(s)
  and (for per-request cells) the owning thread.  Emission is gated on
  ``sim.obs is not None`` so a run without a bus pays one attribute
  check, and on ``obs.wants("check")`` so a bus without a sanitizer
  pays one set lookup.  Nothing on this path touches time or RNG:
  attaching simsan is schedule-neutral (pinned by
  ``tests/check/test_sanitizer.py``).
* This class applies the classic Eraser lockset refinement per cell
  ``(rank, state)``: the candidate lockset starts as the declared
  guards (or the first access's held set) and is intersected with the
  held set at each access.  An access that empties the candidate set is
  a violation -- no single lock protected every access to that cell.

One repo-specific twist: the runtime's documented ownership discipline
is "any thread may *complete* a request; only the owner frees/observes
it".  Accesses by a cell's declared owner thread therefore do not
refine the candidate set -- the owner may touch its own request/queue
entry lock-free by design, exactly like Eraser's first-thread
exemption.

Deadcheck's runtime half also lives here (same bus, same ``check``
category):

* :class:`WaitsForGraph` / :class:`DeadlockDetector` -- a waits-for
  graph built from live simulator state (thread->lock edges from
  :meth:`SimLock.waiting_threads`, lock->owner edges from the grant
  bookkeeping, thread->condition edges from parked
  :class:`~repro.sim.sync.Signal`/``CompletionLatch`` waiters), checked
  for cycles at watchdog early-warning and when the simulation goes
  idle with live threads.  Cycles dump as ``deadlock.cycle`` instants.
* :class:`OrderWitness` / :func:`run_order_witness` -- collects the
  ``order.edge`` instants :meth:`SimLock._grant` emits (lock A held
  while B granted) so ``repro deadcheck --order-witness`` can diff the
  *observed* order graph against the *static* one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "LocksetSanitizer", "Violation", "CellReport", "sanitize_experiment",
    "WaitsForGraph", "DeadlockDetector", "OrderWitness",
    "run_order_witness",
]

#: Cap on stored per-violation detail (counts keep accumulating past it).
_MAX_STORED = 100


@dataclass(frozen=True)
class Violation:
    """One access whose candidate lockset went empty."""

    state: str
    rank: int
    tid: int
    time: float
    held: Tuple[str, ...]
    guards: Optional[Tuple[str, ...]]

    def format(self) -> str:
        held = ",".join(self.held) if self.held else "(none)"
        want = ",".join(self.guards) if self.guards else "(any consistent lock)"
        return (
            f"t={self.time:.9f}s rank={self.rank} tid={self.tid} "
            f"state={self.state}: held={{{held}}} expected={{{want}}}"
        )


@dataclass
class CellReport:
    """Per-cell tally for the ranked report."""

    state: str
    rank: int
    accesses: int = 0
    violations: int = 0
    candidate: Optional[frozenset] = None


class LocksetSanitizer:
    """Subscriber applying Eraser lockset refinement to ``san.access``
    events.  Attach with :meth:`attach`; read :attr:`violations` /
    :meth:`report` afterwards."""

    def __init__(self) -> None:
        #: ``(rank, state) -> CellReport`` (candidate lockset + tallies).
        self.cells: Dict[Tuple[int, str], CellReport] = {}
        self.violations: List[Violation] = []
        self.total_accesses = 0
        self.total_violations = 0
        #: Watermark for sub-run detection (see :meth:`_on_event`).
        self._last_ts = 0.0

    # ------------------------------------------------------------------
    def attach(self, bus) -> "LocksetSanitizer":
        """Subscribe to the ``check`` category on ``bus``."""
        bus.subscribe(self._on_event, categories=("check",))
        return self

    def _on_event(self, ev) -> None:
        if ev.name != "san.access":
            return
        if ev.ts < self._last_ts:
            # Simulated time went backwards: the bus was rebound to a
            # fresh simulator (experiments sweep configurations through
            # one bus).  Locks -- and so candidate locksets -- do not
            # survive the boundary; tallies do.
            for cell in self.cells.values():
                cell.candidate = None
        self._last_ts = ev.ts
        args = ev.args or {}
        state = args.get("state", "?")
        held = frozenset(args.get("held", ()))
        guards = args.get("guards")
        owner = args.get("owner")
        key = (ev.rank, state)
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = CellReport(state=state, rank=ev.rank)
        cell.accesses += 1
        self.total_accesses += 1
        if owner is not None and owner == ev.tid:
            # Owner exemption: the documented discipline lets a cell's
            # owning thread observe/free it lock-free.
            return
        if cell.candidate is None:
            cell.candidate = frozenset(guards) if guards else held
        cell.candidate = cell.candidate & held
        if not cell.candidate:
            cell.violations += 1
            self.total_violations += 1
            if len(self.violations) < _MAX_STORED:
                self.violations.append(
                    Violation(
                        state=state,
                        rank=ev.rank,
                        tid=ev.tid,
                        time=ev.ts,
                        held=tuple(sorted(held)),
                        guards=tuple(sorted(guards)) if guards else None,
                    )
                )
            # Re-arm so each bad access site reports, instead of one
            # empty set poisoning every later (possibly correct) access.
            cell.candidate = frozenset(guards) if guards else None

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return self.total_violations == 0

    def report(self, limit: int = 20) -> str:
        """Ranked human-readable report: worst cells first."""
        lines = [
            f"simsan: {self.total_accesses} annotated accesses across "
            f"{len(self.cells)} cells, {self.total_violations} violation(s)"
        ]
        ranked = sorted(
            self.cells.values(),
            key=lambda c: (-c.violations, -c.accesses, c.rank, c.state),
        )
        shown = [c for c in ranked if c.violations > 0][:limit]
        if shown:
            lines.append("")
            lines.append(f"{'violations':>10}  {'accesses':>8}  rank  state")
            for c in shown:
                lines.append(
                    f"{c.violations:>10}  {c.accesses:>8}  {c.rank:>4}  {c.state}"
                )
            lines.append("")
            lines.append("first occurrences:")
            for v in self.violations[:limit]:
                lines.append("  " + v.format())
            if self.total_violations > len(self.violations):
                lines.append(
                    f"  ... ({self.total_violations - len(self.violations)} more)"
                )
        return "\n".join(lines)


# ======================================================================
# Deadcheck runtime half: waits-for graph + order witness
# ======================================================================

class WaitsForGraph:
    """A snapshot waits-for graph over live simulator state.

    Nodes are ``(kind, id)`` with human labels; edges:

    * thread -> lock: the thread is inside ``acquire`` and not granted
      (:meth:`SimLock.waiting_threads`),
    * lock -> thread: the lock's current owner,
    * thread -> condition: the thread is parked on a Signal/latch
      (``wait(ctx=...)`` registration).

    A strongly-connected component of size > 1 is a (potential)
    deadlock: every member waits on another member.  Condition nodes
    have no outgoing edges, so they never *create* cycles -- they are
    in the graph so a stalled-parked thread shows up in dumps.
    """

    def __init__(self) -> None:
        self._adj: Dict[Tuple[str, int], Set[Tuple[str, int]]] = {}
        self._labels: Dict[Tuple[str, int], str] = {}
        self._seen_locks: Set[int] = set()

    # -- construction ---------------------------------------------------
    def _node(self, kind: str, key: int, label: str) -> Tuple[str, int]:
        node = (kind, key)
        self._labels.setdefault(node, label)
        self._adj.setdefault(node, set())
        return node

    def add_lock(self, lock) -> None:
        if id(lock) in self._seen_locks:
            return
        self._seen_locks.add(id(lock))
        ln = self._node("lock", id(lock), lock.name)
        owner = lock.owner
        if owner is not None:
            self._adj[ln].add(self._node("thread", owner.tid, owner.name))
        for ctx in lock.waiting_threads():
            tn = self._node("thread", ctx.tid, ctx.name)
            self._adj[tn].add(ln)
        for sub in lock.sub_locks():
            self.add_lock(sub)

    def add_condition(self, cond, label: str = "") -> None:
        waiters = getattr(cond, "waiters", ())
        if not waiters:
            return
        cn = self._node(
            "cond", id(cond), label or getattr(cond, "name", "") or "signal"
        )
        for ctx in waiters:
            tn = self._node("thread", ctx.tid, ctx.name)
            self._adj[tn].add(cn)

    # -- queries --------------------------------------------------------
    def label(self, node: Tuple[str, int]) -> str:
        return self._labels.get(node, f"{node[0]}#{node[1]}")

    def cycles(self) -> List[List[Tuple[str, int]]]:
        """SCCs of size > 1, deterministically ordered by label."""
        order = sorted(self._adj, key=lambda n: (self.label(n), n[0]))
        index: Dict[Tuple[str, int], int] = {}
        low: Dict[Tuple[str, int], int] = {}
        on_stack: Set[Tuple[str, int]] = set()
        stack: List[Tuple[str, int]] = []
        out: List[List[Tuple[str, int]]] = []
        counter = [0]

        def neighbors(n):
            return sorted(self._adj[n], key=lambda m: (self.label(m), m[0]))

        for root in order:
            if root in index:
                continue
            work = [(root, iter(neighbors(root)))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for nxt in it:
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(neighbors(nxt))))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    if len(comp) > 1:
                        out.append(
                            sorted(comp, key=lambda n: (self.label(n), n[0]))
                        )
        return out

    def describe(self, cycle: List[Tuple[str, int]]) -> str:
        """``a -> b -> ... -> a`` walking actual edges of the cycle."""
        members = set(cycle)
        walk = [cycle[0]]
        while True:
            nxts = [
                m for m in sorted(
                    self._adj[walk[-1]], key=lambda n: (self.label(n), n[0])
                )
                if m in members
            ]
            nxt = next((m for m in nxts if m not in walk), None)
            if nxt is None:
                break
            walk.append(nxt)
        return " -> ".join(self.label(n) for n in walk + [walk[0]])


class DeadlockDetector:
    """Wires waits-for cycle checks into a cluster's failure paths.

    :meth:`attach` hooks the progress watchdog's early warning (half
    the grace period -- before the abort) and the cluster's
    idle-with-live-threads path (``Cluster.on_idle_stall``).  Detected
    cycles are recorded on :attr:`cycles`, emitted as ``check``-category
    ``deadlock.cycle`` instants, and merged into the watchdog's stall
    dump under ``"waits_for_cycles"``.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        #: Human-readable cycle descriptions, in detection order
        #: (deduplicated: one entry per distinct cycle).
        self.cycles: List[str] = []
        self.checks = 0

    def attach(self) -> "DeadlockDetector":
        wd = self.cluster.watchdog
        if wd is not None:
            wd.on_warning.append(self._on_warning)
            wd.diagnostic_hooks.append(self._diagnostics)
        self.cluster.on_idle_stall = self._on_idle
        return self

    # -- snapshot -------------------------------------------------------
    def graph(self) -> WaitsForGraph:
        g = WaitsForGraph()
        for rt in self.cluster.runtimes:
            for dom in rt.domains:
                g.add_lock(dom.lock)
            g.add_condition(rt._activity, label=f"activity@rank{rt.rank}")
        # Locks held or contended outside the domain set (workload locks
        # from examples/benchmarks, composed inner tickets reach here
        # via sub_locks()).
        for group in self.cluster.threads:
            for th in group:
                for lk in th.ctx.held:
                    g.add_lock(lk)
        return g

    def check(self, reason: str) -> List[str]:
        self.checks += 1
        g = self.graph()
        found = [g.describe(c) for c in g.cycles()]
        fresh = [c for c in found if c not in self.cycles]
        self.cycles.extend(fresh)
        if found:
            obs = self.cluster.sim.obs
            if obs is not None and obs.wants("check"):
                for desc in found:
                    obs.instant(
                        "check", "deadlock.cycle",
                        args={"reason": reason, "cycle": desc},
                    )
        return found

    # -- hook targets ---------------------------------------------------
    def _on_warning(self, _frozen: int) -> None:
        self.check("watchdog-warning")

    def _on_idle(self) -> None:
        self.check("idle-with-live-threads")

    def _diagnostics(self) -> dict:
        return {"waits_for_cycles": list(self.cycles)}


class OrderWitness:
    """Collects runtime lock-order edges (``order.edge`` instants).

    Edges are keyed by witness *family* (rank/shard decorations
    stripped, ``order_class`` overrides honoured) so one logical edge
    observed on any rank matches one static edge.  ``names`` keeps an
    example concrete pair per family edge for reporting."""

    def __init__(self) -> None:
        #: (held_family, acquired_family) -> observation count.
        self.edges: Dict[Tuple[str, str], int] = {}
        #: family edge -> one concrete (held_name, acquired_name) pair.
        self.names: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def attach(self, bus) -> "OrderWitness":
        bus.subscribe(self._on_event, categories=("check",))
        return self

    def _on_event(self, ev) -> None:
        if ev.name != "order.edge":
            return
        args = ev.args or {}
        acquired = args.get("acquired", "?")
        held_names = args.get("held_names", ())
        for i, held in enumerate(args.get("held", ())):
            key = (held, acquired)
            self.edges[key] = self.edges.get(key, 0) + 1
            if key not in self.names:
                hname = held_names[i] if i < len(held_names) else held
                self.names[key] = (hname, args.get("acquired_name", acquired))


@dataclass
class SanitizeResult:
    """What :func:`sanitize_experiment` hands back to the CLI."""

    name: str
    sanitizer: LocksetSanitizer
    result: object = field(repr=False, default=None)


def sanitize_experiment(name: str, quick: bool = True, seed: int = 1):
    """Run one registered experiment under simsan and return a
    :class:`SanitizeResult`.  Imports are lazy: ``repro.check`` must not
    drag the whole experiment registry in at lint time."""
    from ..experiments.registry import run_experiment
    from ..obs import Instrument

    bus = Instrument()
    san = LocksetSanitizer().attach(bus)
    result = run_experiment(name, quick=quick, seed=seed, obs=bus)
    return SanitizeResult(name=name, sanitizer=san, result=result)


def run_order_witness(name: str, quick: bool = True, seed: int = 1):
    """Run one registered experiment with an :class:`OrderWitness`
    attached and return ``(witness, result)``.  Same lazy-import
    contract as :func:`sanitize_experiment`."""
    from ..experiments.registry import run_experiment
    from ..obs import Instrument

    bus = Instrument()
    witness = OrderWitness().attach(bus)
    result = run_experiment(name, quick=quick, seed=seed, obs=bus)
    return witness, result
