"""The shared static-analysis layer: parsed modules and a call graph.

simlint (:mod:`repro.check.lint`) is deliberately intraprocedural -- each
rule looks at one function at a time -- which is exactly why it cannot
see a blocking wait reached two calls deep while a domain lock is held.
This module supplies the missing half: a best-effort **call graph** over
a set of Python sources, built purely from the stdlib :mod:`ast` (no
imports of the analyzed code, no new dependencies), shared by the
continuation-discipline lint rule and the deadcheck analyzer
(:mod:`repro.check.deadcheck`).

What resolves (everything else is silently "unknown", never a guess):

* module-level functions, including names imported from other modules
  *in the analyzed set* (``from ..locks.base import x``, absolute and
  relative forms, aliases);
* locally-defined ``def``s through the lexical scope chain;
* methods called on ``self``, looked up through the class's in-graph
  base chain (cross-module bases resolve through the import table);
* ``ClassName(...)`` constructor calls (to ``__init__``) and
  ``ClassName.method(...)``;
* ``self.attr.method()`` where some method assigns
  ``self.attr = ClassName(...)`` -- one level of attribute-type
  inference over class bodies;
* ``yield from gen(...)`` generator composition -- the ``Call`` node is
  resolved exactly like a plain call, so lock protocols that compose
  generators (``yield from self.ticket_b.acquire(ctx)``) chain through
  the graph.

Suppression comments are parsed here too, because both tools share the
mechanism: ``# simlint: disable=RULE`` and ``# simcheck: disable=RULE``
are interchangeable spellings (comma-separated rules, or ``all``),
line-scoped and rule-scoped.  Unknown rule names in a disable list are
ignored -- they suppress nothing, and must never crash the run.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

__all__ = [
    "GraphError",
    "SourceModule",
    "FunctionInfo",
    "ClassInfo",
    "CallGraph",
    "iter_py_files",
    "module_name_for",
]


class GraphError(RuntimeError):
    """The graph could not be built (bad path, unreadable source)."""


#: Both tool prefixes are accepted everywhere: the suppression mechanism
#: predates deadcheck, and a waiver should not need rewriting when a
#: second tool starts honouring it.
_SUPPRESS_RE = re.compile(r"#\s*sim(?:lint|check):\s*disable=([\w,\- ]+)")


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``, walking up through packages.

    ``src/repro/mpi/runtime.py`` -> ``repro.mpi.runtime`` (each parent
    with an ``__init__.py`` contributes a segment); a loose file (no
    package) is just its stem.  ``__init__.py`` maps to the package
    itself.
    """
    path = Path(path)
    parts: List[str] = [] if path.name == "__init__.py" else [path.stem]
    d = path.resolve().parent
    while (d / "__init__.py").exists():
        parts.append(d.name)
        d = d.parent
    return ".".join(reversed(parts)) or path.stem


class SourceModule:
    """One parsed source file plus its line-scoped suppression table."""

    def __init__(self, path: str, source: str, modname: Optional[str] = None):
        self.path = path
        self.modname = modname or module_name_for(Path(path))
        self.is_package = Path(path).name == "__init__.py"
        # SyntaxError propagates: callers decide how to diagnose it.
        self.tree = ast.parse(source, filename=path)
        #: line number -> set of suppressed rule names (or {"all"}).
        self.suppressed: Dict[int, set] = {}
        for i, line in enumerate(source.splitlines(), start=1):
            m = _SUPPRESS_RE.search(line)
            if m:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                self.suppressed[i] = rules

    def allows(self, finding) -> bool:
        """True unless ``finding``'s line suppresses its rule."""
        rules = self.suppressed.get(finding.line)
        if not rules:
            return True
        return finding.rule not in rules and "all" not in rules

    @property
    def package(self) -> str:
        """The package relative imports resolve against."""
        if self.is_package:
            return self.modname
        return self.modname.rsplit(".", 1)[0] if "." in self.modname else ""


class FunctionInfo:
    """One function or method in the graph."""

    __slots__ = ("key", "name", "qualname", "node", "module", "cls", "parent",
                 "nested")

    def __init__(self, name, qualname, node, module, cls=None, parent=None):
        self.name = name
        self.qualname = qualname
        self.key = f"{module.modname}.{qualname}"
        self.node = node
        self.module = module
        #: Enclosing :class:`ClassInfo` for methods, else None.
        self.cls = cls
        #: Enclosing FunctionInfo for nested defs, else None.
        self.parent = parent
        #: Directly nested ``def``s by bare name (lexical scope chain).
        self.nested: Dict[str, "FunctionInfo"] = {}

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FunctionInfo {self.key}>"


class ClassInfo:
    """One class: methods, base names, inferred attribute types."""

    __slots__ = ("key", "name", "node", "module", "base_exprs", "base_keys",
                 "methods", "attr_types")

    def __init__(self, name, node, module):
        self.name = name
        self.key = f"{module.modname}.{name}"
        self.node = node
        self.module = module
        #: Base-class expressions as written (resolved in finalize()).
        self.base_exprs: List[ast.expr] = list(node.bases)
        self.base_keys: List[str] = []
        self.methods: Dict[str, FunctionInfo] = {}
        #: attr name -> ClassInfo key, from ``self.attr = ClassName(...)``.
        self.attr_types: Dict[str, str] = {}

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ClassInfo {self.key}>"


class CallGraph:
    """Best-effort call graph over a set of :class:`SourceModule`\\ s.

    Build with :meth:`add_module` per file then one :meth:`finalize`;
    query with :meth:`resolve_call` / :meth:`resolve_callable`.
    Resolution returns a single :class:`FunctionInfo` or ``None`` --
    the graph never guesses between candidates.
    """

    def __init__(self) -> None:
        self.modules: Dict[str, SourceModule] = {}
        #: Fully-qualified key -> info, over every module added.
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: modname -> {local alias -> dotted target} import tables.
        self._imports: Dict[str, Dict[str, str]] = {}
        #: modname -> {bare name -> FunctionInfo} (module level only).
        self._mod_funcs: Dict[str, Dict[str, FunctionInfo]] = {}
        self._mod_classes: Dict[str, Dict[str, ClassInfo]] = {}

    @classmethod
    def for_module(cls, mod: SourceModule) -> "CallGraph":
        """A single-module graph (what the lint rules use)."""
        g = cls()
        g.add_module(mod)
        g.finalize()
        return g

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_module(self, mod: SourceModule) -> None:
        self.modules[mod.modname] = mod
        self._imports[mod.modname] = self._collect_imports(mod)
        funcs: Dict[str, FunctionInfo] = {}
        classes: Dict[str, ClassInfo] = {}
        self._mod_funcs[mod.modname] = funcs
        self._mod_classes[mod.modname] = classes
        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fi = FunctionInfo(stmt.name, stmt.name, stmt, mod)
                funcs[stmt.name] = fi
                self.functions[fi.key] = fi
                self._add_nested(fi, mod)
            elif isinstance(stmt, ast.ClassDef):
                ci = ClassInfo(stmt.name, stmt, mod)
                classes[stmt.name] = ci
                self.classes[ci.key] = ci
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fi = FunctionInfo(
                            sub.name, f"{stmt.name}.{sub.name}", sub, mod,
                            cls=ci,
                        )
                        ci.methods[sub.name] = fi
                        self.functions[fi.key] = fi
                        self._add_nested(fi, mod)

    def _add_nested(self, outer: FunctionInfo, mod: SourceModule) -> None:
        """Record directly nested ``def``s (lexical scope chain).

        Iterates every block owned by ``outer`` without descending into
        nested defs -- those are added (recursively) by their parent.
        """
        stack = list(ast.iter_child_nodes(outer.node))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fi = FunctionInfo(
                    node.name, f"{outer.qualname}.<locals>.{node.name}",
                    node, mod, cls=outer.cls, parent=outer,
                )
                outer.nested[node.name] = fi
                self.functions[fi.key] = fi
                self._add_nested(fi, mod)
                continue
            if isinstance(node, ast.Lambda):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _collect_imports(self, mod: SourceModule) -> Dict[str, str]:
        table: Dict[str, str] = {}
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.asname:
                        table[a.asname] = a.name
                    else:
                        # ``import a.b.c`` binds ``a``; attribute chains
                        # join the rest back on at lookup time.
                        table[a.name.split(".")[0]] = a.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    pkg_parts = mod.package.split(".") if mod.package else []
                    up = node.level - 1
                    if up:
                        pkg_parts = pkg_parts[:-up] if up <= len(pkg_parts) else []
                    base = ".".join(pkg_parts + ([node.module] if node.module else []))
                for a in node.names:
                    if a.name == "*":
                        continue
                    table[a.asname or a.name] = f"{base}.{a.name}" if base else a.name
        return table

    def finalize(self) -> None:
        """Resolve base-class chains and infer attribute types.

        Call once after every module is added; idempotent.
        """
        for ci in self.classes.values():
            ci.base_keys = []
            for expr in ci.base_exprs:
                target = self._resolve_symbol_expr(expr, ci.module)
                if isinstance(target, ClassInfo):
                    ci.base_keys.append(target.key)
        for ci in self.classes.values():
            for fi in ci.methods.values():
                for node in ast.walk(fi.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    v = node.value
                    if not isinstance(v, ast.Call):
                        continue
                    cls = self._resolve_symbol_expr(v.func, ci.module)
                    if not isinstance(cls, ClassInfo):
                        continue
                    for t in node.targets:
                        if (
                            isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == "self"
                        ):
                            ci.attr_types.setdefault(t.attr, cls.key)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_call(
        self, call: ast.Call, scope: Optional[FunctionInfo],
        module: Optional[SourceModule] = None,
    ) -> Optional[FunctionInfo]:
        """The function a call lands in, or None if unknowable."""
        return self.resolve_callable(call.func, scope, module)

    def resolve_callable(
        self, expr: ast.expr, scope: Optional[FunctionInfo],
        module: Optional[SourceModule] = None,
    ) -> Optional[FunctionInfo]:
        """Resolve a callable *expression* (a call's ``func``, or a
        callback argument like ``self.method``) to its definition."""
        mod = module or (scope.module if scope is not None else None)
        if mod is None:
            return None
        if isinstance(expr, ast.Name):
            target = self._lookup_name(expr.id, scope, mod)
            if isinstance(target, ClassInfo):
                return self._method(target, "__init__")
            if isinstance(target, FunctionInfo):
                return target
            return None
        if isinstance(expr, ast.Attribute):
            base = expr.value
            if isinstance(base, ast.Name):
                if base.id == "self" and scope is not None and scope.cls is not None:
                    return self._method(scope.cls, expr.attr)
                target = self._lookup_name(base.id, scope, mod)
                if isinstance(target, ClassInfo):
                    return self._method(target, expr.attr)
                if isinstance(target, str):
                    # Module path: ``modalias.fn()`` / ``modalias.Cls()``.
                    fn = self.functions.get(f"{target}.{expr.attr}")
                    if fn is not None:
                        return fn
                    cls = self.classes.get(f"{target}.{expr.attr}")
                    if cls is not None:
                        return self._method(cls, "__init__")
                return None
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and scope is not None
                and scope.cls is not None
            ):
                # ``self.attr.method()`` via inferred attribute type.
                key = self._attr_type(scope.cls, base.attr)
                if key is not None and key in self.classes:
                    return self._method(self.classes[key], expr.attr)
        return None

    # -- internals ------------------------------------------------------
    def _lookup_name(
        self, name: str, scope: Optional[FunctionInfo], mod: SourceModule,
    ) -> Union[FunctionInfo, ClassInfo, str, None]:
        # Lexical scope chain: nested defs of enclosing functions first.
        s = scope
        while s is not None:
            if name in s.nested:
                return s.nested[name]
            s = s.parent
        funcs = self._mod_funcs.get(mod.modname, {})
        if name in funcs:
            return funcs[name]
        classes = self._mod_classes.get(mod.modname, {})
        if name in classes:
            return classes[name]
        dotted = self._imports.get(mod.modname, {}).get(name)
        if dotted is None:
            return None
        if dotted in self.functions:
            return self.functions[dotted]
        if dotted in self.classes:
            return self.classes[dotted]
        if dotted in self.modules:
            return dotted  # module prefix for attribute chaining
        return dotted if dotted else None

    def _method(
        self, cls: ClassInfo, name: str, _seen: Optional[set] = None,
    ) -> Optional[FunctionInfo]:
        """MRO-ish lookup: the class, then bases depth-first in order."""
        seen = _seen if _seen is not None else set()
        if cls.key in seen:
            return None
        seen.add(cls.key)
        if name in cls.methods:
            return cls.methods[name]
        for bk in cls.base_keys:
            base = self.classes.get(bk)
            if base is not None:
                hit = self._method(base, name, seen)
                if hit is not None:
                    return hit
        return None

    def _attr_type(
        self, cls: ClassInfo, attr: str, _seen: Optional[set] = None,
    ) -> Optional[str]:
        seen = _seen if _seen is not None else set()
        if cls.key in seen:
            return None
        seen.add(cls.key)
        if attr in cls.attr_types:
            return cls.attr_types[attr]
        for bk in cls.base_keys:
            base = self.classes.get(bk)
            if base is not None:
                hit = self._attr_type(base, attr, seen)
                if hit is not None:
                    return hit
        return None

    def _resolve_symbol_expr(
        self, expr: ast.expr, mod: SourceModule,
    ) -> Union[FunctionInfo, ClassInfo, str, None]:
        """Resolve a plain symbol expression (base class, constructor)."""
        if isinstance(expr, ast.Name):
            return self._lookup_name(expr.id, None, mod)
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            target = self._lookup_name(expr.value.id, None, mod)
            if isinstance(target, str):
                full = f"{target}.{expr.attr}"
                return self.classes.get(full) or self.functions.get(full)
        return None

    def functions_of(self, mod: SourceModule) -> Iterator[FunctionInfo]:
        for fi in self.functions.values():
            if fi.module is mod:
                yield fi


# ----------------------------------------------------------------------
# File walking (shared by lint and deadcheck runners)
# ----------------------------------------------------------------------
def iter_py_files(
    paths: Iterable[str], exclude: Iterable[str] = ()
) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, skipping ``exclude`` dirs
    during directory walks (explicit file arguments always yield).
    Raises :class:`GraphError` for a missing path."""
    skip = [Path(e).resolve() for e in exclude]
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                r = f.resolve()
                if any(s == r or s in r.parents for s in skip):
                    continue
                yield f
        elif p.is_file():
            yield p
        else:
            raise GraphError(f"no such file or directory: {raw}")


def load_module(path: Path) -> SourceModule:
    """Read and parse one file; unreadable or unparseable sources raise
    :class:`GraphError` with a one-line diagnostic (never a traceback
    from deep inside the walker)."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise GraphError(f"{path}: cannot read: {exc}") from exc
    try:
        return SourceModule(str(path), source)
    except SyntaxError as exc:
        raise GraphError(f"{path}: cannot parse: {exc}") from exc
