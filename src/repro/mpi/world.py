"""Cluster builder: nodes x ranks x threads, with bindings and locks.

:class:`Cluster` wires together every substrate -- one simulator, one
fabric, a machine per node, one runtime (with its own global critical
section) per rank, and pinned :class:`MpiThread` handles for workloads.

Core assignment follows the paper's setups:

* one rank per node: threads bound over the whole node by the configured
  binding policy (compact/scatter; paper 4.2);
* several ranks per node: the node's cores are split into contiguous
  chunks, one per rank (e.g. Fig. 12's four processes x two threads).

``async_progress=True`` forks MPICH's asynchronous progress thread on
every rank (paper 6.1.2): an endless LOW-priority progress poller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..faults import (
    FaultInjector,
    FaultPlan,
    ProgressStallError,
    ProgressWatchdog,
    ReliabilityConfig,
    parse_fault_plan,
)
from ..locks import LOCK_CLASSES, LockTrace, make_lock
from ..machine import (
    BINDINGS,
    CostModel,
    Machine,
    MachineSpec,
    ThreadCtx,
)
from ..network import Fabric, NetworkConfig
from ..obs import Instrument
from ..overrides import cluster_overrides, get_override
from ..sim import SCHEDULERS, Simulator
from .collectives import Communicator
from .runtime import MpiRuntime, MpiThread
from .vci import CsGranularity, CsPolicy, parse_cs_policy

__all__ = ["ClusterConfig", "Cluster"]


@dataclass(kw_only=True)
class ClusterConfig:
    """Cluster shape and runtime knobs.

    All fields are keyword-only (a positional ``ClusterConfig(2, 1, 8)``
    is unreadable and fragile as fields accrete), and the ``lock`` /
    ``binding`` names are validated here against their registries -- a
    typo fails at construction with the valid names listed, not deep
    inside ``Cluster.__init__``.
    """

    n_nodes: int = 2
    ranks_per_node: int = 1
    threads_per_rank: int = 1
    lock: str = "mutex"
    binding: str = "compact"
    seed: int = 0
    #: Simulator event-queue implementation (see
    #: :data:`repro.sim.SCHEDULERS`): "heap" (default, bit-identity
    #: reference) or "calendar" (batched bucket queue for long runs).
    #: Both produce identical schedules; the choice is purely a
    #: wall-clock trade.
    scheduler: str = "heap"
    costs: CostModel = field(default_factory=CostModel)
    net: NetworkConfig = field(default_factory=NetworkConfig)
    machine_spec: MachineSpec = field(default_factory=MachineSpec)
    eager_threshold: int = 16384
    inline_threshold: int = 128
    async_progress: bool = False
    #: Paper 9 future work: blocked waiters park on arrival/completion
    #: events instead of spinning in the progress loop.
    event_driven_wait: bool = False
    #: Blocking-call completion strategy: "poll" (the paper's CS_YIELD
    #: loops, bit-identity baseline) or "continuation" (waiters park on
    #: the completion signal and only enter the critical section when
    #: there are packets to progress -- see DESIGN.md section 11).
    completion: str = "poll"
    #: Critical-section granularity: "global" (paper baseline) or
    #: "brief" (payload copies outside the CS, paper Fig. 1 / 7).
    cs_granularity: str = "global"
    #: Domain-mapping policy: "global" (the paper's single critical
    #: section), or a sharded spec like "per-peer", "per-tag:8",
    #: "per-vci:4", "per-vci:4:ticket" (see :mod:`repro.mpi.vci`).
    #: Parsed to a :class:`~repro.mpi.vci.CsPolicy` at construction.
    cs: "str | CsPolicy" = "global"
    #: Record a LockTrace per rank (bias analysis needs this).
    trace_locks: bool = False
    #: Observability bus to attach (see :mod:`repro.obs`); None = no
    #: instrumentation overhead at all.
    obs: Optional[Instrument] = None
    #: Fault plan (:class:`~repro.faults.FaultPlan`), a spec string like
    #: ``"drop=0.01,dup=0.001"``, or None.  None / an inactive plan
    #: installs nothing -- the schedule is bit-identical to a build
    #: without the faults package.
    faults: "FaultPlan | str | None" = None
    #: Reliability layer: True (defaults), a
    #: :class:`~repro.faults.ReliabilityConfig`, or None/False (off --
    #: the pre-reliability instruction stream).
    reliability: "ReliabilityConfig | bool | None" = None

    def __post_init__(self) -> None:
        # Ablation seam: forced component values (repro.overrides) win
        # over whatever the runner passed, and then go through the same
        # validation/parsing as explicit arguments.  The table is empty
        # outside ablation runs, making this a no-op.
        for _key, _value in cluster_overrides().items():
            setattr(self, _key, _value)
        if self.lock not in LOCK_CLASSES:
            raise ValueError(
                f"unknown lock {self.lock!r}; valid locks: "
                f"{', '.join(sorted(LOCK_CLASSES))}"
            )
        if self.binding not in BINDINGS:
            raise ValueError(
                f"unknown binding {self.binding!r}; valid bindings: "
                f"{', '.join(sorted(BINDINGS))}"
            )
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; valid schedulers: "
                f"{', '.join(sorted(SCHEDULERS))}"
            )
        if self.completion not in ("poll", "continuation"):
            raise ValueError(
                f"unknown completion mode {self.completion!r}; valid "
                f"modes: continuation, poll"
            )
        self.cs_granularity = CsGranularity.parse(self.cs_granularity)
        self.cs = parse_cs_policy(self.cs, n_ranks=self.n_ranks)
        if isinstance(self.faults, str):
            self.faults = parse_fault_plan(self.faults)
        if self.reliability is True:
            self.reliability = ReliabilityConfig()
        elif self.reliability is False:
            self.reliability = None
        if self.cs.lock is not None and self.cs.lock not in LOCK_CLASSES:
            raise ValueError(
                f"unknown lock {self.cs.lock!r} in cs policy "
                f"{self.cs.spec()!r}; valid locks: "
                f"{', '.join(sorted(LOCK_CLASSES))}"
            )

    @property
    def n_ranks(self) -> int:
        return self.n_nodes * self.ranks_per_node


class Cluster:
    """A simulated cluster ready to run MPI workloads."""

    def __init__(self, config: ClusterConfig):
        if config.n_nodes < 1 or config.ranks_per_node < 1:
            raise ValueError("need at least one node and one rank per node")
        if config.threads_per_rank < 1:
            raise ValueError("need at least one thread per rank")
        if config.binding not in BINDINGS:
            raise ValueError(
                f"unknown binding {config.binding!r}; expected one of {sorted(BINDINGS)}"
            )
        self.config = config
        self.sim = Simulator(seed=config.seed, scheduler=config.scheduler)
        if config.obs is not None:
            # Single attach point: everything holding this sim emits
            # through sim.obs.  Rebinding is deliberate -- sweep
            # experiments reuse one bus across many clusters.
            config.obs.bind_sim(self.sim)
        self.machines: List[Machine] = [
            Machine(node_id=n, spec=config.machine_spec)
            for n in range(config.n_nodes)
        ]
        self.fabric = Fabric(self.sim, config.net)
        self.runtimes: List[MpiRuntime] = []
        self.threads: List[List[MpiThread]] = []
        self.lock_traces: Dict[int, LockTrace] = {}
        self._progress_ctxs: List[ThreadCtx] = []
        self._shutdown = False
        #: Idle-stall hook: called (no args) when the simulation runs
        #: out of events with the stop condition still pending -- i.e.
        #: live threads exist but none can move.  The deadlock detector
        #: (:class:`repro.check.sanitize.DeadlockDetector`) checks the
        #: waits-for graph here; the original error still propagates.
        self.on_idle_stall = None

        # Fault machinery.  An inactive plan installs *nothing*: no
        # injector, no watchdog, no extra events -- the determinism
        # contract (see repro.faults).
        plan = config.faults
        self.fault_injector: Optional[FaultInjector] = None
        self.watchdog: Optional[ProgressWatchdog] = None
        if plan is not None and plan.active:
            self.fault_injector = FaultInjector(self.sim, plan)
            self.fabric.faults = self.fault_injector

        policy: CsPolicy = config.cs
        lock_kind = policy.lock or config.lock
        for rank in range(config.n_ranks):
            node = rank // config.ranks_per_node
            machine = self.machines[node]
            nic = self.fabric.register_rank(rank, node, n_vcis=policy.n_domains)
            trace = LockTrace() if config.trace_locks else None
            if trace is not None:
                self.lock_traces[rank] = trace
            # One lock per arbitration domain.  With a single domain the
            # name stays exactly "<lock>@rank<N>" -- lock RNG streams are
            # keyed by name, so this keeps the global policy bit-for-bit
            # identical to the pre-domain runtime.
            locks = [
                make_lock(
                    lock_kind, self.sim, config.costs,
                    name=(
                        f"{lock_kind}@rank{rank}"
                        if policy.n_domains == 1
                        else f"{lock_kind}@rank{rank}.d{di}"
                    ),
                    trace=trace,
                )
                for di in range(policy.n_domains)
            ]
            rt = MpiRuntime(
                self.sim, rank, self.fabric, nic, locks[0], config.costs,
                eager_threshold=config.eager_threshold,
                inline_threshold=config.inline_threshold,
                event_driven_wait=config.event_driven_wait,
                completion=config.completion,
                cs_granularity=config.cs_granularity,
                policy=policy,
                domain_locks=locks,
                reliability=config.reliability,
            )
            self.runtimes.append(rt)

            cores = self._rank_cores(machine, rank)
            ths = []
            for i in range(config.threads_per_rank):
                ctx = ThreadCtx(
                    cores[i % len(cores)], name=f"r{rank}t{i}", rank=rank
                )
                ths.append(MpiThread(rt, ctx))
            self.threads.append(ths)
            if config.obs is not None:
                config.obs.declare_process(rank, f"rank {rank} (node {node})")
                for th in ths:
                    config.obs.declare_thread(rank, th.ctx.tid, th.ctx.name)

        self.world = Communicator.world(config.n_ranks)

        if config.async_progress:
            for rank in range(config.n_ranks):
                self._fork_progress_thread(rank)

        if self.fault_injector is not None:
            inj = self.fault_injector
            for c in plan.crashes:
                # The injector enforces the crash by timestamp; this
                # marker just announces it on the obs bus.
                self.sim.call_after(c.at_s, inj.note_crash, c.rank)
            for df in plan.domain_failures:
                self.sim.call_after(
                    df.at_s, self.runtimes[df.rank].fail_domain,
                    df.domain, df.fallback,
                )
            # get_override("watchdog"): the ablation harness can force
            # the watchdog off to measure what it buys (repro.overrides).
            if plan.watchdog_interval_ns > 0.0 and get_override("watchdog", True):
                self.watchdog = ProgressWatchdog(
                    self, plan.watchdog_interval_ns * 1e-9,
                    grace=plan.watchdog_grace,
                ).install()

    # ------------------------------------------------------------------
    def _rank_cores(self, machine: Machine, rank: int):
        cfg = self.config
        if cfg.ranks_per_node == 1:
            return BINDINGS[cfg.binding](machine, max(cfg.threads_per_rank, 1))
        rl = rank % cfg.ranks_per_node
        per_rank = max(1, machine.n_cores // cfg.ranks_per_node)
        chunk = machine.cores[rl * per_rank:(rl + 1) * per_rank]
        return chunk or [machine.cores[rl % machine.n_cores]]

    def _fork_progress_thread(self, rank: int) -> None:
        cfg = self.config
        machine = self.machines[rank // cfg.ranks_per_node]
        # Bind past the app threads: the progress thread gets the next
        # core after them (wrapping onto core 0 when oversubscribed).
        if cfg.ranks_per_node == 1:
            cores = BINDINGS[cfg.binding](machine, cfg.threads_per_rank + 1)
            core = cores[cfg.threads_per_rank]
        else:
            chunk = self._rank_cores(machine, rank)
            core = chunk[cfg.threads_per_rank % len(chunk)]
        ctx = ThreadCtx(core, name=f"r{rank}async", rank=rank)
        self._progress_ctxs.append(ctx)
        if cfg.obs is not None:
            cfg.obs.declare_thread(rank, ctx.tid, ctx.name)
        rt = self.runtimes[rank]

        def loop():
            while not self._shutdown:
                yield from rt.progress_poke(ctx)
                if cfg.event_driven_wait and not rt.nic.has_packets():
                    yield rt._activity.wait(ctx)
                    yield self.sim.timeout(rt.costs.event_wakeup)
                else:
                    yield self.sim.timeout(rt.costs.progress_gap)

        self.sim.process(loop(), name=f"async-progress@{rank}")

    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return len(self.runtimes)

    def thread(self, rank: int, i: int = 0) -> MpiThread:
        return self.threads[rank][i]

    def spawn(self, gen, name: str = ""):
        """Start a workload process on the simulator."""
        return self.sim.process(gen, name=name)

    def run(self, procs: Optional[list] = None) -> None:
        """Run the simulation.

        With ``procs``: run until every listed process finishes, then
        shut down service threads (async progress) and drain.  Without:
        run the heap dry.

        A watchdog-detected stall surfaces as the underlying
        :class:`~repro.faults.ProgressStallError` (diagnostics attached)
        rather than a generic simulator crash.
        """
        from ..sim.engine import SimulationError
        try:
            if procs:
                self.sim.run(until=self.sim.all_of(procs))
                self._shutdown = True
                if self.watchdog is not None:
                    # Cancel the pending sample so the drain below ends
                    # at the last real event, not the next watchdog tick.
                    self.watchdog.stop()
            self.sim.run()
        except SimulationError as exc:
            self._shutdown = True
            cause = exc.__cause__
            if isinstance(cause, ProgressStallError):
                raise cause from None
            if self.on_idle_stall is not None:
                # Out of events with threads still live: let the
                # deadlock detector dump who waits on what before the
                # generic error propagates.
                self.on_idle_stall()
            raise

    def run_workload(self, generators, name: str = "workload") -> list:
        """Spawn one process per generator, run to completion, return
        their results in order."""
        procs = [
            self.sim.process(g, name=f"{name}[{i}]")
            for i, g in enumerate(generators)
        ]
        self.run(procs)
        return [p.value for p in procs]

    def __repr__(self) -> str:  # pragma: no cover
        c = self.config
        return (
            f"<Cluster {c.n_nodes}n x {c.ranks_per_node}r x {c.threads_per_rank}t "
            f"lock={c.lock} binding={c.binding}>"
        )
