"""Miniature MPICH: requests, matching queues, progress engine, global
critical section, collectives, RMA, and the cluster builder."""

from .collectives import (
    Communicator,
    allreduce,
    alltoall,
    barrier,
    bcast,
    reduce,
)
from .envelope import ANY_SOURCE, ANY_TAG, Envelope, matches
from .queues import PostedQueue, UnexpectedMsg, UnexpectedQueue
from .request import Protocol, ReqKind, ReqState, Request, RequestError
from .rma import RmaWindow, allocate_windows
from .runtime import MpiRuntime, MpiThread, RuntimeStats
from .vci import CS_POLICY_KINDS, CsGranularity, CsPolicy, parse_cs_policy
from .world import Cluster, ClusterConfig

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Envelope",
    "matches",
    "Request",
    "RequestError",
    "ReqKind",
    "ReqState",
    "Protocol",
    "PostedQueue",
    "UnexpectedQueue",
    "UnexpectedMsg",
    "MpiRuntime",
    "MpiThread",
    "RuntimeStats",
    "Communicator",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "alltoall",
    "RmaWindow",
    "allocate_windows",
    "Cluster",
    "ClusterConfig",
    "CsGranularity",
    "CsPolicy",
    "CS_POLICY_KINDS",
    "parse_cs_policy",
]
