"""Message envelopes and matching semantics.

An envelope is the (source, tag, communicator) triple MPI matches on.
Posted receives may use the ``ANY_SOURCE`` / ``ANY_TAG`` wildcards; the
paper's multithreaded throughput benchmark relies on wildcard-equivalent
matching ("we do not tag messages so that threads can match any message
from the same process and communicator", 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ANY_SOURCE", "ANY_TAG", "Envelope", "matches"]

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(frozen=True)
class Envelope:
    """(source, tag, comm).  For incoming messages all fields are concrete;
    posted receives may hold wildcards in ``source``/``tag``."""

    source: int
    tag: int
    comm: int = 0

    def is_concrete(self) -> bool:
        return self.source != ANY_SOURCE and self.tag != ANY_TAG


def matches(pattern: Envelope, incoming: Envelope) -> bool:
    """Does a posted-receive ``pattern`` match a concrete ``incoming``?"""
    if not incoming.is_concrete():
        raise ValueError(f"incoming envelope must be concrete: {incoming}")
    if pattern.comm != incoming.comm:
        return False
    if pattern.source != ANY_SOURCE and pattern.source != incoming.source:
        return False
    if pattern.tag != ANY_TAG and pattern.tag != incoming.tag:
        return False
    return True
