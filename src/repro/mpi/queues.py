"""The posted and unexpected message queues (paper Fig. 3b).

* **Posted queue** -- receive requests waiting for a matching message.
  Incoming messages search it front-to-back (MPI ordering).
* **Unexpected queue** -- incoming messages that found no posted receive.
  ``MPI_Irecv`` searches it before posting.

Both searches are linear; the runtime charges scan cost per element
examined (paper 7 notes runtime overheads grow with queued requests).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional, Tuple

from .envelope import Envelope, matches
from .request import Request

__all__ = ["PostedQueue", "UnexpectedMsg", "UnexpectedQueue"]


class PostedQueue:
    """FIFO of posted receive requests."""

    def __init__(self):
        self._q: Deque[Request] = deque()
        self.max_len = 0
        self.total_scanned = 0
        #: Declared protection domain: the name of the lock that must be
        #: held to touch this queue (set by :class:`ArbitrationDomain`;
        #: ``None`` = unannotated).  Consumed by the simsan lockset
        #: sanitizer, never by the model itself.
        self.guard: Optional[str] = None

    def __len__(self) -> int:
        return len(self._q)

    def post(self, req: Request) -> None:
        req.mark_posted()
        self._q.append(req)
        if len(self._q) > self.max_len:
            self.max_len = len(self._q)

    def match(self, incoming: Envelope) -> Tuple[Optional[Request], int]:
        """First posted receive matching ``incoming``; returns
        ``(request_or_None, elements_scanned)``.

        Entries already *claimed* by a match in another arbitration
        domain (wildcard receives are posted to every domain; the first
        match wins) are skipped -- they are dead weight awaiting lazy
        removal by :meth:`discard`.
        """
        for i, req in enumerate(self._q):
            if req.claimed:
                continue
            if matches(req.envelope, incoming):
                del self._q[i]
                self.total_scanned += i + 1
                return req, i + 1
        self.total_scanned += len(self._q)
        return None, len(self._q)

    def discard(self, req: Request) -> bool:
        """Remove a stale posting (claimed or freed elsewhere); returns
        True if the request was present."""
        try:
            self._q.remove(req)
            return True
        except ValueError:
            return False


@dataclass
class UnexpectedMsg:
    """An arrived message with no matching posted receive."""

    envelope: Envelope
    nbytes: int
    src_rank: int
    rndv: bool = False
    #: For rendezvous entries: the sender's request id to CTS back to.
    sender_req_id: Optional[int] = None
    #: For rendezvous entries: the sender-side arbitration-domain index
    #: the CTS must be stamped with.
    sender_vci: int = 0
    data: Any = None
    arrival_time: float = 0.0


class UnexpectedQueue:
    """FIFO of unexpected messages."""

    def __init__(self):
        self._q: Deque[UnexpectedMsg] = deque()
        self.max_len = 0
        self.total_enqueued = 0
        self.total_scanned = 0
        #: Declared protection domain (see :attr:`PostedQueue.guard`).
        self.guard: Optional[str] = None

    def __len__(self) -> int:
        return len(self._q)

    def add(self, msg: UnexpectedMsg) -> None:
        self._q.append(msg)
        self.total_enqueued += 1
        if len(self._q) > self.max_len:
            self.max_len = len(self._q)

    def match(self, pattern: Envelope) -> Tuple[Optional[UnexpectedMsg], int]:
        """First unexpected message matching the receive ``pattern``."""
        for i, msg in enumerate(self._q):
            if matches(pattern, msg.envelope):
                del self._q[i]
                self.total_scanned += i + 1
                return msg, i + 1
        self.total_scanned += len(self._q)
        return None, len(self._q)
