"""Virtual communication interfaces: mapping operations to domains.

The paper's remedies (ticket lock, priority lock) all arbitrate a
*single* global critical section.  Follow-on work (Zambre et al., "How I
Learned to Stop Worrying About User-Visible Endpoints and Love MPI" /
"Lessons Learned on MPI+Threads Communication") shows the bigger win is
*sharding* it: split the runtime into per-VCI domains -- each with its
own lock, matching queues, and NIC slice -- so threads on disjoint
communication paths never contend at all.

A :class:`CsPolicy` decides, from an operation's ``(peer, tag, comm)``
triple, which :class:`~repro.locks.domain.ArbitrationDomain` serves it.
Both sides of a transfer compute the route independently: the sender
routes its bookkeeping by ``(dest, tag, comm)`` and stamps the packet
with the *receiver-side* route of the message envelope, so matching
state for one message always lives in exactly one domain on each rank.

Wildcard receives (``MPI_ANY_SOURCE`` / ``MPI_ANY_TAG``) cannot be
routed when the policy hashes the wildcarded field; they *span* every
domain (posted to all, first match claims -- see
:meth:`repro.mpi.runtime.MpiRuntime.irecv`).

This module is also the single source of truth for the critical-section
**granularity** names (``global`` / ``brief``), previously validated by
ad-hoc string checks duplicated across ``mpi/world.py`` and
``mpi/runtime.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Union

from .envelope import ANY_SOURCE, ANY_TAG, Envelope

__all__ = [
    "CsGranularity",
    "CS_POLICY_KINDS",
    "CsPolicy",
    "parse_cs_policy",
]


class CsGranularity(str, enum.Enum):
    """Critical-section granularity (paper Fig. 1 / 7).

    ``GLOBAL`` holds the CS across payload copies; ``BRIEF`` releases it
    around them, shortening holds at the cost of extra lock transitions.
    Orthogonal to both the arbitration method and the domain mapping
    policy, as the paper argues.
    """

    GLOBAL = "global"
    BRIEF = "brief"

    @classmethod
    def parse(cls, value: "str | CsGranularity") -> "CsGranularity":
        """Validate a granularity name; the error lists the valid names."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            valid = ", ".join(sorted(g.value for g in cls))
            raise ValueError(
                f"unknown cs_granularity {value!r}; valid granularities: {valid}"
            ) from None


#: Mapping-policy kinds accepted by :func:`parse_cs_policy`, with the
#: per-kind default domain count (``None`` = derived from the cluster:
#: per-peer defaults to the number of ranks).
CS_POLICY_KINDS: Dict[str, Optional[int]] = {
    "global": 1,
    "per-peer": None,
    "per-tag": 4,
    "per-vci": 4,
}


@dataclass(frozen=True, slots=True)
class CsPolicy:
    """A resolved domain-mapping policy.

    Parameters
    ----------
    kind:
        One of ``CS_POLICY_KINDS``.
    n_domains:
        Number of arbitration domains per rank (>= 1).
    lock:
        Optional lock-class name (see ``repro.locks.LOCK_CLASSES``) for
        the domain locks; ``None`` inherits the cluster's lock.
    """

    kind: str = "global"
    n_domains: int = 1
    lock: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in CS_POLICY_KINDS:
            raise ValueError(
                f"unknown cs policy {self.kind!r}; valid policies: "
                f"{', '.join(sorted(CS_POLICY_KINDS))}"
            )
        if self.n_domains < 1:
            raise ValueError(f"need at least one domain, got {self.n_domains}")
        if self.kind == "global" and self.n_domains != 1:
            raise ValueError("the global policy has exactly one domain")

    # ------------------------------------------------------------------
    @property
    def hashes_source(self) -> bool:
        """Routing depends on the peer/source rank."""
        return self.kind in ("per-peer", "per-vci")

    @property
    def hashes_tag(self) -> bool:
        """Routing depends on the tag."""
        return self.kind in ("per-tag", "per-vci")

    def route(self, peer: int, tag: int, comm: int = 0) -> int:
        """Domain index for a concrete ``(peer, tag, comm)`` triple.

        Deterministic arithmetic hashing (no ``hash()``: string hash
        randomization must never leak into simulated behaviour).
        """
        n = self.n_domains
        if n == 1:
            return 0
        if self.kind == "per-peer":
            return peer % n
        if self.kind == "per-tag":
            return (tag + comm * 31) % n
        # per-vci: fold the full triple.
        return (peer * 31 + tag + comm * 131) % n

    def route_recv(self, env: Envelope) -> Optional[int]:
        """Domain index for a receive *pattern*, or ``None`` when a
        wildcard in a hashed field makes the route ambiguous (the
        receive must then span every domain)."""
        if self.hashes_source and env.source == ANY_SOURCE:
            return None
        if self.hashes_tag and env.tag == ANY_TAG:
            return None
        return self.route(env.source, env.tag, env.comm)

    def route_msg(self, env: Envelope) -> int:
        """Receiver-side domain for a concrete message envelope -- what
        the *sender* stamps into ``Packet.vci``."""
        return self.route(env.source, env.tag, env.comm)

    def spec(self) -> str:
        """The canonical string spec (inverse of :func:`parse_cs_policy`)."""
        s = self.kind if self.kind == "global" else f"{self.kind}:{self.n_domains}"
        return s if self.lock is None else f"{s}:{self.lock}"

    def __str__(self) -> str:
        return self.spec()


GLOBAL_POLICY = CsPolicy()


def parse_cs_policy(
    spec: Union[str, CsPolicy], n_ranks: Optional[int] = None
) -> CsPolicy:
    """Parse a policy spec string like ``"global"``, ``"per-peer"``,
    ``"per-tag:8"``, ``"per-vci:4"`` or ``"per-vci:4:ticket"``.

    The optional trailing component selects the lock class used for the
    domain locks.  ``n_ranks`` resolves the per-peer default domain
    count; unknown kinds raise ``ValueError`` listing the valid names.
    """
    if isinstance(spec, CsPolicy):
        return spec
    parts = str(spec).split(":")
    kind = parts[0]
    if kind not in CS_POLICY_KINDS:
        raise ValueError(
            f"unknown cs policy {spec!r}; valid policies: "
            f"{', '.join(sorted(CS_POLICY_KINDS))} "
            f"(e.g. 'per-vci:4' or 'per-vci:4:ticket')"
        )
    n_domains = CS_POLICY_KINDS[kind]
    lock: Optional[str] = None
    if len(parts) > 1 and parts[1]:
        try:
            n_domains = int(parts[1])
        except ValueError:
            raise ValueError(
                f"bad domain count {parts[1]!r} in cs policy {spec!r}"
            ) from None
    if len(parts) > 2 and parts[2]:
        lock = parts[2]
    if len(parts) > 3:
        raise ValueError(f"malformed cs policy spec {spec!r}")
    if n_domains is None:
        n_domains = n_ranks if n_ranks is not None else 4
    if kind == "global":
        n_domains = 1
    return CsPolicy(kind=kind, n_domains=n_domains, lock=lock)
