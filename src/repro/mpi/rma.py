"""One-sided communication (RMA) windows, ARMCI-style (paper 6.1.2).

This emulates ARMCI-MPI on MPICH *without* hardware RMA: one-sided
operations are active messages served by the **target's progress engine**.
That is why the paper enables MPICH's asynchronous progress (a forked
progress thread) for this benchmark -- and why the benchmark collapses
under the mutex: the progress thread lives in the progress loop, does no
useful work most of the time, and still monopolizes the critical section
(paper: "enforcing fairness produces a tremendous speedup", up to 5x).

Operations are *synchronous* at the origin (ARMCI blocking semantics):
``put``/``accumulate`` wait for the target's ack, ``get`` waits for the
data reply.
"""

from __future__ import annotations

from typing import Dict

from ..locks.base import Priority
from ..network.message import Packet, PacketKind
from .envelope import Envelope
from .request import ReqKind, Request
from .runtime import MpiRuntime, MpiThread

__all__ = ["RmaPayload", "RmaWindow", "allocate_windows"]


class RmaPayload:
    """Payload for all RMA packet kinds."""

    __slots__ = ("win_id", "origin_rank", "origin_req_id", "nbytes", "origin_vci")

    def __init__(self, win_id: int, origin_rank: int, origin_req_id: int,
                 nbytes: int, origin_vci: int = 0):
        self.win_id = win_id
        self.origin_rank = origin_rank
        self.origin_req_id = origin_req_id
        self.nbytes = nbytes
        #: The origin's arbitration-domain index: acks and get replies
        #: must route back to the domain tracking ``origin_req_id``.
        self.origin_vci = origin_vci


class RmaWindow:
    """One rank's view of a window (same ``win_id`` on every rank)."""

    def __init__(self, runtime: MpiRuntime, win_id: int):
        self.runtime = runtime
        self.win_id = win_id
        if win_id in runtime.windows:
            raise ValueError(f"window {win_id} already exists on rank {runtime.rank}")
        runtime.windows[win_id] = self
        # Target-side op counters.
        self.puts_served = 0
        self.gets_served = 0
        self.accs_served = 0

    # ------------------------------------------------------------------
    # Origin-side operations
    # ------------------------------------------------------------------
    def put(self, th: MpiThread, target: int, nbytes: int):
        """Blocking contiguous put: returns after remote completion."""
        yield from self._origin_op(th, target, nbytes, PacketKind.RMA_PUT)

    def get(self, th: MpiThread, target: int, nbytes: int):
        """Blocking contiguous get: returns once the data has landed."""
        yield from self._origin_op(th, target, nbytes, PacketKind.RMA_GET)

    def accumulate(self, th: MpiThread, target: int, nbytes: int):
        """Blocking accumulate (element-wise reduction at the target)."""
        yield from self._origin_op(th, target, nbytes, PacketKind.RMA_ACC)

    def _origin_op(self, th: MpiThread, target: int, nbytes: int, kind: PacketKind):
        rt = self.runtime
        ctx = th.ctx
        if target == rt.rank:
            raise ValueError("self-targeted RMA not modeled")
        # Window traffic routes like pt2pt with the window's synthetic
        # communicator id; both sides hash the *origin* rank so the
        # origin's bookkeeping and the target's service for one pairing
        # land in one domain on each rank.
        comm_id = -(self.win_id + 1)
        dom = rt.domains[rt.policy.route(target, 0, comm_id)]
        yield rt.sim.timeout(rt.costs.request_alloc * (0.5 + rt._rng.random()))
        yield from rt._cs_acquire(dom, ctx, Priority.HIGH)
        yield rt._cs_time(dom, rt.costs.cs_main)
        req = Request(
            ReqKind.RMA, rt.rank, ctx.tid,
            Envelope(source=rt.rank, tag=0, comm=comm_id),
            nbytes, rt.sim.now, peer=target,
        )
        req.vci = dom.index
        req.vcis = (dom.index,)
        rt.requests[req.req_id] = req
        req.mark_pending()
        payload = RmaPayload(self.win_id, rt.rank, req.req_id, nbytes,
                             origin_vci=dom.index)
        if kind in (PacketKind.RMA_PUT, PacketKind.RMA_ACC):
            # Origin copies the data out (pack + inject).
            yield rt._cs_time(dom, rt.costs.copy_time(nbytes))
            wire = nbytes
        else:
            wire = 0
        rt.fabric.send(Packet(kind, rt.rank, target, wire, payload,
                              vci=rt.policy.route(rt.rank, 0, comm_id)))
        yield from rt._cs_release(dom, ctx)
        # Wait for remote completion in the progress loop.
        yield from rt.waitall(ctx, (req,))

    # ------------------------------------------------------------------
    # Target/origin-side packet handling (called by the progress engine,
    # holding the CS)
    # ------------------------------------------------------------------
    def handle_packet(self, dom, ctx, pkt: Packet):
        rt = self.runtime
        payload: RmaPayload = pkt.payload
        kind = pkt.kind
        if kind is PacketKind.RMA_PUT:
            self.puts_served += 1
            yield rt._cs_time(dom, rt.costs.copy_time(payload.nbytes))
            self._ack(payload)
        elif kind is PacketKind.RMA_ACC:
            self.accs_served += 1
            yield rt._cs_time(
                dom,
                rt.costs.copy_time(payload.nbytes)
                + payload.nbytes * rt.costs.rma_acc_ns_per_byte * 1e-9,
            )
            self._ack(payload)
        elif kind is PacketKind.RMA_GET:
            self.gets_served += 1
            yield rt._cs_time(dom, rt.costs.copy_time(payload.nbytes))
            rt.fabric.send(
                Packet(
                    PacketKind.RMA_GET_REPLY, rt.rank, payload.origin_rank,
                    payload.nbytes, payload, vci=payload.origin_vci,
                )
            )
        elif kind is PacketKind.RMA_GET_REPLY:
            # Back at the origin: land the data, complete the op.
            yield rt._cs_time(dom, rt.costs.copy_time(payload.nbytes))
            rt._complete(rt.requests[payload.origin_req_id])
        elif kind is PacketKind.RMA_ACK:
            rt._complete(rt.requests[payload.origin_req_id])
        else:  # pragma: no cover - dispatch guarantees
            raise RuntimeError(f"bad RMA packet {pkt!r}")

    def _ack(self, payload: RmaPayload) -> None:
        self.runtime.fabric.send(
            Packet(
                PacketKind.RMA_ACK, self.runtime.rank, payload.origin_rank,
                0, payload, vci=payload.origin_vci,
            )
        )


def allocate_windows(runtimes, win_id: int = 0) -> Dict[int, RmaWindow]:
    """Create the window on every runtime (collective allocation)."""
    return {rt.rank: RmaWindow(rt, win_id) for rt in runtimes}
