"""The per-rank MPI runtime: a miniature of MPICH's pt2pt path.

Every MPI call follows the structure of paper Fig. 6a:

* **main path** -- per-call bookkeeping under the *global critical
  section*: allocate a request, search/update the matching queues, hand
  data to the NIC.  Entered at HIGH lock priority.
* **progress loop** -- calls that must wait (``MPI_Wait*``) repeatedly
  poll the progress engine under the critical section, releasing and
  re-acquiring it between iterations (MPICH's ``CS_YIELD``).  Re-entered
  at LOW lock priority -- the hook the paper's priority lock exploits.

The progress engine drains the rank's NIC receive queue: eager messages
match the posted queue (or land in the unexpected queue), rendezvous
control messages advance the RTS/CTS handshake, and RMA packets are
delegated to the window handler (:mod:`repro.mpi.rma`).

Any thread can complete any request inside the progress engine, but only
the owner frees it in its own ``MPI_Wait``/``MPI_Test`` -- which is what
makes the *dangling request* count (completed, not freed) a faithful
starvation metric (paper 4.4).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from ..locks.base import Priority, SimLock
from ..machine.costs import CostModel
from ..machine.threads import ThreadCtx
from ..network.fabric import Fabric, RankNic
from ..network.message import Packet, PacketKind
from ..sim.sync import Signal
from .envelope import ANY_SOURCE, ANY_TAG, Envelope
from .queues import PostedQueue, UnexpectedMsg, UnexpectedQueue
from .request import Protocol, ReqKind, Request

__all__ = ["MpiRuntime", "MpiThread", "RuntimeStats"]


class _EagerInfo:
    __slots__ = ("envelope", "nbytes", "req_id", "data")

    def __init__(self, envelope, nbytes, req_id, data):
        self.envelope = envelope
        self.nbytes = nbytes
        self.req_id = req_id
        self.data = data


class _RndvInfo:
    __slots__ = ("envelope", "nbytes", "req_id")

    def __init__(self, envelope, nbytes, req_id):
        self.envelope = envelope
        self.nbytes = nbytes
        self.req_id = req_id


class RuntimeStats:
    """Counters exposed for the analysis modules."""

    __slots__ = (
        "sends_issued", "recvs_issued", "completed", "freed",
        "posted_hits", "unexpected_hits", "progress_polls",
        "empty_polls", "packets_handled", "cs_entries_main",
        "cs_entries_progress",
    )

    def __init__(self):
        for f in self.__slots__:
            setattr(self, f, 0)

    def as_dict(self) -> dict:
        return {f: getattr(self, f) for f in self.__slots__}


class MpiRuntime:
    """One MPI process (rank) and its global critical section."""

    def __init__(
        self,
        sim,
        rank: int,
        fabric: Fabric,
        nic: RankNic,
        lock: SimLock,
        costs: CostModel,
        eager_threshold: int = 16384,
        inline_threshold: int = 128,
        event_driven_wait: bool = False,
        cs_granularity: str = "global",
    ):
        self.sim = sim
        self.rank = rank
        self.fabric = fabric
        self.nic = nic
        self.lock = lock
        self.costs = costs
        self.eager_threshold = int(eager_threshold)
        self.inline_threshold = int(inline_threshold)
        if cs_granularity not in ("global", "brief"):
            raise ValueError(
                f"cs_granularity must be 'global' or 'brief', got {cs_granularity!r}"
            )
        #: Critical-section granularity (paper Fig. 1 / 7): "global"
        #: holds the CS across payload copies; "brief" releases it around
        #: them, shortening holds at the cost of extra lock transitions.
        #: Orthogonal to the arbitration method, as the paper argues.
        self.cs_granularity = cs_granularity

        self.posted_q = PostedQueue()
        self.unexp_q = UnexpectedQueue()
        #: Live requests by id (freed requests are dropped).
        self.requests: Dict[int, Request] = {}
        #: Sends awaiting CTS: req_id -> (request, data payload).
        self._pending_sends: Dict[int, Tuple[Request, Any]] = {}
        #: Completed-but-not-freed count (the paper's dangling metric).
        self.dangling_count = 0
        self.stats = RuntimeStats()
        self._rng = sim.rng.stream(f"runtime:{rank}")
        #: Paper 9 future work: park blocked waiters on an
        #: arrival/completion signal instead of spinning in the progress
        #: loop.  Simplified vs true *selective* wake-up: any activity
        #: wakes every parked waiter of this rank.
        self.event_driven_wait = bool(event_driven_wait)
        self._activity = Signal(sim, name=f"activity@{rank}")
        if self.event_driven_wait:
            nic.on_packet = lambda pkt: self._activity.fire()
        #: Collective sequence numbers, per communicator id.
        self.coll_seq: Dict[int, int] = {}
        #: RMA windows by id (populated by repro.mpi.rma).
        self.windows: Dict[int, object] = {}
        #: Name of the currently-open critical-section span ("cs.main"
        #: or "cs.progress").  Safe as a single slot: the CS is mutually
        #: exclusive, so at most one holder span is open per runtime.
        self._cs_span: Optional[str] = None

    # ==================================================================
    # Critical section
    # ==================================================================
    def _cs_acquire(self, ctx: ThreadCtx, priority: Priority):
        if priority == Priority.HIGH:
            self.stats.cs_entries_main += 1
        else:
            self.stats.cs_entries_progress += 1
        yield from self.lock.acquire(ctx, priority=priority)
        obs = self.sim.obs
        if obs is not None and obs.wants("mpi"):
            # Occupancy span, named by entry path (paper Fig. 6a): the
            # main path enters HIGH, the progress loop re-enters LOW.
            name = "cs.main" if priority == Priority.HIGH else "cs.progress"
            self._cs_span = name
            obs.span_begin("mpi", name, rank=self.rank, tid=ctx.tid)

    def _cs_release(self, ctx: ThreadCtx):
        """Generator: releases the CS and charges the releaser-side cost
        (a contended mutex unlock pays the FUTEX_WAKE syscall)."""
        obs = self.sim.obs
        if obs is not None and self._cs_span is not None:
            obs.span_end("mpi", self._cs_span, rank=self.rank, tid=ctx.tid)
            self._cs_span = None
        cost = self.lock.release(ctx)
        if cost > 0.0:
            yield self.sim.timeout(cost)

    def _cs_time(self, seconds: float):
        """A timeout for in-CS work, inflated by contention: waiting
        threads' retries/spinning bounce the runtime's shared cache
        lines and slow the critical path (David et al., SOSP'13)."""
        return self.sim.timeout(seconds * self.lock.contention_factor())

    def _charge_copy(self, ctx: ThreadCtx, seconds: float, priority: Priority):
        """Charge a payload copy.  Under "global" granularity the copy
        happens while holding the CS; under "brief" the CS is released
        around it (the copy touches only private buffers), paying two
        extra lock transitions instead of a long hold."""
        if seconds <= 0.0:
            return
        if (
            self.cs_granularity == "brief"
            and seconds * 1e9 >= self.costs.brief_copy_min_ns
        ):
            yield from self._cs_release(ctx)
            yield self.sim.timeout(seconds)
            yield from self._cs_acquire(ctx, priority)
        else:
            yield self._cs_time(seconds)

    # ==================================================================
    # Completion plumbing
    # ==================================================================
    def _complete(self, req: Request) -> None:
        req.mark_complete(self.sim.now)
        self.dangling_count += 1
        self.stats.completed += 1
        obs = self.sim.obs
        if obs is not None and obs.wants("mpi"):
            obs.counter("mpi", "dangling", self.dangling_count, rank=self.rank)
        if self.event_driven_wait:
            self._activity.fire()

    def _free(self, req: Request) -> None:
        req.mark_freed(self.sim.now)
        self.dangling_count -= 1
        self.stats.freed += 1
        self.requests.pop(req.req_id, None)
        obs = self.sim.obs
        if obs is not None and obs.wants("mpi"):
            obs.counter("mpi", "dangling", self.dangling_count, rank=self.rank)

    def _emit_queue_depths(self) -> None:
        """Sample matching-queue depths (call after any queue mutation)."""
        obs = self.sim.obs
        if obs is not None and obs.wants("mpi"):
            obs.counter("mpi", "posted_q", len(self.posted_q), rank=self.rank)
            obs.counter("mpi", "unexp_q", len(self.unexp_q), rank=self.rank)

    # ==================================================================
    # Main-path operations (generators; called via MpiThread)
    # ==================================================================
    def isend(
        self,
        ctx: ThreadCtx,
        dest: int,
        nbytes: int,
        tag: int = 0,
        comm: int = 0,
        data: Any = None,
    ):
        """Nonblocking send.  Returns the Request."""
        env = Envelope(source=self.rank, tag=tag, comm=comm)
        yield self.sim.timeout(self.costs.request_alloc * (0.5 + self._rng.random()))
        yield from self._cs_acquire(ctx, Priority.HIGH)
        yield self._cs_time(self.costs.cs_main)
        if nbytes <= self.eager_threshold:
            protocol = (
                Protocol.INLINE if nbytes <= self.inline_threshold else Protocol.EAGER
            )
        else:
            protocol = Protocol.RNDV
        req = Request(
            ReqKind.SEND, self.rank, ctx.tid, env, nbytes, self.sim.now,
            protocol=protocol, peer=dest,
        )
        self.requests[req.req_id] = req
        self.stats.sends_issued += 1

        if protocol is Protocol.RNDV:
            req.mark_pending()
            self._pending_sends[req.req_id] = (req, data)
            pkt = Packet(
                PacketKind.RTS, self.rank, dest, 0,
                payload=_RndvInfo(env, nbytes, req.req_id),
            )
            self.fabric.send(pkt)
        else:
            if protocol is Protocol.EAGER:
                # Copy into the NIC's eager buffer.
                yield from self._charge_copy(
                    ctx, self.costs.copy_time(nbytes), Priority.HIGH
                )
            req.mark_pending()
            pkt = Packet(
                PacketKind.EAGER, self.rank, dest, nbytes,
                payload=_EagerInfo(env, nbytes, req.req_id, data),
            )
            local_done = self.fabric.send(pkt)
            local_done.add_callback(lambda _ev, r=req: self._complete(r))
        yield from self._cs_release(ctx)
        return req

    def irecv(
        self,
        ctx: ThreadCtx,
        source: int = ANY_SOURCE,
        nbytes: int = 0,
        tag: int = ANY_TAG,
        comm: int = 0,
    ):
        """Nonblocking receive.  ``nbytes`` is the buffer size (modeling
        only; the matched message's size is used for copy costs)."""
        env = Envelope(source=source, tag=tag, comm=comm)
        yield self.sim.timeout(self.costs.request_alloc * (0.5 + self._rng.random()))
        yield from self._cs_acquire(ctx, Priority.HIGH)
        yield self._cs_time(self.costs.cs_main)
        req = Request(
            ReqKind.RECV, self.rank, ctx.tid, env, nbytes, self.sim.now,
            peer=source,
        )
        self.requests[req.req_id] = req
        self.stats.recvs_issued += 1

        msg, scanned = self.unexp_q.match(env)
        yield self._cs_time(self.costs.queue_scan * scanned)
        if msg is None:
            self.posted_q.post(req)
        elif msg.rndv:
            # Rendezvous sender is waiting for clearance.
            req.unexpected = True
            req.mark_pending()
            self._send_cts(msg.src_rank, msg.sender_req_id, req.req_id)
        else:
            # Eager payload parked in the unexpected buffer: extra copy.
            req.unexpected = True
            yield from self._charge_copy(
                ctx, self.costs.copy_time(msg.nbytes, unexpected=True),
                Priority.HIGH,
            )
            req.data = msg.data
            self._complete(req)
        self._emit_queue_depths()
        yield from self._cs_release(ctx)
        return req

    def test(self, ctx: ThreadCtx, req: Request):
        """MPI_Test: one progress poke; frees the request on success.
        Returns True when the request completed."""
        yield from self._cs_acquire(ctx, Priority.HIGH)
        yield self._cs_time(self.costs.cs_main)
        if not req.complete:
            yield from self._progress_poll(ctx)
        done = req.complete
        if done and not req.freed:
            self._free(req)
        yield from self._cs_release(ctx)
        return done

    def wait(self, ctx: ThreadCtx, req: Request):
        """MPI_Wait: block (polling the progress engine) until complete."""
        return (yield from self.waitall(ctx, (req,)))

    def waitall(self, ctx: ThreadCtx, reqs: Iterable[Request]):
        """MPI_Waitall over ``reqs``; frees them all."""
        reqs = tuple(reqs)
        yield from self._cs_acquire(ctx, Priority.HIGH)
        yield self._cs_time(self.costs.cs_main)
        while not all(r.complete for r in reqs):
            yield from self._progress_poll(ctx)
            if all(r.complete for r in reqs):
                break
            # CS_YIELD: let other threads at the runtime, come back at
            # progress-loop (LOW) priority.  The gap is jittered: real
            # yields have scheduling noise, and a deterministic gap
            # produces artificial lockstep alternation between threads.
            yield from self._cs_release(ctx)
            if self.event_driven_wait and not self.nic.recv_q:
                # Nothing to progress: park until a packet arrives or a
                # request completes (no sim time passes between this
                # check and the wait, so no wake-up can be missed).
                yield self._activity.wait()
                yield self.sim.timeout(self.costs.event_wakeup)
            else:
                gap = self.costs.progress_gap * (0.5 + self._rng.random())
                yield self.sim.timeout(gap)
            yield from self._cs_acquire(ctx, Priority.LOW)
        for r in reqs:
            if not r.freed:
                self._free(r)
        yield from self._cs_release(ctx)
        return [r.data for r in reqs]

    def testall(self, ctx: ThreadCtx, reqs):
        """MPI_Testall: one progress poke; frees all and returns True only
        when every request has completed."""
        reqs = tuple(reqs)
        yield from self._cs_acquire(ctx, Priority.HIGH)
        yield self._cs_time(self.costs.cs_main)
        if not all(r.complete for r in reqs):
            yield from self._progress_poll(ctx)
        done = all(r.complete for r in reqs)
        if done:
            for r in reqs:
                if not r.freed:
                    self._free(r)
        yield from self._cs_release(ctx)
        return done

    def testany(self, ctx: ThreadCtx, reqs):
        """MPI_Testany: one progress poke; frees and returns the index of
        the first completed request, or None."""
        reqs = tuple(reqs)
        yield from self._cs_acquire(ctx, Priority.HIGH)
        yield self._cs_time(self.costs.cs_main)
        if not any(r.complete for r in reqs):
            yield from self._progress_poll(ctx)
        idx = next((i for i, r in enumerate(reqs) if r.complete), None)
        if idx is not None and not reqs[idx].freed:
            self._free(reqs[idx])
        yield from self._cs_release(ctx)
        return idx

    def waitany(self, ctx: ThreadCtx, reqs):
        """MPI_Waitany: block until one request completes; frees it and
        returns its index."""
        reqs = tuple(reqs)
        yield from self._cs_acquire(ctx, Priority.HIGH)
        yield self._cs_time(self.costs.cs_main)
        while not any(r.complete for r in reqs):
            yield from self._progress_poll(ctx)
            if any(r.complete for r in reqs):
                break
            yield from self._cs_release(ctx)
            if self.event_driven_wait and not self.nic.recv_q:
                yield self._activity.wait()
                yield self.sim.timeout(self.costs.event_wakeup)
            else:
                gap = self.costs.progress_gap * (0.5 + self._rng.random())
                yield self.sim.timeout(gap)
            yield from self._cs_acquire(ctx, Priority.LOW)
        idx = next(i for i, r in enumerate(reqs) if r.complete)
        if not reqs[idx].freed:
            self._free(reqs[idx])
        yield from self._cs_release(ctx)
        return idx

    def iprobe(self, ctx: ThreadCtx, source=ANY_SOURCE, tag=ANY_TAG, comm=0):
        """MPI_Iprobe: one progress poke, then a non-destructive check of
        the unexpected queue.  Returns the matched concrete
        ``(source, tag, nbytes)`` or None.

        As in real MPICH, probing only observes messages the progress
        engine has already moved to the unexpected queue; a message
        sitting in a matching *posted* receive is not probe-visible.
        """
        env = Envelope(source=source, tag=tag, comm=comm)
        yield from self._cs_acquire(ctx, Priority.HIGH)
        yield self._cs_time(self.costs.cs_main)
        yield from self._progress_poll(ctx)
        found = None
        scanned = 0
        from .envelope import matches as _matches
        for msg in self.unexp_q._q:
            scanned += 1
            if _matches(env, msg.envelope):
                found = (msg.envelope.source, msg.envelope.tag, msg.nbytes)
                break
        yield self._cs_time(self.costs.queue_scan * scanned)
        yield from self._cs_release(ctx)
        return found

    def probe(self, ctx: ThreadCtx, source=ANY_SOURCE, tag=ANY_TAG, comm=0):
        """MPI_Probe: block until a matching message is probe-visible."""
        while True:
            found = yield from self.iprobe(ctx, source=source, tag=tag, comm=comm)
            if found is not None:
                return found
            yield self.sim.timeout(
                self.costs.progress_gap * (0.5 + self._rng.random())
            )

    def sendrecv(self, ctx, dest, source, nbytes, tag=0, comm=0, data=None,
                 recv_nbytes=None, recv_tag=None):
        """MPI_Sendrecv: simultaneous blocking send + receive (the
        deadlock-free exchange primitive).  Returns the received data."""
        sreq = yield from self.isend(ctx, dest, nbytes, tag=tag, comm=comm, data=data)
        rreq = yield from self.irecv(
            ctx, source=source,
            nbytes=nbytes if recv_nbytes is None else recv_nbytes,
            tag=tag if recv_tag is None else recv_tag, comm=comm,
        )
        yield from self.waitall(ctx, (sreq, rreq))
        return rreq.data

    def send(self, ctx, dest, nbytes, tag=0, comm=0, data=None):
        """Blocking send (isend + wait)."""
        req = yield from self.isend(ctx, dest, nbytes, tag=tag, comm=comm, data=data)
        yield from self.wait(ctx, req)

    def recv(self, ctx, source=ANY_SOURCE, nbytes=0, tag=ANY_TAG, comm=0):
        """Blocking receive; returns the payload data."""
        req = yield from self.irecv(ctx, source=source, nbytes=nbytes, tag=tag, comm=comm)
        out = yield from self.wait(ctx, req)
        return out[0]

    def progress_poke(self, ctx: ThreadCtx):
        """One LOW-priority progress poll (the async progress thread's
        whole life, paper 6.1.2)."""
        yield from self._cs_acquire(ctx, Priority.LOW)
        yield from self._progress_poll(ctx)
        yield from self._cs_release(ctx)

    # ==================================================================
    # Progress engine (must be called holding the CS)
    # ==================================================================
    def _progress_poll(self, ctx: ThreadCtx):
        """Drain the NIC receive queue; returns True if any packet was
        handled."""
        self.stats.progress_polls += 1
        q = self.nic.recv_q
        if not q:
            self.stats.empty_polls += 1
            obs = self.sim.obs
            if obs is not None and obs.wants("mpi"):
                # The paper's "wasted acquisition": a full CS round-trip
                # that progressed nothing.
                obs.instant("mpi", "poll.empty", rank=self.rank, tid=ctx.tid)
            yield self._cs_time(self.costs.cs_poll_empty)
            return False
        # Handle a bounded batch; the rest waits for the next poll (a
        # real progress engine processes a bounded completion batch per
        # call, it does not drain the wire in one critical section).
        # Re-check emptiness each iteration: under "brief" granularity a
        # handler may drop the CS mid-copy and another thread may drain
        # the queue meanwhile.
        for _ in range(self.costs.progress_batch):
            if not q:
                break
            pkt = q.popleft()
            yield from self._handle_packet(ctx, pkt)
        return True

    def _handle_packet(self, ctx: ThreadCtx, pkt: Packet):
        self.stats.packets_handled += 1
        obs = self.sim.obs
        if obs is not None and obs.wants("mpi"):
            obs.counter("mpi", "packets_handled", self.stats.packets_handled,
                        rank=self.rank)
        yield self._cs_time(self.costs.cs_poll_packet)
        kind = pkt.kind
        if kind is PacketKind.EAGER:
            info = pkt.payload
            req, scanned = self.posted_q.match(info.envelope)
            yield self._cs_time(self.costs.queue_scan * scanned)
            if req is not None:
                self.stats.posted_hits += 1
                yield from self._charge_copy(
                    ctx, self.costs.copy_time(info.nbytes), Priority.LOW
                )
                req.data = info.data
                self._complete(req)
            else:
                self.stats.unexpected_hits += 1
                self.unexp_q.add(
                    UnexpectedMsg(
                        info.envelope, info.nbytes, pkt.src_rank,
                        data=info.data, arrival_time=self.sim.now,
                    )
                )
        elif kind is PacketKind.RTS:
            info = pkt.payload
            req, scanned = self.posted_q.match(info.envelope)
            yield self._cs_time(self.costs.queue_scan * scanned)
            if req is not None:
                self.stats.posted_hits += 1
                req.mark_pending()
                self._send_cts(pkt.src_rank, info.req_id, req.req_id)
            else:
                self.stats.unexpected_hits += 1
                self.unexp_q.add(
                    UnexpectedMsg(
                        info.envelope, info.nbytes, pkt.src_rank,
                        rndv=True, sender_req_id=info.req_id,
                        arrival_time=self.sim.now,
                    )
                )
        elif kind is PacketKind.CTS:
            sender_req_id, recv_req_id = pkt.payload
            req, data = self._pending_sends.pop(sender_req_id)
            data_pkt = Packet(
                PacketKind.RNDV_DATA, self.rank, pkt.src_rank, req.nbytes,
                payload=(recv_req_id, data),
            )
            local_done = self.fabric.send(data_pkt)
            local_done.add_callback(lambda _ev, r=req: self._complete(r))
        elif kind is PacketKind.RNDV_DATA:
            recv_req_id, data = pkt.payload
            req = self.requests[recv_req_id]
            # Rendezvous lands zero-copy in the user buffer (RDMA write);
            # only the handling cost (already charged) applies.
            req.data = data
            self._complete(req)
        elif kind.name.startswith("RMA"):
            handler = self.windows.get(getattr(pkt.payload, "win_id", None))
            if handler is None:
                raise RuntimeError(f"no window registered for {pkt!r}")
            yield from handler.handle_packet(ctx, pkt)
        else:
            raise RuntimeError(f"unhandled packet kind {kind}")
        if kind is PacketKind.EAGER or kind is PacketKind.RTS:
            self._emit_queue_depths()

    def _send_cts(self, dest: int, sender_req_id: int, recv_req_id: int) -> None:
        pkt = Packet(
            PacketKind.CTS, self.rank, dest, 0,
            payload=(sender_req_id, recv_req_id),
        )
        self.fabric.send(pkt)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<MpiRuntime rank={self.rank} lock={type(self.lock).__name__} "
            f"posted={len(self.posted_q)} unexp={len(self.unexp_q)} "
            f"dangling={self.dangling_count}>"
        )


class MpiThread:
    """A thread's view of its rank's runtime: binds a ThreadCtx and
    forwards MPI calls (all generators, used with ``yield from``)."""

    def __init__(self, runtime: MpiRuntime, ctx: ThreadCtx):
        self.runtime = runtime
        self.ctx = ctx

    @property
    def rank(self) -> int:
        return self.runtime.rank

    @property
    def sim(self):
        return self.runtime.sim

    def isend(self, dest, nbytes, tag=0, comm=0, data=None):
        return self.runtime.isend(self.ctx, dest, nbytes, tag=tag, comm=comm, data=data)

    def irecv(self, source=ANY_SOURCE, nbytes=0, tag=ANY_TAG, comm=0):
        return self.runtime.irecv(self.ctx, source=source, nbytes=nbytes, tag=tag, comm=comm)

    def send(self, dest, nbytes, tag=0, comm=0, data=None):
        return self.runtime.send(self.ctx, dest, nbytes, tag=tag, comm=comm, data=data)

    def recv(self, source=ANY_SOURCE, nbytes=0, tag=ANY_TAG, comm=0):
        return self.runtime.recv(self.ctx, source=source, nbytes=nbytes, tag=tag, comm=comm)

    def wait(self, req):
        return self.runtime.wait(self.ctx, req)

    def waitall(self, reqs):
        return self.runtime.waitall(self.ctx, reqs)

    def test(self, req):
        return self.runtime.test(self.ctx, req)

    def testall(self, reqs):
        return self.runtime.testall(self.ctx, reqs)

    def testany(self, reqs):
        return self.runtime.testany(self.ctx, reqs)

    def waitany(self, reqs):
        return self.runtime.waitany(self.ctx, reqs)

    def iprobe(self, source=ANY_SOURCE, tag=ANY_TAG, comm=0):
        return self.runtime.iprobe(self.ctx, source=source, tag=tag, comm=comm)

    def probe(self, source=ANY_SOURCE, tag=ANY_TAG, comm=0):
        return self.runtime.probe(self.ctx, source=source, tag=tag, comm=comm)

    def sendrecv(self, dest, source, nbytes, tag=0, comm=0, data=None,
                 recv_nbytes=None, recv_tag=None):
        return self.runtime.sendrecv(
            self.ctx, dest, source, nbytes, tag=tag, comm=comm, data=data,
            recv_nbytes=recv_nbytes, recv_tag=recv_tag,
        )

    def progress_poke(self):
        return self.runtime.progress_poke(self.ctx)

    def compute(self, seconds: float):
        """Model local computation for ``seconds`` (outside the runtime)."""
        return self.sim.timeout(seconds)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MpiThread rank={self.rank} {self.ctx.name}>"
