"""The per-rank MPI runtime: a miniature of MPICH's pt2pt path.

Every MPI call follows the structure of paper Fig. 6a:

* **main path** -- per-call bookkeeping under a *critical section*:
  allocate a request, search/update the matching queues, hand data to
  the NIC.  Entered at HIGH lock priority.
* **progress loop** -- calls that must wait (``MPI_Wait*``) repeatedly
  poll the progress engine under the critical section, releasing and
  re-acquiring it between iterations (MPICH's ``CS_YIELD``).  Re-entered
  at LOW lock priority -- the hook the paper's priority lock exploits.

The critical section is sharded into **arbitration domains**
(:class:`~repro.locks.domain.ArbitrationDomain`): each domain owns a
lock, the posted/unexpected matching queues it protects, and one per-VCI
NIC receive queue.  A :class:`~repro.mpi.vci.CsPolicy` routes every
operation to a domain; the default ``global`` policy keeps one domain
and reproduces the paper's single global critical section bit-for-bit
(pinned by ``tests/mpi/test_domain_regression.py``).  Blocking calls
poll only the domains their pending requests live in, rotating between
them across ``CS_YIELD`` gaps.

The progress engine drains a domain's NIC receive queue: eager messages
match the domain's posted queue (or land in its unexpected queue),
rendezvous control messages advance the RTS/CTS handshake, and RMA
packets are delegated to the window handler (:mod:`repro.mpi.rma`).

Any thread can complete any request inside the progress engine, but only
the owner frees it in its own ``MPI_Wait``/``MPI_Test`` -- which is what
makes the *dangling request* count (completed, not freed) a faithful
starvation metric (paper 4.4).  Dangling counts are kept per domain and
summed at the rank level.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..locks.base import Priority, SimLock
from ..locks.domain import ArbitrationDomain
from ..machine.costs import CostModel
from ..machine.threads import ThreadCtx
from ..network.fabric import Fabric, RankNic
from ..network.message import Packet, PacketKind
from ..sim.sync import CompletionLatch, Signal
from .envelope import ANY_SOURCE, ANY_TAG, Envelope
from .queues import UnexpectedMsg
from .request import Protocol, ReqKind, Request, RequestError
from .vci import GLOBAL_POLICY, CsGranularity, CsPolicy

__all__ = ["MpiRuntime", "MpiThread", "RuntimeStats"]


class _EagerInfo:
    __slots__ = ("envelope", "nbytes", "req_id", "data", "vci")

    def __init__(self, envelope, nbytes, req_id, data, vci=0):
        self.envelope = envelope
        self.nbytes = nbytes
        self.req_id = req_id
        self.data = data
        #: The *sender's* domain index: a reliability ACK must be routed
        #: to the domain the sender is polling.
        self.vci = vci


class _RndvInfo:
    __slots__ = ("envelope", "nbytes", "req_id", "vci")

    def __init__(self, envelope, nbytes, req_id, vci=0):
        self.envelope = envelope
        self.nbytes = nbytes
        self.req_id = req_id
        #: The *sender's* domain index: the CTS must come back to it.
        self.vci = vci


class RuntimeStats:
    """Rank-level counters exposed for the analysis modules.

    These aggregate over all arbitration domains; the per-domain
    breakdown lives in each domain's
    :class:`~repro.locks.domain.DomainStats`
    (``MpiRuntime.domain_stats()``).
    """

    __slots__ = (
        "sends_issued", "recvs_issued", "completed", "freed",
        "posted_hits", "unexpected_hits", "progress_polls",
        "empty_polls", "packets_handled", "cs_entries_main",
        "cs_entries_progress", "continuations_fired",
        "wasted_acquisitions_avoided", "cancelled", "stale_rndv_data",
    )

    def __init__(self):
        for f in self.__slots__:
            setattr(self, f, 0)

    def as_dict(self) -> dict:
        return {f: getattr(self, f) for f in self.__slots__}


class MpiRuntime:
    """One MPI process (rank) and its sharded critical section."""

    def __init__(
        self,
        sim,
        rank: int,
        fabric: Fabric,
        nic: RankNic,
        lock: SimLock,
        costs: CostModel,
        eager_threshold: int = 16384,
        inline_threshold: int = 128,
        event_driven_wait: bool = False,
        completion: str = "poll",
        cs_granularity: "str | CsGranularity" = "global",
        policy: Optional[CsPolicy] = None,
        domain_locks: Optional[Sequence[SimLock]] = None,
        reliability=None,
    ):
        self.sim = sim
        self.rank = rank
        self.fabric = fabric
        self.nic = nic
        self.costs = costs
        self.eager_threshold = int(eager_threshold)
        self.inline_threshold = int(inline_threshold)
        #: Critical-section granularity (paper Fig. 1 / 7): "global"
        #: holds the CS across payload copies; "brief" releases it around
        #: them, shortening holds at the cost of extra lock transitions.
        #: Orthogonal to the arbitration method, as the paper argues.
        self.cs_granularity = CsGranularity.parse(cs_granularity)
        #: Domain mapping policy; the default single global domain is
        #: the paper's model.
        self.policy = policy if policy is not None else GLOBAL_POLICY
        locks: List[SimLock] = (
            list(domain_locks) if domain_locks is not None else [lock]
        )
        if len(locks) != self.policy.n_domains:
            raise ValueError(
                f"policy {self.policy} needs {self.policy.n_domains} domain "
                f"lock(s), got {len(locks)}"
            )
        if nic.n_vcis < self.policy.n_domains:
            raise ValueError(
                f"NIC has {nic.n_vcis} VCI queue(s) but policy "
                f"{self.policy} needs {self.policy.n_domains}"
            )
        #: The arbitration domains, index-aligned with the NIC's VCIs.
        self.domains: List[ArbitrationDomain] = [
            ArbitrationDomain(i, lk, recv_q=nic.recv_qs[i])
            for i, lk in enumerate(locks)
        ]
        #: Live requests by id (freed requests are dropped).
        self.requests: Dict[int, Request] = {}
        #: Sends awaiting CTS: req_id -> (request, data payload).
        self._pending_sends: Dict[int, Tuple[Request, Any]] = {}
        #: Completed-but-not-freed count, summed over domains (the
        #: paper's dangling metric).
        self.dangling_count = 0
        #: High-water mark of ``dangling_count`` (starvation severity).
        self.peak_dangling = 0
        self.stats = RuntimeStats()
        self._rng = sim.rng.stream(f"runtime:{rank}")
        #: Paper 9 future work: park blocked waiters on an
        #: arrival/completion signal instead of spinning in the progress
        #: loop.  Simplified vs true *selective* wake-up: any activity
        #: wakes every parked waiter of this rank.
        self.event_driven_wait = bool(event_driven_wait)
        #: Blocking-call strategy: "poll" reproduces the paper's CS_YIELD
        #: loops bit-for-bit; "continuation" parks waiters on the
        #: completion/arrival signal and only enters the critical section
        #: when there is something to progress (the remedy the
        #: continuations figure measures).
        if completion not in ("poll", "continuation"):
            raise ValueError(
                f"completion must be 'poll' or 'continuation', got "
                f"{completion!r}"
            )
        self.completion = completion
        self._activity = Signal(sim, name=f"activity@{rank}")
        #: Both event-driven polling and continuation mode park waiters
        #: on the activity signal, so both need the NIC arrival hook and
        #: the completion-path fire.
        self._wake_waiters = self.event_driven_wait or completion == "continuation"
        if self._wake_waiters:
            nic.on_packet = lambda pkt: self._activity.fire()
        #: Collective sequence numbers, per communicator id.
        self.coll_seq: Dict[int, int] = {}
        #: RMA windows by id (populated by repro.mpi.rma).
        self.windows: Dict[int, object] = {}
        #: ACK/retransmit layer (:mod:`repro.faults.reliability`), or
        #: None -- the default, which leaves every hot-path branch on
        #: ``self._rel is None`` and the pre-reliability schedule intact.
        if reliability is not None:
            from ..faults.reliability import ReliabilityConfig, ReliabilityLayer
            cfg = (
                ReliabilityConfig() if reliability is True else reliability
            )
            self._rel = ReliabilityLayer(self, cfg)
        else:
            self._rel = None
        #: Graceful degradation: indices of failed domains and the
        #: re-routing map installed by :meth:`fail_domain`.
        self.failed_domains: set = set()
        self._vci_redirect: Dict[int, int] = {}
        #: Blocking calls currently parked on the activity signal (the
        #: continuation / event-driven wait modes).  A parked waiter has
        #: pending requests, so a simulator whose event queue has run
        #: dry while this is nonzero is *stuck*, not finished -- the
        #: progress watchdog reads this as part of its liveness input.
        self.parked_waiters = 0
        #: Degraded-mode hooks: callables invoked as ``hook(index)``
        #: whenever :meth:`fail_domain` declares a domain failed.  The
        #: overload-protection layer (:mod:`repro.robust`) registers its
        #: degraded-mode controllers here.
        self.degrade_hooks: List = []

    # ==================================================================
    # Single-domain compatibility views
    # ==================================================================
    @property
    def lock(self) -> SimLock:
        """Domain 0's lock: *the* lock for the global policy."""
        return self.domains[0].lock

    @property
    def posted_q(self):
        """Domain 0's posted queue (the whole rank under ``global``)."""
        return self.domains[0].posted_q

    @property
    def unexp_q(self):
        """Domain 0's unexpected queue (the whole rank under ``global``)."""
        return self.domains[0].unexp_q

    @property
    def n_domains(self) -> int:
        return len(self.domains)

    def domain_stats(self) -> List[dict]:
        """Per-domain counter snapshots, index-aligned with ``domains``."""
        return [d.stats.as_dict() for d in self.domains]

    @property
    def rel_stats(self):
        """Reliability counters, or None when the layer is disabled."""
        return None if self._rel is None else self._rel.stats

    # ==================================================================
    # Graceful degradation
    # ==================================================================
    def fail_domain(self, index: int, fallback: int = 0) -> None:
        """Fail arbitration domain ``index`` and re-route its traffic to
        ``fallback``: queued packets and posted/unexpected entries
        migrate immediately, future routing (and in-flight packets, via
        the NIC-level redirect) lands in the fallback domain.  The
        failed domain's lock is simply never taken again."""
        if index == fallback:
            raise ValueError("fallback must differ from the failed domain")
        n = len(self.domains)
        if not (0 <= index < n) or not (0 <= fallback < n):
            raise ValueError(f"domain index out of range (have {n} domains)")
        if fallback in self.failed_domains:
            raise ValueError(f"fallback domain {fallback} has itself failed")
        if index in self.failed_domains:
            return
        self.failed_domains.add(index)
        # Route-through for earlier failures that pointed at this domain,
        # then the new redirect itself.
        for k, v in list(self._vci_redirect.items()):
            if v == index:
                self._vci_redirect[k] = fallback
        self._vci_redirect[index] = fallback
        self.nic.vci_redirect.clear()
        self.nic.vci_redirect.update(self._vci_redirect)

        d = self.domains[index]
        fb = self.domains[fallback]
        moved_pkts = len(d.recv_q) if d.recv_q is not None else 0
        if d.recv_q is not None:
            while d.recv_q:
                fb.recv_q.append(d.recv_q.popleft())
        moved_posted = len(d.posted_q)
        fb.posted_q._q.extend(d.posted_q._q)
        d.posted_q._q.clear()
        moved_unexp = len(d.unexp_q)
        fb.unexp_q._q.extend(d.unexp_q._q)
        d.unexp_q._q.clear()
        # Transfer the dangling balance so note_free() on the fallback
        # does not go negative for migrated requests.
        fb.stats.dangling += d.stats.dangling
        if fb.stats.dangling > fb.stats.peak_dangling:
            fb.stats.peak_dangling = fb.stats.dangling
        d.stats.dangling = 0
        for req in self.requests.values():
            if req.vci == index:
                req.vci = fallback
            if index in req.vcis:
                req.vcis = tuple(dict.fromkeys(
                    fallback if i == index else i for i in req.vcis
                ))
        obs = self.sim.obs
        if obs is not None and obs.wants("fault"):
            obs.instant(
                "fault", "domain.failover", rank=self.rank,
                args={"failed": index, "fallback": fallback,
                      "moved_packets": moved_pkts,
                      "moved_posted": moved_posted,
                      "moved_unexpected": moved_unexp},
            )
        for hook in self.degrade_hooks:
            hook(index)

    # ==================================================================
    # Routing
    # ==================================================================
    def _route(self, index: int) -> int:
        """Map a policy-chosen domain index through the failover
        redirects (identity while no domain has failed)."""
        if self._vci_redirect:
            return self._vci_redirect.get(index, index)
        return index

    def _send_domain(self, dest: int, tag: int, comm: int) -> ArbitrationDomain:
        return self.domains[self._route(self.policy.route(dest, tag, comm))]

    def _req_domains(self, reqs: Sequence[Request]) -> List[ArbitrationDomain]:
        """Ordered unique domains the given requests live in."""
        seen: List[int] = []
        for r in reqs:
            for i in r.vcis:
                i = self._route(i)
                if i not in seen:
                    seen.append(i)
        if not seen:
            seen.append(0)
        return [self.domains[i] for i in seen]

    def _active_domains(self) -> "Sequence[ArbitrationDomain]":
        """All domains, minus failed ones (the common no-failure case
        returns the list itself)."""
        if not self.failed_domains:
            return self.domains
        return [d for d in self.domains if d.index not in self.failed_domains]

    # ==================================================================
    # Critical section (all per-domain)
    # ==================================================================
    def _cs_acquire(self, dom: ArbitrationDomain, ctx: ThreadCtx, priority: Priority):
        if priority == Priority.HIGH:
            self.stats.cs_entries_main += 1
            dom.stats.cs_entries_main += 1
        else:
            self.stats.cs_entries_progress += 1
            dom.stats.cs_entries_progress += 1
        yield from dom.lock.acquire(ctx, priority=priority)
        obs = self.sim.obs
        if obs is not None and obs.wants("mpi"):
            # Occupancy span, named by entry path (paper Fig. 6a): the
            # main path enters HIGH, the progress loop re-enters LOW.
            name = "cs.main" if priority == Priority.HIGH else "cs.progress"
            dom._cs_span = name
            if len(self.domains) == 1:
                obs.span_begin("mpi", name, rank=self.rank, tid=ctx.tid)
            else:
                obs.span_begin("mpi", name, rank=self.rank, tid=ctx.tid,
                               args={"vci": dom.index})

    def _cs_release(self, dom: ArbitrationDomain, ctx: ThreadCtx):
        """Generator: releases the CS and charges the releaser-side cost
        (a contended mutex unlock pays the FUTEX_WAKE syscall)."""
        obs = self.sim.obs
        if obs is not None and dom._cs_span is not None:
            obs.span_end("mpi", dom._cs_span, rank=self.rank, tid=ctx.tid)
            dom._cs_span = None
        cost = dom.lock.release(ctx)
        if cost > 0.0:
            yield self.sim.timeout(cost)

    def _cs_time(self, dom: ArbitrationDomain, seconds: float):
        """A timeout for in-CS work, inflated by contention *on this
        domain's lock*: waiting threads' retries/spinning bounce the
        domain's shared cache lines and slow the critical path (David et
        al., SOSP'13).  Sharding pays off exactly here: fewer waiters
        per domain, smaller factor."""
        return self.sim.timeout(seconds * dom.lock.contention_factor())

    def _charge_copy(
        self, dom: ArbitrationDomain, ctx: ThreadCtx, seconds: float,
        priority: Priority,
    ):
        """Charge a payload copy.  Under "global" granularity the copy
        happens while holding the domain's CS; under "brief" the CS is
        released around it (the copy touches only private buffers),
        paying two extra lock transitions instead of a long hold."""
        if seconds <= 0.0:
            return
        if (
            self.cs_granularity is CsGranularity.BRIEF
            and seconds * 1e9 >= self.costs.brief_copy_min_ns
        ):
            yield from self._cs_release(dom, ctx)
            yield self.sim.timeout(seconds)
            yield from self._cs_acquire(dom, ctx, priority)
        else:
            yield self._cs_time(dom, seconds)

    # ==================================================================
    # Completion plumbing
    # ==================================================================
    def _complete(self, req: Request) -> None:
        """The single completion path: every way a request finishes --
        eager/inline match, rendezvous data, reliability ACK, RMA flush
        -- funnels through here, so this is the one place continuations
        fire and waiters wake."""
        req.mark_complete(self.sim.now)
        self.domains[req.vci].note_complete()
        self.dangling_count += 1
        if self.dangling_count > self.peak_dangling:
            self.peak_dangling = self.dangling_count
        self.stats.completed += 1
        obs = self.sim.obs
        if obs is not None and obs.wants("mpi"):
            obs.counter("mpi", "dangling", self.dangling_count, rank=self.rank)
            if len(self.domains) > 1:
                obs.counter("mpi", f"dangling.d{req.vci}",
                            self.domains[req.vci].stats.dangling,
                            rank=self.rank)
        conts = req._continuations
        if conts is not None:
            deferred = [h for h in conts if not h.sync and not h.detached]
            # Deferred handles stay linked until their dispatch actually
            # runs: a free overtaking the dispatch (the owner's wait
            # discovering completion in its own poll) cancels them
            # cleanly through the handle's timer.
            req._continuations = deferred or None
            for handle in conts:
                if handle.detached or not handle.sync:
                    continue
                # Runtime-internal bookkeeping (the blocking calls'
                # counter latches): pure O(1), safe inside the CS,
                # schedule-neutral by construction.
                self._run_continuation(handle)
            for handle in deferred:
                # User callback: defer through the event queue so it
                # runs at the completion timestamp in (time, seq)
                # order, outside the completing critical section.  The
                # handle keeps the cancellable timer so detach() and
                # free can still win the race.
                handle._timer = self.sim.call_after(
                    0.0, self._run_continuation, handle
                )
        if self._wake_waiters:
            self._activity.fire()

    def _run_continuation(self, handle) -> None:
        """Run one continuation callback (also the deferred-dispatch
        target).  The dangling-continuation guard lives here: a legit
        free cancels in-flight deferred fires through their cancellable
        timers (``Request.mark_freed``), so a dispatch that still finds
        its request freed means the lifecycle was bypassed -- raise
        instead of silently firing against a dead request."""
        if handle.detached:
            # Detached while the deferred dispatch was in flight (the
            # timer cancel lost the same-timestamp race); honor it.
            return
        req = handle.req
        if req.freed:
            raise RequestError(
                f"continuation fired on freed request #{req.req_id}; "
                f"the free bypassed detach (dangling continuation)"
            )
        handle.fired = True
        handle._timer = None
        conts = req._continuations
        if conts is not None and handle in conts:
            # Deferred handles stay linked until dispatch so a free can
            # cancel them; unlink now that the fire actually happened.
            conts.remove(handle)
            if not conts:
                req._continuations = None
        self.stats.continuations_fired += 1
        obs = self.sim.obs
        if obs is not None and obs.wants("mpi"):
            obs.counter("mpi", "continuations_fired",
                        self.stats.continuations_fired, rank=self.rank)
            if not handle.sync and req.t_completed is not None:
                # Callback latency: completion -> dispatch, in ns.
                obs.counter(
                    "mpi", "continuation_latency_ns",
                    (self.sim.now - req.t_completed) * 1e9,
                    rank=self.rank,
                )
        handle.fn(req)

    def _attach_latch(
        self, reqs: Sequence[Request],
    ) -> Tuple[CompletionLatch, List]:
        """Attach a counter latch over ``reqs`` via sync continuations.

        Already-complete requests join as fired rather than pending, so
        the latch predicates match the hand-rolled ``r.complete`` scans
        they replace.  Pure bookkeeping: no sim state is touched."""
        latch = CompletionLatch(self.sim)
        handles: List = []
        for r in reqs:
            if r._done:
                latch.note_fired()
            else:
                latch.add()
                handles.append(r.attach_continuation(latch.fire, sync=True))
        return latch, handles

    def _free(self, req: Request, ctx: Optional[ThreadCtx] = None) -> None:
        if ctx is not None and self.sim.obs is not None:
            self._san(ctx, f"requests[{req.req_id}]",
                      guards=(self.domains[self._route(req.vci)].lock.name,),
                      owner=req.owner_tid)
        req.mark_freed(self.sim.now)
        self.domains[req.vci].note_free()
        self.dangling_count -= 1
        self.stats.freed += 1
        self.requests.pop(req.req_id, None)
        if len(req.vcis) > 1:
            # A spanning wildcard receive was posted to every domain;
            # the claim removed it from the matching one, the rest are
            # cleaned up here (match() skips claimed entries meanwhile).
            # Owner-only by the documented discipline, hence safe without
            # the other domains' locks (match() skips claimed entries).
            for i in req.vcis:
                if ctx is not None and self.sim.obs is not None:
                    self._san(ctx, f"posted_q.d{i}",
                              guards=(self.domains[i].posted_q.guard,),
                              owner=req.owner_tid)
                self.domains[i].posted_q.discard(req)
        obs = self.sim.obs
        if obs is not None and obs.wants("mpi"):
            obs.counter("mpi", "dangling", self.dangling_count, rank=self.rank)
            if len(self.domains) > 1:
                obs.counter("mpi", f"dangling.d{req.vci}",
                            self.domains[req.vci].stats.dangling,
                            rank=self.rank)

    def _san(
        self,
        ctx: ThreadCtx,
        state: str,
        guards: Optional[Tuple[str, ...]] = None,
        owner: Optional[int] = None,
    ) -> None:
        """Emit a ``san.access`` lockset observation for the simsan
        sanitizer (:mod:`repro.check.sanitize`): this thread touched the
        shared state cell ``state`` while holding ``ctx.held``.

        ``guards`` names the cell's declared protection domain(s);
        ``owner`` is the owning tid for per-request cells (the
        documented discipline lets the owner observe/free its own
        request lock-free, so owner accesses are exempt from lockset
        refinement).  Pure observation: no time, no RNG, no state.
        Call sites gate on ``self.sim.obs is not None`` so a bus-less
        run pays one attribute check and no call.
        """
        obs = self.sim.obs
        if not obs.wants("check"):
            return
        obs.instant(
            "check", "san.access", rank=self.rank, tid=ctx.tid,
            args={
                "state": state,
                "held": tuple(sorted(lk.name for lk in ctx.held)),
                "guards": guards,
                "owner": owner,
            },
        )

    def _emit_queue_depths(self, dom: ArbitrationDomain) -> None:
        """Sample matching-queue depths (call after any queue mutation)."""
        obs = self.sim.obs
        if obs is not None and obs.wants("mpi"):
            if len(self.domains) == 1:
                obs.counter("mpi", "posted_q", len(dom.posted_q), rank=self.rank)
                obs.counter("mpi", "unexp_q", len(dom.unexp_q), rank=self.rank)
            else:
                obs.counter("mpi", f"posted_q.d{dom.index}",
                            len(dom.posted_q), rank=self.rank)
                obs.counter("mpi", f"unexp_q.d{dom.index}",
                            len(dom.unexp_q), rank=self.rank)

    # ==================================================================
    # Main-path operations (generators; called via MpiThread)
    # ==================================================================
    def isend(
        self,
        ctx: ThreadCtx,
        dest: int,
        nbytes: int,
        tag: int = 0,
        comm: int = 0,
        data: Any = None,
    ):
        """Nonblocking send.  Returns the Request."""
        env = Envelope(source=self.rank, tag=tag, comm=comm)
        dom = self._send_domain(dest, tag, comm)
        yield self.sim.timeout(self.costs.request_alloc * (0.5 + self._rng.random()))
        yield from self._cs_acquire(dom, ctx, Priority.HIGH)
        yield self._cs_time(dom, self.costs.cs_main)
        if nbytes <= self.eager_threshold:
            protocol = (
                Protocol.INLINE if nbytes <= self.inline_threshold else Protocol.EAGER
            )
        else:
            protocol = Protocol.RNDV
        req = Request(
            ReqKind.SEND, self.rank, ctx.tid, env, nbytes, self.sim.now,
            protocol=protocol, peer=dest,
        )
        req.vci = dom.index
        req.vcis = (dom.index,)
        self.requests[req.req_id] = req
        self.stats.sends_issued += 1
        if self.sim.obs is not None:
            self._san(ctx, f"requests[{req.req_id}]",
                      guards=(dom.lock.name,), owner=req.owner_tid)

        if protocol is Protocol.RNDV:
            req.mark_pending()
            self._pending_sends[req.req_id] = (req, data)
            if self.sim.obs is not None:
                self._san(ctx, f"pending_sends[{req.req_id}]",
                          guards=(dom.lock.name,), owner=req.owner_tid)
            pkt = Packet(
                PacketKind.RTS, self.rank, dest, 0,
                payload=_RndvInfo(env, nbytes, req.req_id, dom.index),
                vci=self.policy.route_msg(env),
            )
            self.fabric.send(pkt)
            if self._rel is not None:
                self._rel.track_rts(pkt, req)
        else:
            if protocol is Protocol.EAGER:
                # Copy into the NIC's eager buffer.
                yield from self._charge_copy(
                    dom, ctx, self.costs.copy_time(nbytes), Priority.HIGH
                )
            req.mark_pending()
            pkt = Packet(
                PacketKind.EAGER, self.rank, dest, nbytes,
                payload=_EagerInfo(env, nbytes, req.req_id, data, dom.index),
                vci=self.policy.route_msg(env),
            )
            local_done = self.fabric.send(pkt)
            if self._rel is None:
                # Reliable fabric: local completion is delivery.
                local_done.add_callback(lambda _ev, r=req: self._complete(r))
            else:
                # Lossy fabric: completion waits for the receiver's ACK.
                self._rel.track(pkt, req)
        yield from self._cs_release(dom, ctx)
        return req

    def irecv(
        self,
        ctx: ThreadCtx,
        source: int = ANY_SOURCE,
        nbytes: int = 0,
        tag: int = ANY_TAG,
        comm: int = 0,
    ):
        """Nonblocking receive.  ``nbytes`` is the buffer size (modeling
        only; the matched message's size is used for copy costs).

        A receive with a wildcard in a field the policy hashes on cannot
        be routed to one domain; it *spans* all of them: each domain's
        unexpected queue is searched under that domain's lock, posting
        into the domain on a miss so no concurrent arrival is lost, and
        the first match claims the request (the stale postings are
        skipped by ``match()`` and discarded at free time).
        """
        env = Envelope(source=source, tag=tag, comm=comm)
        route = self.policy.route_recv(env)
        yield self.sim.timeout(self.costs.request_alloc * (0.5 + self._rng.random()))
        if route is not None:
            dom = self.domains[self._route(route)]
            yield from self._cs_acquire(dom, ctx, Priority.HIGH)
            yield self._cs_time(dom, self.costs.cs_main)
            req = Request(
                ReqKind.RECV, self.rank, ctx.tid, env, nbytes, self.sim.now,
                peer=source,
            )
            req.vci = dom.index
            req.vcis = (dom.index,)
            self.requests[req.req_id] = req
            self.stats.recvs_issued += 1
            if self.sim.obs is not None:
                self._san(ctx, f"requests[{req.req_id}]",
                          guards=(dom.lock.name,), owner=req.owner_tid)
                self._san(ctx, f"unexp_q.d{dom.index}",
                          guards=(dom.unexp_q.guard,))

            msg, scanned = dom.unexp_q.match(env)
            yield self._cs_time(dom, self.costs.queue_scan * scanned)
            if msg is None:
                if self.sim.obs is not None:
                    self._san(ctx, f"posted_q.d{dom.index}",
                              guards=(dom.posted_q.guard,))
                dom.posted_q.post(req)
            elif msg.rndv:
                # Rendezvous sender is waiting for clearance.
                req.unexpected = True
                req.mark_pending()
                self._send_cts(msg.src_rank, msg.sender_req_id, req,
                               msg.sender_vci)
            else:
                # Eager payload parked in the unexpected buffer: extra copy.
                req.unexpected = True
                yield from self._charge_copy(
                    dom, ctx, self.costs.copy_time(msg.nbytes, unexpected=True),
                    Priority.HIGH,
                )
                req.data = msg.data
                self._complete(req)
            self._emit_queue_depths(dom)
            yield from self._cs_release(dom, ctx)
            return req

        # Spanning wildcard: visit every (live) domain in index order.
        req = None
        doms = self._active_domains()
        for i, dom in enumerate(doms):
            yield from self._cs_acquire(dom, ctx, Priority.HIGH)
            if i == 0:
                yield self._cs_time(dom, self.costs.cs_main)
                req = Request(
                    ReqKind.RECV, self.rank, ctx.tid, env, nbytes,
                    self.sim.now, peer=source,
                )
                req.vci = dom.index
                req.vcis = tuple(d.index for d in doms)
                self.requests[req.req_id] = req
                self.stats.recvs_issued += 1
                if self.sim.obs is not None:
                    self._san(ctx, f"requests[{req.req_id}]",
                              guards=tuple(d.lock.name for d in doms),
                              owner=req.owner_tid)
            if req.claimed or req.complete:
                # A packet matched an earlier posting while we walked on.
                yield from self._cs_release(dom, ctx)
                break
            if self.sim.obs is not None:
                self._san(ctx, f"unexp_q.d{dom.index}",
                          guards=(dom.unexp_q.guard,))
            msg, scanned = dom.unexp_q.match(env)
            yield self._cs_time(dom, self.costs.queue_scan * scanned)
            if msg is None:
                # Post before moving to the next domain so an arrival
                # here is matched, not parked unexpectedly forever.
                if self.sim.obs is not None:
                    self._san(ctx, f"posted_q.d{dom.index}",
                              guards=(dom.posted_q.guard,))
                dom.posted_q.post(req)
                self._emit_queue_depths(dom)
                yield from self._cs_release(dom, ctx)
                continue
            # First unexpected match claims the request for this domain.
            req.claimed = True
            req.vci = dom.index
            req.unexpected = True
            if msg.rndv:
                req.mark_pending()
                self._send_cts(msg.src_rank, msg.sender_req_id, req,
                               msg.sender_vci)
            else:
                yield from self._charge_copy(
                    dom, ctx, self.costs.copy_time(msg.nbytes, unexpected=True),
                    Priority.HIGH,
                )
                req.data = msg.data
                self._complete(req)
            self._emit_queue_depths(dom)
            yield from self._cs_release(dom, ctx)
            break
        return req

    def test(self, ctx: ThreadCtx, req: Request):
        """MPI_Test: one progress poke; frees the request on success.
        Returns True when the request completed."""
        return (yield from self._test_engine(ctx, (req,), any_mode=False))

    def wait(self, ctx: ThreadCtx, req: Request):
        """MPI_Wait: block (polling the progress engine) until complete."""
        return (yield from self.waitall(ctx, (req,)))

    def waitall(self, ctx: ThreadCtx, reqs: Iterable[Request]):
        """MPI_Waitall over ``reqs``; frees them all and returns their
        payloads.  Dispatches on the runtime's ``completion`` mode."""
        reqs = tuple(reqs)
        if self.completion == "continuation":
            return (yield from self._wait_continuation(ctx, reqs,
                                                       any_mode=False))
        return (yield from self._wait_poll(ctx, reqs, any_mode=False))

    def testall(self, ctx: ThreadCtx, reqs):
        """MPI_Testall: one progress poke per involved domain; frees all
        and returns True only when every request has completed."""
        return (yield from self._test_engine(ctx, tuple(reqs),
                                             any_mode=False))

    def testany(self, ctx: ThreadCtx, reqs):
        """MPI_Testany: one progress poke per involved domain; frees and
        returns the index of the first completed request, or None.

        An empty request sequence is a :class:`ValueError`: "any of
        nothing" has no meaningful index, and MPI's own convention
        (MPI_UNDEFINED) does not map onto None-vs-index cleanly.
        """
        reqs = tuple(reqs)
        if not reqs:
            raise ValueError("testany over an empty request sequence")
        return (yield from self._test_engine(ctx, reqs, any_mode=True))

    def waitany(self, ctx: ThreadCtx, reqs):
        """MPI_Waitany: block until one request completes; frees it and
        returns its index.

        An empty request sequence is a :class:`ValueError` -- the poll
        loop could never be satisfied and would spin forever.
        """
        reqs = tuple(reqs)
        if not reqs:
            raise ValueError("waitany over an empty request sequence")
        if self.completion == "continuation":
            return (yield from self._wait_continuation(ctx, reqs,
                                                       any_mode=True))
        return (yield from self._wait_poll(ctx, reqs, any_mode=True))

    def cancel(self, ctx: ThreadCtx, req: Request):
        """MPI_Cancel, receive side: withdraw a posted receive that will
        never (or must no longer) be matched -- the deadline-expiry path
        of the overload-protection layer (:mod:`repro.robust`).

        Only receives are cancellable (send-side cancel is deprecated in
        MPI-4 and was never reliably implementable).  Under the owning
        domain's critical section the request is *claimed* (``match()``
        skips claimed entries from that instant), withdrawn from the
        posted queue(s), completed with ``error=True`` -- so latches and
        continuations observe it exactly like a reliability give-up --
        and freed.  Returns True if this call cancelled the request,
        False if it lost the race (already complete: the request is
        freed here all the same, so the caller never double-frees).
        """
        if req.kind is not ReqKind.RECV:
            raise ValueError(
                f"only receive requests can be cancelled, got {req!r}"
            )
        if req.freed:
            return False
        dom = self.domains[self._route(req.vci)]
        yield from self._cs_acquire(dom, ctx, Priority.HIGH)
        yield self._cs_time(dom, self.costs.cs_main)
        if req._done:
            # Completed while we queued for the lock: not cancelled --
            # but free it here so the caller has one cleanup path.
            if not req.freed:
                self._free(req, ctx)
            yield from self._cs_release(dom, ctx)
            return False
        # From here no packet can match it: claimed entries are skipped
        # by match(); the posted entry in this domain is withdrawn now,
        # stale postings in other domains (spanning wildcards) are
        # discarded by _free under the owner-frees discipline.
        req.claimed = True
        if self.sim.obs is not None:
            self._san(ctx, f"posted_q.d{dom.index}",
                      guards=(dom.posted_q.guard,))
        dom.posted_q.discard(req)
        req.error = True
        self._complete(req)
        self._free(req, ctx)
        self.stats.cancelled += 1
        self._emit_queue_depths(dom)
        yield from self._cs_release(dom, ctx)
        return True

    # ------------------------------------------------------------------
    # The completion engines.  All six public blocking calls reduce to
    # these three bodies; completion itself is observed through the same
    # continuation hook user callbacks use (a CompletionLatch attached
    # as a sync continuation per pending request), so there is exactly
    # one completion code path in the runtime (_complete).
    # ------------------------------------------------------------------
    def _wait_poll(self, ctx: ThreadCtx, reqs: Tuple[Request, ...],
                   any_mode: bool):
        """Blocking wait, polling form: the paper's CS_YIELD loop.

        Polls only the domains the pending requests live in, rotating to
        the next one across each CS_YIELD gap (a thread never holds two
        domain locks at once).  The latch replaces the hand-rolled
        pending-list re-filters with two counter reads; the sequence of
        yields, RNG draws and lock transitions is bit-identical to the
        pre-continuation loops (pinned by test_domain_regression)."""
        doms = self._req_domains(reqs)
        cur = 0
        yield from self._cs_acquire(doms[cur], ctx, Priority.HIGH)
        yield self._cs_time(doms[cur], self.costs.cs_main)
        latch, handles = self._attach_latch(reqs)
        while (latch.n_fired == 0) if any_mode else (latch.n_pending > 0):
            yield from self._progress_poll(doms[cur], ctx)
            if (latch.n_fired > 0) if any_mode else (latch.n_pending == 0):
                break
            # CS_YIELD: let other threads at the runtime, come back at
            # progress-loop (LOW) priority.  The gap is jittered: real
            # yields have scheduling noise, and a deterministic gap
            # produces artificial lockstep alternation between threads.
            yield from self._cs_release(doms[cur], ctx)
            if self.event_driven_wait and not any(d.recv_q for d in doms):
                # Nothing to progress: park until a packet arrives or a
                # request completes (no sim time passes between this
                # check and the wait, so no wake-up can be missed).
                self.parked_waiters += 1
                yield self._activity.wait(ctx)
                self.parked_waiters -= 1
                yield self.sim.timeout(self.costs.event_wakeup)
            else:
                gap = self.costs.progress_gap * (0.5 + self._rng.random())
                yield self.sim.timeout(gap)
            cur = (cur + 1) % len(doms)
            yield from self._cs_acquire(doms[cur], ctx, Priority.LOW)
            # Another thread's progress may have completed the rest
            # while this one sat in the gap / lock queue -- the latch
            # already counted those fires; the loop condition sees them.
        for h in handles:
            h.detach()
        if any_mode:
            idx = next(i for i, r in enumerate(reqs) if r.complete)
            if not reqs[idx].freed:
                self._free(reqs[idx], ctx)
            yield from self._cs_release(doms[cur], ctx)
            return idx
        for r in reqs:
            if not r.freed:
                self._free(r, ctx)
        yield from self._cs_release(doms[cur], ctx)
        return [r.data for r in reqs]

    def _test_engine(self, ctx: ThreadCtx, reqs: Tuple[Request, ...],
                     any_mode: bool):
        """Nonblocking completion check: one progress poke per involved
        domain, then free-and-report on the last one.  Shared body of
        test/testall/testany (a test *is* the poll loop's single
        iteration, so it has no continuation form)."""
        doms = self._req_domains(reqs)
        latch, handles = self._attach_latch(reqs)
        result: "bool | int | None" = False if not any_mode else None
        for i, dom in enumerate(doms):
            yield from self._cs_acquire(dom, ctx, Priority.HIGH)
            if i == 0:
                yield self._cs_time(dom, self.costs.cs_main)
            if (latch.n_fired == 0) if any_mode else (latch.n_pending > 0):
                yield from self._progress_poll(dom, ctx)
            if i == len(doms) - 1:
                if any_mode:
                    result = next(
                        (j for j, r in enumerate(reqs) if r.complete), None
                    )
                    if result is not None and not reqs[result].freed:
                        self._free(reqs[result], ctx)
                else:
                    result = latch.n_pending == 0
                    if result:
                        for r in reqs:
                            if not r.freed:
                                self._free(r, ctx)
            yield from self._cs_release(dom, ctx)
        for h in handles:
            h.detach()
        return result

    def _wait_continuation(self, ctx: ThreadCtx, reqs: Tuple[Request, ...],
                           any_mode: bool):
        """Blocking wait, continuation form (the remedy).

        The waiter never polls for completion: it parks on the
        arrival/completion signal and enters the critical section only
        when a domain it cares about actually has packets to progress.
        Every park that replaces an empty CS round-trip is counted as a
        ``wasted acquisition avoided`` -- the paper's wasted-acquisition
        metric, inverted.  Completion is observed through the same latch
        continuations the polling form uses; the finished requests are
        then freed under one HIGH-priority CS entry per owning domain,
        without ever having re-entered the CS just to *check* for
        completion."""
        doms = self._req_domains(reqs)
        latch, handles = self._attach_latch(reqs)
        obs = self.sim.obs
        while (latch.n_fired == 0) if any_mode else (latch.n_pending > 0):
            dom = next((d for d in doms if d.recv_q), None)
            if dom is None:
                # Nothing to progress anywhere we look: the polling path
                # would burn a full CS round-trip to discover an empty
                # queue (the paper's wasted acquisition); park instead.
                # No sim time passes between this check and the wait, so
                # no wake-up can be missed.
                self.stats.wasted_acquisitions_avoided += 1
                if obs is not None and obs.wants("mpi"):
                    obs.counter(
                        "mpi", "wasted_acq_avoided",
                        self.stats.wasted_acquisitions_avoided,
                        rank=self.rank,
                    )
                self.parked_waiters += 1
                yield self._activity.wait(ctx)
                self.parked_waiters -= 1
                yield self.sim.timeout(self.costs.event_wakeup)
                continue
            yield from self._cs_acquire(dom, ctx, Priority.LOW)
            yield from self._progress_poll(dom, ctx)
            yield from self._cs_release(dom, ctx)
        for h in handles:
            h.detach()
        to_free: Tuple[Request, ...]
        if any_mode:
            idx = next(i for i, r in enumerate(reqs) if r.complete)
            to_free = (reqs[idx],)
        else:
            to_free = reqs
        # Free under the owning domains' CS, one HIGH entry per domain
        # (grouped, so a waitall over one domain pays one entry total).
        freed_doms: List[int] = []
        for r in to_free:
            d = self._route(r.vci)
            if d not in freed_doms:
                freed_doms.append(d)
        for di in freed_doms:
            dom = self.domains[di]
            yield from self._cs_acquire(dom, ctx, Priority.HIGH)
            yield self._cs_time(dom, self.costs.cs_main)
            for r in to_free:
                if self._route(r.vci) == di and not r.freed:
                    self._free(r, ctx)
            yield from self._cs_release(dom, ctx)
        if any_mode:
            return idx
        return [r.data for r in reqs]

    def iprobe(self, ctx: ThreadCtx, source=ANY_SOURCE, tag=ANY_TAG, comm=0):
        """MPI_Iprobe: one progress poke, then a non-destructive check of
        the unexpected queue(s).  Returns the matched concrete
        ``(source, tag, nbytes)`` or None.

        As in real MPICH, probing only observes messages the progress
        engine has already moved to the unexpected queue; a message
        sitting in a matching *posted* receive is not probe-visible.
        """
        env = Envelope(source=source, tag=tag, comm=comm)
        route = self.policy.route_recv(env)
        doms = (
            self._active_domains() if route is None
            else (self.domains[self._route(route)],)
        )
        from .envelope import matches as _matches
        found = None
        for i, dom in enumerate(doms):
            yield from self._cs_acquire(dom, ctx, Priority.HIGH)
            if i == 0:
                yield self._cs_time(dom, self.costs.cs_main)
            yield from self._progress_poll(dom, ctx)
            if self.sim.obs is not None:
                self._san(ctx, f"unexp_q.d{dom.index}",
                          guards=(dom.unexp_q.guard,))
            scanned = 0
            for msg in dom.unexp_q._q:
                scanned += 1
                if _matches(env, msg.envelope):
                    found = (msg.envelope.source, msg.envelope.tag, msg.nbytes)
                    break
            yield self._cs_time(dom, self.costs.queue_scan * scanned)
            yield from self._cs_release(dom, ctx)
            if found is not None:
                break
        return found

    def probe(self, ctx: ThreadCtx, source=ANY_SOURCE, tag=ANY_TAG, comm=0):
        """MPI_Probe: block until a matching message is probe-visible."""
        while True:
            found = yield from self.iprobe(ctx, source=source, tag=tag, comm=comm)
            if found is not None:
                return found
            yield self.sim.timeout(
                self.costs.progress_gap * (0.5 + self._rng.random())
            )

    def sendrecv(self, ctx, dest, source, nbytes, tag=0, comm=0, data=None,
                 recv_nbytes=None, recv_tag=None):
        """MPI_Sendrecv: simultaneous blocking send + receive (the
        deadlock-free exchange primitive).  Returns the received data."""
        sreq = yield from self.isend(ctx, dest, nbytes, tag=tag, comm=comm, data=data)
        rreq = yield from self.irecv(
            ctx, source=source,
            nbytes=nbytes if recv_nbytes is None else recv_nbytes,
            tag=tag if recv_tag is None else recv_tag, comm=comm,
        )
        yield from self.waitall(ctx, (sreq, rreq))
        return rreq.data

    def send(self, ctx, dest, nbytes, tag=0, comm=0, data=None):
        """Blocking send (isend + wait)."""
        req = yield from self.isend(ctx, dest, nbytes, tag=tag, comm=comm, data=data)
        yield from self.wait(ctx, req)

    def recv(self, ctx, source=ANY_SOURCE, nbytes=0, tag=ANY_TAG, comm=0):
        """Blocking receive; returns the payload data."""
        req = yield from self.irecv(ctx, source=source, nbytes=nbytes, tag=tag, comm=comm)
        out = yield from self.wait(ctx, req)
        return out[0]

    def progress_poke(self, ctx: ThreadCtx):
        """One LOW-priority progress poll over every domain (the async
        progress thread's whole life, paper 6.1.2)."""
        for dom in self._active_domains():
            yield from self._cs_acquire(dom, ctx, Priority.LOW)
            yield from self._progress_poll(dom, ctx)
            yield from self._cs_release(dom, ctx)

    # ==================================================================
    # Progress engine (must be called holding the domain's CS)
    # ==================================================================
    def _progress_poll(self, dom: ArbitrationDomain, ctx: ThreadCtx):
        """Drain the domain's NIC receive queue; returns True if any
        packet was handled."""
        self.stats.progress_polls += 1
        dom.stats.progress_polls += 1
        if self.sim.obs is not None:
            self._san(ctx, f"recv_q.d{dom.index}", guards=(dom.lock.name,))
        q = dom.recv_q
        if not q:
            self.stats.empty_polls += 1
            dom.stats.empty_polls += 1
            obs = self.sim.obs
            if obs is not None and obs.wants("mpi"):
                # The paper's "wasted acquisition": a full CS round-trip
                # that progressed nothing.
                obs.instant("mpi", "poll.empty", rank=self.rank, tid=ctx.tid)
            yield self._cs_time(dom, self.costs.cs_poll_empty)
            return False
        # Handle a bounded batch; the rest waits for the next poll (a
        # real progress engine processes a bounded completion batch per
        # call, it does not drain the wire in one critical section).
        # Re-check emptiness each iteration: under "brief" granularity a
        # handler may drop the CS mid-copy and another thread may drain
        # the queue meanwhile.
        for _ in range(self.costs.progress_batch):
            if not q:
                break
            pkt = q.popleft()
            yield from self._handle_packet(dom, ctx, pkt)
        return True

    def _handle_packet(self, dom: ArbitrationDomain, ctx: ThreadCtx, pkt: Packet):
        self.stats.packets_handled += 1
        dom.stats.packets_handled += 1
        obs = self.sim.obs
        if obs is not None and obs.wants("mpi"):
            obs.counter("mpi", "packets_handled", self.stats.packets_handled,
                        rank=self.rank)
        yield self._cs_time(dom, self.costs.cs_poll_packet)
        if self._rel is not None and self._rel.pre_handle(pkt):
            # ACKs and duplicate data/RTS copies are absorbed by the
            # reliability layer; they never reach the protocol handlers.
            return
        kind = pkt.kind
        if kind is PacketKind.EAGER:
            info = pkt.payload
            if self.sim.obs is not None:
                self._san(ctx, f"posted_q.d{dom.index}",
                          guards=(dom.posted_q.guard,))
            req, scanned = dom.posted_q.match(info.envelope)
            yield self._cs_time(dom, self.costs.queue_scan * scanned)
            if req is not None:
                req.claimed = True
                req.vci = dom.index
                self.stats.posted_hits += 1
                dom.stats.posted_hits += 1
                yield from self._charge_copy(
                    dom, ctx, self.costs.copy_time(info.nbytes), Priority.LOW
                )
                req.data = info.data
                self._complete(req)
            else:
                self.stats.unexpected_hits += 1
                dom.stats.unexpected_hits += 1
                if self.sim.obs is not None:
                    self._san(ctx, f"unexp_q.d{dom.index}",
                              guards=(dom.unexp_q.guard,))
                dom.unexp_q.add(
                    UnexpectedMsg(
                        info.envelope, info.nbytes, pkt.src_rank,
                        data=info.data, arrival_time=self.sim.now,
                    )
                )
        elif kind is PacketKind.RTS:
            info = pkt.payload
            if self.sim.obs is not None:
                self._san(ctx, f"posted_q.d{dom.index}",
                          guards=(dom.posted_q.guard,))
            req, scanned = dom.posted_q.match(info.envelope)
            yield self._cs_time(dom, self.costs.queue_scan * scanned)
            if req is not None:
                req.claimed = True
                req.vci = dom.index
                self.stats.posted_hits += 1
                dom.stats.posted_hits += 1
                req.mark_pending()
                self._send_cts(pkt.src_rank, info.req_id, req, info.vci)
            else:
                self.stats.unexpected_hits += 1
                dom.stats.unexpected_hits += 1
                if self.sim.obs is not None:
                    self._san(ctx, f"unexp_q.d{dom.index}",
                              guards=(dom.unexp_q.guard,))
                dom.unexp_q.add(
                    UnexpectedMsg(
                        info.envelope, info.nbytes, pkt.src_rank,
                        rndv=True, sender_req_id=info.req_id,
                        sender_vci=info.vci, arrival_time=self.sim.now,
                    )
                )
        elif kind is PacketKind.CTS:
            sender_req_id, recv_req_id, recv_vci = pkt.payload
            if self.sim.obs is not None:
                self._san(ctx, f"pending_sends[{sender_req_id}]",
                          guards=(dom.lock.name,))
            if self._rel is not None:
                # The CTS acknowledges the RTS; a *duplicate* CTS (the
                # receiver replayed it for a retried RTS) finds the
                # pending send already gone and is dropped here.
                self._rel.on_cts(sender_req_id)
                pending = self._pending_sends.pop(sender_req_id, None)
                if pending is None:
                    return
                req, data = pending
            else:
                req, data = self._pending_sends.pop(sender_req_id)
            data_pkt = Packet(
                PacketKind.RNDV_DATA, self.rank, pkt.src_rank, req.nbytes,
                payload=(recv_req_id, data, req.vci), vci=recv_vci,
            )
            local_done = self.fabric.send(data_pkt)
            if self._rel is None:
                local_done.add_callback(lambda _ev, r=req: self._complete(r))
            else:
                self._rel.track(data_pkt, req)
        elif kind is PacketKind.RNDV_DATA:
            recv_req_id, data, _sender_vci = pkt.payload
            req = self.requests.get(recv_req_id)
            if req is None:
                # The receive was cancelled (deadline expiry) after its
                # CTS went out; the data raced the cancellation and
                # loses.  Count it -- a silent drop here would hide a
                # protocol bug in a run without cancellations.
                self.stats.stale_rndv_data += 1
                return
            if self.sim.obs is not None:
                self._san(
                    ctx, f"requests[{recv_req_id}]",
                    guards=tuple(
                        self.domains[self._route(i)].lock.name
                        for i in req.vcis
                    ),
                    owner=req.owner_tid,
                )
            # Rendezvous lands zero-copy in the user buffer (RDMA write);
            # only the handling cost (already charged) applies.
            req.data = data
            self._complete(req)
        elif kind.name.startswith("RMA"):
            handler = self.windows.get(getattr(pkt.payload, "win_id", None))
            if handler is None:
                raise RuntimeError(f"no window registered for {pkt!r}")
            yield from handler.handle_packet(dom, ctx, pkt)
        else:
            raise RuntimeError(f"unhandled packet kind {kind}")
        if kind is PacketKind.EAGER or kind is PacketKind.RTS:
            self._emit_queue_depths(dom)

    def _send_cts(self, dest: int, sender_req_id: int, recv_req: Request,
                  sender_vci: int = 0) -> None:
        """Clear a rendezvous sender: the CTS goes back to the *sender's*
        domain and tells it which receiver domain the data belongs in."""
        pkt = Packet(
            PacketKind.CTS, self.rank, dest, 0,
            payload=(sender_req_id, recv_req.req_id, recv_req.vci),
            vci=sender_vci,
        )
        self.fabric.send(pkt)
        if self._rel is not None:
            self._rel.note_cts(dest, sender_req_id, recv_req.req_id,
                               recv_req.vci, sender_vci)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<MpiRuntime rank={self.rank} policy={self.policy} "
            f"lock={type(self.lock).__name__} "
            f"posted={sum(len(d.posted_q) for d in self.domains)} "
            f"unexp={sum(len(d.unexp_q) for d in self.domains)} "
            f"dangling={self.dangling_count}>"
        )


class MpiThread:
    """A thread's view of its rank's runtime: binds a ThreadCtx and
    forwards MPI calls (all generators, used with ``yield from``)."""

    def __init__(self, runtime: MpiRuntime, ctx: ThreadCtx):
        self.runtime = runtime
        self.ctx = ctx

    @property
    def rank(self) -> int:
        return self.runtime.rank

    @property
    def sim(self):
        return self.runtime.sim

    def isend(self, dest, nbytes, tag=0, comm=0, data=None):
        return self.runtime.isend(self.ctx, dest, nbytes, tag=tag, comm=comm, data=data)

    def irecv(self, source=ANY_SOURCE, nbytes=0, tag=ANY_TAG, comm=0):
        return self.runtime.irecv(self.ctx, source=source, nbytes=nbytes, tag=tag, comm=comm)

    def send(self, dest, nbytes, tag=0, comm=0, data=None):
        return self.runtime.send(self.ctx, dest, nbytes, tag=tag, comm=comm, data=data)

    def recv(self, source=ANY_SOURCE, nbytes=0, tag=ANY_TAG, comm=0):
        return self.runtime.recv(self.ctx, source=source, nbytes=nbytes, tag=tag, comm=comm)

    def wait(self, req):
        return self.runtime.wait(self.ctx, req)

    def waitall(self, reqs):
        return self.runtime.waitall(self.ctx, reqs)

    def test(self, req):
        return self.runtime.test(self.ctx, req)

    def testall(self, reqs):
        return self.runtime.testall(self.ctx, reqs)

    def testany(self, reqs):
        return self.runtime.testany(self.ctx, reqs)

    def waitany(self, reqs):
        return self.runtime.waitany(self.ctx, reqs)

    def cancel(self, req):
        return self.runtime.cancel(self.ctx, req)

    def iprobe(self, source=ANY_SOURCE, tag=ANY_TAG, comm=0):
        return self.runtime.iprobe(self.ctx, source=source, tag=tag, comm=comm)

    def probe(self, source=ANY_SOURCE, tag=ANY_TAG, comm=0):
        return self.runtime.probe(self.ctx, source=source, tag=tag, comm=comm)

    def sendrecv(self, dest, source, nbytes, tag=0, comm=0, data=None,
                 recv_nbytes=None, recv_tag=None):
        return self.runtime.sendrecv(
            self.ctx, dest, source, nbytes, tag=tag, comm=comm, data=data,
            recv_nbytes=recv_nbytes, recv_tag=recv_tag,
        )

    def progress_poke(self):
        return self.runtime.progress_poke(self.ctx)

    def compute(self, seconds: float):
        """Model local computation for ``seconds`` (outside the runtime)."""
        return self.sim.timeout(seconds)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MpiThread rank={self.rank} {self.ctx.name}>"
