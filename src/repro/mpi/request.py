"""MPI request objects and their lifecycle (paper Fig. 3b).

A receive request is *issued* by ``MPI_Irecv``; if its message is already
in the unexpected queue it completes immediately, otherwise it is *posted*
and completes when a matching message arrives.  ``MPI_Wait``/``MPI_Test``
detect completion and *free* the request.

The paper's profiling metric builds on this lifecycle: a **dangling**
request is ``complete and not yet freed`` (4.4).  Any thread may complete
another thread's request inside the progress engine, but only the owner
frees it -- so a starving owner leaves dangling requests behind.
"""

from __future__ import annotations

import enum
from itertools import count
from typing import Any, Optional

from .envelope import Envelope

__all__ = ["ReqKind", "ReqState", "Protocol", "Request", "RequestError"]

_req_seq = count()


class RequestError(RuntimeError):
    """Invalid request state transition."""


class ReqKind(enum.Enum):
    SEND = "send"
    RECV = "recv"
    RMA = "rma"


class ReqState(enum.Enum):
    ISSUED = "issued"        # created in the main path
    POSTED = "posted"        # recv waiting in the posted queue
    PENDING = "pending"      # in flight (send injected / rndv handshake)
    COMPLETE = "complete"    # done, not yet freed (dangling)
    FREED = "freed"


class Protocol(enum.Enum):
    INLINE = "inline"   # payload rides the descriptor (<= inline threshold)
    EAGER = "eager"     # payload sent immediately, copied at receiver
    RNDV = "rndv"       # RTS/CTS handshake, then bulk data


class Request:
    """One nonblocking operation."""

    __slots__ = (
        "req_id", "kind", "rank", "owner_tid", "envelope", "nbytes",
        "state", "protocol", "unexpected", "data",
        "t_issued", "t_completed", "t_freed", "peer",
        "vci", "vcis", "claimed", "error", "_done",
    )

    def __init__(
        self,
        kind: ReqKind,
        rank: int,
        owner_tid: int,
        envelope: Envelope,
        nbytes: int,
        now: float,
        protocol: Protocol = Protocol.EAGER,
        peer: Optional[int] = None,
    ):
        if nbytes < 0:
            raise ValueError(f"negative request size {nbytes}")
        self.req_id = next(_req_seq)
        self.kind = kind
        self.rank = rank
        self.owner_tid = owner_tid
        self.envelope = envelope
        self.nbytes = nbytes
        self.state = ReqState.ISSUED
        self.protocol = protocol
        #: For receives: did the message go through the unexpected queue?
        self.unexpected = False
        #: Delivered payload (receives) / payload to deliver (sends).
        self.data: Any = None
        self.t_issued = now
        self.t_completed: Optional[float] = None
        self.t_freed: Optional[float] = None
        self.peer = peer
        #: Primary arbitration-domain index (updated to the matching
        #: domain when a spanning wildcard receive is claimed).
        self.vci = 0
        #: All domain indices this request may live in: length 1 for
        #: routed operations; every domain for spanning wildcards.
        self.vcis = (0,)
        #: Set the instant a match decision is made.  Wildcard receives
        #: are posted to *every* domain; claiming atomically (between
        #: simulator yields) prevents a second domain matching the same
        #: request.
        self.claimed = False
        #: Set by the reliability layer when the retransmit budget is
        #: exhausted: the request is *completed* (so waiters unblock)
        #: but the transfer failed.
        self.error = False
        #: Cached COMPLETE-or-FREED flag: wait loops poll ``complete``
        #: once per request per progress gap, so it must be a plain
        #: attribute read, not an enum comparison.
        self._done = False

    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        return self._done

    @property
    def freed(self) -> bool:
        return self.state is ReqState.FREED

    @property
    def dangling(self) -> bool:
        return self.state is ReqState.COMPLETE

    # ------------------------------------------------------------------
    def mark_posted(self) -> None:
        # Idempotent for POSTED: a spanning wildcard receive is posted
        # to every arbitration domain.
        if self.state is ReqState.POSTED:
            return
        if self.state is not ReqState.ISSUED:
            raise RequestError(f"cannot post request in state {self.state}")
        self.state = ReqState.POSTED

    def mark_pending(self) -> None:
        if self.state not in (ReqState.ISSUED, ReqState.POSTED):
            raise RequestError(f"cannot set pending in state {self.state}")
        self.state = ReqState.PENDING

    def mark_complete(self, now: float) -> None:
        if self._done:
            raise RequestError(f"request {self.req_id} completed twice")
        self.state = ReqState.COMPLETE
        self._done = True
        self.t_completed = now

    def mark_freed(self, now: float) -> None:
        if self.state is not ReqState.COMPLETE:
            raise RequestError(
                f"cannot free request {self.req_id} in state {self.state}"
            )
        self.state = ReqState.FREED
        self.t_freed = now

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Request #{self.req_id} {self.kind.value} rank={self.rank} "
            f"{self.envelope} {self.nbytes}B {self.state.value}>"
        )
