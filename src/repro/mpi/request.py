"""MPI request objects and their lifecycle (paper Fig. 3b).

A receive request is *issued* by ``MPI_Irecv``; if its message is already
in the unexpected queue it completes immediately, otherwise it is *posted*
and completes when a matching message arrives.  ``MPI_Wait``/``MPI_Test``
detect completion and *free* the request.

The paper's profiling metric builds on this lifecycle: a **dangling**
request is ``complete and not yet freed`` (4.4).  Any thread may complete
another thread's request inside the progress engine, but only the owner
frees it -- so a starving owner leaves dangling requests behind.

**Continuations** invert the detection half of that lifecycle: instead of
the owner polling ``MPI_Test``/``MPI_Wait`` (burning critical-section
acquisitions on empty progress polls), a callback is *attached* to the
request (:meth:`Request.attach_continuation`) and the runtime fires it
from its single completion path the instant the request completes --
on eager match, ACK, rendezvous data, or RMA flush.  The blocking calls
themselves are degenerate continuations (a counter latch, see
:class:`repro.sim.sync.CompletionLatch`), so there is exactly one
completion code path.  See DESIGN.md section 11.
"""

from __future__ import annotations

import enum
from itertools import count
from typing import Any, Callable, List, Optional

from .envelope import Envelope

__all__ = [
    "Continuation", "ReqKind", "ReqState", "Protocol", "Request",
    "RequestError",
]

_req_seq = count()


class RequestError(RuntimeError):
    """Invalid request state transition."""


class ReqKind(enum.Enum):
    SEND = "send"
    RECV = "recv"
    RMA = "rma"


class ReqState(enum.Enum):
    ISSUED = "issued"        # created in the main path
    POSTED = "posted"        # recv waiting in the posted queue
    PENDING = "pending"      # in flight (send injected / rndv handshake)
    COMPLETE = "complete"    # done, not yet freed (dangling)
    FREED = "freed"


class Protocol(enum.Enum):
    INLINE = "inline"   # payload rides the descriptor (<= inline threshold)
    EAGER = "eager"     # payload sent immediately, copied at receiver
    RNDV = "rndv"       # RTS/CTS handshake, then bulk data


class Continuation:
    """Cancellable handle for one completion callback on one request.

    Returned by :meth:`Request.attach_continuation`.  The callback is
    fired by the runtime's completion path (``MpiRuntime._complete``):

    * ``sync=False`` (the default, the user-facing form): the callback
      is *deferred* through the event queue -- it runs at the completion
      timestamp in ``(time, seq)`` order, after the completing critical
      section has been left, never while the domain lock is held;
    * ``sync=True`` (the runtime-internal form): the callback runs
      inline inside the completion path and must be pure O(1)
      bookkeeping (no sim time, no RNG, no events) -- this is what the
      blocking calls' counter latches use, and what keeps the refactored
      polling path schedule-identical to the hand-rolled loops.

    :meth:`detach` is cancellation-safe at every point of the race: not
    yet fired (the handle is unlinked), fire scheduled but not yet run
    (the pending dispatch is cancelled through the PR-4 cancellable
    timer handle), already run (no-op returning False).

    Freeing the request detaches cleanly through the same mechanism: a
    deferred fire still in flight when the owner frees the request (a
    blocking wait that discovers completion in its own poll frees in
    the same timestamp) is cancelled, not delivered.  Attach with
    ``sync=True`` -- or skip the blocking call entirely -- when the
    callback must observe every completion.
    """

    __slots__ = ("req", "fn", "sync", "fired", "detached", "_timer")

    def __init__(self, req: "Request", fn: Callable[["Request"], None],
                 sync: bool = False):
        self.req = req
        self.fn = fn
        self.sync = sync
        #: True once the callback has actually run.
        self.fired = False
        #: True once detached; a detached continuation never runs.
        self.detached = False
        #: Cancellable dispatch handle while a deferred fire is in
        #: flight (between completion and callback execution).
        self._timer = None

    def detach(self) -> bool:
        """Detach the continuation: the callback will never run.

        Returns True if this call prevented a (future or in-flight)
        fire; False if the callback already ran or the handle was
        already detached -- the losing side of the race, not an error.
        """
        if self.detached or self.fired:
            return False
        self.detached = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        conts = self.req._continuations
        if conts is not None and self in conts:
            conts.remove(self)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "detached" if self.detached
            else "fired" if self.fired
            else "attached"
        )
        kind = "sync " if self.sync else ""
        return f"<{kind}Continuation on req #{self.req.req_id} {state}>"


class Request:
    """One nonblocking operation."""

    __slots__ = (
        "req_id", "kind", "rank", "owner_tid", "envelope", "nbytes",
        "state", "protocol", "unexpected", "data",
        "t_issued", "t_completed", "t_freed", "peer",
        "vci", "vcis", "claimed", "error", "_done", "_continuations",
    )

    def __init__(
        self,
        kind: ReqKind,
        rank: int,
        owner_tid: int,
        envelope: Envelope,
        nbytes: int,
        now: float,
        protocol: Protocol = Protocol.EAGER,
        peer: Optional[int] = None,
    ):
        if nbytes < 0:
            raise ValueError(f"negative request size {nbytes}")
        self.req_id = next(_req_seq)
        self.kind = kind
        self.rank = rank
        self.owner_tid = owner_tid
        self.envelope = envelope
        self.nbytes = nbytes
        self.state = ReqState.ISSUED
        self.protocol = protocol
        #: For receives: did the message go through the unexpected queue?
        self.unexpected = False
        #: Delivered payload (receives) / payload to deliver (sends).
        self.data: Any = None
        self.t_issued = now
        self.t_completed: Optional[float] = None
        self.t_freed: Optional[float] = None
        self.peer = peer
        #: Primary arbitration-domain index (updated to the matching
        #: domain when a spanning wildcard receive is claimed).
        self.vci = 0
        #: All domain indices this request may live in: length 1 for
        #: routed operations; every domain for spanning wildcards.
        self.vcis = (0,)
        #: Set the instant a match decision is made.  Wildcard receives
        #: are posted to *every* domain; claiming atomically (between
        #: simulator yields) prevents a second domain matching the same
        #: request.
        self.claimed = False
        #: Set by the reliability layer when the retransmit budget is
        #: exhausted: the request is *completed* (so waiters unblock)
        #: but the transfer failed.
        self.error = False
        #: Cached COMPLETE-or-FREED flag: wait loops poll ``complete``
        #: once per request per progress gap, so it must be a plain
        #: attribute read, not an enum comparison.
        self._done = False
        #: Attached continuations in attach order (None until the first
        #: attach: most requests never carry one, so the common case
        #: pays a single attribute slot).
        self._continuations: Optional[List[Continuation]] = None

    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        return self._done

    @property
    def freed(self) -> bool:
        return self.state is ReqState.FREED

    @property
    def dangling(self) -> bool:
        return self.state is ReqState.COMPLETE

    # ------------------------------------------------------------------
    def attach_continuation(
        self, fn: Callable[["Request"], None], sync: bool = False,
    ) -> Continuation:
        """Attach ``fn(request)`` to run when this request completes.

        The runtime fires attached continuations from its single
        completion path (match / ACK / rendezvous data / RMA flush) in
        attach order, each dispatched at the completion timestamp in the
        simulator's ``(time, seq)`` total order -- the caller never
        re-enters the critical section to learn about completion.

        Attaching to an *already complete* request runs the callback
        synchronously here, in the attaching caller's own dispatch slot:
        the completion path has already run, so there is no later hook
        to defer through -- deterministic, and documented as such.

        Attaching to a **freed** request raises :class:`RequestError`
        (the dangling-continuation guard): the request object is dead,
        the callback could never fire, and silently dropping it hides a
        lifecycle bug in the caller.
        """
        if not callable(fn):
            raise TypeError(f"continuation callback must be callable, got {fn!r}")
        if self.state is ReqState.FREED:
            raise RequestError(
                f"cannot attach a continuation to freed request "
                f"#{self.req_id} (dangling continuation)"
            )
        handle = Continuation(self, fn, sync=sync)
        if self._done:
            # Completed but not yet freed: fire immediately, in the
            # attaching caller's context.
            handle.fired = True
            fn(self)
            return handle
        if self._continuations is None:
            self._continuations = [handle]
        else:
            self._continuations.append(handle)
        return handle

    def detach_continuation(self, handle: Continuation) -> bool:
        """Detach a previously attached continuation (see
        :meth:`Continuation.detach`)."""
        if handle.req is not self:
            raise ValueError(
                f"continuation {handle!r} does not belong to request "
                f"#{self.req_id}"
            )
        return handle.detach()

    # ------------------------------------------------------------------
    def mark_posted(self) -> None:
        # Idempotent for POSTED: a spanning wildcard receive is posted
        # to every arbitration domain.
        if self.state is ReqState.POSTED:
            return
        if self.state is not ReqState.ISSUED:
            raise RequestError(f"cannot post request in state {self.state}")
        self.state = ReqState.POSTED

    def mark_pending(self) -> None:
        if self.state not in (ReqState.ISSUED, ReqState.POSTED):
            raise RequestError(f"cannot set pending in state {self.state}")
        self.state = ReqState.PENDING

    def mark_complete(self, now: float) -> None:
        if self._done:
            raise RequestError(f"request {self.req_id} completed twice")
        self.state = ReqState.COMPLETE
        self._done = True
        self.t_completed = now

    def mark_freed(self, now: float) -> None:
        if self.state is not ReqState.COMPLETE:
            raise RequestError(
                f"cannot free request {self.req_id} in state {self.state}"
            )
        self.state = ReqState.FREED
        self.t_freed = now
        # Free detaches cleanly: sync handles fired (or detached) inside
        # the completion path and are already unlinked; any handle still
        # here is a deferred fire whose dispatch the free overtook in the
        # same timestamp.  Cancel it through its cancellable timer -- the
        # callback never runs against a freed request.  A fire that still
        # slips through (a free that bypasses this detach) is caught by
        # the runtime's dangling-continuation guard, which raises rather
        # than silently running the callback.
        conts = self._continuations
        self._continuations = None
        if conts is not None:
            for handle in conts:
                handle.detached = True
                if handle._timer is not None:
                    handle._timer.cancel()
                    handle._timer = None

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Request #{self.req_id} {self.kind.value} rank={self.rank} "
            f"{self.envelope} {self.nbytes}B {self.state.value}>"
        )
