"""Collective operations built on the runtime's pt2pt path.

Implemented with the classic MPICH algorithms (binomial trees, pairwise
exchange, dissemination barrier), so every collective exercises the same
critical section and progress engine the paper studies.

Tag discipline: collectives draw tags from a reserved space above
``COLL_TAG_BASE`` keyed by a per-communicator sequence number, so they
never match application traffic.  As in MPI, all ranks must invoke
collectives over a communicator in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .runtime import MpiThread

__all__ = [
    "Communicator", "barrier", "bcast", "reduce", "allreduce",
    "alltoall", "gather", "scatter", "allgather", "scan",
]

COLL_TAG_BASE = 1 << 20
_MAX_ROUNDS = 64


@dataclass(frozen=True)
class Communicator:
    """An ordered group of ranks with a communicator id."""

    id: int
    ranks: Tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.ranks)

    def index(self, rank: int) -> int:
        return self.ranks.index(rank)

    @staticmethod
    def world(n_ranks: int) -> "Communicator":
        return Communicator(id=0, ranks=tuple(range(n_ranks)))


def _next_tag(th: MpiThread, comm: Communicator) -> int:
    rt = th.runtime
    seq = rt.coll_seq.get(comm.id, 0)
    rt.coll_seq[comm.id] = seq + 1
    return COLL_TAG_BASE + seq * _MAX_ROUNDS


def barrier(th: MpiThread, comm: Communicator):
    """Dissemination barrier (works for any communicator size)."""
    p = comm.size
    if p == 1:
        return
        yield  # pragma: no cover
    me = comm.index(th.rank)
    base = _next_tag(th, comm)
    k = 0
    dist = 1
    while dist < p:
        dst = comm.ranks[(me + dist) % p]
        src = comm.ranks[(me - dist) % p]
        sreq = yield from th.isend(dst, 0, tag=base + k, comm=comm.id)
        rreq = yield from th.irecv(source=src, tag=base + k, comm=comm.id)
        yield from th.waitall((sreq, rreq))
        dist <<= 1
        k += 1


def bcast(
    th: MpiThread,
    comm: Communicator,
    value: Any = None,
    root: int = 0,
    nbytes: int = 8,
):
    """Binomial-tree broadcast; returns the root's value on every rank."""
    p = comm.size
    if p == 1:
        return value
        yield  # pragma: no cover
    me = comm.index(th.rank)
    root_idx = comm.index(root)
    rel = (me - root_idx) % p
    base = _next_tag(th, comm)

    mask = 1
    while mask < p:
        if rel & mask:
            src = comm.ranks[((rel - mask) + root_idx) % p]
            value = yield from th.recv(source=src, nbytes=nbytes,
                                       tag=base, comm=comm.id)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if rel + mask < p:
            dst = comm.ranks[((rel + mask) + root_idx) % p]
            yield from th.send(dst, nbytes, tag=base, comm=comm.id, data=value)
        mask >>= 1
    return value


def reduce(
    th: MpiThread,
    comm: Communicator,
    value: Any,
    op: Callable[[Any, Any], Any],
    root: int = 0,
    nbytes: int = 8,
):
    """Binomial-tree reduction to ``root``; non-roots return None."""
    p = comm.size
    if p == 1:
        return value
        yield  # pragma: no cover
    me = comm.index(th.rank)
    root_idx = comm.index(root)
    rel = (me - root_idx) % p
    base = _next_tag(th, comm)

    acc = value
    mask = 1
    while mask < p:
        if rel & mask:
            dst = comm.ranks[((rel - mask) + root_idx) % p]
            yield from th.send(dst, nbytes, tag=base, comm=comm.id, data=acc)
            return None
        src_rel = rel + mask
        if src_rel < p:
            src = comm.ranks[(src_rel + root_idx) % p]
            other = yield from th.recv(source=src, nbytes=nbytes,
                                       tag=base, comm=comm.id)
            acc = op(acc, other)
        mask <<= 1
    return acc


def allreduce(
    th: MpiThread,
    comm: Communicator,
    value: Any,
    op: Callable[[Any, Any], Any],
    nbytes: int = 8,
):
    """Reduce to rank 0 of the communicator, then broadcast."""
    total = yield from reduce(th, comm, value, op, root=comm.ranks[0], nbytes=nbytes)
    total = yield from bcast(th, comm, total, root=comm.ranks[0], nbytes=nbytes)
    return total


def alltoall(
    th: MpiThread,
    comm: Communicator,
    values: Sequence[Any],
    nbytes_each: int = 8,
):
    """Pairwise-exchange all-to-all; ``values[i]`` goes to comm rank i.
    Returns the list of values received, indexed by source comm rank."""
    p = comm.size
    if len(values) != p:
        raise ValueError(f"need {p} values, got {len(values)}")
    me = comm.index(th.rank)
    base = _next_tag(th, comm)
    out: List[Optional[Any]] = [None] * p
    out[me] = values[me]
    for step in range(1, p):
        dst_idx = (me + step) % p
        src_idx = (me - step) % p
        sreq = yield from th.isend(
            comm.ranks[dst_idx], nbytes_each, tag=base + (step % _MAX_ROUNDS),
            comm=comm.id, data=values[dst_idx],
        )
        rreq = yield from th.irecv(
            source=comm.ranks[src_idx], nbytes=nbytes_each,
            tag=base + (step % _MAX_ROUNDS), comm=comm.id,
        )
        yield from th.waitall((sreq, rreq))
        out[src_idx] = rreq.data
    return out


def gather(
    th: MpiThread,
    comm: Communicator,
    value: Any,
    root: int = 0,
    nbytes: int = 8,
):
    """Binomial-tree gather: the root returns the list of values ordered
    by comm rank; non-roots return None.

    Each subtree forwards a partial dict {comm_rank: value} up the tree.
    """
    p = comm.size
    if p == 1:
        return [value]
        yield  # pragma: no cover
    me = comm.index(th.rank)
    root_idx = comm.index(root)
    rel = (me - root_idx) % p
    base = _next_tag(th, comm)

    acc = {me: value}
    mask = 1
    while mask < p:
        if rel & mask:
            dst = comm.ranks[((rel - mask) + root_idx) % p]
            yield from th.send(dst, nbytes * len(acc), tag=base, comm=comm.id,
                               data=acc)
            return None
        src_rel = rel + mask
        if src_rel < p:
            src = comm.ranks[(src_rel + root_idx) % p]
            part = yield from th.recv(source=src, nbytes=nbytes * (mask),
                                      tag=base, comm=comm.id)
            acc.update(part)
        mask <<= 1
    return [acc[i] for i in range(p)]


def scatter(
    th: MpiThread,
    comm: Communicator,
    values: Optional[Sequence[Any]] = None,
    root: int = 0,
    nbytes: int = 8,
):
    """Binomial-tree scatter: every rank returns its slice of the root's
    ``values`` (indexed by comm rank).

    Payloads travel as ``{comm_index: value}`` dicts covering the
    receiving node's subtree; each hop halves the span.
    """
    p = comm.size
    me = comm.index(th.rank)
    root_idx = comm.index(root)
    rel = (me - root_idx) % p
    if rel == 0:
        if values is None or len(values) != p:
            raise ValueError(f"root must supply {p} values")
        payload = {i: v for i, v in enumerate(values)}
    else:
        payload = None
    if p == 1:
        return payload[0]
        yield  # pragma: no cover
    base = _next_tag(th, comm)

    # Receive phase: obtain the dict covering my subtree (span = mask).
    mask = 1
    while mask < p:
        if rel & mask:
            src = comm.ranks[((rel - mask) + root_idx) % p]
            payload = yield from th.recv(source=src, nbytes=nbytes * mask,
                                         tag=base, comm=comm.id)
            break
        mask <<= 1
    # ``mask`` is now my subtree's span (for the root: >= p).
    mask >>= 1
    # Send phase: each child rel+mask owns the upper half of my span.
    while mask > 0:
        child_rel = rel + mask
        if child_rel < p:
            dst = comm.ranks[(child_rel + root_idx) % p]
            child = {
                i: v for i, v in payload.items()
                if child_rel <= (i - root_idx) % p < child_rel + mask
            }
            yield from th.send(dst, nbytes * max(1, len(child)), tag=base,
                               comm=comm.id, data=child)
            payload = {i: v for i, v in payload.items() if i not in child}
        mask >>= 1
    return payload[me]


def allgather(
    th: MpiThread,
    comm: Communicator,
    value: Any,
    nbytes: int = 8,
):
    """Gather to comm rank 0, then broadcast the full list."""
    root = comm.ranks[0]
    vals = yield from gather(th, comm, value, root=root, nbytes=nbytes)
    vals = yield from bcast(th, comm, vals, root=root,
                            nbytes=nbytes * comm.size)
    return vals


def scan(
    th: MpiThread,
    comm: Communicator,
    value: Any,
    op: Callable[[Any, Any], Any],
    nbytes: int = 8,
):
    """Inclusive prefix reduction (linear pipeline): rank i returns
    op(v_0, ..., v_i)."""
    p = comm.size
    me = comm.index(th.rank)
    if p == 1:
        return value
        yield  # pragma: no cover
    base = _next_tag(th, comm)
    acc = value
    if me > 0:
        left = comm.ranks[me - 1]
        prefix = yield from th.recv(source=left, nbytes=nbytes, tag=base,
                                    comm=comm.id)
        acc = op(prefix, value)
    if me < p - 1:
        right = comm.ranks[me + 1]
        yield from th.send(right, nbytes, tag=base, comm=comm.id, data=acc)
    return acc
