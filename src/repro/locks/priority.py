"""The paper's custom priority locking scheme (5.2, Fig. 7).

Threads on the MPI *main path* (posting new work) acquire at HIGH
priority, threads polling in the *progress loop* at LOW.  The scheme is
built from three ticket locks, exactly as in Fig. 7:

* ``ticket_H`` -- FIFO among high-priority threads,
* ``ticket_L`` -- FIFO among low-priority threads,
* ``ticket_B`` -- held on behalf of the *high-priority class* while any
  high-priority thread is inside, blocking the low class.

The ``already_blocked`` flag lets high-priority threads chain the hold on
``ticket_B`` without re-acquiring it; the *last* high-priority releaser
hands ``ticket_B`` to the low class.  Fairness inside each class comes
from the tickets -- the property the paper stresses a mutex-based
hierarchy would lack (7).

Also here: :class:`SocketAwareLock`, the 7-discussion variant that
prefers same-socket waiters to cut hand-off cost.  The paper predicts it
can starve remote sockets under ``MPI_Test`` polling; the ablation bench
reproduces that failure mode.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..machine.threads import ThreadCtx
from ..machine.topology import Core
from .base import LockError, Priority, SimLock
from .ticket import TicketLock

__all__ = ["PriorityTicketLock", "SocketAwareLock"]


class PriorityTicketLock(SimLock):
    """Two-level priority lock composed of three ticket locks (Fig. 7)."""

    strict_owner = False

    def __init__(self, sim, costs, name: str = "", trace=None):
        super().__init__(sim, costs, name=name, trace=trace)
        base = name or f"prio#{self.lock_id}"
        self.ticket_h = TicketLock(sim, costs, name=f"{base}.H")
        self.ticket_l = TicketLock(sim, costs, name=f"{base}.L")
        self.ticket_b = TicketLock(sim, costs, name=f"{base}.B")
        # The B ticket is held on behalf of the high-priority *class*;
        # its owner marker may go stale, so owner-reentry must queue.
        self.ticket_b.allow_owner_reentry = True
        # Witness families match deadcheck's static identities for
        # ``self.ticket_*`` acquires in this class, so runtime
        # H-before-B / L-before-B edges confirm the static graph
        # regardless of rank/shard decorations in the instance names.
        self.ticket_h.order_class = "PriorityTicketLock.ticket_h"
        self.ticket_l.order_class = "PriorityTicketLock.ticket_l"
        self.ticket_b.order_class = "PriorityTicketLock.ticket_b"
        self.already_blocked = False
        self._holder_prio: Dict[int, Priority] = {}

    def sub_locks(self):
        return (self.ticket_h, self.ticket_l, self.ticket_b)

    # ------------------------------------------------------------------
    def acquire(self, ctx: ThreadCtx, priority: Priority = Priority.HIGH):
        self._enter(ctx)
        if priority == Priority.HIGH:
            yield from self.ticket_h.acquire(ctx)
            if not self.already_blocked:
                yield from self.ticket_b.acquire(ctx)
                self.already_blocked = True
        else:
            yield from self.ticket_l.acquire(ctx)
            yield from self.ticket_b.acquire(ctx)
        self._holder_prio[ctx.tid] = priority
        self._grant(ctx)

    def release(self, ctx: ThreadCtx) -> float:
        prio = self._holder_prio.pop(ctx.tid, None)
        if prio is None:
            raise LockError(f"{ctx.name} does not hold {self.name}")
        self._release_checks(ctx)
        cost = 0.0
        if prio == Priority.HIGH:
            if self.ticket_h.n_queued == 0:
                # Last high-priority thread: let the low class pass.
                cost += self.ticket_b.release(ctx)
                self.already_blocked = False
            cost += self.ticket_h.release(ctx)
        else:
            cost += self.ticket_b.release(ctx)
            cost += self.ticket_l.release(ctx)
        return cost


class SocketAwareLock(SimLock):
    """FIFO-per-socket lock preferring waiters on the releaser's socket.

    On release the earliest waiter on the *same socket* is granted if one
    exists, otherwise the globally earliest waiter.  This minimizes
    intersocket hand-offs but sacrifices global fairness -- under a
    polling workload one socket can monopolize the lock indefinitely
    (the starvation case discussed in paper 7).
    """

    def __init__(self, sim, costs, name: str = "", trace=None):
        super().__init__(sim, costs, name=name, trace=trace)
        self._seq = 0
        #: waiting: tid -> (arrival_seq, event, ctx)
        self._waiting: Dict[int, tuple] = {}
        self._held = False
        self._last_core: Optional[Core] = None

    @property
    def n_queued(self) -> int:
        return len(self._waiting)

    def acquire(self, ctx: ThreadCtx, priority: Priority = Priority.HIGH):
        self._enter(ctx)
        yield self.sim.timeout(self._atomic_cost(ctx.core))
        self.line_owner = ctx.core
        if not self._held:
            self._held = True
            self._grant(ctx)
            return
        ev = self.sim.event(name=f"sock:{self.name}:{ctx.name}")
        self._waiting[ctx.tid] = (self._seq, ev, ctx)
        self._seq += 1
        yield ev
        self._grant(ctx)

    def release(self, ctx: ThreadCtx) -> float:
        self._release_checks(ctx)
        if not self._waiting:
            self._held = False
            return 0.0
        same = [
            rec for rec in self._waiting.values() if rec[2].socket == ctx.socket
        ]
        pool = same if same else list(self._waiting.values())
        seq, ev, wctx = min(pool, key=lambda rec: rec[0])
        del self._waiting[wctx.tid]
        self.sim.call_after(self._handoff_cost(ctx.core, wctx.core), ev.succeed)
        return 0.0
