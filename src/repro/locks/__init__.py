"""Critical-section arbitration methods (the paper's subject).

``LOCK_CLASSES`` maps the names used throughout the experiment configs to
implementations:

=============  =====================================================
``mutex``      NPTL pthread mutex model (baseline, paper 2.2)
``adaptive``   glibc adaptive mutex: spin briefly, then park
``ticket``     FCFS ticket lock (paper 5.1, Fig. 4)
``priority``   Two-level priority ticket lock (paper 5.2, Fig. 7)
``mcs``        MCS queue lock (related work)
``tas``        Test-and-set spinlock (related work)
``ttas``       Test-and-test-and-set spinlock (related work)
``socket``     Socket-aware lock (paper 7 discussion; ablation)
``clh``        CLH queue lock (related work)
``cohort``     NUMA cohort lock with bounded local handover (extension)
``null``       No-op lock for MPI_THREAD_SINGLE runs
=============  =====================================================
"""

from .base import LockError, NullLock, Priority, SimLock
from .clh import CLHLock
from .cohort import CohortTicketLock
from .domain import ArbitrationDomain, DomainStats, aggregate_domain_stats
from .mcs import MCSLock
from .mutex import AdaptiveMutexModel, PthreadMutexModel
from .priority import PriorityTicketLock, SocketAwareLock
from .spin import TASLock, TTASLock
from .stats import LockTrace
from .ticket import TicketLock

LOCK_CLASSES = {
    "mutex": PthreadMutexModel,
    "adaptive": AdaptiveMutexModel,
    "ticket": TicketLock,
    "priority": PriorityTicketLock,
    "mcs": MCSLock,
    "tas": TASLock,
    "ttas": TTASLock,
    "socket": SocketAwareLock,
    "clh": CLHLock,
    "cohort": CohortTicketLock,
    "null": NullLock,
}


def make_lock(kind: str, sim, costs, name: str = "", trace=None) -> SimLock:
    """Instantiate a lock by config name (see ``LOCK_CLASSES``)."""
    try:
        cls = LOCK_CLASSES[kind]
    except KeyError:
        raise ValueError(
            f"unknown lock kind {kind!r}; expected one of {sorted(LOCK_CLASSES)}"
        ) from None
    return cls(sim, costs, name=name or kind, trace=trace)


__all__ = [
    "SimLock",
    "NullLock",
    "Priority",
    "LockError",
    "LockTrace",
    "PthreadMutexModel",
    "AdaptiveMutexModel",
    "TicketLock",
    "MCSLock",
    "TASLock",
    "TTASLock",
    "PriorityTicketLock",
    "SocketAwareLock",
    "CLHLock",
    "CohortTicketLock",
    "LOCK_CLASSES",
    "make_lock",
    "ArbitrationDomain",
    "DomainStats",
    "aggregate_domain_stats",
]
