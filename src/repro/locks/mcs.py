"""The MCS queue lock (Mellor-Crummey & Scott, referenced in paper 8).

FIFO like the ticket lock, but each waiter spins on a *local* queue-node
flag instead of the shared ``now_serving`` counter, so waiting generates no
global coherence traffic.  Entry is a single atomic swap on the tail
pointer; hand-off is a store to the successor's node (one cache-line
transfer to the successor's core).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from ..machine.threads import ThreadCtx
from .base import Priority, SimLock

__all__ = ["MCSLock"]


class MCSLock(SimLock):
    """Queue lock with local spinning."""

    strict_owner = False

    def __init__(self, sim, costs, name: str = "", trace=None):
        super().__init__(sim, costs, name=name, trace=trace)
        #: FIFO of (grant event, ctx) for queued waiters; the head of the
        #: conceptual MCS list is the current owner (not stored here).
        self._queue: Deque[Tuple[object, ThreadCtx]] = deque()
        self._tail_occupied = False

    @property
    def n_queued(self) -> int:
        return len(self._queue)

    def acquire(self, ctx: ThreadCtx, priority: Priority = Priority.HIGH):
        self._enter(ctx)
        # Atomic swap on the tail pointer.
        yield self.sim.timeout(self._atomic_cost(ctx.core))
        self.line_owner = ctx.core
        if not self._tail_occupied:
            self._tail_occupied = True
            self._grant(ctx)
            return
        ev = self.sim.event(name=f"mcs:{self.name}:{ctx.name}")
        self._queue.append((ev, ctx))
        yield ev
        self._grant(ctx)

    def release(self, ctx: ThreadCtx) -> float:
        self._release_checks(ctx)
        if self._queue:
            ev, wctx = self._queue.popleft()
            # Store to the successor's locally-spun flag: one line
            # transfer from releaser to successor.
            self.sim.call_after(self._handoff_cost(ctx.core, wctx.core), ev.succeed)
        else:
            # CAS tail back to nil.
            self._tail_occupied = False
        return 0.0
