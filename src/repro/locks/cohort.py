"""A NUMA-aware cohort lock with bounded same-socket handover.

The paper's 7 discusses a socket-aware arbitration that prefers
same-socket waiters to cut intersocket hand-offs, and predicts it "may
lead to starvation" under polling workloads --
:class:`~repro.locks.priority.SocketAwareLock` reproduces that failure.
Lock cohorting (Dice, Marathe & Shavit, PPoPP'12) is the principled fix:
keep the lock within the releaser's socket, but only for at most
``max_handover`` consecutive local hand-offs, after which it *must*
cross to the other socket's FIFO.  This bounds remote-waiter delay while
still batching the expensive intersocket transfers -- exactly the
"future work" direction the paper closes with.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

from ..machine.threads import ThreadCtx
from .base import Priority, SimLock

__all__ = ["CohortTicketLock"]


class CohortTicketLock(SimLock):
    """Per-socket FIFO queues with bounded local handover."""

    #: Consecutive same-socket hand-offs before the lock must migrate.
    max_handover = 8

    def __init__(self, sim, costs, name: str = "", trace=None,
                 max_handover: int | None = None):
        super().__init__(sim, costs, name=name, trace=trace)
        if max_handover is not None:
            if max_handover < 1:
                raise ValueError("max_handover must be >= 1")
            self.max_handover = max_handover
        #: socket -> FIFO of (arrival_seq, event, ctx)
        self._queues: Dict[int, Deque[Tuple[int, object, ThreadCtx]]] = {}
        self._held = False
        self._local_streak = 0
        self._arrival_seq = 0
        # Diagnostics
        self.local_handoffs = 0
        self.remote_handoffs = 0

    @property
    def n_queued(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def acquire(self, ctx: ThreadCtx, priority: Priority = Priority.HIGH):
        self._enter(ctx)
        # Atomic on the socket-local queue tail (line usually local).
        yield self.sim.timeout(self._atomic_cost(ctx.core))
        self.line_owner = ctx.core
        if not self._held:
            self._held = True
            self._grant(ctx)
            return
        ev = self.sim.event(name=f"cohort:{self.name}:{ctx.name}")
        self._queues.setdefault(ctx.socket, deque()).append(
            (self._arrival_seq, ev, ctx)
        )
        self._arrival_seq += 1
        yield ev
        self._grant(ctx)

    def _pick_next(self, releaser: ThreadCtx):
        """Next owner: same socket while the streak allows and a local
        waiter exists; otherwise the longest-waiting other socket."""
        local = self._queues.get(releaser.socket)
        others = [
            (sock, q) for sock, q in self._queues.items()
            if sock != releaser.socket and q
        ]
        if local and self._local_streak < self.max_handover:
            self._local_streak += 1
            self.local_handoffs += 1
            return local.popleft()
        if others:
            self._local_streak = 0
            self.remote_handoffs += 1
            # FIFO across sockets: the socket whose head waited longest.
            sock, q = min(others, key=lambda sq: sq[1][0][0])
            return q.popleft()
        if local:
            # Streak exhausted but nobody waits remotely: stay local.
            self.local_handoffs += 1
            return local.popleft()
        return None

    def release(self, ctx: ThreadCtx) -> float:
        self._release_checks(ctx)
        nxt = self._pick_next(ctx)
        if nxt is None:
            self._held = False
            self._local_streak = 0
            return 0.0
        _seq, ev, wctx = nxt
        self.sim.call_after(self._handoff_cost(ctx.core, wctx.core), ev.succeed)
        return 0.0
