"""Arbitration domains: sharded critical sections.

The paper's runtime guards *all* communication state with one global
critical section; every remedy it studies (ticket, priority) only
re-arbitrates that single lock.  An :class:`ArbitrationDomain` is one
shard of that state: it owns a :class:`~repro.locks.base.SimLock`, the
matching queues (posted / unexpected) protected by it, its slice of the
NIC (one per-VCI receive queue), and its own statistics.  The runtime
routes each operation to a domain through a
:class:`~repro.mpi.vci.CsPolicy`; with one ``global`` domain the model
reduces exactly to the paper's.

Invariants that were runtime-global become per-domain here:

* the single-slot open critical-section span (``_cs_span``) -- safe
  because each *domain's* CS is mutually exclusive, while different
  domains are concurrently held by different threads;
* dangling-request accounting -- each domain counts the completed-but-
  not-freed requests it owns, and the runtime's total is the sum
  (checked by ``tests/mpi/test_domains.py``).
"""

from __future__ import annotations

from typing import List, Optional

from .base import SimLock

__all__ = ["ArbitrationDomain", "DomainStats", "aggregate_domain_stats"]


class DomainStats:
    """Per-domain counters (the per-domain slice of ``RuntimeStats``)."""

    __slots__ = (
        "cs_entries_main", "cs_entries_progress", "progress_polls",
        "empty_polls", "packets_handled", "posted_hits", "unexpected_hits",
        "completed", "freed", "dangling", "peak_dangling",
    )

    def __init__(self):
        for f in self.__slots__:
            setattr(self, f, 0)

    def as_dict(self) -> dict:
        return {f: getattr(self, f) for f in self.__slots__}


def aggregate_domain_stats(domains: "List[ArbitrationDomain]") -> dict:
    """Sum counters across domains (``peak_dangling`` takes the max:
    peaks in different domains need not coincide in time, so the sum
    would overstate the rank-wide peak)."""
    out = {f: 0 for f in DomainStats.__slots__}
    for d in domains:
        for f in DomainStats.__slots__:
            if f == "peak_dangling":
                out[f] = max(out[f], d.stats.peak_dangling)
            else:
                out[f] += getattr(d.stats, f)
    return out


class ArbitrationDomain:
    """One shard of a rank's critical section and communication state."""

    def __init__(self, index: int, lock: SimLock, recv_q=None):
        self.index = index
        self.lock = lock
        # Lazy import: the locks layer must stay importable without
        # pulling the mpi package (which itself imports repro.locks).
        from ..mpi.queues import PostedQueue, UnexpectedQueue

        self.posted_q = PostedQueue()
        self.unexp_q = UnexpectedQueue()
        # Declare the protection domain: both matching queues may only
        # be touched while holding this domain's lock (checked by the
        # simsan lockset sanitizer when one is attached).
        self.posted_q.guard = lock.name
        self.unexp_q.guard = lock.name
        #: This domain's NIC slice: the per-VCI receive queue drained by
        #: its progress engine.  Bound by the runtime at construction.
        self.recv_q = recv_q
        self.stats = DomainStats()
        #: Name of the currently-open critical-section span ("cs.main"
        #: or "cs.progress").  Single slot per *domain*: this domain's
        #: CS is mutually exclusive, so at most one holder span is open.
        self._cs_span: Optional[str] = None

    def note_complete(self) -> None:
        """Account one request completion (dangling goes up)."""
        self.stats.completed += 1
        self.stats.dangling += 1
        if self.stats.dangling > self.stats.peak_dangling:
            self.stats.peak_dangling = self.stats.dangling

    def note_free(self) -> None:
        """Account one request free (dangling goes down)."""
        self.stats.freed += 1
        self.stats.dangling -= 1

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ArbitrationDomain #{self.index} lock={self.lock.name} "
            f"posted={len(self.posted_q)} unexp={len(self.unexp_q)} "
            f"dangling={self.stats.dangling}>"
        )
