"""The ticket lock (paper Fig. 4): FCFS arbitration in user space.

Each thread performs one ``fetch_and_increment`` on ``next_ticket`` and
spins until ``now_serving`` reaches its ticket.  Arbitration order is
fixed at the fetch&inc, so the NUMA bias of the CAS race disappears; what
remains NUMA-dependent is the *hand-off*: the waiter observes the
releaser's ``now_serving`` store only after the cache line travels, which
is why a fair lock pays more intersocket traffic under scatter bindings
(paper 5.1, Fig. 5b).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..machine.threads import ThreadCtx
from .base import LockError, Priority, SimLock

__all__ = ["TicketLock"]


class TicketLock(SimLock):
    """FIFO spinlock with one atomic per acquisition."""

    # The priority lock releases inner tickets from threads other than
    # the acquirer (Fig. 7), so ownership is asserted loosely.
    strict_owner = False

    def __init__(self, sim, costs, name: str = "", trace=None):
        super().__init__(sim, costs, name=name, trace=trace)
        self.next_ticket = 0
        self.now_serving = 0
        #: ticket number -> (grant event, waiting thread)
        self._waiting: Dict[int, Tuple[object, ThreadCtx]] = {}

    # ------------------------------------------------------------------
    @property
    def n_queued(self) -> int:
        """Threads holding a ticket but not yet served."""
        return len(self._waiting)

    def acquire(self, ctx: ThreadCtx, priority: Priority = Priority.HIGH):
        self._enter(ctx)
        # fetch&inc on the ticket counter line.
        yield self.sim.timeout(self._atomic_cost(ctx.core))
        self.line_owner = ctx.core
        my_ticket = self.next_ticket
        self.next_ticket += 1
        if my_ticket == self.now_serving:
            if self.owner is not None:  # pragma: no cover - invariant
                raise LockError(f"ticket {my_ticket} serving but lock held")
            self._grant(ctx)
            return
        ev = self.sim.event(name=f"ticket:{self.name}:{my_ticket}")
        self._waiting[my_ticket] = (ev, ctx)
        yield ev
        self._grant(ctx)

    def release(self, ctx: ThreadCtx) -> float:
        self._release_checks(ctx)
        self.now_serving += 1
        nxt = self._waiting.pop(self.now_serving, None)
        if nxt is not None:
            ev, wctx = nxt
            # The waiter spins on now_serving; it observes the store after
            # the cache line reaches its core.
            self.sim.call_after(self._handoff_cost(ctx.core, wctx.core), ev.succeed)
        return 0.0
