"""The NPTL pthread-mutex model (the paper's baseline).

Locking a default (non-PI, non-adaptive) NPTL mutex works as described in
paper 2.2:

1. The thread attempts a user-space compare-and-swap.
2. On failure it parks in the kernel with ``FUTEX_WAIT``.
3. The releaser stores "free" and issues ``FUTEX_WAKE`` for at most one
   sleeper; the woken thread *retries the CAS in user space* and, losing,
   parks again.

Nothing reserves the lock for the woken thread, so arbitration follows the
"fastest thread first" rule: whoever's CAS lands first wins.  Two physical
facts bias that race (paper 4.3):

* the releasing thread can re-CAS within nanoseconds (lock line in L1,
  no syscall), while a futex wake costs microseconds; and
* a CAS is faster the closer the requester sits to the cache line's
  current owner, so same-socket threads beat remote ones.

This model charges exactly those latencies and nothing else; the core- and
socket-level bias measured on traces (Fig. 3a) *emerges* from the timing,
it is not sampled from a target distribution.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from ..machine.threads import ThreadCtx
from .base import Priority, SimLock

__all__ = ["PthreadMutexModel", "AdaptiveMutexModel"]


class PthreadMutexModel(SimLock):
    """Futex-based mutex with user-space barging (NPTL default type)."""

    def __init__(self, sim, costs, name: str = "", trace=None):
        super().__init__(sim, costs, name=name, trace=trace)
        #: Parked threads in kernel FIFO order: (wake_event, ctx).
        self._futex_q: Deque[Tuple[object, ThreadCtx]] = deque()
        #: Diagnostic counters.
        self.cas_attempts = 0
        self.cas_failures = 0
        self.futex_waits = 0
        self.futex_wakes = 0

    # ------------------------------------------------------------------
    def acquire(self, ctx: ThreadCtx, priority: Priority = Priority.HIGH):
        self._enter(ctx)
        while True:
            # --- user-space CAS attempt ---------------------------------
            yield self.sim.timeout(self._atomic_cost(ctx.core))
            self.cas_attempts += 1
            # The RMW takes the line exclusive even when the comparison
            # fails, so the line moves to this core either way.
            self.line_owner = ctx.core
            if self.owner is None:
                self._grant(ctx)
                return
            self.cas_failures += 1

            # --- kernel path: park on the futex -------------------------
            yield self.sim.timeout(self.costs.futex_sleep)
            # FUTEX_WAIT re-checks the futex word before sleeping; if the
            # lock was freed while we were entering the kernel, retry.
            if self.owner is None:
                continue
            self.futex_waits += 1
            ev = self.sim.event(name=f"futex:{self.name}:{ctx.name}")
            self._futex_q.append((ev, ctx))
            yield ev
            # Woken: loop back and race the CAS against everyone else.

    def release(self, ctx: ThreadCtx) -> float:
        self._release_checks(ctx)
        cost = 0.0
        if self.line_owner is not None and self.line_owner.index != ctx.core.index:
            # A woken waiter's CAS retry stole the lock line mid-hold;
            # the unlock store must pull it back first.
            cost += self.costs.atomic(ctx.core.proximity(self.line_owner))
        # The releasing store dirties the line in this core's cache.
        self.line_owner = ctx.core
        if self._futex_q:
            ev, _wctx = self._futex_q.popleft()
            self.futex_wakes += 1
            # FUTEX_WAKE: syscall + IPI + scheduler latency before the
            # woken thread is back in user space retrying its CAS.
            self.sim.call_after(self.costs.futex_wake, ev.succeed)
            # The *releaser* is stuck in the syscall meanwhile -- a
            # contended unlock is far more expensive than an uncontended
            # one, which is the main per-message penalty the mutex pays.
            cost += self.costs.futex_wake_syscall
        return cost


class AdaptiveMutexModel(PthreadMutexModel):
    """glibc's ``PTHREAD_MUTEX_ADAPTIVE_NP``: spin briefly before parking.

    The thread retries its CAS in user space for up to ``max_spins``
    attempts (each paying the RMW latency plus a pause) and only then
    falls back to the futex.  Spinning keeps short waits cheap and makes
    the arbitration race *more* proximity-biased than the default mutex
    (spinners are always in the race), while long waits still park --
    an intermediate point between the mutex and the spinlocks.
    """

    #: CAS retries in user space before parking.
    max_spins = 10
    #: Pause between spin attempts (ns).
    spin_pause_ns = 40.0

    def acquire(self, ctx: ThreadCtx, priority: Priority = Priority.HIGH):
        self._enter(ctx)
        while True:
            # --- adaptive user-space spin phase ------------------------
            for _ in range(self.max_spins):
                yield self.sim.timeout(self._atomic_cost(ctx.core))
                self.cas_attempts += 1
                self.line_owner = ctx.core
                if self.owner is None:
                    self._grant(ctx)
                    return
                self.cas_failures += 1
                yield self.sim.timeout(self.spin_pause_ns * 1e-9)

            # --- kernel path: park on the futex ------------------------
            yield self.sim.timeout(self.costs.futex_sleep)
            if self.owner is None:
                continue
            self.futex_waits += 1
            ev = self.sim.event(name=f"futex:{self.name}:{ctx.name}")
            self._futex_q.append((ev, ctx))
            yield ev
