"""The CLH queue lock (Craig; Landin & Hagersten).

FIFO like MCS, but each waiter spins on its *predecessor's* node flag:
entry is one atomic swap on the tail; release is a store to the
releaser's own node, observed by the successor after one line transfer.
Included for the related-work comparison (paper 8): in this model its
behaviour differs from MCS only in which line carries the hand-off,
so their performance is near-identical -- as on real hardware.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from ..machine.threads import ThreadCtx
from .base import Priority, SimLock

__all__ = ["CLHLock"]


class CLHLock(SimLock):
    """Queue lock spinning on the predecessor's node."""

    strict_owner = False

    def __init__(self, sim, costs, name: str = "", trace=None):
        super().__init__(sim, costs, name=name, trace=trace)
        #: FIFO of (grant event, ctx); the implicit head is the owner.
        self._queue: Deque[Tuple[object, ThreadCtx]] = deque()
        self._tail_occupied = False

    @property
    def n_queued(self) -> int:
        return len(self._queue)

    def acquire(self, ctx: ThreadCtx, priority: Priority = Priority.HIGH):
        self._enter(ctx)
        # Atomic swap of the tail pointer to this thread's node.
        yield self.sim.timeout(self._atomic_cost(ctx.core))
        self.line_owner = ctx.core
        if not self._tail_occupied:
            self._tail_occupied = True
            self._grant(ctx)
            return
        ev = self.sim.event(name=f"clh:{self.name}:{ctx.name}")
        self._queue.append((ev, ctx))
        yield ev
        self._grant(ctx)

    def release(self, ctx: ThreadCtx) -> float:
        self._release_checks(ctx)
        if self._queue:
            ev, wctx = self._queue.popleft()
            # Successor spins on the releaser's node: the hand-off store
            # travels releaser -> successor.
            self.sim.call_after(self._handoff_cost(ctx.core, wctx.core), ev.succeed)
        else:
            self._tail_occupied = False
        return 0.0
