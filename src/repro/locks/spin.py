"""Classic spinlocks: TAS and TTAS (paper 8, related work).

These are not used by the reproduced MPICH configurations but serve the
related-work comparison and the ablation benches: TAS hammers the lock
line with atomic RMWs while waiting; TTAS spins on a read-only copy and
attempts the RMW only when it observes the lock free.  Both inherit the
proximity-biased race of the mutex's user space -- without the futex
parking, so monopolization is milder but coherence traffic is worse.
"""

from __future__ import annotations

from ..machine.costs import NS
from ..machine.threads import ThreadCtx
from .base import Priority, SimLock
from ..sim.sync import Signal

__all__ = ["TASLock", "TTASLock"]


class TASLock(SimLock):
    """Test-and-set: retry the atomic RMW in a tight loop."""

    #: Pause between failed RMW attempts (ns); models the pipeline cost
    #: of back-to-back locked instructions.
    retry_gap_ns = 30.0

    def acquire(self, ctx: ThreadCtx, priority: Priority = Priority.HIGH):
        self._enter(ctx)
        while True:
            yield self.sim.timeout(self._atomic_cost(ctx.core))
            self.line_owner = ctx.core
            if self.owner is None:
                self._grant(ctx)
                return
            yield self.sim.timeout(self.retry_gap_ns * NS)

    def release(self, ctx: ThreadCtx) -> float:
        self._release_checks(ctx)
        self.line_owner = ctx.core
        return 0.0


class TTASLock(SimLock):
    """Test-and-test-and-set: spin on a read, RMW only when free.

    Waiters hold a shared copy of the line while the lock is held, so
    they impose no RMW traffic; on release they all observe the store
    (after a proximity-dependent delay) and race one RMW each.
    """

    def __init__(self, sim, costs, name: str = "", trace=None):
        super().__init__(sim, costs, name=name, trace=trace)
        self._released = Signal(sim, name=f"ttas:{self.name}")

    def acquire(self, ctx: ThreadCtx, priority: Priority = Priority.HIGH):
        self._enter(ctx)
        while True:
            if self.owner is not None:
                # Spin on the local (shared) copy until the release
                # invalidation reaches us.
                yield self._released.wait()
                yield self.sim.timeout(
                    self._handoff_cost(self.line_owner, ctx.core)
                )
            yield self.sim.timeout(self._atomic_cost(ctx.core))
            self.line_owner = ctx.core
            if self.owner is None:
                self._grant(ctx)
                return

    def release(self, ctx: ThreadCtx) -> float:
        self._release_checks(ctx)
        self.line_owner = ctx.core
        self._released.fire()
        return 0.0
