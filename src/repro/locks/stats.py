"""Lock acquisition traces.

The paper instruments MPICH to trace lock acquisitions and derives the
core/socket bias factors from the trace (4.3).  :class:`LockTrace` records
exactly the quantities those estimators need, per acquisition ``l``:

* the winner's thread id and socket,
* ``T_l``          -- total threads contending (winner included),
* ``T_{j,l}``      -- contenders on the *previous* owner's socket,

plus hold times for auxiliary analysis.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..machine.threads import ThreadCtx

__all__ = ["LockTrace"]


class LockTrace:
    """Append-only acquisition trace with numpy export.

    Two ways to populate one:

    * pass it to a lock (``make_lock(..., trace=trace)``): the lock
      calls :meth:`record_grant` / :meth:`record_release` directly
      (zero dependencies, the historical path);
    * :meth:`from_bus`: subscribe to a :class:`repro.obs.Instrument`
      bus and rebuild the same columns from ``lock`` events -- the
      trace becomes a thin adapter over the unified observability
      stream.  Both paths produce identical arrays for the same run.
    """

    def __init__(self):
        self.times: list[float] = []
        self.tids: list[int] = []
        self.sockets: list[int] = []
        self.n_contenders: list[int] = []
        self.n_contenders_prev_socket: list[int] = []
        self.hold_times: list[float] = []
        self._prev_socket: Optional[int] = None
        self._bus = None
        self._last_grant_ts: Optional[float] = None
        self._bus_lock_name: Optional[str] = None

    def __len__(self) -> int:
        return len(self.tids)

    # ------------------------------------------------------------------
    @classmethod
    def from_bus(cls, bus, lock_name: Optional[str] = None) -> "LockTrace":
        """Build a trace fed by bus events instead of direct lock calls.

        ``lock_name`` filters to one lock's events (e.g.
        ``"mutex@rank0"``); ``None`` accepts every lock on the bus --
        only sensible when a single lock is being traced.
        """
        trace = cls()
        trace._bus = bus
        trace._bus_lock_name = lock_name
        bus.subscribe(trace._on_event, categories=("lock",))
        return trace

    def detach(self) -> None:
        """Stop consuming bus events (no-op for directly-fed traces)."""
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            self._bus = None

    def _on_event(self, ev) -> None:
        # Grant instants carry the winner's socket and the contender
        # socket snapshot (winner included); hold-span ends mark the
        # release.  Event names are "<lock>.grant" / "<lock>.hold".
        base, _, suffix = ev.name.rpartition(".")
        if self._bus_lock_name is not None and base != self._bus_lock_name:
            return
        if suffix == "grant" and ev.kind.name == "INSTANT":
            sockets = tuple(ev.args["sockets"]) if ev.args else ()
            self.times.append(ev.ts)
            self.tids.append(ev.tid)
            self.sockets.append(ev.args["socket"] if ev.args else -1)
            self.n_contenders.append(len(sockets))
            prev = self._prev_socket
            self.n_contenders_prev_socket.append(
                0 if prev is None else sum(1 for s in sockets if s == prev)
            )
            self._prev_socket = ev.args["socket"] if ev.args else None
            self._last_grant_ts = ev.ts
        elif suffix == "hold" and ev.kind.name == "SPAN_END":
            if self._last_grant_ts is not None:
                self.record_release(ev.ts, self._last_grant_ts)

    # ------------------------------------------------------------------
    def record_grant(
        self, now: float, winner: ThreadCtx, contenders: Dict[int, ThreadCtx]
    ) -> None:
        """Record acquisition ``l``: called at grant time, winner still in
        ``contenders``."""
        self.times.append(now)
        self.tids.append(winner.tid)
        self.sockets.append(winner.socket)
        self.n_contenders.append(len(contenders))
        prev = self._prev_socket
        if prev is None:
            self.n_contenders_prev_socket.append(0)
        else:
            self.n_contenders_prev_socket.append(
                sum(1 for c in contenders.values() if c.socket == prev)
            )
        self._prev_socket = winner.socket

    def record_release(self, now: float, grant_time: float) -> None:
        self.hold_times.append(now - grant_time)

    # ------------------------------------------------------------------
    def as_arrays(self) -> dict:
        """Trace columns as numpy arrays (copies)."""
        return {
            "times": np.asarray(self.times, dtype=np.float64),
            "tids": np.asarray(self.tids, dtype=np.int64),
            "sockets": np.asarray(self.sockets, dtype=np.int64),
            "n_contenders": np.asarray(self.n_contenders, dtype=np.int64),
            "n_contenders_prev_socket": np.asarray(
                self.n_contenders_prev_socket, dtype=np.int64
            ),
            "hold_times": np.asarray(self.hold_times, dtype=np.float64),
        }

    def acquisitions_by_tid(self) -> Dict[int, int]:
        """Histogram of acquisitions per thread (starvation check)."""
        out: Dict[int, int] = {}
        for tid in self.tids:
            out[tid] = out.get(tid, 0) + 1
        return out

    def consecutive_reacquire_fraction(self) -> float:
        """Fraction of acquisitions going to the immediately previous owner."""
        if len(self.tids) < 2:
            return 0.0
        t = np.asarray(self.tids)
        return float(np.mean(t[1:] == t[:-1]))
