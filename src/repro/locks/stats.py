"""Lock acquisition traces.

The paper instruments MPICH to trace lock acquisitions and derives the
core/socket bias factors from the trace (4.3).  :class:`LockTrace` records
exactly the quantities those estimators need, per acquisition ``l``:

* the winner's thread id and socket,
* ``T_l``          -- total threads contending (winner included),
* ``T_{j,l}``      -- contenders on the *previous* owner's socket,

plus hold times for auxiliary analysis.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..machine.threads import ThreadCtx

__all__ = ["LockTrace"]


class LockTrace:
    """Append-only acquisition trace with numpy export."""

    def __init__(self):
        self.times: list[float] = []
        self.tids: list[int] = []
        self.sockets: list[int] = []
        self.n_contenders: list[int] = []
        self.n_contenders_prev_socket: list[int] = []
        self.hold_times: list[float] = []
        self._prev_socket: Optional[int] = None

    def __len__(self) -> int:
        return len(self.tids)

    # ------------------------------------------------------------------
    def record_grant(
        self, now: float, winner: ThreadCtx, contenders: Dict[int, ThreadCtx]
    ) -> None:
        """Record acquisition ``l``: called at grant time, winner still in
        ``contenders``."""
        self.times.append(now)
        self.tids.append(winner.tid)
        self.sockets.append(winner.socket)
        self.n_contenders.append(len(contenders))
        prev = self._prev_socket
        if prev is None:
            self.n_contenders_prev_socket.append(0)
        else:
            self.n_contenders_prev_socket.append(
                sum(1 for c in contenders.values() if c.socket == prev)
            )
        self._prev_socket = winner.socket

    def record_release(self, now: float, grant_time: float) -> None:
        self.hold_times.append(now - grant_time)

    # ------------------------------------------------------------------
    def as_arrays(self) -> dict:
        """Trace columns as numpy arrays (copies)."""
        return {
            "times": np.asarray(self.times, dtype=np.float64),
            "tids": np.asarray(self.tids, dtype=np.int64),
            "sockets": np.asarray(self.sockets, dtype=np.int64),
            "n_contenders": np.asarray(self.n_contenders, dtype=np.int64),
            "n_contenders_prev_socket": np.asarray(
                self.n_contenders_prev_socket, dtype=np.int64
            ),
            "hold_times": np.asarray(self.hold_times, dtype=np.float64),
        }

    def acquisitions_by_tid(self) -> Dict[int, int]:
        """Histogram of acquisitions per thread (starvation check)."""
        out: Dict[int, int] = {}
        for tid in self.tids:
            out[tid] = out.get(tid, 0) + 1
        return out

    def consecutive_reacquire_fraction(self) -> float:
        """Fraction of acquisitions going to the immediately previous owner."""
        if len(self.tids) < 2:
            return 0.0
        t = np.asarray(self.tids)
        return float(np.mean(t[1:] == t[:-1]))
