"""Lock framework: the common contract for simulated critical sections.

A :class:`SimLock` arbitrates a critical section among simulated threads.
``acquire`` is a *generator* (it yields simulator events and returns once
the lock is held), so lock protocols compose: the paper's priority lock
(Fig. 7) is literally three ticket locks composed in the acquiring thread's
context.

Locks charge time through the :class:`~repro.machine.CostModel`: atomic
RMW latency depends on where the lock's cache line currently lives, and
hand-off latency on the distance between releaser and the next owner --
the two NUMA effects the paper analyses.
"""

from __future__ import annotations

import enum
import re
from itertools import count
from typing import Callable, Dict, List, Optional, Tuple

from ..machine.costs import NS, CostModel
from ..machine.threads import ThreadCtx
from ..machine.topology import Core, Proximity
from .stats import LockTrace

__all__ = ["Priority", "SimLock", "NullLock", "LockError"]

_lock_ids = count()


class Priority(enum.IntEnum):
    """Arbitration priority hint (only the priority lock honours it).

    The MPI runtime enters at HIGH on the main path and drops to LOW in
    the progress loop (paper 5.2).
    """

    HIGH = 0
    LOW = 1


class LockError(RuntimeError):
    """Protocol violation (double release, release by non-holder, ...)."""


class SimLock:
    """Base class: contention bookkeeping, trace recording, grant hooks."""

    #: If True, release() must be called by the owning thread.
    strict_owner = True
    #: If True, a thread may queue on the lock while the stale owner
    #: marker points at it (needed for the priority lock's B ticket,
    #: whose ownership belongs to a priority *class*, not a thread).
    allow_owner_reentry = False

    def __init__(
        self,
        sim,
        costs: CostModel,
        name: str = "",
        trace: Optional[LockTrace] = None,
    ):
        self.sim = sim
        self.costs = costs
        self.lock_id = next(_lock_ids)
        self.name = name or f"{type(self).__name__}#{self.lock_id}"
        self.trace = trace
        self.owner: Optional[ThreadCtx] = None
        #: Cache line home: core of the last thread that touched the lock word.
        self.line_owner: Optional[Core] = None
        self._contenders: Dict[int, ThreadCtx] = {}
        self._grant_time: float = 0.0
        #: Core of the previous owner (hand-off distance instrumentation).
        self._prev_owner_core: Optional[Core] = None
        #: Hooks ``cb(lock, ctx)`` invoked on every successful acquisition.
        self.on_grant: List[Callable] = []
        #: Witness family override for deadcheck's order-witness diff
        #: (e.g. ``"PriorityTicketLock.ticket_h"`` on the priority
        #: lock's inner tickets); None derives one from ``name``.
        self.order_class: Optional[str] = None
        # Keyed by name (stable across runs), not the global lock_id:
        # experiment results must not depend on what ran earlier in the
        # process.
        self._rng = sim.rng.stream(f"lock:{self.name}")
        #: Batched jitter draws, consumed back to front (see _jitter).
        self._jitter_cache: List[float] = []

    # ------------------------------------------------------------------
    # Protocol to implement
    # ------------------------------------------------------------------
    def acquire(self, ctx: ThreadCtx, priority: Priority = Priority.HIGH):
        """Generator: yields events until the calling thread owns the lock."""
        raise NotImplementedError

    def release(self, ctx: ThreadCtx) -> float:
        """Give up the lock.

        Synchronous: the lock is free when this returns.  The return
        value is the *releaser-side* cost in seconds (e.g. the
        ``FUTEX_WAKE`` syscall a contended mutex unlock performs); the
        caller charges it to the releasing thread.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared machinery for subclasses
    # ------------------------------------------------------------------
    @property
    def n_contenders(self) -> int:
        """Threads currently inside acquire() (including an owner-to-be)."""
        return len(self._contenders)

    # ------------------------------------------------------------------
    # Introspection (deadcheck's runtime half)
    # ------------------------------------------------------------------
    def waiting_threads(self) -> Tuple[ThreadCtx, ...]:
        """Threads inside ``acquire`` not yet granted -- the waits-for
        graph's thread->lock edges.  Deterministic (tid order)."""
        return tuple(
            self._contenders[tid] for tid in sorted(self._contenders)
        )

    def sub_locks(self) -> Tuple["SimLock", ...]:
        """Component locks of a composed protocol (the priority lock's
        three tickets).  Used to (a) traverse composed wait queues and
        (b) drop composition-internal pairs from order-edge witnesses:
        a grant of the composite with its own tickets held is protocol
        structure, not an application ordering."""
        return ()

    @property
    def witness_family(self) -> str:
        """Stable identity for order-witness matching: the static
        analysis cannot see ranks or shard indices, so runtime edges
        are compared by name with the per-instance decorations
        (``@rankN``, ``.dM`` shard suffix, ``#id``) stripped."""
        if self.order_class is not None:
            return self.order_class
        fam = re.sub(r"@rank\d+", "", self.name)
        fam = re.sub(r"\.d\d+", "", fam)
        return re.sub(r"#\d+", "", fam)

    def contention_factor(self) -> float:
        """Slowdown multiplier for the current holder's in-CS work.

        Each waiter adds ``contention_penalty``; waiters on a different
        socket than the holder add ``contention_penalty *
        contention_remote_factor`` (their retries cross the socket
        interconnect).  1.0 when uncontended.
        """
        owner = self.owner
        if owner is None or not self._contenders:
            return 1.0
        pen = self.costs.contention_penalty
        remote = self.costs.contention_remote_factor
        owner_socket = owner.socket
        f = 1.0
        for c in self._contenders.values():
            f += pen * (remote if c.socket != owner_socket else 1.0)
        return f

    def _jitter(self) -> float:
        """Exponential jitter on atomic-op completion, in seconds.

        Draws are batched: numpy fills a vectorized request from the
        same bit stream element by element, so refilling 256 at a time
        yields exactly the sequence of repeated scalar draws while
        paying the numpy call overhead once per refill."""
        scale = self.costs.jitter_ns
        if scale <= 0.0:
            return 0.0
        cache = self._jitter_cache
        if not cache:
            cache[:] = self._rng.exponential(scale, 256)[::-1].tolist()
        return cache.pop() * NS

    def _atomic_cost(self, core: Core) -> float:
        """Atomic RMW latency for ``core``, moving the line to it."""
        if self.line_owner is None:
            prox = Proximity.SAME_CORE
        else:
            prox = core.proximity(self.line_owner)
        return self.costs.atomic(prox) + self._jitter()

    def _handoff_cost(self, from_core: Core, to_core: Core) -> float:
        return self.costs.handoff(to_core.proximity(from_core))

    def _enter(self, ctx: ThreadCtx) -> None:
        if ctx.tid in self._contenders:
            raise LockError(f"{ctx!r} already contending for {self.name}")
        if (
            self.owner is not None
            and self.owner.tid == ctx.tid
            and not self.allow_owner_reentry
        ):
            # A real non-reentrant lock would deadlock here; surface the
            # model bug instead.
            raise LockError(
                f"{ctx.name} re-acquiring {self.name} it already holds"
            )
        self._contenders[ctx.tid] = ctx
        obs = self.sim.obs
        if obs is not None and obs.wants("lock"):
            obs.span_begin("lock", f"{self.name}.wait",
                           rank=ctx.rank if ctx.rank is not None else -1,
                           tid=ctx.tid)
            obs.counter("lock", f"{self.name}.contenders",
                        len(self._contenders),
                        rank=ctx.rank if ctx.rank is not None else -1)

    def _grant(self, ctx: ThreadCtx) -> None:
        if self.owner is not None:
            raise LockError(
                f"grant to {ctx.name} while {self.owner.name} holds {self.name}"
            )
        self.owner = ctx
        ctx.held.add(self)
        self._grant_time = self.sim.now
        if self.trace is not None:
            self.trace.record_grant(self.sim.now, ctx, self._contenders)
        obs = self.sim.obs
        if obs is not None and obs.wants("lock"):
            rank = ctx.rank if ctx.rank is not None else -1
            obs.span_end("lock", f"{self.name}.wait", rank=rank, tid=ctx.tid)
            obs.span_begin("lock", f"{self.name}.hold", rank=rank, tid=ctx.tid)
            # Grant instants carry everything the bias estimators need
            # (winner socket, contender sockets at grant time, winner
            # included) -- the LockTrace bus adapter rebuilds the paper's
            # trace columns from these alone.
            obs.instant(
                "lock", f"{self.name}.grant", rank=rank, tid=ctx.tid,
                args={
                    "socket": ctx.socket,
                    "sockets": tuple(
                        c.socket for c in self._contenders.values()
                    ),
                },
            )
            prev = self._prev_owner_core
            if prev is not None:
                obs.instant(
                    "lock", f"{self.name}.handoff", rank=rank, tid=ctx.tid,
                    args={"distance": ctx.core.proximity(prev).name},
                )
        self._prev_owner_core = ctx.core
        del self._contenders[ctx.tid]
        if obs is not None and len(ctx.held) > 1 and obs.wants("check"):
            # Order witness: this grant happened while the thread held
            # other locks -- a runtime lock-order edge held -> self.
            # Excluded from the held side: (a) composition internals
            # (granting the priority composite while its own tickets
            # are held is protocol structure, not an ordering between
            # two guards) and (b) allow_owner_reentry locks -- their
            # ownership belongs to a priority *class* and outlives the
            # thread's logical critical section (the B ticket lingers
            # in ctx.held across composite rounds), so "this thread
            # holds it" is not a valid order assertion.
            subs = self.sub_locks()
            held = [
                lk for lk in ctx.held
                if lk is not self
                and not lk.allow_owner_reentry
                and (not subs or lk not in subs)
            ]
            if held:
                obs.instant(
                    "check", "order.edge",
                    rank=ctx.rank if ctx.rank is not None else -1,
                    tid=ctx.tid,
                    args={
                        "held": tuple(sorted(
                            lk.witness_family for lk in held
                        )),
                        "held_names": tuple(sorted(lk.name for lk in held)),
                        "acquired": self.witness_family,
                        "acquired_name": self.name,
                    },
                )
        for cb in self.on_grant:
            cb(self, ctx)

    def _release_checks(self, ctx: ThreadCtx) -> None:
        if self.owner is None:
            raise LockError(f"release of unheld lock {self.name} by {ctx.name}")
        if self.strict_owner and self.owner.tid != ctx.tid:
            raise LockError(
                f"{ctx.name} released {self.name} held by {self.owner.name}"
            )
        if self.trace is not None:
            self.trace.record_release(self.sim.now, self._grant_time)
        obs = self.sim.obs
        if obs is not None and obs.wants("lock"):
            # End the *owner's* hold span (strict_owner=False locks may
            # be released by a different thread; the span lives on the
            # lane that opened it).
            own = self.owner
            obs.span_end("lock", f"{self.name}.hold",
                         rank=own.rank if own.rank is not None else -1,
                         tid=own.tid)
        # Drop from the *owner's* held set, not the releaser's:
        # strict_owner=False locks (the priority lock's B ticket) may be
        # released on another thread's behalf.
        self.owner.held.discard(self)
        self.owner = None

    def __repr__(self) -> str:  # pragma: no cover
        holder = self.owner.name if self.owner else "-"
        return f"<{type(self).__name__} {self.name} owner={holder} contenders={self.n_contenders}>"


class NullLock(SimLock):
    """Zero-cost lock for MPI_THREAD_SINGLE runs (no arbitration at all).

    Mutual exclusion is still asserted -- a single-threaded run must never
    actually contend.
    """

    def acquire(self, ctx: ThreadCtx, priority: Priority = Priority.HIGH):
        self._enter(ctx)
        self._grant(ctx)
        return
        yield  # pragma: no cover - makes this a generator

    def release(self, ctx: ThreadCtx) -> float:
        self._release_checks(ctx)
        return 0.0
