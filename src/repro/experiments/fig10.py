"""Figure 10: the Graph500 BFS kernel.

* **10a** -- single-node thread scaling (no MPI): near-linear to 4
  threads, ~10% efficiency loss at 8 (intersocket data movement).
* **10b** -- thread scaling with 16 processes, compact binding: fair
  locks turn thread parallelism into speedup; the mutex lags.
* **10c** -- weak scaling, one rank per node, 8 threads: fair locks
  deliver a consistent advantage (paper: close to 2x).
"""

from __future__ import annotations

from typing import Optional

from ..mpi.world import Cluster, ClusterConfig
from ..workloads.bfs import BfsConfig, run_bfs
from ..obs import Instrument
from .base import ExperimentResult
from .config import preset

__all__ = ["run_fig10a", "run_fig10b", "run_fig10c"]


def run_fig10a(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    p = preset(quick)
    mteps = {}
    for t in (1, 2, 4, 8):
        cl = Cluster(ClusterConfig(
            n_nodes=1, threads_per_rank=t, lock="ticket", seed=seed, obs=obs))
        res = run_bfs(cl, BfsConfig(scale=p.bfs_scale_single))
        mteps[t] = res.mteps
    rows = [[t, f"{mteps[t]:.1f}", f"{mteps[t] / (t * mteps[1]):.2f}"]
            for t in (1, 2, 4, 8)]
    eff4 = mteps[4] / (4 * mteps[1])
    eff8 = mteps[8] / (8 * mteps[1])
    return ExperimentResult(
        exp_id="fig10a",
        title=f"BFS single-node thread scaling (scale {p.bfs_scale_single}, MTEPS)",
        headers=["threads", "MTEPS", "efficiency"],
        rows=rows,
        checks={
            "good scaling to 4 threads (efficiency >= 0.8)": eff4 >= 0.8,
            "efficiency drops at 8 threads (intersocket)": eff8 < eff4,
            "still profitable at 8 threads (>= 4x over 1)":
                mteps[8] >= 4 * mteps[1],
        },
        data={"mteps": mteps},
        notes=["paper: linear to 4 cores, ~10% efficiency loss at 8"],
    )


def run_fig10b(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    p = preset(quick)
    n_nodes = 4 if quick else 16
    mteps = {}
    for lock in ("mutex", "ticket", "priority"):
        for t in (1, 2, 4, 8):
            cl = Cluster(ClusterConfig(
                n_nodes=n_nodes, threads_per_rank=t, lock=lock,
                binding="compact", seed=seed, obs=obs))
            res = run_bfs(cl, BfsConfig(scale=p.bfs_scale_multi, flush_size=32))
            mteps[(lock, t)] = res.mteps
    rows = [
        [t] + [f"{mteps[(lk, t)]:.1f}" for lk in ("mutex", "ticket", "priority")]
        for t in (1, 2, 4, 8)
    ]
    return ExperimentResult(
        exp_id="fig10b",
        title=f"BFS thread scaling, {n_nodes} ranks, compact binding (MTEPS)",
        headers=["threads", "mutex", "ticket", "priority"],
        rows=rows,
        checks={
            "locks equivalent at 1 thread (within 3%)":
                abs(mteps[("ticket", 1)] / mteps[("mutex", 1)] - 1) < 0.03,
            "ticket beats mutex at 4 threads":
                mteps[("ticket", 4)] > mteps[("mutex", 4)],
            "priority tracks ticket (all MPI_Test -> same high priority)":
                all(abs(mteps[("priority", t)] / mteps[("ticket", t)] - 1) < 0.1
                    for t in (2, 4, 8)),
        },
        data={"mteps": mteps},
        notes=["paper: speedups with fair locks up to 4 threads; no "
               "apparent speedup with mutex; priority shows no advantage "
               "since threads only issue immediate MPI_Test calls"],
    )


def run_fig10c(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    p = preset(quick)
    base_scale = p.bfs_scale_multi - 2
    grid = [(2, base_scale), (4, base_scale + 1), (8, base_scale + 2)]
    mteps = {}
    for nodes, scale in grid:
        for lock in ("mutex", "ticket", "priority"):
            cl = Cluster(ClusterConfig(
                n_nodes=nodes, threads_per_rank=8, lock=lock, seed=seed, obs=obs))
            res = run_bfs(cl, BfsConfig(scale=scale, flush_size=32))
            mteps[(lock, nodes)] = res.mteps
    rows = [
        [nodes, scale] + [f"{mteps[(lk, nodes)]:.1f}"
                          for lk in ("mutex", "ticket", "priority")]
        for nodes, scale in grid
    ]
    gains = [mteps[("ticket", n)] / mteps[("mutex", n)] for n, _ in grid]
    return ExperimentResult(
        exp_id="fig10c",
        title="BFS weak scaling, 8 threads per rank (MTEPS)",
        headers=["nodes", "scale", "mutex", "ticket", "priority"],
        rows=rows,
        checks={
            "fair locks never lose to mutex": min(gains) >= 1.0,
            "aggregate MTEPS grows with node count (ticket)":
                mteps[("ticket", grid[-1][0])] > mteps[("ticket", grid[0][0])],
        },
        data={"mteps": mteps, "gains": gains},
        notes=["paper: close to 2x improvement for the fair locks; "
               "priority shows no superiority (MPI_Test-only polling)"],
    )
