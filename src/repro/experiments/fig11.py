"""Figure 11: the 3D 7-point stencil, strong scaling.

* **11a** -- fair locks improve performance for small per-core problems
  (runtime contention dominates); methods converge as the problem grows
  (computation dominates).
* **11b** -- execution breakdown: the MPI share shrinks with problem
  size, explaining where arbitration matters.
"""

from __future__ import annotations

from typing import Optional

from ..mpi.world import Cluster, ClusterConfig
from ..workloads.stencil import StencilConfig, run_stencil
from ..obs import Instrument
from .base import ExperimentResult
from .config import preset

__all__ = ["run_fig11a", "run_fig11b"]

LOCKS = ("mutex", "ticket", "priority")


def _per_core_bytes(extent: int, n_ranks: int, threads: int) -> int:
    return extent ** 3 * 8 // (n_ranks * threads)


def run_fig11a(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    p = preset(quick)
    n_nodes = 4 if quick else 8
    gflops = {}
    for extent in p.stencil_extents:
        for lock in LOCKS:
            cl = Cluster(ClusterConfig(
                n_nodes=n_nodes, threads_per_rank=8, lock=lock, seed=seed, obs=obs))
            res = run_stencil(cl, StencilConfig(
                n=(extent, extent, extent), iterations=p.stencil_iters))
            gflops[(lock, extent)] = res.gflops
    rows = [
        [f"{extent}^3", _per_core_bytes(extent, n_nodes, 8)]
        + [f"{gflops[(lk, extent)]:.2f}" for lk in LOCKS]
        for extent in p.stencil_extents
    ]
    small, big = p.stencil_extents[0], p.stencil_extents[-1]
    gain_small = gflops[("ticket", small)] / gflops[("mutex", small)]
    gain_big = gflops[("ticket", big)] / gflops[("mutex", big)]
    return ExperimentResult(
        exp_id="fig11a",
        title=f"Stencil strong scaling, {n_nodes} ranks x 8 threads (GFlops)",
        headers=["domain", "bytes/core", "mutex", "ticket", "priority"],
        rows=rows,
        checks={
            "fair locks win for small problems (>= 1.25x)": gain_small >= 1.25,
            "methods converge for large problems": gain_big < gain_small,
            "priority shows no advantage over ticket":
                all(abs(gflops[("priority", e)] / gflops[("ticket", e)] - 1) < 0.1
                    for e in p.stencil_extents),
        },
        data={"gflops": gflops},
        notes=["paper: improvements for <= 1 MiB per core; the priority "
               "lock adds nothing (few requests; threads sit in the "
               "progress loop at the same low priority)"],
    )


def run_fig11b(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    p = preset(quick)
    n_nodes = 4 if quick else 8
    shares = {}
    rows = []
    for extent in p.stencil_extents:
        cl = Cluster(ClusterConfig(
            n_nodes=n_nodes, threads_per_rank=8, lock="mutex", seed=seed, obs=obs))
        res = run_stencil(cl, StencilConfig(
            n=(extent, extent, extent), iterations=p.stencil_iters))
        pct = res.breakdown.percentages()
        shares[extent] = pct
        rows.append([
            f"{extent}^3",
            f"{pct.get('mpi', 0):.1f}%",
            f"{pct.get('compute', 0):.1f}%",
            f"{pct.get('sync', 0):.1f}%",
        ])
    mpi_shares = [shares[e].get("mpi", 0) for e in p.stencil_extents]
    return ExperimentResult(
        exp_id="fig11b",
        title="Stencil execution breakdown (mutex)",
        headers=["domain", "MPI", "computation", "OMP_Sync"],
        rows=rows,
        checks={
            "MPI share decreases with problem size":
                all(a >= b for a, b in zip(mpi_shares, mpi_shares[1:])),
            "computation dominates for the largest problem":
                shares[p.stencil_extents[-1]].get("compute", 0) > 50,
        },
        data={"shares": shares},
        notes=["paper: communication share shrinks as the per-core "
               "problem grows, bounding the arbitration benefit"],
    )
