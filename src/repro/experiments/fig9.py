"""Figure 9: RMA contiguous transfers with asynchronous progress.

One origin rank performs blocking put/get/accumulate to 7 targets; every
rank runs the forked async progress thread.  Under the mutex the origin's
progress thread -- always in the progress loop, rarely useful --
monopolizes the critical section and starves the operation-issuing
thread; FCFS arbitration recovers a multi-fold speedup (paper: up to 5x).
"""

from __future__ import annotations

from typing import Optional

from ..analysis.report import format_size
from ..mpi.world import Cluster, ClusterConfig
from ..workloads.rma_bench import RmaConfig, run_rma
from ..obs import Instrument
from .base import ExperimentResult
from .config import preset

__all__ = ["run_fig9"]

LOCKS = ("mutex", "ticket", "priority")
OPS = ("put", "get", "acc")


def run_fig9(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    p = preset(quick)
    sizes = [s for s in p.sizes if s >= 8][:4]
    rates = {}
    for op in OPS:
        for size in sizes:
            for lock in LOCKS:
                cl = Cluster(ClusterConfig(
                    n_nodes=8, threads_per_rank=1, lock=lock,
                    async_progress=True, seed=seed, obs=obs,
                ))
                res = run_rma(cl, RmaConfig(op=op, element_size=size, n_ops=p.rma_ops))
                rates[(op, lock, size)] = res.rate_k
    rows = []
    for op in OPS:
        for s in sizes:
            m, t, pr = (rates[(op, lk, s)] for lk in LOCKS)
            rows.append([op, format_size(s), f"{m:.1f}", f"{t:.1f}",
                         f"{pr:.1f}", f"{t / m:.2f}x"])
    gains = {
        op: max(rates[(op, "ticket", s)] / rates[(op, "mutex", s)] for s in sizes)
        for op in OPS
    }
    prio_ok = all(
        abs(rates[(op, "priority", s)] / rates[(op, "ticket", s)] - 1) < 0.25
        for op in OPS for s in sizes
    )
    return ExperimentResult(
        exp_id="fig9",
        title="RMA transfer rate with async progress (10^3 elements/s), 8 ranks",
        headers=["op", "element", "mutex", "ticket", "priority", "ticket/mutex"],
        rows=rows,
        checks={
            "fair arbitration speeds up put (>= 1.5x best case)":
                gains["put"] >= 1.5,
            "fair arbitration speeds up get (>= 1.5x best case)":
                gains["get"] >= 1.5,
            "fair arbitration speeds up accumulate (>= 1.5x best case)":
                gains["acc"] >= 1.5,
            "priority indistinguishable from ticket": prio_ok,
        },
        data={"rates": rates, "gains": gains},
        notes=[f"paper: up to 5x over mutex; measured best gains: "
               + ", ".join(f"{op}={g:.1f}x" for op, g in gains.items())],
    )
