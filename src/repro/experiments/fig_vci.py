"""Beyond the paper: per-VCI arbitration domains vs lock remedies.

The paper's remedies (ticket, priority) re-arbitrate a *single* global
critical section; follow-on VCI work (Zambre et al.) shows that
*sharding* the runtime removes the contention instead of managing it.
This experiment runs the N2N streaming benchmark (paper 5.2) with the
global critical section under each paper lock and with the runtime split
into four per-VCI arbitration domains (plain mutexes per domain):

* at high thread counts the sharded mutex beats even the priority lock
  -- threads on disjoint communication paths stop contending at all;
* sharding also bounds starvation: the peak dangling-request count under
  per-VCI domains stays at or below the global mutex's;
* with a single domain the machinery degenerates exactly (bit-for-bit)
  to the paper's global critical section, so the paper's results are a
  special case of this model, not a separate code path.
"""

from __future__ import annotations

from typing import Optional

from ..mpi.world import Cluster, ClusterConfig
from ..obs import Instrument
from ..workloads.n2n import N2NConfig, run_n2n
from .base import ExperimentResult

__all__ = ["run_fig_vci"]

#: Global-CS arbitration methods compared against sharding.
GLOBAL_LOCKS = ("mutex", "ticket", "priority")
SHARDED = "per-vci:4"


def _cell(
    threads: int, lock: str, cs: str, cfg: N2NConfig, seed: int,
    obs: Optional[Instrument],
):
    cl = Cluster(ClusterConfig(
        n_nodes=2, threads_per_rank=threads, lock=lock, cs=cs,
        seed=seed, obs=obs,
    ))
    res = run_n2n(cl, cfg)
    peak = max(rt.peak_dangling for rt in cl.runtimes)
    return res, peak


def run_fig_vci(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    thread_counts = (4, 8) if quick else (2, 4, 8, 16)
    cfg = N2NConfig(
        msg_size=1024, window=2 if quick else 4, n_windows=2, style="rounds",
    )

    rates = {}
    peaks = {}
    for threads in thread_counts:
        for lock in GLOBAL_LOCKS:
            res, peak = _cell(threads, lock, "global", cfg, seed, obs)
            rates[(threads, lock)] = res.msg_rate_k
            peaks[(threads, lock)] = peak
        res, peak = _cell(threads, "mutex", SHARDED, cfg, seed, obs)
        rates[(threads, SHARDED)] = res.msg_rate_k
        peaks[(threads, SHARDED)] = peak

    # Degeneracy: one per-vci domain must *be* the global critical
    # section -- same simulated schedule, bit-identical rate.
    t0 = thread_counts[0]
    res_one, _ = _cell(t0, "mutex", "per-vci:1", cfg, seed, None)
    degenerate = res_one.msg_rate_k == rates[(t0, "mutex")]

    rows = []
    for threads in thread_counts:
        m, t, pr = (rates[(threads, lk)] for lk in GLOBAL_LOCKS)
        v = rates[(threads, SHARDED)]
        rows.append([
            str(threads), f"{m:.1f}", f"{t:.1f}", f"{pr:.1f}", f"{v:.1f}",
            f"{v / pr:.2f}x",
            str(peaks[(threads, "mutex")]), str(peaks[(threads, SHARDED)]),
        ])

    hi = max(thread_counts)
    return ExperimentResult(
        exp_id="fig_vci",
        title=(
            "N2N message rate (10^3 msgs/s): global CS locks vs "
            f"{SHARDED} arbitration domains, 2 ranks"
        ),
        headers=[
            "threads", "mutex", "ticket", "priority", SHARDED,
            "vci/priority", "peak dangling (mutex)", f"peak dangling ({SHARDED})",
        ],
        rows=rows,
        checks={
            "per-VCI sharding beats the priority lock at high thread counts":
                rates[(hi, SHARDED)] > rates[(hi, "priority")],
            "per-VCI sharding beats every global-CS lock at high thread counts":
                rates[(hi, SHARDED)] > max(rates[(hi, lk)] for lk in GLOBAL_LOCKS),
            "sharding bounds starvation (peak dangling <= global mutex)":
                all(
                    peaks[(t, SHARDED)] <= peaks[(t, "mutex")]
                    for t in thread_counts
                ),
            "one domain degenerates to the global critical section "
            "(bit-identical rate)": degenerate,
        },
        data={"rates": rates, "peak_dangling": peaks,
              "degenerate_rate": res_one.msg_rate_k},
        notes=[
            "sharded domains use plain mutexes: the win comes from not "
            "contending, not from smarter arbitration",
            f"vci/priority at {hi} threads: "
            f"{rates[(hi, SHARDED)] / rates[(hi, 'priority')]:.2f}x",
        ],
    )
