"""Experiment presets.

``quick`` presets run each figure in seconds on a laptop; ``paper``
presets use the paper's parameters (message sizes to 1 MiB, BFS scales in
the 20s, the full thread grid) and take correspondingly longer.  Both use
the same calibrated :class:`~repro.machine.CostModel` defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Preset", "QUICK", "PAPER"]


@dataclass(frozen=True)
class Preset:
    #: Message-size ladder for pt2pt figures (bytes).
    sizes: Tuple[int, ...]
    #: Windows per thread in the throughput benchmark.
    n_windows: int
    #: Ping-pong iterations per thread in the latency benchmark.
    latency_iters: int
    #: N2N rounds (window * n_windows).
    n2n_window: int
    n2n_windows: int
    #: RMA ops per configuration.
    rma_ops: int
    #: BFS graph scales.
    bfs_scale_single: int
    bfs_scale_multi: int
    #: Stencil local domains (cubed extents) for the strong-scaling sweep.
    stencil_extents: Tuple[int, ...]
    stencil_iters: int
    #: Assembly workload size.
    asm_reads: int
    asm_genome: int


QUICK = Preset(
    sizes=(1, 16, 256, 4096, 65536),
    n_windows=4,
    latency_iters=30,
    n2n_window=8,
    n2n_windows=2,
    rma_ops=32,
    bfs_scale_single=14,
    bfs_scale_multi=14,
    stencil_extents=(16, 32, 64),
    stencil_iters=6,
    asm_reads=2000,
    asm_genome=8000,
)

PAPER = Preset(
    sizes=(1, 16, 256, 4096, 65536, 1048576),
    n_windows=16,
    latency_iters=200,
    n2n_window=32,
    n2n_windows=4,
    rma_ops=256,
    bfs_scale_single=20,
    bfs_scale_multi=18,
    stencil_extents=(16, 32, 64, 128),
    stencil_iters=20,
    asm_reads=20000,
    asm_genome=80000,
)


def preset(quick: bool) -> Preset:
    return QUICK if quick else PAPER
