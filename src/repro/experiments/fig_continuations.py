"""Beyond the paper: continuation-driven completion vs wait polling.

The paper's pathology is threads burning critical-section acquisitions
*polling* for completion: every empty progress poll is a full CS
round-trip that progressed nothing (the "wasted acquisition"), and the
completed-but-not-freed requests pile up as the dangling backlog while
owners fight for the lock.  Follow-on work (Yan/Snir/Guo; Zhou et al.,
see PAPERS.md) argues completion *callbacks* beat test/wait polling
under exactly this contention.

This experiment runs the multithreaded throughput benchmark with
rendezvous-sized messages (so waits are real: senders block on the
CTS/data round-trip, receivers on delivery) under each paper lock and
the sharded per-VCI runtime, once with ``completion="poll"`` (the
paper's CS_YIELD loops) and once with ``completion="continuation"``
(waiters park on the completion signal and enter the CS only when their
domains have packets to progress):

* continuation mode eliminates the large majority of wasted
  acquisitions at every thread count -- each avoided empty poll is
  counted explicitly (``wasted_acquisitions_avoided``);
* the message rate is preserved: parking instead of polling costs a
  wake-up latency but removes lock traffic of equal magnitude;
* the dangling-request peak stays at or below the polling path's
  (waiters wake and free promptly instead of waiting out a jittered
  poll gap).
"""

from __future__ import annotations

from typing import Optional

from ..mpi.world import Cluster, ClusterConfig
from ..obs import Instrument
from ..workloads.throughput import ThroughputConfig, run_throughput
from .base import ExperimentResult

__all__ = ["run_fig_continuations"]

#: (label, lock, cs-policy) arbitration variants compared.
VARIANTS = (
    ("mutex", "mutex", "global"),
    ("ticket", "ticket", "global"),
    ("priority", "priority", "global"),
    ("per-vci:4", "mutex", "per-vci:4"),
)

#: The CI-gated cell: >=20% wasted-acquisition reduction here.
GATE_THREADS = 8
GATE_LABEL = "priority"
GATE_REDUCTION = 0.20


def _cell(
    threads: int, lock: str, cs: str, mode: str, cfg: ThroughputConfig,
    seed: int, obs: Optional[Instrument],
):
    cl = Cluster(ClusterConfig(
        n_nodes=2, threads_per_rank=threads, lock=lock, cs=cs,
        seed=seed, completion=mode, obs=obs,
    ))
    res = run_throughput(cl, cfg)
    wasted = sum(rt.stats.empty_polls for rt in cl.runtimes)
    avoided = sum(rt.stats.wasted_acquisitions_avoided for rt in cl.runtimes)
    peak = max(rt.peak_dangling for rt in cl.runtimes)
    return {
        "rate_k": res.msg_rate_k,
        "wasted": wasted,
        "avoided": avoided,
        "peak_dangling": peak,
    }


def run_fig_continuations(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    thread_counts = (4, 8) if quick else (1, 8, 16, 32, 64)
    cfg = ThroughputConfig(
        msg_size=65536, window=8, n_windows=2 if quick else 4,
    )

    cells = {}
    for threads in thread_counts:
        for label, lock, cs in VARIANTS:
            for mode in ("poll", "continuation"):
                cells[(threads, label, mode)] = _cell(
                    threads, lock, cs, mode, cfg, seed, obs,
                )

    def reduction(threads: int, label: str) -> float:
        pw = cells[(threads, label, "poll")]["wasted"]
        cw = cells[(threads, label, "continuation")]["wasted"]
        return 1.0 - cw / pw if pw else 0.0

    rows = []
    for threads in thread_counts:
        for label, _, _ in VARIANTS:
            p = cells[(threads, label, "poll")]
            c = cells[(threads, label, "continuation")]
            rows.append([
                str(threads), label,
                str(p["wasted"]), str(c["wasted"]),
                f"{reduction(threads, label):.1%}",
                str(c["avoided"]),
                str(p["peak_dangling"]), str(c["peak_dangling"]),
                f"{p['rate_k']:.1f}", f"{c['rate_k']:.1f}",
            ])

    gate = reduction(GATE_THREADS, GATE_LABEL)
    dangling_pairs = [
        (
            cells[(t, label, "poll")]["peak_dangling"],
            cells[(t, label, "continuation")]["peak_dangling"],
        )
        for t in thread_counts for label, _, _ in VARIANTS
    ]
    gate_dangling = (
        cells[(GATE_THREADS, GATE_LABEL, "poll")]["peak_dangling"],
        cells[(GATE_THREADS, GATE_LABEL, "continuation")]["peak_dangling"],
    )
    return ExperimentResult(
        exp_id="fig_continuations",
        title=(
            "Continuation-driven completion vs wait polling: wasted "
            "acquisitions, dangling backlog, message rate (rendezvous "
            "throughput, 2 ranks)"
        ),
        headers=[
            "threads", "arbitration", "wasted (poll)", "wasted (cont)",
            "reduction", "parks", "peak dangling (poll)",
            "peak dangling (cont)", "rate poll", "rate cont",
        ],
        rows=rows,
        checks={
            f"continuations cut wasted acquisitions >={GATE_REDUCTION:.0%} "
            f"at {GATE_THREADS} threads ({GATE_LABEL} lock)":
                gate >= GATE_REDUCTION,
            "wasted acquisitions reduced under every lock at every "
            "thread count":
                all(
                    reduction(t, label) > 0.0
                    for t in thread_counts for label, _, _ in VARIANTS
                ),
            f"dangling peak no worse than polling at {GATE_THREADS} "
            f"threads ({GATE_LABEL} lock)":
                gate_dangling[1] <= gate_dangling[0],
            "dangling peak strictly reduced in at least one cell of "
            "the sweep":
                any(c < p for p, c in dangling_pairs),
            "message rate within 5% of the polling path at "
            f"{GATE_THREADS} threads (every lock)":
                all(
                    cells[(GATE_THREADS, lb, "continuation")]["rate_k"]
                    >= 0.95 * cells[(GATE_THREADS, lb, "poll")]["rate_k"]
                    for lb, _, _ in VARIANTS
                ),
        },
        data={
            "cells": {
                f"{t}/{lb}/{m}": cells[(t, lb, m)]
                for t, lb, m in cells
            },
            "gate_reduction": gate,
        },
        notes=[
            "wasted (poll/cont): empty progress polls summed over both "
            "ranks -- the paper's wasted acquisition",
            "parks: empty CS round-trips continuation mode replaced "
            "with a wait on the completion signal",
            f"gate cell reduction ({GATE_LABEL}, {GATE_THREADS} "
            f"threads): {gate:.1%}",
        ],
    )
