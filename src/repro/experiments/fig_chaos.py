"""Beyond the paper: chaos run -- goodput vs packet drop under remedies.

The paper studies runtime contention over a *perfect* fabric; this
experiment degrades the fabric (``repro.faults``) and asks how the
arbitration remedies hold up when the runtime must also retransmit:

* with the ACK/retransmit reliability layer enabled, every lock keeps at
  least 90% of its zero-loss message rate at 1% internode drop -- loss
  recovery rides on the same progress engine the locks arbitrate, so a
  fair lock recovers as fast as it communicates;
* with the reliability layer *disabled*, a lossy run does not hang: the
  progress watchdog detects the frozen completion counters and aborts
  with a diagnostic dump (per-domain queue depths, lock holder, dangling
  counts) on the observability bus.

Goodput is measured at workload completion (not after the service
drain), and the watchdog's pending sample timer is *cancelled* at
shutdown (``Event.cancel``) so the drain ends at the last real event --
the lossy run no longer pays a final watchdog tick the zero-loss
baseline never had.
"""

from __future__ import annotations

from typing import Optional

from ..faults import FaultPlan, ProgressStallError
from ..mpi.world import Cluster, ClusterConfig
from ..obs import Instrument
from ..workloads.throughput import ThroughputConfig, _receiver_thread, _sender_thread
from .base import ExperimentResult

__all__ = ["run_fig_chaos"]

LOCKS = ("mutex", "ticket", "priority")


def _goodput(
    lock: str, drop: float, cfg: ThroughputConfig, threads: int, seed: int,
    obs: Optional[Instrument],
):
    """One cell: aggregate message rate at workload completion, plus the
    cluster's reliability/fault counters."""
    cl = Cluster(ClusterConfig(
        n_nodes=2, threads_per_rank=threads, lock=lock, seed=seed, obs=obs,
        faults=FaultPlan(drop=drop), reliability=True,
    ))
    gens = [_sender_thread(cl.thread(0, i), cfg, 1) for i in range(threads)]
    gens += [_receiver_thread(cl.thread(1, i), cfg, 0) for i in range(threads)]
    procs = [cl.sim.process(g, name=f"chaos[{i}]") for i, g in enumerate(gens)]
    t0 = cl.sim.now
    cl.sim.run(until=cl.sim.all_of(procs))
    elapsed = cl.sim.now - t0
    cl._shutdown = True
    if cl.watchdog is not None:
        cl.watchdog.stop()
    cl.sim.run()
    total = threads * cfg.window * cfg.n_windows
    rate_k = total / elapsed / 1e3
    retransmits = sum(rt.rel_stats.retransmits for rt in cl.runtimes)
    drops = cl.fault_injector.stats.total_drops if cl.fault_injector else 0
    return rate_k, retransmits, drops


def _watchdog_cell(cfg: ThroughputConfig, threads: int, seed: int):
    """Lossy fabric, reliability *off*: the run must terminate via the
    watchdog (not hang), with a diagnostic dump on the obs bus."""
    bus = Instrument()
    fault_events = []
    bus.subscribe(lambda ev: fault_events.append(ev), categories=("fault",))
    cl = Cluster(ClusterConfig(
        n_nodes=2, threads_per_rank=threads, lock="mutex", seed=seed, obs=bus,
        faults=FaultPlan(drop=0.01),
    ))
    gens = [_sender_thread(cl.thread(0, i), cfg, 1) for i in range(threads)]
    gens += [_receiver_thread(cl.thread(1, i), cfg, 0) for i in range(threads)]
    stalled = False
    diagnostics = None
    try:
        cl.run_workload(gens, name="chaos-norel")
    except ProgressStallError as exc:
        stalled = True
        diagnostics = exc.diagnostics
    dumped = any(ev.name == "watchdog.stall" for ev in fault_events)
    return stalled, dumped, diagnostics


def run_fig_chaos(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    threads = 4
    drop_rates = (0.0, 0.01) if quick else (0.0, 0.005, 0.01, 0.02)
    cfg = ThroughputConfig(
        msg_size=1024, window=32, n_windows=4 if quick else 8,
    )

    rates = {}
    retx = {}
    dropped = {}
    for lock in LOCKS:
        for drop in drop_rates:
            r, n_retx, n_drop = _goodput(lock, drop, cfg, threads, seed, obs)
            rates[(lock, drop)] = r
            retx[(lock, drop)] = n_retx
            dropped[(lock, drop)] = n_drop

    stalled, dumped, diagnostics = _watchdog_cell(cfg, threads, seed)

    rows = []
    for lock in LOCKS:
        base = rates[(lock, 0.0)]
        row = [lock, f"{base:.1f}"]
        for drop in drop_rates[1:]:
            r = rates[(lock, drop)]
            row.append(f"{r:.1f} ({r / base:.2f}x, {retx[(lock, drop)]} rtx)")
        rows.append(row)

    worst_ratio = min(
        rates[(lock, 0.01)] / rates[(lock, 0.0)] for lock in LOCKS
    )
    lossy_retransmitted = all(retx[(lock, 0.01)] > 0 for lock in LOCKS)
    clean_baseline = all(retx[(lock, 0.0)] == 0 for lock in LOCKS)

    return ExperimentResult(
        exp_id="fig_chaos",
        title=(
            "chaos run: goodput (10^3 msgs/s) vs internode drop rate with "
            f"ACK/retransmit, 2 ranks x {threads} threads"
        ),
        headers=["lock", "0% drop"] + [f"{d:.1%} drop" for d in drop_rates[1:]],
        rows=rows,
        checks={
            "every lock keeps >= 90% of its zero-loss rate at 1% drop":
                worst_ratio >= 0.90,
            "recovery actually retransmitted at 1% drop (every lock)":
                lossy_retransmitted,
            "no spurious retransmits at zero loss": clean_baseline,
            "without retransmit, the lossy run aborts via the watchdog "
            "(no hang)": stalled,
            "the watchdog emitted a diagnostic dump on the obs bus": dumped,
        },
        data={
            "rates": rates,
            "retransmits": retx,
            "drops": dropped,
            "worst_ratio_at_1pct": worst_ratio,
            "watchdog_diagnostics": diagnostics,
        },
        notes=[
            "ACKs are generated at delivery (NIC-level, like hardware RDMA "
            "acks), so the retransmit timeout covers a wire round-trip, "
            "not a trip through the contended critical section",
            f"worst zero-loss retention at 1% drop: {worst_ratio:.3f}",
            "the no-reliability cell terminates via ProgressStallError "
            "with per-domain queue depths and lock holders attached",
        ],
    )
