"""Figure 6b: the priority lock on the N2N all-to-all benchmark.

The paper reports ~33% average improvement of the priority lock over the
ticket lock below 32 KiB, attributed to prioritized main-path entry
keeping receives posted ahead of incoming messages.

In this reproduction the *mechanism* reproduces cleanly -- the priority
lock eliminates unexpected-queue traffic that the ticket lock incurs --
but the throughput delta is small (a few percent), because in our
symmetric fabric the unexpected path costs only an extra copy.  The
mutex, for contrast, is far behind both.  See EXPERIMENTS.md for the
full discussion of this deviation.
"""

from __future__ import annotations

from typing import Optional

from ..machine import CostModel
from ..mpi.world import Cluster, ClusterConfig
from ..analysis.report import format_size
from ..workloads.n2n import N2NConfig, run_n2n
from ..obs import Instrument
from .base import ExperimentResult
from .config import preset

__all__ = ["run_fig6b"]


def run_fig6b(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    p = preset(quick)
    sizes = [s for s in p.sizes if 256 <= s <= 65536] or [1024, 16384]
    # Poll-heavy regime: fine-grained progress (one packet per poll)
    # maximizes the posting race the priority lock targets.
    costs = CostModel(progress_batch=1)
    rates, unexp = {}, {}
    for size in sizes:
        for lock in ("mutex", "ticket", "priority"):
            cl = Cluster(ClusterConfig(
                n_nodes=4, threads_per_rank=4, lock=lock, seed=seed, obs=obs, costs=costs,
            ))
            res = run_n2n(cl, N2NConfig(
                msg_size=size, window=p.n2n_window, n_windows=p.n2n_windows,
                style="rounds",
            ))
            rates[(lock, size)] = res.msg_rate_k
            unexp[(lock, size)] = res.unexpected_fraction
    rows = []
    for s in sizes:
        rows.append([
            format_size(s),
            f"{rates[('mutex', s)]:.0f}",
            f"{rates[('ticket', s)]:.0f}",
            f"{rates[('priority', s)]:.0f}",
            f"{unexp[('ticket', s)]:.3f}",
            f"{unexp[('priority', s)]:.3f}",
        ])
    prio_vs_ticket = [rates[("priority", s)] / rates[("ticket", s)] for s in sizes]
    # Mutex comparison only where the runtime (not the network) is the
    # bottleneck, as in the paper's sub-32 KiB regime.
    small = [s for s in sizes if s <= 16384]
    fair_vs_mutex = [rates[("ticket", s)] / rates[("mutex", s)] for s in small]
    return ExperimentResult(
        exp_id="fig6b",
        title="N2N throughput (4 ranks): mutex / ticket / priority",
        headers=["size", "mutex", "ticket", "priority",
                 "unexp(tkt)", "unexp(prio)"],
        rows=rows,
        checks={
            "priority at least matches ticket (>= 0.9x)":
                min(prio_vs_ticket) >= 0.9,
            "priority removes unexpected traffic in the eager regime":
                all(unexp[("priority", s)] <= unexp[("ticket", s)] + 0.01
                    for s in small),
            "fair locks beat mutex (>= 1.2x)": min(fair_vs_mutex) >= 1.2,
        },
        data={"rates": rates, "unexpected": unexp},
        notes=[
            "paper: priority +33% over ticket below 32 KiB; reproduced "
            "direction (priority >= ticket, unexpected traffic removed) "
            "but not magnitude -- see EXPERIMENTS.md",
        ],
    )
