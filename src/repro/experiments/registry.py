"""Name -> runner map for every reproduced table and figure."""

from __future__ import annotations

from typing import Dict, Optional, Protocol

from ..obs import Instrument
from .base import ExperimentResult
from .fig2 import run_fig2a, run_fig2b
from .fig3 import run_fig3a, run_fig3c
from .fig5 import run_fig5a, run_fig5b, run_fig5c
from .fig6 import run_fig6b
from .fig8 import run_fig8a, run_fig8b
from .fig9 import run_fig9
from .fig10 import run_fig10a, run_fig10b, run_fig10c
from .fig11 import run_fig11a, run_fig11b
from .fig12 import run_fig12b
from .fig_chaos import run_fig_chaos
from .fig_continuations import run_fig_continuations
from .fig_service import run_fig_service
from .fig_vci import run_fig_vci

__all__ = [
    "EXPERIMENTS",
    "EXPERIMENT_TITLES",
    "ExperimentRunner",
    "run_experiment",
    "select_experiments",
]


class ExperimentRunner(Protocol):
    """Every ``run_figXX`` runner implements this uniform signature."""

    def __call__(
        self,
        quick: bool = True,
        seed: int = 0,
        obs: Optional[Instrument] = None,
    ) -> ExperimentResult: ...

#: One-line description per experiment (shown by ``python -m repro list``).
EXPERIMENT_TITLES: Dict[str, str] = {
    "fig2a": "throughput vs size and thread count under the mutex (4x collapse)",
    "fig2b": "compact vs scatter binding: NUMA amplifies contention",
    "fig3a": "arbitration bias factors from lock traces (~2x core, ~1.25x socket)",
    "fig3c": "dangling requests under the mutex (starvation metric)",
    "fig5a": "dangling requests: ticket keeps them low",
    "fig5b": "1-byte throughput: binding x lock x threads (+68% at 4 compact)",
    "fig5c": "size sweep at 8 threads: ticket +30% below 4 KiB",
    "fig6b": "N2N all-to-all: the priority lock vs ticket",
    "fig8a": "throughput, all methods vs single-threaded",
    "fig8b": "latency, all methods (MT beats single for large messages)",
    "fig9": "RMA with async progress: up to 5x from fairness",
    "fig10a": "BFS single-node thread scaling",
    "fig10b": "BFS thread scaling with ranks: fair locks win",
    "fig10c": "BFS weak scaling",
    "fig11a": "stencil strong scaling: gains for small problems",
    "fig11b": "stencil execution breakdown",
    "fig12b": "mini-SWAP assembly: ~2x from fairness, no app change",
    "fig_vci": "per-VCI arbitration domains vs global-CS locks (beyond the paper)",
    "fig_chaos": "goodput vs packet drop with ACK/retransmit + watchdog (beyond the paper)",
    "fig_continuations": "continuation-driven completion vs wait polling (beyond the paper)",
    "fig_service": "open-loop RPC service: overload protection vs collapse (beyond the paper)",
}

EXPERIMENTS: Dict[str, ExperimentRunner] = {
    "fig2a": run_fig2a,
    "fig2b": run_fig2b,
    "fig3a": run_fig3a,
    "fig3c": run_fig3c,
    "fig5a": run_fig5a,
    "fig5b": run_fig5b,
    "fig5c": run_fig5c,
    "fig6b": run_fig6b,
    "fig8a": run_fig8a,
    "fig8b": run_fig8b,
    "fig9": run_fig9,
    "fig10a": run_fig10a,
    "fig10b": run_fig10b,
    "fig10c": run_fig10c,
    "fig11a": run_fig11a,
    "fig11b": run_fig11b,
    "fig12b": run_fig12b,
    "fig_vci": run_fig_vci,
    "fig_chaos": run_fig_chaos,
    "fig_continuations": run_fig_continuations,
    "fig_service": run_fig_service,
}


def select_experiments(name: str) -> list:
    """Expand an experiment selector to registry names, in registry order.

    ``"all"`` selects everything; otherwise ``name`` matches exactly or
    as a prefix (``"fig2"`` covers ``fig2a`` and ``fig2b``).  Returns an
    empty list for a selector matching nothing -- callers decide whether
    that is an error (the CLI does).
    """
    if name == "all":
        return list(EXPERIMENTS)
    return [n for n in EXPERIMENTS if n == name or n.startswith(name)]


#: Keyword arguments every runner accepts (the uniform signature).
_RUNNER_KWARGS = ("quick", "seed", "obs")


def run_experiment(name: str, **kwargs: object) -> ExperimentResult:
    """Run one experiment by figure id (see ``EXPERIMENTS``).

    Accepted keyword arguments -- the uniform runner signature:

    * ``quick`` (bool, default True): reduced sweep sizes;
    * ``seed`` (int, default 0): master RNG seed;
    * ``obs`` (:class:`repro.obs.Instrument`, default None): attach an
      observability bus to every cluster the experiment builds.

    Unknown kwargs raise ``TypeError`` naming the accepted set, so a
    typo (``sed=3``) fails loudly instead of silently running defaults.
    When a bus is passed, the result's ``data["obs"]`` carries its
    emission stats.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; expected one of {sorted(EXPERIMENTS)}"
        ) from None
    unknown = sorted(set(kwargs) - set(_RUNNER_KWARGS))
    if unknown:
        raise TypeError(
            f"run_experiment({name!r}) got unknown keyword argument(s) "
            f"{', '.join(repr(k) for k in unknown)}; accepted: "
            f"{', '.join(_RUNNER_KWARGS)}"
        )
    obs = kwargs.get("obs")
    result = runner(**kwargs)  # type: ignore[arg-type]
    if obs is not None:
        result.data["obs"] = obs.stats()
    return result
