"""Beyond the paper: open-loop service under overload and loss.

The paper's figures stop at closed-loop microbenchmarks; this experiment
drives the :mod:`repro.workloads.service` open-loop RPC workload across
the same runtime variants the paper compares (lock class, VCI sharding,
completion mode) and asks the *robustness* question: what happens past
the knee?

Four traffic cells per variant:

* ``0.8x prot``  -- clean fabric, 80% of nominal capacity, full
  protection (deadlines + retry budget + deadline-aware shedding +
  degraded mode).  This is the goodput peak.
* ``1.5x prot``  -- same protection, offered load 1.5x capacity.  The
  graceful-degradation claim: goodput holds >= 70% of peak and p999
  stays bounded near the deadline, because expired work is shed for a
  few microseconds instead of served for tens.
* ``1.5x none``  -- the unprotected baseline at the same overload.  An
  open-loop queue grows without bound, every reply is late, and
  goodput collapses (< 40% of peak) even though the server never
  stops serving: the collapse the remedies exist to prevent.
* ``0.8x lossy`` -- 1% internode drop with the transport reliability
  layer *off*: recovery is entirely client-side (retry budget +
  deadlines + the server's replay cache deduplicating retries).

The unprotected overload cell is bounded in simulated time because the
arrival horizon is finite; every queued request is eventually served,
just hopelessly late.

Also pinned here: the zero-fault, no-overload determinism contract --
a run with ``RobustConfig.none()`` is bit-identical (result fingerprint
over arrivals, issue schedule, shed decisions, outcomes) to a run that
never passes a robustness config at all.
"""

from __future__ import annotations

from typing import Optional

from ..obs import Instrument
from ..robust import RobustConfig
from ..workloads.service import ServiceConfig, run_service, service_cluster
from .base import ExperimentResult

__all__ = ["run_fig_service"]

#: (label, lock, cs policy, completion) -- the remedy axes under load.
VARIANTS = (
    ("mutex/global/poll", "mutex", "global", "poll"),
    ("priority/global/poll", "priority", "global", "poll"),
    ("priority/per-vci:2/poll", "priority", "per-vci:2", "poll"),
    ("priority/global/cont", "priority", "global", "continuation"),
)
#: Checks are asserted against this variant (reported for all).
REFERENCE = "priority/global/poll"


def _cell(
    variant, cfg: ServiceConfig, robust: Optional[RobustConfig], seed: int,
    obs: Optional[Instrument], threads: int, **cluster_kw,
):
    _, lock, cs, completion = variant
    cl = service_cluster(
        lock=lock, threads_per_rank=threads, seed=seed, obs=obs,
        cs=cs, completion=completion, **cluster_kw,
    )
    return run_service(cl, cfg, robust)


def run_fig_service(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    threads = 2 if quick else 4
    duration = 0.006 if quick else 0.012
    service_ns = 20_000.0
    slo_ns = 250_000.0
    # Nominal capacity: threads serving service_ns each, per rank.
    capacity = threads / (service_ns * 1e-9)
    base = dict(
        duration_s=duration, service_ns=service_ns, slo_ns=slo_ns,
    )
    cfg_08 = ServiceConfig(rate_hz=0.8 * capacity, **base)
    cfg_15 = ServiceConfig(rate_hz=1.5 * capacity, **base)
    protected = RobustConfig.protected(deadline_ns=slo_ns)
    lossy_kw = dict(faults="drop=0.01", reliability=False)

    cells = {}
    for variant in VARIANTS:
        label = variant[0]
        cells[(label, "peak")] = _cell(variant, cfg_08, protected, seed, obs, threads)
        cells[(label, "over_prot")] = _cell(variant, cfg_15, protected, seed, obs, threads)
        cells[(label, "over_none")] = _cell(variant, cfg_15, None, seed, obs, threads)
        cells[(label, "lossy")] = _cell(
            variant, cfg_08, protected, seed, obs, threads, **lossy_kw,
        )

    # Determinism: robustness disabled vs. absent, bit-identical.
    ident_cfg = ServiceConfig(rate_hz=0.5 * capacity, duration_s=0.002, **{
        k: v for k, v in base.items() if k != "duration_s"
    })
    ident_a = _cell(VARIANTS[1], ident_cfg, None, seed, obs, threads)
    ident_b = _cell(VARIANTS[1], ident_cfg, RobustConfig.none(), seed, obs, threads)

    rows = []
    for variant in VARIANTS:
        label = variant[0]
        peak = cells[(label, "peak")]
        over = cells[(label, "over_prot")]
        none = cells[(label, "over_none")]
        lossy = cells[(label, "lossy")]
        gp = peak.goodput_rps or 1.0
        rows.append([
            label,
            f"{peak.goodput_rps / 1e3:.1f}",
            f"{over.goodput_rps / 1e3:.1f} ({over.goodput_rps / gp:.2f}x, "
            f"{over.shed} shed)",
            f"{none.goodput_rps / 1e3:.1f} ({none.goodput_rps / gp:.2f}x)",
            f"{lossy.goodput_rps / 1e3:.1f} ({lossy.retries} rtry)",
            f"{over.p99_us:.0f}/{over.p999_us:.0f}",
            f"{none.p99_us:.0f}/{none.p999_us:.0f}",
        ])

    ref_peak = cells[(REFERENCE, "peak")]
    ref_over = cells[(REFERENCE, "over_prot")]
    ref_none = cells[(REFERENCE, "over_none")]
    ref_lossy = cells[(REFERENCE, "lossy")]
    gp = ref_peak.goodput_rps or 1.0
    worst_prot = min(
        cells[(v[0], "over_prot")].goodput_rps
        / (cells[(v[0], "peak")].goodput_rps or 1.0)
        for v in VARIANTS
    )

    checks = {
        "protected goodput at 1.5x saturation >= 70% of peak "
        "(every variant)": worst_prot >= 0.70,
        "unprotected baseline collapses at 1.5x (< 40% of peak, "
        "reference variant)": ref_none.goodput_rps < 0.40 * gp,
        "protected p999 stays bounded under overload (<= 2x SLO)":
            ref_over.p999_us <= 2.0 * slo_ns * 1e-3,
        "shedding engaged under overload (reference variant)":
            ref_over.shed > 0,
        "lossy cell recovers via client retries (goodput >= 60% of "
        "clean peak, retries > 0)":
            ref_lossy.goodput_rps >= 0.60 * gp and ref_lossy.retries > 0,
        "retries deduplicated at the server (replay cache)":
            ref_lossy.dedup_hits > 0,
        "robustness disabled is bit-identical to absent":
            ident_a == ident_b and ident_a.fingerprint == ident_b.fingerprint,
    }

    return ExperimentResult(
        exp_id="fig_service",
        title=(
            "open-loop RPC service under overload and loss: goodput "
            f"(10^3 req/s within {slo_ns / 1e3:.0f}us SLO), "
            f"{threads} threads/rank, capacity {capacity / 1e3:.0f}k req/s"
        ),
        headers=[
            "variant", "peak 0.8x", "1.5x protected", "1.5x unprotected",
            "0.8x lossy 1%", "prot p99/p999 us", "none p99/p999 us",
        ],
        rows=rows,
        checks=checks,
        data={
            "capacity_rps": capacity,
            "cells": {k: v for k, v in cells.items()},
            "identity_fingerprint": ident_a.fingerprint,
        },
        notes=[
            "protection = deadline stamps (= SLO) + deadline-aware "
            "admission (served => meets deadline) + retry budget + "
            "degraded-mode controller",
            "the unprotected open-loop queue grows ~0.5x offered rate; "
            "every reply is eventually delivered but misses the SLO",
            f"worst protected retention across variants: {worst_prot:.2f}x",
            "lossy cell runs with transport reliability OFF: recovery is "
            "client retries + server replay-cache dedup end to end",
        ],
    )
