"""Figure 2: preliminary evaluation of multithreaded communication.

* **2a** -- pt2pt throughput vs message size for 1/2/4/8 threads per node
  under the default mutex: degradation proportional to thread count,
  up to ~4x for small messages; negligible for large (network-bound)
  messages.
* **2b** -- compact vs scatter binding (NUMA sensitivity): scatter is
  1.5-2x worse.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.report import format_size
from ..workloads.throughput import ThroughputConfig, run_throughput, throughput_cluster
from ..obs import Instrument
from .base import ExperimentResult
from .config import preset

__all__ = ["run_fig2a", "run_fig2b"]

TPNS = (1, 2, 4, 8)


def run_fig2a(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    p = preset(quick)
    rates = {}
    for size in p.sizes:
        for tpn in TPNS:
            cl = throughput_cluster(lock="mutex", threads_per_rank=tpn, seed=seed, obs=obs)
            res = run_throughput(
                cl, ThroughputConfig(msg_size=size, n_windows=p.n_windows)
            )
            rates[(size, tpn)] = res.msg_rate_k

    rows = [
        [format_size(size)] + [f"{rates[(size, t)]:.0f}" for t in TPNS]
        for size in p.sizes
    ]
    small, large = p.sizes[0], p.sizes[-1]
    degr_small = rates[(small, 1)] / rates[(small, 8)]
    degr_large = rates[(large, 1)] / rates[(large, 8)]
    return ExperimentResult(
        exp_id="fig2a",
        title="Multithreaded throughput vs message size (mutex), 10^3 msgs/s",
        headers=["size"] + [f"{t} tpn" for t in TPNS],
        rows=rows,
        checks={
            "small messages degrade >= 2.5x from 1 to 8 threads":
                degr_small >= 2.5,
            "degradation grows with thread count":
                rates[(small, 1)] > rates[(small, 2)] > rates[(small, 8)],
            "large messages are network-bound (degradation < 1.5x)":
                degr_large < 1.5,
        },
        data={"rates": rates, "degradation_small": degr_small,
              "degradation_large": degr_large},
        notes=[f"paper: up to four-fold reduction; measured {degr_small:.1f}x"],
    )


def run_fig2b(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    rates = {}
    for binding in ("compact", "scatter"):
        for tpn in (1, 2, 4):
            cl = throughput_cluster(
                lock="mutex", threads_per_rank=tpn, binding=binding, seed=seed,
                obs=obs,
            )
            res = run_throughput(cl, ThroughputConfig(msg_size=8, n_windows=6))
            rates[(binding, tpn)] = res.msg_rate_k
    rows = [
        [t, f"{rates[('compact', t)]:.0f}", f"{rates[('scatter', t)]:.0f}",
         f"{rates[('compact', t)] / rates[('scatter', t)]:.2f}x"]
        for t in (1, 2, 4)
    ]
    return ExperimentResult(
        exp_id="fig2b",
        title="Effect of thread binding on throughput (mutex, 8-byte msgs)",
        headers=["threads", "compact", "scatter", "compact/scatter"],
        rows=rows,
        checks={
            "scatter worse than compact at 2 threads":
                rates[("scatter", 2)] < rates[("compact", 2)],
            "scatter worse than compact at 4 threads (>= 1.2x)":
                rates[("compact", 4)] / rates[("scatter", 4)] >= 1.2,
            "binding irrelevant at 1 thread (within 5%)":
                abs(rates[("compact", 1)] / rates[("scatter", 1)] - 1) < 0.05,
        },
        data={"rates": rates},
        notes=["paper: throughput 1.5-2x worse with scatter binding"],
    )
