"""Figure 3: analysis of unfair arbitration and its consequences.

* **3a** -- bias factors (mutex vs fair arbitration) at the core and
  socket level, from lock-acquisition traces during the throughput
  benchmark: the paper reports ~2x core-level and ~1.25x socket-level.
* **3b** -- the receive-request state diagram: encoded (and tested) in
  :mod:`repro.mpi.request`; no experiment to run.
* **3c** -- average number of dangling requests under the mutex: high
  (tens to hundreds) across small message sizes.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.bias import compute_bias_factors
from ..analysis.report import format_size
from ..workloads.throughput import ThroughputConfig, run_throughput, throughput_cluster
from ..obs import Instrument
from .base import ExperimentResult
from .config import preset

__all__ = ["run_fig3a", "run_fig3c"]


def run_fig3a(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    p = preset(quick)
    rows = []
    core, sock = {}, {}
    for size in p.sizes:
        cl = throughput_cluster(
            lock="mutex", threads_per_rank=8, seed=seed, obs=obs, trace_locks=True
        )
        run_throughput(cl, ThroughputConfig(msg_size=size, n_windows=p.n_windows))
        b = compute_bias_factors(cl.lock_traces[1])
        core[size], sock[size] = b.core_bias, b.socket_bias
        rows.append([
            format_size(size), f"{b.core_bias:.2f}", f"{b.socket_bias:.2f}",
            b.n_samples,
        ])
    core_vals = list(core.values())
    sock_vals = list(sock.values())
    return ExperimentResult(
        exp_id="fig3a",
        title="Mutex arbitration bias factors (8 threads, receiver rank)",
        headers=["size", "core-level bias", "socket-level bias", "samples"],
        rows=rows,
        checks={
            "core-level bias > 1.4 across sizes": min(core_vals) > 1.4,
            "socket-level bias > 1.1 across sizes": min(sock_vals) > 1.1,
            "core bias exceeds socket bias on average":
                sum(core_vals) / len(core_vals) > sum(sock_vals) / len(sock_vals),
        },
        data={"core": core, "socket": sock},
        notes=["paper: ~2x core-level and ~1.25x socket-level on average"],
    )


def run_fig3c(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    p = preset(quick)
    small_sizes = [s for s in p.sizes if s <= 4096] or list(p.sizes[:3])
    rows = []
    means = {}
    for size in small_sizes:
        cl = throughput_cluster(lock="mutex", threads_per_rank=8, seed=seed, obs=obs)
        res = run_throughput(cl, ThroughputConfig(msg_size=size, n_windows=p.n_windows))
        means[size] = res.dangling.mean
        rows.append([format_size(size), f"{res.dangling.mean:.1f}",
                     res.dangling.maximum])
    return ExperimentResult(
        exp_id="fig3c",
        title="Dangling requests under mutex (8 threads, window 64)",
        headers=["size", "mean dangling", "max dangling"],
        rows=rows,
        checks={
            "dangling mean > 50 for small messages":
                min(means.values()) > 50,
        },
        data={"means": means},
        notes=["paper: high counts (~50-250) caused by starving windows"],
    )
