"""Figure 8: two-sided microbenchmarks, all four methods, 8 threads.

* **8a** -- throughput: ticket ~ priority > mutex; all multithreaded
  runs well below single-threaded for small messages (paper: ~36%).
* **8b** -- latency: ticket up to 3.5x lower than mutex for small
  messages; multithreaded *beats* single-threaded above the inline
  threshold thanks to pipelined transfers (paper: up to 3.6x).
"""

from __future__ import annotations

from typing import Optional

from ..analysis.report import format_size
from ..mpi.world import Cluster, ClusterConfig
from ..workloads.latency import LatencyConfig, run_latency
from ..workloads.throughput import ThroughputConfig, run_throughput, throughput_cluster
from ..obs import Instrument
from .base import ExperimentResult
from .config import preset

__all__ = ["run_fig8a", "run_fig8b"]

METHODS = ("single", "mutex", "ticket", "priority")


def _cluster(method: str, seed: int, obs: Optional[Instrument] = None) -> Cluster:
    if method == "single":
        return throughput_cluster(lock="null", threads_per_rank=1, seed=seed, obs=obs)
    return throughput_cluster(lock=method, threads_per_rank=8, seed=seed, obs=obs)


def run_fig8a(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    p = preset(quick)
    rates = {}
    for size in p.sizes:
        for method in METHODS:
            cl = _cluster(method, seed, obs)
            res = run_throughput(cl, ThroughputConfig(msg_size=size, n_windows=p.n_windows))
            rates[(method, size)] = res.msg_rate_k
    rows = [
        [format_size(s)] + [f"{rates[(m, s)]:.0f}" for m in METHODS]
        for s in p.sizes
    ]
    small = p.sizes[0]
    return ExperimentResult(
        exp_id="fig8a",
        title="Throughput, 8 threads: single / mutex / ticket / priority",
        headers=["size"] + list(METHODS),
        rows=rows,
        checks={
            "ticket beats mutex for small messages":
                rates[("ticket", small)] > rates[("mutex", small)],
            "priority within 15% of ticket":
                abs(rates[("priority", small)] / rates[("ticket", small)] - 1) < 0.15,
            "multithreaded small-message throughput below single-threaded":
                rates[("ticket", small)] < 0.7 * rates[("single", small)],
        },
        data={"rates": rates},
        notes=["paper: ticket/priority similar, outperform mutex, reach "
               "only ~36% of single-threaded"],
    )


def run_fig8b(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    p = preset(quick)
    lat = {}
    for size in p.sizes:
        for method in METHODS:
            if method == "single":
                cl = Cluster(ClusterConfig(
                    n_nodes=2, threads_per_rank=1, lock="null", seed=seed, obs=obs))
            else:
                cl = Cluster(ClusterConfig(
                    n_nodes=2, threads_per_rank=8, lock=method, seed=seed, obs=obs))
            res = run_latency(cl, LatencyConfig(msg_size=size, n_iters=p.latency_iters))
            lat[(method, size)] = res.latency_us
    rows = [
        [format_size(s)] + [f"{lat[(m, s)]:.2f}" for m in METHODS]
        for s in p.sizes
    ]
    small = p.sizes[0]
    big = p.sizes[-1]
    return ExperimentResult(
        exp_id="fig8b",
        title="Aggregate effective latency (us), 8 threads",
        headers=["size"] + list(METHODS),
        rows=rows,
        checks={
            "mutex latency worst for small messages":
                lat[("mutex", small)] > lat[("ticket", small)]
                and lat[("mutex", small)] > lat[("single", small)],
            "ticket within 2x of single for small messages":
                lat[("ticket", small)] < 2.0 * lat[("single", small)],
            "multithreaded beats single for large messages":
                lat[("ticket", big)] < lat[("single", big)],
            "priority tracks ticket (within 20%)":
                abs(lat[("priority", small)] / lat[("ticket", small)] - 1) < 0.20,
        },
        data={"latency_us": lat},
        notes=[
            "paper: ticket up to 3.5x lower latency than mutex; ticket "
            "~1.66x single below 128 B; multithreaded up to 3.6x better "
            "than single above 128 B (here the crossover sits higher, "
            "near the rendezvous threshold -- see EXPERIMENTS.md)",
        ],
    )
