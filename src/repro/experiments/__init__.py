"""One runner per reproduced paper figure.

Each runner returns an :class:`~repro.experiments.base.ExperimentResult`
with the figure's rows/series, plus shape checks encoding the paper's
qualitative claims.  ``repro.experiments.run_experiment("fig5c")`` runs
one; the ``benchmarks/`` suite runs them all and prints the tables.
"""

from .base import ExperimentResult
from .config import PAPER, QUICK, Preset, preset
from .registry import EXPERIMENTS, run_experiment

__all__ = [
    "ExperimentResult",
    "Preset",
    "QUICK",
    "PAPER",
    "preset",
    "EXPERIMENTS",
    "run_experiment",
]
