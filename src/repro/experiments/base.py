"""Common experiment scaffolding.

Every ``figXX`` module exposes ``run(quick=True, seed=...) ->
ExperimentResult``: the rows the paper's figure plots, plus *shape
checks* -- assertions about who wins and by roughly what factor, which is
what a simulator-based reproduction can and should promise (absolute
numbers depend on the authors' testbed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..analysis.report import format_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    exp_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    #: name -> passed; each check encodes one qualitative paper claim.
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: Raw series for programmatic consumers.
    data: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(self.checks.values())

    def failed_checks(self) -> List[str]:
        return [k for k, v in self.checks.items() if not v]

    def format(self) -> str:
        out = [format_table(self.headers, self.rows, title=f"[{self.exp_id}] {self.title}")]
        if self.checks:
            out.append("shape checks:")
            for name, passed in self.checks.items():
                out.append(f"  [{'PASS' if passed else 'FAIL'}] {name}")
        for n in self.notes:
            out.append(f"note: {n}")
        return "\n".join(out)
