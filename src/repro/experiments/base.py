"""Common experiment scaffolding.

Every ``figXX`` module exposes ``run(quick=True, seed=...) ->
ExperimentResult``: the rows the paper's figure plots, plus *shape
checks* -- assertions about who wins and by roughly what factor, which is
what a simulator-based reproduction can and should promise (absolute
numbers depend on the authors' testbed).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from ..analysis.report import format_table

__all__ = ["ExperimentResult", "jsonable"]


def jsonable(obj: Any) -> Any:
    """Recursively coerce ``obj`` into JSON-serializable primitives.

    Experiment ``data`` mixes numpy scalars/arrays, tuple-keyed dicts
    and result dataclasses; this flattens all of them (tuple keys
    become comma-joined strings) so ``--format json`` never chokes.

    Key coercion can collide -- ``(1, 2)`` and ``"1,2"`` (or ``1`` and
    ``"1"``) both coerce to the same JSON key.  Silently keeping one
    value would corrupt the payload, so a collision raises ``ValueError``
    naming both originals.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, dict):
        out = {}
        seen = {}
        for k, v in obj.items():
            key = ",".join(str(p) for p in k) if isinstance(k, tuple) else str(k)
            if key in out:
                raise ValueError(
                    f"jsonable: keys {seen[key]!r} and {k!r} both coerce to "
                    f"JSON key {key!r}; one value would be silently dropped "
                    "-- disambiguate the keys before serializing"
                )
            seen[key] = k
            out[key] = jsonable(v)
        return out
    if isinstance(obj, (list, tuple, set, frozenset)):
        seq = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) else obj
        return [jsonable(v) for v in seq]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    # numpy scalars and arrays (without importing numpy here).
    if hasattr(obj, "tolist"):
        return jsonable(obj.tolist())
    if hasattr(obj, "item"):
        return jsonable(obj.item())
    return str(obj)


@dataclass
class ExperimentResult:
    exp_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    #: name -> passed; each check encodes one qualitative paper claim.
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: Raw series for programmatic consumers.
    data: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(self.checks.values())

    def failed_checks(self) -> List[str]:
        return [k for k, v in self.checks.items() if not v]

    def to_dict(self) -> dict:
        """Machine-readable form (``python -m repro run --format json``)."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [jsonable(list(row)) for row in self.rows],
            "checks": dict(self.checks),
            "ok": self.ok,
            "notes": list(self.notes),
            "data": jsonable(self.data),
        }

    def format(self) -> str:
        out = [format_table(self.headers, self.rows, title=f"[{self.exp_id}] {self.title}")]
        if self.checks:
            out.append("shape checks:")
            for name, passed in self.checks.items():
                out.append(f"  [{'PASS' if passed else 'FAIL'}] {name}")
        for n in self.notes:
            out.append(f"note: {n}")
        return "\n".join(out)
