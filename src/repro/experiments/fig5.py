"""Figure 5: the ticket lock vs the mutex on the throughput benchmark.

* **5a** -- dangling requests: ticket keeps them low.
* **5b** -- 1-byte messages, compact/scatter x mutex/ticket x threads:
  ticket +68% at 4 threads compact; *loses slightly* at 2 threads
  scatter; the fair-arbitration benefit grows with concurrency.
* **5c** -- message-size sweep at 8 threads: ticket ~+30% below 4 KiB,
  converging by 32 KiB.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.report import format_size
from ..workloads.throughput import ThroughputConfig, run_throughput, throughput_cluster
from ..obs import Instrument
from .base import ExperimentResult
from .config import preset

__all__ = ["run_fig5a", "run_fig5b", "run_fig5c"]


def run_fig5a(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    p = preset(quick)
    small_sizes = [s for s in p.sizes if s <= 4096] or list(p.sizes[:3])
    rows = []
    means = {}
    for size in small_sizes:
        for lock in ("mutex", "ticket"):
            cl = throughput_cluster(lock=lock, threads_per_rank=8, seed=seed, obs=obs)
            res = run_throughput(cl, ThroughputConfig(msg_size=size, n_windows=p.n_windows))
            means[(lock, size)] = res.dangling.mean
        rows.append([
            format_size(size),
            f"{means[('mutex', size)]:.1f}",
            f"{means[('ticket', size)]:.1f}",
        ])
    ratios = [means[("mutex", s)] / max(1e-9, means[("ticket", s)]) for s in small_sizes]
    avg_ratio = sum(ratios) / len(ratios)
    return ExperimentResult(
        exp_id="fig5a",
        title="Dangling requests: mutex vs ticket (8 threads)",
        headers=["size", "mutex", "ticket"],
        rows=rows,
        checks={
            "mutex dangles more at every size (> 1.2x)": min(ratios) > 1.2,
            "mutex dangles >= 1.4x more on average": avg_ratio >= 1.4,
        },
        data={"means": means},
        notes=["paper: ticket keeps the number of dangling requests very low"],
    )


def run_fig5b(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    rates = {}
    for binding in ("compact", "scatter"):
        for lock in ("mutex", "ticket"):
            for tpn in (1, 2, 4):
                cl = throughput_cluster(
                    lock=lock, threads_per_rank=tpn, binding=binding, seed=seed,
                    obs=obs,
                )
                res = run_throughput(cl, ThroughputConfig(msg_size=1, n_windows=6))
                rates[(binding, lock, tpn)] = res.msg_rate_k
    rows = []
    for binding in ("compact", "scatter"):
        for tpn in (1, 2, 4):
            m = rates[(binding, "mutex", tpn)]
            t = rates[(binding, "ticket", tpn)]
            rows.append([binding, tpn, f"{m:.0f}", f"{t:.0f}", f"{t / m:.2f}x"])
    gain_c4 = rates[("compact", "ticket", 4)] / rates[("compact", "mutex", 4)]
    loss_s2 = rates[("scatter", "ticket", 2)] / rates[("scatter", "mutex", 2)]
    gain_s4 = rates[("scatter", "ticket", 4)] / rates[("scatter", "mutex", 4)]
    return ExperimentResult(
        exp_id="fig5b",
        title="Ticket vs mutex, 1-byte messages, by binding and threads",
        headers=["binding", "threads", "mutex", "ticket", "ticket/mutex"],
        rows=rows,
        checks={
            "compact 4 threads: ticket wins by >= 1.3x": gain_c4 >= 1.3,
            "scatter 2 threads: ticket does not win big (<= 1.1x)":
                loss_s2 <= 1.1,
            "fair-arbitration benefit grows with concurrency (scatter)":
                gain_s4 > loss_s2,
        },
        data={"rates": rates, "gain_compact4": gain_c4},
        notes=[
            "paper: +68% at 4 threads compact; ticket loses slightly at "
            "2 threads scatter; benefit grows with concurrency",
            f"measured compact-4 gain: {gain_c4:.2f}x",
        ],
    )


def run_fig5c(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    p = preset(quick)
    rates = {}
    for size in p.sizes:
        for lock in ("mutex", "ticket"):
            cl = throughput_cluster(lock=lock, threads_per_rank=8, seed=seed, obs=obs)
            res = run_throughput(cl, ThroughputConfig(msg_size=size, n_windows=p.n_windows))
            rates[(lock, size)] = res.msg_rate_k
    rows = [
        [format_size(s), f"{rates[('mutex', s)]:.0f}",
         f"{rates[('ticket', s)]:.0f}",
         f"{rates[('ticket', s)] / rates[('mutex', s)]:.2f}x"]
        for s in p.sizes
    ]
    small = [s for s in p.sizes if s < 4096]
    big = [s for s in p.sizes if s >= 32768]
    gain_small = sum(rates[("ticket", s)] / rates[("mutex", s)] for s in small) / len(small)
    conv_big = max(
        abs(rates[("ticket", s)] / rates[("mutex", s)] - 1.0) for s in big
    ) if big else 0.0
    return ExperimentResult(
        exp_id="fig5c",
        title="Throughput vs message size, 8 threads: mutex vs ticket",
        headers=["size", "mutex", "ticket", "ticket/mutex"],
        rows=rows,
        checks={
            "ticket wins on average below 4 KiB (>= 1.15x)": gain_small >= 1.15,
            "methods converge for large messages (within 30%)": conv_big <= 0.30,
        },
        data={"rates": rates, "gain_small": gain_small},
        notes=["paper: ticket outperforms mutex by ~30% below 4 KiB, "
               "negligible from 32 KiB"],
    )
