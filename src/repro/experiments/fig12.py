"""Figure 12b: mini-SWAP genome assembly, strong scaling.

Four ranks per node, two threads per rank (sender + receiver, blocking
MPI): the paper reports an average 2x speedup for the fair locks,
independent of core count -- with no change to the application.
"""

from __future__ import annotations

from typing import Optional

from ..mpi.world import Cluster, ClusterConfig
from ..workloads.assembly import AssemblyConfig, run_assembly
from ..obs import Instrument
from .base import ExperimentResult
from .config import preset

__all__ = ["run_fig12b"]

LOCKS = ("mutex", "ticket", "priority")


def run_fig12b(
    quick: bool = True, seed: int = 0, obs: Optional[Instrument] = None,
) -> ExperimentResult:
    p = preset(quick)
    cfg = AssemblyConfig(
        genome_length=p.asm_genome, n_reads=p.asm_reads, batch_size=8,
    )
    node_counts = (1, 2, 4) if quick else (1, 2, 4, 8, 16)
    times = {}
    for nodes in node_counts:
        for lock in LOCKS:
            cl = Cluster(ClusterConfig(
                n_nodes=nodes, ranks_per_node=4, threads_per_rank=2,
                lock=lock, seed=seed, obs=obs))
            res = run_assembly(cl, cfg)
            times[(lock, nodes)] = res.elapsed_s
    rows = [
        [nodes, nodes * 8]
        + [f"{times[(lk, nodes)] * 1e3:.2f}" for lk in LOCKS]
        + [f"{times[('mutex', nodes)] / times[('ticket', nodes)]:.2f}x"]
        for nodes in node_counts
    ]
    gains = [times[("mutex", n)] / times[("ticket", n)] for n in node_counts]
    return ExperimentResult(
        exp_id="fig12b",
        title="Mini-SWAP assembly strong scaling (ms), 4 ranks/node x 2 threads",
        headers=["nodes", "cores", "mutex", "ticket", "priority", "speedup"],
        rows=rows,
        checks={
            "fair locks speed up assembly at every scale (>= 1.25x)":
                min(gains) >= 1.25,
            "execution time decreases with more cores (ticket)":
                times[("ticket", node_counts[-1])] < times[("ticket", node_counts[0])],
            "priority tracks ticket":
                all(abs(times[("priority", n)] / times[("ticket", n)] - 1) < 0.15
                    for n in node_counts),
        },
        data={"times": times, "gains": gains},
        notes=[f"paper: ~2x average speedup, flat across core counts; "
               f"measured gains: " + ", ".join(f"{g:.2f}x" for g in gains)],
    )
