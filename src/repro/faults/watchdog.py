"""The progress watchdog: no liveness failure may become a silent hang.

A lossy fabric without retransmission turns the paper's starvation
pathologies into true deadlocks: a receiver whose message was dropped
polls the progress engine forever and the discrete-event simulation never
runs out of events.  The watchdog is a service process that samples a
cluster-wide progress metric (completions + frees + packets handled)
every ``interval``; after ``grace`` consecutive frozen samples it emits a
diagnostic dump -- per-domain queue depths, lock holder and waiters,
dangling counts -- on the observability bus under the ``fault`` category
and aborts the run with :class:`ProgressStallError` (carrying the same
dump on ``.diagnostics``).

The watchdog only reads counters: it adds no simulated time to any
workload thread and consumes no RNG, and it is only installed when an
active fault plan is configured.

The sampling loop holds its pending interval timer as a first-class
cancellable handle: :meth:`ProgressWatchdog.stop` cancels it at shutdown,
so the post-workload drain is not padded out to the next sampling tick
(historically every consumer had to disable the watchdog or measure
before the drain to avoid that skew).  The idle check reads the
simulator's *live* event count -- a heap holding nothing but cancelled
timers is a finished run, not pending work.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["ProgressStallError", "ProgressWatchdog"]


class ProgressStallError(RuntimeError):
    """The cluster made no progress for the watchdog's full grace period."""

    def __init__(self, message: str, diagnostics: Optional[dict] = None):
        super().__init__(message)
        #: The same dump the watchdog emitted on the obs bus.
        self.diagnostics = diagnostics or {}


class ProgressWatchdog:
    """Samples cluster progress and aborts hung runs with a dump."""

    def __init__(self, cluster, interval: float, grace: int = 5):
        if interval <= 0.0:
            raise ValueError(f"watchdog interval must be positive, got {interval}")
        self.cluster = cluster
        self.interval = interval
        self.grace = int(grace)
        self.stalled = False
        #: Last dump taken (also carried by the raised error).
        self.diagnostics: Optional[dict] = None
        #: Early-warning hooks: callables invoked as ``hook(frozen)``
        #: once per stall episode, when the frozen-sample count first
        #: reaches half the grace period -- before the abort, early
        #: enough for a degraded-mode controller (:mod:`repro.robust`)
        #: to start shedding load and perhaps avert the stall.
        self.on_warning: list = []
        #: Diagnostic providers: zero-arg callables returning a dict
        #: merged into the stall dump (the deadlock detector adds its
        #: waits-for cycles here, so a post-mortem shows *who* waits on
        #: *what*, not just frozen counters).
        self.diagnostic_hooks: list = []
        self._proc = None
        #: The pending interval timer (cancellable), None between samples.
        self._pending = None

    def install(self) -> "ProgressWatchdog":
        self._proc = self.cluster.sim.process(self._loop(), name="watchdog")
        return self

    def stop(self) -> None:
        """Tear down the sampling loop by cancelling its pending timer.

        The cancelled timer is never dispatched, so a post-workload drain
        ends at the last real event instead of the watchdog's next tick.
        Idempotent; safe to call whether or not a sample is pending.
        """
        timer = self._pending
        if timer is not None:
            timer.cancel()
            self._pending = None

    # ------------------------------------------------------------------
    def _metric(self) -> int:
        total = 0
        for rt in self.cluster.runtimes:
            total += rt.stats.completed + rt.stats.freed + rt.stats.packets_handled
            rel = rt.rel_stats
            if rel is not None:
                # A run quietly waiting out a retransmit backoff is
                # recovering, not stalled.
                total += rel.retransmits + rel.acks_received + rel.giveups
        return total

    def _parked(self) -> int:
        """Blocking calls parked on their runtime's activity signal.

        Parked waiters (continuation / event-driven wait modes) hold no
        event in the queue at all -- their wake-up is a bare Signal the
        *next packet or completion* fires.  A fully-parked cluster
        therefore shows ``queued_events == 0`` while threads still have
        pending requests: that is a stall to diagnose, not a finished
        run, so the idle check must see these waiters."""
        return sum(rt.parked_waiters for rt in self.cluster.runtimes)

    def _loop(self):
        sim = self.cluster.sim
        last = self._metric()
        frozen = 0
        while not self.cluster._shutdown:
            self._pending = timer = sim.timeout(self.interval)
            yield timer
            self._pending = None
            if self.cluster._shutdown:
                return
            if sim.queued_events == 0 and self._parked() == 0:
                # No *live* event left but us, and nobody parked on an
                # activity signal: the run is over (or already
                # deadlocked in a way run() reports itself).  Dead
                # (cancelled) timers still on the heap are not pending
                # work and must not keep the watchdog sampling.  With
                # parked waiters the queue may legitimately run dry
                # while the system is live-but-stuck (every waiter
                # waiting on a packet that was dropped), so sampling
                # continues until the grace period expires and the
                # stall is diagnosed instead of surfacing as a generic
                # out-of-events crash.
                return
            cur = self._metric()
            if cur != last:
                last = cur
                frozen = 0
                continue
            frozen += 1
            if frozen == max(1, self.grace // 2) and self.on_warning:
                for hook in self.on_warning:
                    hook(frozen)
            if frozen >= self.grace:
                self.stalled = True
                self.diagnostics = self._dump()
                raise ProgressStallError(
                    f"no progress for {frozen} x {self.interval * 1e6:.0f}us "
                    f"(t={sim.now * 1e6:.1f}us, metric={cur}); see .diagnostics",
                    diagnostics=self.diagnostics,
                )

    # ------------------------------------------------------------------
    def _dump(self) -> dict:
        """Snapshot the runtime state a hang post-mortem needs, and emit
        it on the obs bus (``fault`` category)."""
        sim = self.cluster.sim
        ranks = []
        for rt in self.cluster.runtimes:
            domains = []
            for d in rt.domains:
                owner = d.lock.owner
                domains.append({
                    "index": d.index,
                    "recv_q": len(d.recv_q) if d.recv_q is not None else 0,
                    "posted_q": len(d.posted_q),
                    "unexp_q": len(d.unexp_q),
                    "lock_holder": owner.name if owner is not None else None,
                    "lock_waiters": d.lock.n_contenders,
                    "dangling": d.stats.dangling,
                })
            ranks.append({
                "rank": rt.rank,
                "dangling": rt.dangling_count,
                "live_requests": len(rt.requests),
                "pending_rndv_sends": len(rt._pending_sends),
                "domains": domains,
            })
        diag = {"t_s": sim.now, "ranks": ranks}
        for hook in self.diagnostic_hooks:
            diag.update(hook())
        obs = sim.obs
        if obs is not None and obs.wants("fault"):
            obs.instant("fault", "watchdog.stall", args={"t_s": sim.now})
            for r in ranks:
                obs.instant("fault", "watchdog.dump", rank=r["rank"], args=r)
                obs.counter("fault", "watchdog.dangling", r["dangling"],
                            rank=r["rank"])
        return diag

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ProgressWatchdog interval={self.interval * 1e6:.0f}us "
            f"grace={self.grace} stalled={self.stalled}>"
        )
