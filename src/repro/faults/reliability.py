"""Sequence-numbered ACK/retransmit: the runtime remedy for a lossy fabric.

MPICH over a reliable interconnect never retransmits; our fault injector
breaks that assumption, so the runtime grows a thin reliability layer
(one per rank, disabled by default -- with ``reliability=None`` the
runtime executes the exact pre-reliability instruction stream):

* **Data packets** (EAGER and RNDV_DATA) are tracked by their wire
  sequence number.  The receiving NIC ACKs every copy *at delivery*
  (modeling hardware-level RDMA acks -- the ack round-trip is wire
  time, not a trip through the contended critical section) and admits
  only the first into a receive queue (duplicates are absorbed).  The
  *send request completes when the ACK arrives*, not at local
  injection -- reliable-delivery semantics.
* **RTS** is retried until the CTS arrives; a duplicate RTS at the
  receiver re-sends the cached CTS (covering a lost CTS), so every leg
  of the rendezvous handshake recovers.  The CTS requires a software
  match, so RTS recovery -- unlike data ACKs -- runs at progress-engine
  latency.  The receiving NIC also acks the RTS *at delivery* (like
  data): a delivery-confirmed RTS is in the peer's queues, so only the
  software match stands between the sender and its CTS -- the sender
  downshifts to a slow refresh (still covering a CTS lost on the wire
  via the receiver's replay cache) and stops counting retries toward
  give-up.  Without that distinction a contended receiver -- e.g. every
  small message forced through rendezvous at 8 threads -- looks
  identical to a dead one, and the sender fails deliverable requests on
  a lossless fabric while the receiver's matched recvs wait forever.
* Retransmit timers back off exponentially (``rto * backoff**retries``)
  under a configurable budget (``max_retries`` and ``budget_ns``); on
  exhaustion the request is failed (``Request.error``) and completed so
  its owner unblocks -- the watchdog is the backstop, not the only exit.
  ``max_retries`` bounds *suspected loss* (no delivery confirmation);
  ``budget_ns`` is the only cap that can fail a delivery-confirmed RTS.

Timers are cancellable simulator callbacks (``Simulator.call_after``
handles): an ACK/CTS calls :meth:`Event.cancel` on the pending timer, so
a satisfied packet's timer is never dispatched -- no generation tokens,
no stale-callback filtering, no dead heap entries surviving to pop time.
Timers consume no RNG and exist only while the layer is enabled,
preserving the zero-fault determinism contract; cancellation itself is
schedule-neutral (the same timers are *scheduled* either way, dead ones
are just skipped by the engine).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Set, Tuple

from ..network.message import Packet, PacketKind

__all__ = ["ReliabilityConfig", "ReliabilityStats", "ReliabilityLayer"]


@dataclass(frozen=True)
class ReliabilityConfig:
    """Retransmission parameters (nanoseconds, like the cost model)."""

    #: Initial retransmit timeout for data packets.  ACKs are generated
    #: at delivery (NIC-level), so this only needs to cover the wire
    #: round-trip (~4us internode); spurious retransmits are harmless
    #: (dedup) but waste wire time.
    rto_ns: float = 15_000.0
    #: Multiplier applied per retry (exponential backoff).
    backoff: float = 2.0
    #: Backoff ceiling: no retry interval exceeds this.  Must stay well
    #: below the watchdog's grace window (interval x grace), or a packet
    #: quietly waiting out a deep backoff reads as a stall.
    rto_max_ns: float = 240_000.0
    #: Initial-RTO multiplier for RTS packets: the CTS answer needs a
    #: software match through the contended progress engine, not just a
    #: wire round-trip.
    rts_rto_scale: float = 4.0
    #: Retry budget per packet; exhaustion fails the request.
    max_retries: int = 8
    #: Wall budget (simulated) per packet across all retries; <= 0 means
    #: unlimited (the retry count still bounds it).
    budget_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.rto_ns <= 0.0:
            raise ValueError(f"rto_ns must be positive, got {self.rto_ns}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.rto_max_ns < self.rto_ns:
            raise ValueError(
                f"rto_max_ns ({self.rto_max_ns}) below rto_ns ({self.rto_ns})"
            )
        if self.rts_rto_scale < 1.0:
            raise ValueError(f"rts_rto_scale must be >= 1, got {self.rts_rto_scale}")
        if self.max_retries < 0:
            raise ValueError(f"negative max_retries {self.max_retries}")

    @property
    def rto(self) -> float:
        return self.rto_ns * 1e-9

    def with_overrides(self, **kw) -> "ReliabilityConfig":
        return replace(self, **kw)


class ReliabilityStats:
    """Per-rank reliability counters."""

    __slots__ = (
        "tracked", "retransmits", "acks_sent", "acks_received",
        "dup_data", "dup_acks", "giveups",
    )

    def __init__(self):
        for f in self.__slots__:
            setattr(self, f, 0)

    def as_dict(self) -> dict:
        return {f: getattr(self, f) for f in self.__slots__}


class _Unacked:
    """One tracked in-flight packet and its retransmit state."""

    __slots__ = ("pkt", "req", "retries", "timer", "t0", "is_rts",
                 "base_rto_ns", "delivered")

    def __init__(self, pkt, req, now, base_rto_ns, is_rts=False):
        self.pkt = pkt
        self.req = req
        self.retries = 0
        #: Some copy of this packet reached the peer's NIC (RTS only:
        #: data packets complete outright on their ACK).  Once set, the
        #: retry counter stops feeding give-up -- the packet is not lost.
        self.delivered = False
        #: Pending retransmit timer: the cancellable handle returned by
        #: ``Simulator.call_after`` (None between firing and re-arm).
        self.timer = None
        self.t0 = now
        self.is_rts = is_rts
        #: Size-aware initial RTO: the configured floor plus this
        #: packet's own wire serialization time (a 64KB rendezvous
        #: payload takes longer to ack than a 1KB eager message).
        self.base_rto_ns = base_rto_ns


class ReliabilityLayer:
    """Per-rank ACK/retransmit state machine, owned by an MpiRuntime."""

    __slots__ = ("rt", "cfg", "stats", "unacked", "rts_pending", "seen",
                 "cts_cache", "rts_by_seq")

    def __init__(self, runtime, config: Optional[ReliabilityConfig] = None):
        self.rt = runtime
        self.cfg = config or ReliabilityConfig()
        self.stats = ReliabilityStats()
        #: Data packets awaiting an ACK, by wire sequence number.
        self.unacked: Dict[int, _Unacked] = {}
        #: RTS packets awaiting a CTS, by sender request id.
        self.rts_pending: Dict[int, _Unacked] = {}
        #: The same entries by wire sequence number, so a NIC-level RTS
        #: delivery ack (payload = seq) can find them.
        self.rts_by_seq: Dict[int, _Unacked] = {}
        #: ``(src_rank, seq)`` of every data/RTS packet already processed
        #: (duplicate absorption).
        self.seen: Set[Tuple[int, int]] = set()
        #: CTS replay cache: ``(sender_rank, sender_req_id)`` -> the CTS
        #: fields, so a duplicate RTS re-clears a sender whose CTS died.
        self.cts_cache: Dict[Tuple[int, int], Tuple[int, int, int]] = {}
        # NIC-level hook: ACKs and duplicate data are absorbed at
        # delivery, before any queueing (see :meth:`on_delivery`).
        runtime.nic.rel_filter = self.on_delivery

    # ==================================================================
    # Sender side
    # ==================================================================
    def _base_rto_ns(self, is_rts: bool = False) -> float:
        """Per-send initial RTO: the configured floor, scaled up for RTS
        (software-latency answer), plus the sending NIC's *current
        serialization backlog* -- the packet just handed to the fabric
        drains only after everything already reserved ahead of it.  An
        RTO blind to that backlog turns a full send window into a
        retransmit storm (every retransmit adds wire load, pushing every
        later ack past its own timer)."""
        base = self.cfg.rto_ns * (self.cfg.rts_rto_scale if is_rts else 1.0)
        now = self.rt.sim.now
        nic = self.rt.nic
        busy = nic.inject.busy_until
        uplink = self.rt.fabric._uplinks.get(nic.node)
        if uplink is not None and uplink.busy_until > busy:
            busy = uplink.busy_until
        if busy > now:
            base += (busy - now) * 1e9
        return base

    def track(self, pkt: Packet, req) -> None:
        """Track a data packet (EAGER / RNDV_DATA); complete ``req`` on ACK."""
        e = _Unacked(pkt, req, self.rt.sim.now, self._base_rto_ns())
        self.unacked[pkt.seq] = e
        self.stats.tracked += 1
        self._arm(e)

    def track_rts(self, pkt: Packet, req) -> None:
        """Track an RTS; retried until :meth:`on_cts` cancels it."""
        e = _Unacked(pkt, req, self.rt.sim.now,
                     self._base_rto_ns(is_rts=True), is_rts=True)
        self.rts_pending[pkt.payload.req_id] = e
        self.rts_by_seq[pkt.seq] = e
        self.stats.tracked += 1
        self._arm(e)

    def _arm(self, e: _Unacked) -> None:
        ceiling = max(self.cfg.rto_max_ns, e.base_rto_ns)
        if e.is_rts and e.delivered:
            # Delivery-confirmed: slow refresh at the ceiling, enough to
            # replay a CTS that died on the wire without storming a
            # merely-contended receiver.
            rto = ceiling
        else:
            rto = min(e.base_rto_ns * (self.cfg.backoff ** e.retries), ceiling)
        e.timer = self.rt.sim.call_after(rto * 1e-9, self._on_timer, e)

    @staticmethod
    def _disarm(e: _Unacked) -> None:
        """Cancel the pending retransmit timer (no-op if it already
        fired): the cancelled event is never dispatched."""
        timer = e.timer
        if timer is not None:
            timer.cancel()
            e.timer = None

    def _on_timer(self, e: _Unacked) -> None:
        e.timer = None
        over_budget = (
            self.cfg.budget_ns > 0.0
            and (self.rt.sim.now - e.t0) * 1e9 >= self.cfg.budget_ns
        )
        # A delivery-confirmed RTS is waiting on the peer's *software*
        # match, not the wire: latency must not exhaust the loss budget.
        suspected_loss = not e.delivered
        if over_budget or (suspected_loss and e.retries >= self.cfg.max_retries):
            self._give_up(e)
            return
        if suspected_loss:
            e.retries += 1
        self.stats.retransmits += 1
        obs = self.rt.sim.obs
        if obs is not None and obs.wants("fault"):
            obs.instant(
                "fault", "retransmit", rank=self.rt.rank,
                args={"kind": e.pkt.kind.value, "seq": e.pkt.seq,
                      "dst": e.pkt.dst_rank, "retries": e.retries},
            )
            obs.counter("fault", "retransmits", self.stats.retransmits,
                        rank=self.rt.rank)
        self.rt.fabric.send(e.pkt)
        # Re-anchor on the backlog the retransmit itself just joined.
        e.base_rto_ns = self._base_rto_ns(is_rts=e.is_rts)
        self._arm(e)

    def _give_up(self, e: _Unacked) -> None:
        self._disarm(e)
        self.stats.giveups += 1
        if e.is_rts:
            self.rts_pending.pop(e.pkt.payload.req_id, None)
            self.rts_by_seq.pop(e.pkt.seq, None)
            self.rt._pending_sends.pop(e.pkt.payload.req_id, None)
        else:
            self.unacked.pop(e.pkt.seq, None)
        obs = self.rt.sim.obs
        if obs is not None and obs.wants("fault"):
            obs.instant(
                "fault", "retransmit.giveup", rank=self.rt.rank,
                args={"kind": e.pkt.kind.value, "seq": e.pkt.seq,
                      "dst": e.pkt.dst_rank, "retries": e.retries},
            )
        req = e.req
        if req is not None:
            req.error = True
            if not req.complete:
                self.rt._complete(req)

    def on_ack(self, seq: int) -> None:
        e = self.unacked.pop(seq, None)
        if e is None:
            # Not data: maybe an RTS delivery confirmation.  It does not
            # complete anything (only the CTS does), it reclassifies the
            # handshake from possibly-lost to merely-slow.
            e = self.rts_by_seq.get(seq)
            if e is not None and not e.delivered:
                e.delivered = True
                self.stats.acks_received += 1
            else:
                self.stats.dup_acks += 1
            return
        self._disarm(e)
        self.stats.acks_received += 1
        req = e.req
        if req is not None and not req.complete:
            self.rt._complete(req)

    def on_cts(self, sender_req_id: int) -> None:
        """The CTS is the RTS's ACK: cancel its retransmit timer."""
        e = self.rts_pending.pop(sender_req_id, None)
        if e is not None:
            self._disarm(e)
            self.rts_by_seq.pop(e.pkt.seq, None)
            self.stats.acks_received += 1

    # ==================================================================
    # Receiver side
    # ==================================================================
    def on_delivery(self, pkt: Packet) -> bool:
        """NIC-level delivery filter (``RankNic.rel_filter``): absorbs
        ACKs and duplicate data packets before they are queued, and ACKs
        every data copy at wire latency."""
        kind = pkt.kind
        if kind is PacketKind.ACK:
            self.on_ack(pkt.payload)
            return True
        if kind is PacketKind.EAGER or kind is PacketKind.RNDV_DATA:
            key = (pkt.src_rank, pkt.seq)
            dup = key in self.seen
            if not dup:
                self.seen.add(key)
            # ACK every copy: the sender may be retrying because our
            # previous ACK was lost.
            self._send_ack(pkt)
            if dup:
                self.stats.dup_data += 1
            return dup
        if kind is PacketKind.RTS:
            # Delivery-confirm the handshake at wire latency; matching
            # (and duplicate absorption) stays in :meth:`pre_handle` --
            # the packet passes through to the progress engine.
            self._send_ack(pkt)
        return False

    def pre_handle(self, pkt: Packet) -> bool:
        """Reliability front-end of the progress engine's packet handler
        (what :meth:`on_delivery` cannot decide at the NIC).  Returns
        True when the packet is fully absorbed here -- a duplicate RTS,
        answered by replaying the cached CTS -- and must not reach the
        protocol handlers."""
        kind = pkt.kind
        if kind is PacketKind.RTS:
            key = (pkt.src_rank, pkt.seq)
            if key not in self.seen:
                self.seen.add(key)
                return False
            self.stats.dup_data += 1
            # Duplicate RTS: if we already cleared this sender, the CTS
            # must have died on the wire -- replay it.
            cached = self.cts_cache.get((pkt.src_rank, pkt.payload.req_id))
            if cached is not None:
                recv_req_id, recv_vci, sender_vci = cached
                cts = Packet(
                    PacketKind.CTS, self.rt.rank, pkt.src_rank, 0,
                    payload=(pkt.payload.req_id, recv_req_id, recv_vci),
                    vci=sender_vci,
                )
                self.rt.fabric.send(cts)
            return True
        return False

    def note_cts(self, dest: int, sender_req_id: int, recv_req_id: int,
                 recv_vci: int, sender_vci: int) -> None:
        """Cache an outgoing CTS for replay on duplicate RTS."""
        self.cts_cache[(dest, sender_req_id)] = (recv_req_id, recv_vci, sender_vci)

    def _send_ack(self, pkt: Packet) -> None:
        if pkt.kind is PacketKind.EAGER or pkt.kind is PacketKind.RTS:
            ack_vci = pkt.payload.vci  # _EagerInfo / _RndvInfo
        else:  # RNDV_DATA payload is (recv_req_id, data, sender_vci)
            ack_vci = pkt.payload[2]
        ack = Packet(
            PacketKind.ACK, self.rt.rank, pkt.src_rank, 0,
            payload=pkt.seq, vci=ack_vci,
        )
        self.rt.fabric.send(ack)
        self.stats.acks_sent += 1

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ReliabilityLayer rank={self.rt.rank} unacked={len(self.unacked)} "
            f"retransmits={self.stats.retransmits}>"
        )
