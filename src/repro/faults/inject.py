"""The fault injector: interprets a :class:`~repro.faults.plan.FaultPlan`
against the fabric's send/deliver path.

The injector is consulted by :meth:`repro.network.fabric.Fabric.send`
once per packet.  It draws only from its **own named RNG stream**
(``"faults"``), so installing it never perturbs lock jitter, workload
payloads or any other stream; and it is only installed at all when the
plan is *active* (see the determinism contract in
:mod:`repro.faults.plan`).

Every injected fault is counted in :class:`FaultStats` and, when an
observability bus is attached, emitted under the ``fault`` category.
"""

from __future__ import annotations

from typing import Dict, List

from .plan import FaultPlan

__all__ = ["PacketFate", "FaultStats", "FaultInjector"]


class PacketFate:
    """The injector's verdict on one packet."""

    __slots__ = ("drop", "reason", "extra_delay", "duplicate")

    def __init__(self, drop=False, reason="", extra_delay=0.0, duplicate=False):
        self.drop = drop
        #: Why it was dropped: "drop", "outage", "crash".
        self.reason = reason
        #: Extra delivery delay in seconds (reordering).
        self.extra_delay = extra_delay
        self.duplicate = duplicate


class FaultStats:
    """Counters of injected faults (what the fabric *did* to the run)."""

    __slots__ = (
        "drops", "outage_drops", "crash_drops", "duplicates", "reorders",
        "stalled_sends", "blocked_sends",
    )

    def __init__(self):
        for f in self.__slots__:
            setattr(self, f, 0)

    @property
    def total_drops(self) -> int:
        return self.drops + self.outage_drops + self.crash_drops

    def as_dict(self) -> dict:
        return {f: getattr(self, f) for f in self.__slots__}


class FaultInjector:
    """Stateful interpreter of a fault plan for one simulator."""

    def __init__(self, sim, plan: FaultPlan):
        self.sim = sim
        self.plan = plan
        self.stats = FaultStats()
        #: Dedicated stream: fault randomness never touches other streams.
        self._rng = sim.rng.stream("faults")
        #: rank -> crash time (seconds).
        self._crash_at: Dict[int, float] = {}
        for c in plan.crashes:
            t = self._crash_at.get(c.rank)
            self._crash_at[c.rank] = c.at_s if t is None else min(t, c.at_s)
        #: node -> outage windows on its uplink.
        self._outages: Dict[int, List] = {}
        for o in plan.outages:
            self._outages.setdefault(o.node, []).append(o)
        #: rank -> injection-stall windows.
        self._stalls: Dict[int, List] = {}
        for s in plan.stalls:
            self._stalls.setdefault(s.rank, []).append(s)

    # ------------------------------------------------------------------
    def rank_crashed(self, rank: int, now: float) -> bool:
        t = self._crash_at.get(rank)
        return t is not None and now >= t

    def block_send(self, packet, now: float) -> bool:
        """True when the *sender* is dead: the packet never leaves."""
        if self.rank_crashed(packet.src_rank, now):
            self.stats.blocked_sends += 1
            self._note("send.blocked", packet, rank=packet.src_rank)
            return True
        return False

    def inject_penalty(self, rank: int, now: float) -> float:
        """Extra NIC serialization time (seconds) for a send at ``now``."""
        windows = self._stalls.get(rank)
        if not windows:
            return 0.0
        extra = sum(s.extra_ns for s in windows if s.covers(now))
        if extra > 0.0:
            self.stats.stalled_sends += 1
        return extra * 1e-9

    # ------------------------------------------------------------------
    def fate(self, packet, src_node: int, dst_node: int, now: float,
             deliver_at: float) -> PacketFate:
        """Decide what happens to ``packet`` (already injected at ``now``,
        nominally delivered at ``deliver_at``)."""
        plan = self.plan
        internode = src_node != dst_node
        # A receiver that is dead by delivery time drops everything.
        crash = self._crash_at.get(packet.dst_rank)
        if crash is not None and deliver_at >= crash:
            self.stats.crash_drops += 1
            self._note("drop.crash", packet, rank=packet.dst_rank)
            return PacketFate(drop=True, reason="crash")
        if internode:
            for o in self._outages.get(src_node, ()):
                if o.covers(now):
                    if o.drop >= 1.0 or self._rng.random() < o.drop:
                        self.stats.outage_drops += 1
                        self._note("drop.outage", packet, rank=packet.src_rank)
                        return PacketFate(drop=True, reason="outage")
                    break
        if plan.internode_only and not internode:
            return PacketFate()
        if plan.drop > 0.0 and self._rng.random() < plan.drop:
            self.stats.drops += 1
            self._note("drop", packet, rank=packet.src_rank)
            return PacketFate(drop=True, reason="drop")
        fate = PacketFate()
        if plan.duplicate > 0.0 and self._rng.random() < plan.duplicate:
            self.stats.duplicates += 1
            self._note("duplicate", packet, rank=packet.src_rank)
            fate.duplicate = True
        if plan.reorder > 0.0 and self._rng.random() < plan.reorder:
            self.stats.reorders += 1
            fate.extra_delay = float(self._rng.random()) * plan.reorder_delay_ns * 1e-9
            self._note("reorder", packet, rank=packet.src_rank)
        return fate

    @property
    def duplicate_gap(self) -> float:
        return self.plan.duplicate_gap_ns * 1e-9

    # ------------------------------------------------------------------
    def _note(self, name: str, packet, rank: int = -1) -> None:
        obs = self.sim.obs
        if obs is not None and obs.wants("fault"):
            obs.instant(
                "fault", name, rank=rank,
                args={"kind": packet.kind.value, "seq": packet.seq,
                      "src": packet.src_rank, "dst": packet.dst_rank},
            )
            obs.counter("fault", "drops", self.stats.total_drops, rank=rank)

    def note_crash(self, rank: int) -> None:
        """Scheduled at each crash instant purely for the trace."""
        obs = self.sim.obs
        if obs is not None and obs.wants("fault"):
            obs.instant("fault", "rank.crash", rank=rank)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FaultInjector plan={self.plan} drops={self.stats.total_drops}>"
