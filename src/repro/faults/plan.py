"""Declarative fault plans.

A :class:`FaultPlan` is a pure description of how the fabric misbehaves:
random packet drop/duplication/reorder-delay, per-node uplink outage
windows (brownout < 1.0, blackout = 1.0), NIC injection stalls, scheduled
rank crashes, and scheduled arbitration-domain failures.  The plan holds
no state and draws no randomness itself; :class:`~repro.faults.inject.
FaultInjector` interprets it against the fabric using its **own named RNG
stream** (``"faults"``), so attaching a plan never perturbs any other
stream.

Determinism contract
--------------------
* ``FaultPlan.none()`` (or leaving ``ClusterConfig.faults`` unset) wires
  nothing into the fabric: the run is bit-identical to a build of the
  tree that has never heard of faults (pinned by
  ``tests/faults/test_determinism.py`` and the pre-existing pins in
  ``tests/mpi/test_domain_regression.py``).
* The same seed and the same plan reproduce the same drops, duplicates,
  delays and therefore the same goodput and retransmit counts.

Units: probabilities are per-packet; *durations* are nanoseconds
(``_ns``), *points on the simulated clock* are seconds (``_s``) --
matching the cost model (ns) and the simulator clock (s) respectively.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Tuple

__all__ = [
    "LinkOutage",
    "InjectStall",
    "RankCrash",
    "DomainFailure",
    "FaultPlan",
    "parse_fault_plan",
]


@dataclass(frozen=True)
class LinkOutage:
    """A degraded window on one node's uplink.

    Internode packets leaving ``node`` between ``start_s`` and ``end_s``
    are dropped with probability ``drop`` (1.0 = blackout, less =
    brownout).
    """

    node: int
    start_s: float
    end_s: float
    drop: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop <= 1.0:
            raise ValueError(f"outage drop probability {self.drop} not in [0, 1]")
        if self.start_s < 0.0:
            raise ValueError(f"outage window starts at negative time {self.start_s}")
        if self.end_s <= self.start_s:
            raise ValueError(
                f"outage window [{self.start_s}, {self.end_s}) is empty or "
                f"inverted; windows must have positive length"
            )

    def covers(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class InjectStall:
    """A window during which one rank's NIC injection is slowed: every
    send pays ``extra_ns`` additional serialization (a stalled doorbell /
    descriptor ring)."""

    rank: int
    start_s: float
    end_s: float
    extra_ns: float = 5000.0

    def __post_init__(self) -> None:
        if self.extra_ns < 0.0:
            raise ValueError(f"negative stall {self.extra_ns}")
        if self.start_s < 0.0:
            raise ValueError(f"stall window starts at negative time {self.start_s}")
        if self.end_s <= self.start_s:
            raise ValueError(
                f"stall window [{self.start_s}, {self.end_s}) is empty or "
                f"inverted; windows must have positive length"
            )

    def covers(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class RankCrash:
    """Rank ``rank`` fails silently at ``at_s``: nothing it sends after
    that leaves the NIC, and nothing addressed to it is delivered."""

    rank: int
    at_s: float

    def __post_init__(self) -> None:
        if self.at_s < 0.0:
            raise ValueError(f"crash scheduled at negative time {self.at_s}")


@dataclass(frozen=True)
class DomainFailure:
    """At ``at_s``, arbitration domain ``domain`` of ``rank`` is declared
    failed and its traffic re-routed to ``fallback`` (see
    :meth:`repro.mpi.runtime.MpiRuntime.fail_domain`)."""

    rank: int
    domain: int
    at_s: float
    fallback: int = 0

    def __post_init__(self) -> None:
        if self.at_s < 0.0:
            raise ValueError(f"domain failure scheduled at negative time {self.at_s}")
        if self.domain == self.fallback:
            raise ValueError(
                f"domain failure fallback ({self.fallback}) must differ from "
                f"the failed domain"
            )


def _reject_overlaps(windows, key: str, what: str) -> None:
    """Raise if two windows on the same ``key`` (node/rank) overlap.

    Windows are half-open ``[start_s, end_s)``, so back-to-back windows
    (one ending exactly where the next starts) are legal.
    """
    by_target: dict = {}
    for w in windows:
        by_target.setdefault(getattr(w, key), []).append(w)
    for target, group in by_target.items():
        group.sort(key=lambda w: (w.start_s, w.end_s))
        for prev, cur in zip(group, group[1:]):
            if cur.start_s < prev.end_s:
                raise ValueError(
                    f"overlapping {what} windows on {key} {target}: "
                    f"[{prev.start_s}, {prev.end_s}) and "
                    f"[{cur.start_s}, {cur.end_s})"
                )


@dataclass(frozen=True)
class FaultPlan:
    """Everything that can go wrong, declaratively.

    An *inactive* plan (``FaultPlan.none()``, every probability zero and
    every schedule empty) installs no hooks at all -- see the determinism
    contract in the module docstring.
    """

    #: Per-packet independent drop probability.
    drop: float = 0.0
    #: Per-packet duplication probability (the copy arrives slightly later).
    duplicate: float = 0.0
    #: Per-packet probability of an extra reorder delay.
    reorder: float = 0.0
    #: Max extra delay for reordered packets (uniform in (0, max]).
    reorder_delay_ns: float = 5000.0
    #: Gap between a packet and its duplicate's delivery (ns).
    duplicate_gap_ns: float = 1000.0
    #: Random faults apply only to internode packets (the shm path does
    #: not lose data); outages/stalls/crashes are inherently per-link.
    internode_only: bool = True
    outages: Tuple[LinkOutage, ...] = ()
    stalls: Tuple[InjectStall, ...] = ()
    crashes: Tuple[RankCrash, ...] = ()
    domain_failures: Tuple[DomainFailure, ...] = ()
    #: Progress-watchdog sampling interval (simulated ns); <= 0 disables
    #: the watchdog even under an active plan.
    watchdog_interval_ns: float = 100_000.0
    #: Consecutive no-progress intervals before the watchdog aborts.
    watchdog_grace: int = 5

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability {p} not in [0, 1]")
        for name in ("reorder_delay_ns", "duplicate_gap_ns"):
            v = getattr(self, name)
            if v < 0.0:
                raise ValueError(f"{name} must be >= 0, got {v}")
        if self.watchdog_grace < 1:
            raise ValueError(f"watchdog_grace must be >= 1, got {self.watchdog_grace}")
        # Accept lists for the schedule fields (ergonomics) but store
        # tuples so plans stay hashable/frozen.
        for name in ("outages", "stalls", "crashes", "domain_failures"):
            v = getattr(self, name)
            if not isinstance(v, tuple):
                object.__setattr__(self, name, tuple(v))
        # Overlapping windows on the same link are ill-defined (which
        # drop probability applies?) and historically produced silent
        # first-match-wins behavior mid-run; reject them at construction.
        _reject_overlaps(self.outages, key="node", what="outage")
        _reject_overlaps(self.stalls, key="rank", what="stall")

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when this plan can perturb the run at all.  Inactive
        plans are never wired into the fabric."""
        return bool(
            self.drop > 0.0
            or self.duplicate > 0.0
            or self.reorder > 0.0
            or self.outages
            or self.stalls
            or self.crashes
            or self.domain_failures
        )

    @classmethod
    def none(cls) -> "FaultPlan":
        """The explicit no-fault plan (identical to passing no plan)."""
        return cls()

    @classmethod
    def lossy(cls, drop: float, **kw) -> "FaultPlan":
        """Shorthand for a uniformly lossy fabric."""
        return cls(drop=drop, **kw)

    def with_overrides(self, **kw) -> "FaultPlan":
        return replace(self, **kw)

    def spec(self) -> str:
        """Canonical ``key=value`` spec of the scalar knobs (schedules
        are not representable as a flat string)."""
        parts = []
        if self.drop:
            parts.append(f"drop={self.drop:g}")
        if self.duplicate:
            parts.append(f"dup={self.duplicate:g}")
        if self.reorder:
            parts.append(f"reorder={self.reorder:g}")
        if not self.internode_only:
            parts.append("intranode=1")
        return ",".join(parts) if parts else "none"

    def __str__(self) -> str:
        return self.spec()


#: Spec keys accepted by :func:`parse_fault_plan` -> plan field name.
_SPEC_KEYS = {
    "drop": "drop",
    "dup": "duplicate",
    "duplicate": "duplicate",
    "reorder": "reorder",
    "reorder_delay_ns": "reorder_delay_ns",
    "watchdog_interval_ns": "watchdog_interval_ns",
    "watchdog_grace": "watchdog_grace",
}


def parse_fault_plan(spec: "str | FaultPlan | None") -> "FaultPlan | None":
    """Parse a CLI-style fault spec like ``"drop=0.01,dup=0.001"``.

    ``"none"`` and ``""`` parse to the inactive plan; an ``intranode=1``
    entry extends the random faults to the shared-memory path.  Unknown
    keys raise ``ValueError`` listing the valid ones.
    """
    if spec is None or isinstance(spec, FaultPlan):
        return spec
    text = str(spec).strip()
    if text in ("", "none"):
        return FaultPlan.none()
    kw: dict = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep:
            raise ValueError(f"malformed fault spec item {item!r} (expected key=value)")
        key = key.strip()
        if key == "intranode":
            kw["internode_only"] = value.strip() in ("0", "false", "no")
            continue
        if key not in _SPEC_KEYS:
            valid = ", ".join(sorted(_SPEC_KEYS) + ["intranode"])
            raise ValueError(f"unknown fault spec key {key!r}; valid keys: {valid}")
        name = _SPEC_KEYS[key]
        ftype = {f.name: f.type for f in fields(FaultPlan)}[name]
        kw[name] = int(value) if ftype == "int" else float(value)
    return FaultPlan(**kw)
