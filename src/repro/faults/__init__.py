"""``repro.faults`` -- deterministic fault injection and runtime recovery.

The paper's pathologies are liveness failures on a *perfect* fabric; this
package asks what each remedy does when the fabric itself misbehaves.

* :class:`FaultPlan` -- declarative, seeded fault description: packet
  drop/duplicate/reorder, uplink brownout/blackout windows, NIC injection
  stalls, scheduled rank crashes and arbitration-domain failures.
* :class:`FaultInjector` -- interprets a plan on the fabric's send path
  using its own named RNG stream (``"faults"``).
* :class:`ReliabilityLayer` / :class:`ReliabilityConfig` -- the runtime
  remedy: sequence-numbered ACK/retransmit with exponential backoff,
  rendezvous handshake retry, duplicate absorption.
* :class:`ProgressWatchdog` / :class:`ProgressStallError` -- turns hangs
  into diagnosed aborts with a state dump on the obs bus.

Determinism contract: an inactive plan (``FaultPlan.none()`` or no plan)
installs nothing and is bit-identical to a fault-free build; an active
plan with the same seed reproduces the same faults and the same recovery
schedule.

Wire it via ``ClusterConfig(faults=..., reliability=...)``, the
``--faults`` CLI flag, or the ``fig_chaos`` experiment.
"""

from .inject import FaultInjector, FaultStats, PacketFate
from .plan import (
    DomainFailure,
    FaultPlan,
    InjectStall,
    LinkOutage,
    RankCrash,
    parse_fault_plan,
)
from .reliability import ReliabilityConfig, ReliabilityLayer, ReliabilityStats
from .watchdog import ProgressStallError, ProgressWatchdog

__all__ = [
    "FaultPlan",
    "LinkOutage",
    "InjectStall",
    "RankCrash",
    "DomainFailure",
    "parse_fault_plan",
    "FaultInjector",
    "FaultStats",
    "PacketFate",
    "ReliabilityConfig",
    "ReliabilityLayer",
    "ReliabilityStats",
    "ProgressWatchdog",
    "ProgressStallError",
]
