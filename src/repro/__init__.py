"""repro -- reproduction of "MPI+Threads: Runtime Contention and Remedies"
(Amer, Lu, Wei, Balaji, Matsuoka; PPoPP 2015) as a discrete-event
simulation of an MPICH-like runtime.

Layered packages:

* :mod:`repro.sim`      -- discrete-event engine (events, processes, RNG)
* :mod:`repro.machine`  -- NUMA topology, thread binding, cost model
* :mod:`repro.locks`    -- mutex / ticket / priority / MCS / TAS / TTAS
* :mod:`repro.network`  -- QDR-like fabric, NICs, packets
* :mod:`repro.mpi`      -- miniature MPICH: requests, queues, progress
  engine, global critical section, collectives, RMA, cluster builder
* :mod:`repro.workloads` -- the paper's benchmarks and applications
* :mod:`repro.analysis` -- bias factors, dangling requests, metrics
* :mod:`repro.experiments` -- one runner per paper figure

Quickstart::

    from repro.workloads import run_throughput, throughput_cluster

    cluster = throughput_cluster(lock="ticket", threads_per_rank=8)
    result = run_throughput(cluster)
    print(result.msg_rate_k, "thousand msgs/s")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
