"""Arbitration-fairness estimators (paper 4.3).

Given a lock acquisition trace, estimate

* ``Pc`` -- probability that the *same thread* reacquires the lock in
  consecutive acquisitions (core level), and
* ``Ps`` -- probability that consecutive owners run on the *same socket*,

for the observed arbitration, and the same quantities for a hypothetical
fair arbitration over the threads that were actually waiting:

.. math::

    P_c = \\frac{1}{L}\\sum_l X_l \\qquad P_s = \\frac{1}{L}\\sum_l Y_l

observed:  X_l = [\\text{same owner as } l-1],\\;
Y_l = [\\text{same socket as } l-1]

fair:      X_l = 1/T_l,\\;  Y_l = T_{j,l}/T_l

with ``T_l`` the waiting-thread count at acquisition ``l`` and ``T_{j,l}``
the count on the previous owner's socket.  The **bias factor** is the
ratio observed/fair; a fair lock scores 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..locks.stats import LockTrace

__all__ = ["BiasFactors", "compute_bias_factors"]


@dataclass(frozen=True)
class BiasFactors:
    """Result of the 4.3 fairness analysis on one trace."""

    pc_observed: float
    ps_observed: float
    pc_fair: float
    ps_fair: float
    n_samples: int

    @property
    def core_bias(self) -> float:
        """Observed/fair same-thread reacquisition ratio (paper: ~2x)."""
        return self.pc_observed / self.pc_fair if self.pc_fair > 0 else float("nan")

    @property
    def socket_bias(self) -> float:
        """Observed/fair same-socket ratio (paper: ~1.25x)."""
        return self.ps_observed / self.ps_fair if self.ps_fair > 0 else float("nan")


def compute_bias_factors(trace: LockTrace, min_contenders: int = 2) -> BiasFactors:
    """Estimate bias factors from ``trace``.

    ``min_contenders`` restricts the sample to acquisitions where at
    least that many threads were contending -- with a single requester
    both arbitrations trivially pick it, which would dilute the ratio.
    """
    a = trace.as_arrays()
    tids, sockets = a["tids"], a["sockets"]
    T = a["n_contenders"]
    T_prev_sock = a["n_contenders_prev_socket"]
    if len(tids) < 2:
        raise ValueError("trace too short for bias analysis")

    # Acquisition l is compared with l-1; use samples l = 1..L-1.
    same_tid = (tids[1:] == tids[:-1]).astype(np.float64)
    same_sock = (sockets[1:] == sockets[:-1]).astype(np.float64)
    Tl = T[1:].astype(np.float64)
    Tjl = T_prev_sock[1:].astype(np.float64)

    mask = Tl >= min_contenders
    n = int(mask.sum())
    if n == 0:
        raise ValueError(
            f"no acquisitions with >= {min_contenders} contenders in trace"
        )
    pc_obs = float(same_tid[mask].mean())
    ps_obs = float(same_sock[mask].mean())
    pc_fair = float((1.0 / Tl[mask]).mean())
    ps_fair = float((Tjl[mask] / Tl[mask]).mean())
    return BiasFactors(pc_obs, ps_obs, pc_fair, ps_fair, n)
