"""Instrumentation and estimators: bias factors, dangling requests,
performance metrics, and report formatting."""

from .ablation import (
    COMPONENTS,
    Cell,
    Component,
    build_matrix,
    cell_run_id,
    extract_metrics,
    importance_report,
    rank_components,
    run_matrix,
)
from .bias import BiasFactors, compute_bias_factors
from .dangling import DanglingProfiler, DanglingStats
from .lock_report import (
    LockUsage,
    analyze_lock_usage,
    transition_histogram,
    wasted_acquisition_fraction,
)
from .metrics import TimeBreakdown, message_rate_k, speedup
from .report import format_rate, format_size, format_table

__all__ = [
    "COMPONENTS",
    "Cell",
    "Component",
    "build_matrix",
    "cell_run_id",
    "extract_metrics",
    "importance_report",
    "rank_components",
    "run_matrix",
    "BiasFactors",
    "compute_bias_factors",
    "DanglingProfiler",
    "DanglingStats",
    "LockUsage",
    "analyze_lock_usage",
    "transition_histogram",
    "wasted_acquisition_fraction",
    "TimeBreakdown",
    "message_rate_k",
    "speedup",
    "format_table",
    "format_size",
    "format_rate",
]
