"""Common performance metrics for workloads and experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["message_rate_k", "TimeBreakdown", "speedup"]


def message_rate_k(n_messages: int, elapsed_s: float) -> float:
    """Message rate in 10^3 messages/second (the paper's unit)."""
    if elapsed_s <= 0:
        raise ValueError(f"non-positive elapsed time {elapsed_s}")
    return n_messages / elapsed_s / 1e3


def speedup(baseline: float, improved: float) -> float:
    """How many times faster ``improved`` is than ``baseline`` (times are
    durations, rates are inverted by the caller)."""
    if improved <= 0:
        raise ValueError("non-positive time")
    return baseline / improved


@dataclass
class TimeBreakdown:
    """Accumulates named time segments (paper Fig. 11b: MPI /
    computation / OMP_Sync percentages)."""

    segments: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"negative segment {name}={dt}")
        self.segments[name] = self.segments.get(name, 0.0) + dt

    @property
    def total(self) -> float:
        return sum(self.segments.values())

    def percentages(self) -> Dict[str, float]:
        tot = self.total
        if tot == 0:
            return {k: 0.0 for k in self.segments}
        return {k: 100.0 * v / tot for k, v in self.segments.items()}

    def merge(self, other: "TimeBreakdown") -> None:
        for k, v in other.segments.items():
            self.add(k, v)
