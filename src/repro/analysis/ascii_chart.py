"""ASCII line charts for terminal-only environments.

Renders the paper figures' series (message-size sweeps, thread
scalings) as log-log scatter charts so a reproduction run can be
eyeballed without matplotlib.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def _transform(v: float, log: bool) -> float:
    if log:
        if v <= 0:
            raise ValueError(f"log-scale value must be positive, got {v}")
        return math.log10(v)
    return v


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    logx: bool = True,
    logy: bool = True,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named (x, y) series on one chart.

    Each series gets a marker from ``oxX*#@%&`` (legend below the axes);
    overlapping points show the *last* series' marker.
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 8 or height < 4:
        raise ValueError("chart too small")
    pts = [
        (name, x, y) for name, sv in series.items() for x, y in sv
    ]
    if not pts:
        raise ValueError("series contain no points")

    xs = [_transform(x, logx) for _, x, _ in pts]
    ys = [_transform(y, logy) for _, _, y in pts]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    markers = {name: _MARKERS[i % len(_MARKERS)]
               for i, name in enumerate(series)}
    for name, x, y in pts:
        cx = round((_transform(x, logx) - xmin) / xspan * (width - 1))
        cy = round((_transform(y, logy) - ymin) / yspan * (height - 1))
        grid[height - 1 - cy][cx] = markers[name]

    lines: List[str] = []
    if title:
        lines.append(title)
    y_hi = f"{10 ** ymax:.3g}" if logy else f"{ymax:.3g}"
    y_lo = f"{10 ** ymin:.3g}" if logy else f"{ymin:.3g}"
    label_w = max(len(y_hi), len(y_lo))
    for i, row in enumerate(grid):
        label = y_hi if i == 0 else (y_lo if i == height - 1 else "")
        lines.append(f"{label.rjust(label_w)} |{''.join(row)}")
    x_lo = f"{10 ** xmin:.3g}" if logx else f"{xmin:.3g}"
    x_hi = f"{10 ** xmax:.3g}" if logx else f"{xmax:.3g}"
    lines.append(" " * label_w + " +" + "-" * width)
    lines.append(
        " " * label_w + "  " + x_lo + x_hi.rjust(width - len(x_lo))
    )
    if xlabel or ylabel:
        lines.append(f"   x: {xlabel}   y: {ylabel}".rstrip())
    lines.append("   " + "   ".join(f"{m} {n}" for n, m in markers.items()))
    return "\n".join(lines)
