"""Deeper lock-trace analysis: utilization, hand-off transitions, and
wasted runtime acquisitions.

Complements the paper's bias factors with the quantities discussed in
7: how often the lock actually changes hands (and across what
distance), how busy the critical section is, and how many acquisitions
did no useful work (empty progress polls).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..locks.stats import LockTrace
from ..mpi.runtime import RuntimeStats

__all__ = [
    "LockUsage",
    "analyze_lock_usage",
    "transition_histogram",
    "wasted_acquisition_fraction",
]


@dataclass(frozen=True)
class LockUsage:
    n_acquisitions: int
    #: Fraction of the traced wall-span the lock was held.
    utilization: float
    mean_hold_s: float
    #: Mean time from one release to the next grant.
    mean_gap_s: float
    #: Transition counts keyed "same-thread" / "same-socket" / "cross-socket".
    transitions: Dict[str, int]


def transition_histogram(trace: LockTrace) -> Dict[str, int]:
    """Consecutive-acquisition transitions by distance class."""
    tids = np.asarray(trace.tids)
    socks = np.asarray(trace.sockets)
    if len(tids) < 2:
        return {"same-thread": 0, "same-socket": 0, "cross-socket": 0}
    same_tid = tids[1:] == tids[:-1]
    same_sock = socks[1:] == socks[:-1]
    return {
        "same-thread": int(same_tid.sum()),
        "same-socket": int((~same_tid & same_sock).sum()),
        "cross-socket": int((~same_sock).sum()),
    }


def analyze_lock_usage(trace: LockTrace) -> LockUsage:
    """Utilization and hand-off statistics for a completed trace."""
    if len(trace) == 0:
        raise ValueError("empty lock trace")
    a = trace.as_arrays()
    n = len(a["hold_times"])
    if n == 0:
        raise ValueError("no completed holds in trace")
    grants = a["times"][:n]
    holds = a["hold_times"]
    releases = grants + holds
    span = releases[-1] - grants[0]
    gaps = grants[1:] - releases[:-1] if n > 1 else np.array([0.0])
    return LockUsage(
        n_acquisitions=len(trace),
        utilization=float(holds.sum() / span) if span > 0 else 1.0,
        mean_hold_s=float(holds.mean()),
        mean_gap_s=float(gaps.mean()),
        transitions=transition_histogram(trace),
    )


def wasted_acquisition_fraction(stats: RuntimeStats) -> float:
    """Fraction of critical-section entries that did no useful work.

    An *empty poll* is a progress-engine invocation that found no
    packets: the thread paid a full acquire/release cycle for nothing --
    the waste the paper's priority lock (and the event-driven wait mode)
    target.
    """
    total = stats.cs_entries_main + stats.cs_entries_progress
    if total == 0:
        return 0.0
    return stats.empty_polls / total
