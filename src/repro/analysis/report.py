"""ASCII table rendering for the benchmark harness.

Each figure's bench prints the same rows/series the paper plots; these
helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_size", "format_rate"]


def format_size(nbytes: int) -> str:
    """Human-readable byte size (1 KiB units, as on the paper's axes)."""
    if nbytes >= 1 << 20:
        v = nbytes / (1 << 20)
        return f"{v:g}M"
    if nbytes >= 1 << 10:
        v = nbytes / (1 << 10)
        return f"{v:g}K"
    return str(nbytes)


def format_rate(rate_k: float) -> str:
    """Message rate in 10^3 msgs/s with sensible precision."""
    if rate_k >= 100:
        return f"{rate_k:.0f}"
    if rate_k >= 10:
        return f"{rate_k:.1f}"
    return f"{rate_k:.2f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width ASCII table."""
    srows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in srows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
