"""The dangling-request profiler (paper 4.4).

Samples a runtime's count of *completed-but-not-freed* requests at every
lock acquisition (the paper's sampling interval) and reports the average.
A healthy runtime keeps this near the per-thread window size; a starving
runtime accumulates completed requests whose owners cannot reach the
critical section to free them and issue new work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..mpi.runtime import MpiRuntime

__all__ = ["DanglingProfiler", "DanglingStats"]


@dataclass(frozen=True)
class DanglingStats:
    mean: float
    maximum: int
    n_samples: int


class DanglingProfiler:
    """Attach to a runtime's critical section; sample its dangling count."""

    def __init__(self, runtime: MpiRuntime):
        self.runtime = runtime
        self.samples: List[int] = []
        self._hook = lambda lock, ctx: self.samples.append(runtime.dangling_count)
        runtime.lock.on_grant.append(self._hook)

    def detach(self) -> None:
        self.runtime.lock.on_grant.remove(self._hook)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> DanglingStats:
        if not self.samples:
            return DanglingStats(0.0, 0, 0)
        arr = np.asarray(self.samples)
        return DanglingStats(float(arr.mean()), int(arr.max()), len(arr))

    def series(self) -> np.ndarray:
        return np.asarray(self.samples, dtype=np.int64)
