"""The dangling-request profiler (paper 4.4).

Samples a runtime's count of *completed-but-not-freed* requests at every
lock acquisition (the paper's sampling interval) and reports the average.
A healthy runtime keeps this near the per-thread window size; a starving
runtime accumulates completed requests whose owners cannot reach the
critical section to free them and issue new work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..mpi.runtime import MpiRuntime

__all__ = ["DanglingProfiler", "DanglingStats"]


@dataclass(frozen=True)
class DanglingStats:
    mean: float
    maximum: int
    n_samples: int


class DanglingProfiler:
    """Attach to a runtime's critical section; sample its dangling count.

    Directly hooks the lock's grant callback by default; with
    :meth:`from_bus` it becomes a thin adapter over the observability
    bus, sampling on the same lock-grant instants.  Both sample at
    identical simulated times.
    """

    def __init__(self, runtime: MpiRuntime, _attach: bool = True):
        self.runtime = runtime
        self.samples: List[int] = []
        self._hook = lambda lock, ctx: self.samples.append(runtime.dangling_count)
        self._bus = None
        if _attach:
            # Hook every arbitration domain's lock: any CS grant on this
            # rank is a sampling instant (with the global policy this is
            # exactly the single-lock behaviour).
            for dom in runtime.domains:
                dom.lock.on_grant.append(self._hook)

    @classmethod
    def from_bus(cls, bus, runtime: MpiRuntime) -> "DanglingProfiler":
        """Sample on this runtime's lock-grant events from the bus."""
        prof = cls(runtime, _attach=False)
        prof._bus = bus
        grant_names = frozenset(
            f"{dom.lock.name}.grant" for dom in runtime.domains
        )

        def on_event(ev, _prof=prof, _names=grant_names):
            if ev.kind.name == "INSTANT" and ev.name in _names:
                _prof.samples.append(_prof.runtime.dangling_count)

        prof._bus_hook = on_event
        bus.subscribe(on_event, categories=("lock",))
        return prof

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self._bus_hook)
            self._bus = None
        else:
            for dom in self.runtime.domains:
                dom.lock.on_grant.remove(self._hook)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> DanglingStats:
        if not self.samples:
            return DanglingStats(0.0, 0, 0)
        arr = np.asarray(self.samples)
        return DanglingStats(float(arr.mean()), int(arr.max()), len(arr))

    def series(self) -> np.ndarray:
        return np.asarray(self.samples, dtype=np.int64)
