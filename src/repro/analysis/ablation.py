"""Automated ablation harness over runtime components (DESIGN.md §13).

The repo accumulates remedies -- lock classes, VCI sharding,
continuation completion, the reliability layer, the watchdog, overload
protection -- and 21 experiments that exercise them.  This module turns
"which component matters for metric M under workload W" into one
command::

    python -m repro ablate --experiments fig2 --jobs 2 --quick --report

Four pieces:

* **component registry** (:data:`COMPONENTS`) -- each
  :class:`Component` declares the knob's *baseline* value (the remedied
  runtime) and its *ablated* value (the remedy forced off), as
  ``repro.overrides`` keys that land on ``ClusterConfig`` fields or the
  watchdog / robust-preset gates.
* **run matrix** (:func:`build_matrix`) -- baseline + leave-one-out
  (optionally pairwise) cells over a registry selection, with **stable
  run IDs**: blake2b over the canonicalized cell spec (experiment,
  merged overrides, seed, preset).  No wall clock, no process identity
  -- the same spec always names the same cell, so matrices are
  reproducible and resumable.
* **executor** (:func:`run_matrix`) -- serial or
  ``ProcessPoolExecutor`` over a *spawn* context (the worker re-imports
  the experiment registry from scratch; nothing is inherited from the
  parent's interpreter state).  Every finished cell is appended to a
  JSONL **journal**; cells whose run ID already has an ``ok`` record
  are skipped on re-run, and a worker crash becomes a ``failed`` record
  instead of killing the sweep.  Records carry no timing fields, so
  serial and pooled sweeps produce identical journals (modulo append
  order -- compare sorted by run ID).
* **report** (:func:`importance_report`) -- per metric, the delta of
  each leave-one-out cell against its experiment's baseline, and a
  ranking of components by mean relative impact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .report import format_table

__all__ = [
    "COMPONENTS",
    "Cell",
    "Component",
    "build_matrix",
    "cell_run_id",
    "extract_metrics",
    "importance_report",
    "load_journal",
    "rank_components",
    "run_matrix",
]


# ----------------------------------------------------------------------
# Component registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Component:
    """One toggleable runtime component.

    ``baseline`` is applied in *every* cell of the matrix (the
    all-remedies-on reference); ``ablated`` replaces it in this
    component's leave-one-out cell.  Values are ``repro.overrides``
    keys, so they reach every cluster an experiment builds.
    """

    name: str
    description: str
    baseline: Mapping[str, object]
    ablated: Mapping[str, object]
    #: Experiment-name prefixes where the *ablated* value must not run
    #: because the experiment cannot terminate without the component
    #: (e.g. fig_chaos's lossy no-reliability cell relies on the
    #: watchdog to abort instead of hanging).  The matrix generator
    #: skips those cells and the CLI says so.
    unsafe_for: Tuple[str, ...] = ()


def _components(*comps: Component) -> Dict[str, Component]:
    return {c.name: c for c in comps}


#: The toggleable runtime components, in report order.
COMPONENTS: Dict[str, Component] = _components(
    Component(
        "lock",
        "fair arbitration (priority lock) vs the paper's pthread mutex",
        baseline={"lock": "priority"},
        ablated={"lock": "mutex"},
    ),
    Component(
        "sharding",
        "per-VCI arbitration domains (per-vci:4) vs the single global CS",
        baseline={"cs": "per-vci:4"},
        ablated={"cs": "global"},
    ),
    Component(
        "completion",
        "continuation-driven completion vs CS_YIELD wait polling",
        baseline={"completion": "continuation"},
        ablated={"completion": "poll"},
    ),
    Component(
        "scheduler",
        "calendar event queue vs the reference heap (bit-identical "
        "schedules; any simulated-metric delta is a bug)",
        baseline={"scheduler": "heap"},
        ablated={"scheduler": "calendar"},
    ),
    Component(
        "eager",
        "eager protocol below 16 KiB vs all-rendezvous transfers",
        baseline={"eager_threshold": 16384},
        ablated={"eager_threshold": 0},
    ),
    Component(
        "reliability",
        "NIC-level ACK/retransmit layer",
        baseline={"reliability": True},
        ablated={"reliability": False},
        # fig_chaos's recovery cells drop packets; without retransmit
        # they stall (by design -- the watchdog-abort cell shows it).
        unsafe_for=("fig_chaos",),
    ),
    Component(
        "watchdog",
        "progress watchdog (stall detection + degraded-mode trigger)",
        baseline={"watchdog": True},
        ablated={"watchdog": False},
        # Both experiments run lossy cells that terminate *via* the
        # watchdog when recovery is off; ablating it risks a hang.
        unsafe_for=("fig_chaos", "fig_service"),
    ),
    Component(
        "robust",
        "overload-protection preset (deadlines/retry/admission/degrade)",
        baseline={"robust": True},
        ablated={"robust": False},
    ),
)


# ----------------------------------------------------------------------
# Run matrix + stable run IDs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Cell:
    """One run of one experiment under one merged override table."""

    exp_id: str
    #: "baseline", "no-<comp>", or "no-<a>+no-<b>" (pairwise).
    label: str
    #: Component names ablated in this cell (empty for the baseline).
    ablated: Tuple[str, ...]
    #: Fully merged override table the cell runs under.
    overrides: Mapping[str, object]
    seed: int
    quick: bool
    run_id: str

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["ablated"] = list(self.ablated)
        d["overrides"] = dict(self.overrides)
        return d


def cell_run_id(
    exp_id: str, overrides: Mapping[str, object], seed: int, quick: bool,
) -> str:
    """Stable ID of a cell spec: blake2b of its canonical JSON.

    Depends on nothing but the spec -- no wall clock, no hostname, no
    matrix position -- so re-generating the same matrix (today, next
    week, in a worker process) names the same cells and the journal can
    recognize completed work.
    """
    spec = {
        "exp_id": exp_id,
        "overrides": {k: overrides[k] for k in sorted(overrides)},
        "seed": seed,
        "quick": quick,
    }
    canon = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canon.encode(), digest_size=10).hexdigest()


def _applicable(component: Component, exp_id: str) -> bool:
    return not any(exp_id.startswith(p) for p in component.unsafe_for)


def _make_cell(
    exp_id: str,
    components: Sequence[Component],
    ablated: Tuple[str, ...],
    seed: int,
    quick: bool,
) -> Cell:
    merged: Dict[str, object] = {}
    for comp in components:
        vals = comp.ablated if comp.name in ablated else comp.baseline
        merged.update(vals)
    label = "+".join(f"no-{n}" for n in ablated) or "baseline"
    return Cell(
        exp_id=exp_id,
        label=label,
        ablated=ablated,
        overrides=merged,
        seed=seed,
        quick=quick,
        run_id=cell_run_id(exp_id, merged, seed, quick),
    )


def build_matrix(
    experiments: Sequence[str],
    components: Optional[Sequence[str]] = None,
    seed: int = 0,
    quick: bool = True,
    pairwise: bool = False,
) -> List[Cell]:
    """Baseline + leave-one-out (+ optional pairwise) cells per experiment.

    ``components`` selects (by name, in registry order) which components
    vary; all of them contribute their *baseline* values to every cell.
    Components whose ablated value is unsafe for an experiment get no
    leave-one-out cell there (see :attr:`Component.unsafe_for`).
    """
    if components is None:
        names = list(COMPONENTS)
    else:
        unknown = sorted(set(components) - set(COMPONENTS))
        if unknown:
            raise ValueError(
                f"unknown component(s) {', '.join(repr(n) for n in unknown)}; "
                f"valid components: {', '.join(COMPONENTS)}"
            )
        names = [n for n in COMPONENTS if n in set(components)]
    comps = [COMPONENTS[n] for n in names]

    cells: List[Cell] = []
    for exp_id in experiments:
        cells.append(_make_cell(exp_id, comps, (), seed, quick))
        applicable = [c for c in comps if _applicable(c, exp_id)]
        for comp in applicable:
            cells.append(_make_cell(exp_id, comps, (comp.name,), seed, quick))
        if pairwise:
            for i, a in enumerate(applicable):
                for b in applicable[i + 1:]:
                    cells.append(
                        _make_cell(exp_id, comps, (a.name, b.name), seed, quick)
                    )
    return cells


# ----------------------------------------------------------------------
# Metric extraction
# ----------------------------------------------------------------------

#: data-dict keys that open a metric scope; the innermost match wins.
#: Values are the canonical metric names the report aggregates under.
_METRIC_KEYS: Dict[str, str] = {
    "rates": "rate",
    "mteps": "rate",
    "gflops": "rate",
    "degenerate_rate": "rate",
    "times": "time_s",
    "latency_us": "latency_us",
    "goodput_rps": "goodput_rps",
    "p99_us": "p99_us",
    "p999_us": "p999_us",
    "means": "dangling",
    "peak_dangling": "dangling_peak",
    "dangling": "dangling",
    "wasted_acquisitions": "wasted_acq",
    "wasted_acquisitions_avoided": "wasted_acq_avoided",
    "shed": "shed",
    "retries": "retries",
    "retransmits": "retransmits",
}


def extract_metrics(result_dict: Mapping[str, object]) -> Dict[str, float]:
    """Uniform per-run metrics from an ``ExperimentResult.to_dict()``.

    Walks the (already JSON-coerced) ``data`` payload; a key naming a
    known metric family opens a scope, and every numeric leaf inside it
    accumulates into that metric's mean.  Experiments publish wildly
    different shapes (flat rate dicts, nested service cells, dataclass
    dumps) -- the walk makes them comparable without per-experiment
    adapters.  ``checks_ok`` (fraction of shape checks passing) is
    always present.
    """
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}

    def walk(node: object, metric: Optional[str]) -> None:
        if isinstance(node, bool):
            return
        if isinstance(node, (int, float)):
            if metric is not None:
                sums[metric] = sums.get(metric, 0.0) + float(node)
                counts[metric] = counts.get(metric, 0) + 1
            return
        if isinstance(node, Mapping):
            for k, v in node.items():
                walk(v, _METRIC_KEYS.get(str(k), metric))
            return
        if isinstance(node, (list, tuple)):
            for v in node:
                walk(v, metric)

    walk(result_dict.get("data", {}), None)
    metrics = {m: sums[m] / counts[m] for m in sums}
    checks = result_dict.get("checks") or {}
    if isinstance(checks, Mapping) and checks:
        metrics["checks_ok"] = sum(bool(v) for v in checks.values()) / len(checks)
    return metrics


# ----------------------------------------------------------------------
# Execution: worker protocol + journal
# ----------------------------------------------------------------------

def execute_cell(cell_dict: dict) -> dict:
    """Run one cell and return its journal record.  Spawn-safe worker
    entrypoint: a plain top-level function over plain dicts, importing
    the experiment registry lazily so a fresh interpreter (``spawn``
    start method) rebuilds everything from the spec alone.

    Never raises for an experiment failure -- the record says
    ``status="failed"`` and carries the error, so one broken cell
    cannot take down a sweep.
    """
    from .. import overrides
    from ..experiments.registry import run_experiment

    record = {
        "run_id": cell_dict["run_id"],
        "exp_id": cell_dict["exp_id"],
        "label": cell_dict["label"],
        "ablated": list(cell_dict["ablated"]),
        "overrides": dict(cell_dict["overrides"]),
        "seed": cell_dict["seed"],
        "quick": cell_dict["quick"],
    }
    overrides.set_overrides(cell_dict["overrides"])
    try:
        res = run_experiment(
            cell_dict["exp_id"], quick=cell_dict["quick"],
            seed=cell_dict["seed"],
        )
    except Exception as exc:
        record["status"] = "failed"
        record["error"] = f"{type(exc).__name__}: {exc}"
    else:
        d = res.to_dict()
        record["status"] = "ok"
        record["ok"] = d["ok"]
        record["checks"] = d["checks"]
        record["metrics"] = extract_metrics(d)
    finally:
        overrides.clear_overrides()
    return record


def load_journal(path: Optional[str]) -> Dict[str, dict]:
    """run_id -> record for every well-formed line of a JSONL journal.

    A missing file is an empty journal; a torn final line (the previous
    sweep died mid-write) is dropped rather than poisoning the resume.
    """
    records: Dict[str, dict] = {}
    if path is None or not os.path.exists(path):
        return records
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if isinstance(rec, dict) and "run_id" in rec:
                records[rec["run_id"]] = rec
    return records


def _append_journal(path: Optional[str], record: dict) -> None:
    if path is None:
        return
    with open(path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        fh.flush()


def run_matrix(
    cells: Sequence[Cell],
    jobs: int = 1,
    journal_path: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[dict]:
    """Execute every cell not already completed in the journal.

    Returns one record per cell, in matrix order (cached records for
    skipped cells, fresh ones for the rest).  ``jobs > 1`` fans out over
    a ``spawn``-context process pool; the simulator is single-threaded,
    so cells are embarrassingly parallel.  A worker that dies (OOM,
    signal) yields a ``failed`` record for its cell and the sweep keeps
    going.  Failed records are *not* treated as completed: a re-run
    retries them.
    """
    say = progress or (lambda msg: None)
    journal = load_journal(journal_path)
    done = {rid for rid, rec in journal.items() if rec.get("status") == "ok"}
    pending = [c for c in cells if c.run_id not in done]
    say(
        f"matrix: {len(cells)} cells, {len(cells) - len(pending)} cached, "
        f"{len(pending)} new cells"
    )

    fresh: Dict[str, dict] = {}

    def note(record: dict) -> None:
        fresh[record["run_id"]] = record
        _append_journal(journal_path, record)
        status = record["status"]
        if status == "ok":
            status = "ok" if record.get("ok") else "ok (checks failed)"
        say(
            f"  [{len(fresh)}/{len(pending)}] {record['exp_id']} "
            f"{record['label']} {record['run_id']}: {status}"
        )

    if jobs <= 1 or len(pending) <= 1:
        for cell in pending:
            note(execute_cell(cell.to_dict()))
    else:
        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=jobs, mp_context=ctx) as pool:
            futures = {pool.submit(execute_cell, c.to_dict()): c for c in pending}
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for fut in finished:
                    cell = futures[fut]
                    try:
                        record = fut.result()
                    except Exception as exc:
                        # The worker itself died (BrokenProcessPool,
                        # pickling error): record the casualty, keep
                        # sweeping the rest.
                        record = dict(
                            cell.to_dict(), status="failed",
                            error=f"worker crashed: {type(exc).__name__}: {exc}",
                        )
                    note(record)

    out = []
    for cell in cells:
        if cell.run_id in fresh:
            out.append(fresh[cell.run_id])
        else:
            out.append(journal[cell.run_id])
    return out


# ----------------------------------------------------------------------
# Component-importance report
# ----------------------------------------------------------------------

def _deltas(
    records: Sequence[Mapping],
) -> List[Tuple[str, str, str, float, float, Optional[float]]]:
    """(component, exp_id, metric, baseline, ablated, pct_delta) for
    every single-component leave-one-out record with a usable baseline."""
    base: Dict[str, Mapping[str, float]] = {}
    for rec in records:
        if rec.get("status") == "ok" and not rec.get("ablated"):
            base[rec["exp_id"]] = rec.get("metrics", {})
    rows = []
    for rec in records:
        ablated = rec.get("ablated") or []
        if rec.get("status") != "ok" or len(ablated) != 1:
            continue
        bm = base.get(rec["exp_id"])
        if bm is None:
            continue
        for metric, value in (rec.get("metrics") or {}).items():
            if metric not in bm:
                continue
            b = bm[metric]
            pct = (value - b) / b * 100.0 if b else None
            rows.append((ablated[0], rec["exp_id"], metric, b, value, pct))
    return rows


def rank_components(records: Sequence[Mapping]) -> List[Tuple[str, float, int]]:
    """Components ranked by mean |relative delta| across every
    (experiment, metric) pair: ``(name, score_pct, n_pairs)``."""
    impact: Dict[str, List[float]] = {}
    for comp, _exp, _metric, _b, _v, pct in _deltas(records):
        if pct is not None:
            impact.setdefault(comp, []).append(abs(pct))
    ranked = [
        (comp, sum(vals) / len(vals), len(vals))
        for comp, vals in impact.items()
    ]
    ranked.sort(key=lambda t: (-t[1], t[0]))
    return ranked


def importance_report(records: Sequence[Mapping]) -> str:
    """Ranked component-importance tables (delta vs baseline per metric).

    One ranking table (mean |delta%| over every experiment x metric the
    component moved), then one delta table per metric with a row per
    (component, experiment).  Failed cells are listed at the end -- a
    sweep is allowed to lose cells, never to hide that it did.
    """
    deltas = _deltas(records)
    out: List[str] = []

    ranked = rank_components(records)
    if ranked:
        rows = []
        for comp, score, n in ranked:
            worst = max(
                (d for d in deltas if d[0] == comp and d[5] is not None),
                key=lambda d: abs(d[5]),
                default=None,
            )
            rows.append([
                comp,
                f"{score:.1f}%",
                n,
                (f"{worst[2]} @ {worst[1]} ({worst[5]:+.1f}%)"
                 if worst else "-"),
            ])
        out.append(format_table(
            ["component", "mean |delta|", "exp x metric", "largest effect"],
            rows,
            title="Component importance (leave-one-out vs baseline)",
        ))

    metrics = sorted({d[2] for d in deltas})
    for metric in metrics:
        rows = [
            [comp, exp, f"{b:.4g}", f"{v:.4g}",
             f"{pct:+.1f}%" if pct is not None else "n/a"]
            for comp, exp, m, b, v, pct in deltas if m == metric
        ]
        rows.sort(key=lambda r: (r[0], r[1]))
        out.append(format_table(
            ["ablated", "experiment", "baseline", "ablated value", "delta"],
            rows,
            title=f"Metric: {metric}",
        ))

    failed = [r for r in records if r.get("status") == "failed"]
    if failed:
        out.append(format_table(
            ["experiment", "cell", "error"],
            [[r["exp_id"], r["label"], r.get("error", "?")] for r in failed],
            title="Failed cells (excluded from the ranking)",
        ))
    if not out:
        return "no completed cells to report on"
    return "\n\n".join(out)
