"""The degraded-mode state machine.

Admission control reacts to *queue* signals; degraded mode reacts to
*liveness* signals: the progress watchdog's early warning (half the
grace period with no cluster-wide progress -- see
:attr:`repro.faults.watchdog.ProgressWatchdog.on_warning`) and
arbitration-domain failovers
(:attr:`repro.mpi.runtime.MpiRuntime.degrade_hooks`).  Either signal
means the runtime is struggling in a way queue depth alone does not
show, so the server immediately sheds a deterministic fraction of
traffic to drain the backlog and let progress resume.

State diagram (DESIGN.md section 12)::

    NORMAL --signal--> DEGRADED --streak ok--> RECOVERING --streak ok--> NORMAL
       ^                  ^   \\                    |
       |                  |    <----- signal ------+
       +--- (never sheds) +

Hysteresis: entry is immediate (one signal), exit is staged -- the
controller must observe ``exit_streak`` consecutive admitted requests
to step down one level, and any new signal snaps it straight back to
DEGRADED.  Shedding is deterministic modular arithmetic (every
``shed_every``-th request in DEGRADED, every ``recover_shed_every``-th
in RECOVERING), not a coin flip, preserving the replay contract.
"""

from __future__ import annotations

import enum

__all__ = ["DegradeState", "DegradedModeController"]


class DegradeState(enum.Enum):
    NORMAL = "normal"
    DEGRADED = "degraded"
    RECOVERING = "recovering"


class DegradedModeController:
    """Hysteretic load shedding driven by liveness signals."""

    __slots__ = ("shed_every", "recover_shed_every", "exit_streak",
                 "state", "signals", "shed", "passed", "_counter", "_streak")

    def __init__(
        self,
        shed_every: int = 2,
        recover_shed_every: int = 4,
        exit_streak: int = 64,
    ):
        if shed_every < 2 or recover_shed_every < 2:
            raise ValueError(
                f"shed_every/recover_shed_every must be >= 2 (got "
                f"{shed_every}/{recover_shed_every}): shedding everything "
                f"would starve the streak that ends degraded mode"
            )
        if exit_streak < 1:
            raise ValueError(f"exit_streak must be >= 1, got {exit_streak}")
        #: Shed every k-th request while DEGRADED / RECOVERING.
        self.shed_every = shed_every
        self.recover_shed_every = recover_shed_every
        #: Consecutive admits needed to step down one level.
        self.exit_streak = exit_streak
        self.state = DegradeState.NORMAL
        #: Lifetime counters (result accounting).
        self.signals = 0
        self.shed = 0
        self.passed = 0
        self._counter = 0
        self._streak = 0

    # -- signal side (callback context: bookkeeping only) --------------
    def note_signal(self, info=None) -> None:
        """A liveness signal fired.  Accepts one ignored positional so
        it plugs directly into both hook shapes (``hook(frozen)`` from
        the watchdog, ``hook(index)`` from ``fail_domain``)."""
        self.signals += 1
        self.state = DegradeState.DEGRADED
        self._streak = 0
        self._counter = 0

    # -- decision side (called once per arriving request) --------------
    def should_shed(self) -> bool:
        """Deterministic shed decision for the next request; advances
        the hysteresis streak as a side effect."""
        if self.state is DegradeState.NORMAL:
            self.passed += 1
            return False
        period = (
            self.shed_every if self.state is DegradeState.DEGRADED
            else self.recover_shed_every
        )
        self._counter += 1
        if self._counter % period == 0:
            self.shed += 1
            return True
        self.passed += 1
        self._streak += 1
        if self._streak >= self.exit_streak:
            self._streak = 0
            self.state = (
                DegradeState.RECOVERING
                if self.state is DegradeState.DEGRADED
                else DegradeState.NORMAL
            )
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<DegradedModeController {self.state.value} signals={self.signals} "
            f"shed={self.shed}>"
        )
