"""Server-side admission control (load shedding).

When offered load exceeds capacity, an unprotected open-loop server
queues without bound: latency grows linearly with time, *every* request
eventually misses its SLO, and goodput collapses to zero even though
the server is serving at full rate.  Admission control trades a cheap
explicit rejection (a tiny fail-fast reply the client sees in
microseconds) for the expensive implicit one (a reply that arrives too
late to matter).

Four pluggable policies, all deterministic (no RNG):

* ``none`` -- admit everything (the collapse baseline).
* ``queue-cap:N`` -- admit while the rank's backlog is <= N.
* ``deadline`` -- admit iff the request can still *meet its deadline*
  given the estimated service time (drop-expired-first: anything that
  would complete late is shed on arrival).  This is the strongest
  policy here: every served request meets its deadline by construction,
  so p999 of successes is bounded.
* ``codel`` -- CoDel-style target-delay control on queue *sojourn*
  (arrival stamp to service start): sheds at an increasing rate
  (sqrt control law) while minimum sojourn stays above target for a
  full interval.

Policies are small state machines instantiated **per server rank** (all
of a rank's threads share the queue, so they share the policy state);
:func:`make_admission` parses a CLI-style spec into a fresh instance.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionPolicy",
    "QueueCapPolicy",
    "DeadlineAwarePolicy",
    "CoDelPolicy",
    "make_admission",
]


class AdmissionPolicy:
    """Admit everything (also the shared interface).

    ``admit`` is called once per arriving request, *before* service,
    with everything a shedding decision may read: the simulated clock,
    the request's absolute deadline stamp (None when deadlines are
    off), its client-side arrival stamp (sojourn = ``now - t_sent``),
    the rank's current backlog depth, and the estimated service time.
    """

    __slots__ = ("admitted", "shed")
    name = "none"

    def __init__(self):
        #: Lifetime decision counters (result accounting).
        self.admitted = 0
        self.shed = 0

    def admit(
        self,
        now: float,
        *,
        deadline_s: Optional[float],
        t_sent: float,
        depth: int,
        service_s: float,
    ) -> bool:
        self.admitted += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} admitted={self.admitted} shed={self.shed}>"


class QueueCapPolicy(AdmissionPolicy):
    """Admit while backlog depth is at most ``cap``."""

    __slots__ = ("cap",)
    name = "queue-cap"

    def __init__(self, cap: int = 64):
        super().__init__()
        if cap < 1:
            raise ValueError(f"queue cap must be >= 1, got {cap}")
        self.cap = cap

    def admit(self, now, *, deadline_s, t_sent, depth, service_s):
        if depth > self.cap:
            self.shed += 1
            return False
        self.admitted += 1
        return True


class DeadlineAwarePolicy(AdmissionPolicy):
    """Admit iff the request can still meet its deadline.

    ``margin`` scales the service estimate to cover reply flight time
    and queueing ahead of this request; requests without a deadline
    stamp are always admitted (nothing to judge against).
    """

    __slots__ = ("margin",)
    name = "deadline"

    def __init__(self, margin: float = 2.0):
        super().__init__()
        if margin < 1.0:
            raise ValueError(f"deadline margin must be >= 1, got {margin}")
        self.margin = margin

    def admit(self, now, *, deadline_s, t_sent, depth, service_s):
        if deadline_s is not None and now + service_s * self.margin > deadline_s:
            self.shed += 1
            return False
        self.admitted += 1
        return True


class CoDelPolicy(AdmissionPolicy):
    """CoDel-style controlled-delay shedding on queue sojourn.

    Tracks whether sojourn has stayed above ``target_ns`` for a full
    ``interval_ns``; once it has, sheds at an increasing rate (the next
    shed comes ``interval / sqrt(n)`` after the previous), and leaves
    the shedding state the moment a sojourn dips below target.
    """

    __slots__ = ("target_s", "interval_s", "_first_above", "_dropping",
                 "_drop_next", "_drop_count")
    name = "codel"

    def __init__(self, target_ns: float = 100_000.0, interval_ns: float = 1_000_000.0):
        super().__init__()
        if target_ns <= 0.0 or interval_ns <= 0.0:
            raise ValueError(
                f"codel target/interval must be positive, got "
                f"target={target_ns} interval={interval_ns}"
            )
        self.target_s = target_ns * 1e-9
        self.interval_s = interval_ns * 1e-9
        self._first_above: Optional[float] = None
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0

    def admit(self, now, *, deadline_s, t_sent, depth, service_s):
        sojourn = now - t_sent
        if sojourn < self.target_s:
            self._first_above = None
            self._dropping = False
            self.admitted += 1
            return True
        if self._first_above is None:
            self._first_above = now + self.interval_s
            self.admitted += 1
            return True
        if now < self._first_above:
            self.admitted += 1
            return True
        if not self._dropping:
            self._dropping = True
            self._drop_count = 1
            self._drop_next = now + self.interval_s
            self.shed += 1
            return False
        if now >= self._drop_next:
            self._drop_count += 1
            self._drop_next = now + self.interval_s / math.sqrt(self._drop_count)
            self.shed += 1
            return False
        self.admitted += 1
        return True


#: Policy name -> class, for spec validation and docs.
ADMISSION_POLICIES = {
    "none": AdmissionPolicy,
    "queue-cap": QueueCapPolicy,
    "deadline": DeadlineAwarePolicy,
    "codel": CoDelPolicy,
}


def make_admission(spec: str) -> AdmissionPolicy:
    """Parse ``"name[:arg[:arg]]"`` into a fresh policy instance.

    ``"none"``, ``"queue-cap:64"``, ``"deadline"``, ``"deadline:3"``
    (margin), ``"codel"``, ``"codel:100000:1000000"`` (target_ns,
    interval_ns).  Unknown names raise ``ValueError`` listing the valid
    ones; each call returns new state (policies are per server rank).
    """
    text = str(spec).strip() or "none"
    name, _, rest = text.partition(":")
    args = [a for a in rest.split(":") if a] if rest else []
    if name not in ADMISSION_POLICIES:
        raise ValueError(
            f"unknown admission policy {name!r}; valid policies: "
            f"{', '.join(sorted(ADMISSION_POLICIES))}"
        )
    try:
        if name == "none":
            if args:
                raise ValueError(f"admission policy 'none' takes no arguments")
            return AdmissionPolicy()
        if name == "queue-cap":
            return QueueCapPolicy(int(args[0])) if args else QueueCapPolicy()
        if name == "deadline":
            return DeadlineAwarePolicy(float(args[0])) if args else DeadlineAwarePolicy()
        # codel
        if len(args) >= 2:
            return CoDelPolicy(float(args[0]), float(args[1]))
        if len(args) == 1:
            return CoDelPolicy(float(args[0]))
        return CoDelPolicy()
    except (TypeError, IndexError) as exc:
        raise ValueError(f"malformed admission spec {spec!r}: {exc}") from exc
