"""Client retry policy and the retry token budget.

Retries recover from a lossy fabric but *amplify* overload: a server
past saturation sees every timed-out request again, multiplied.  The
classic remedy (adopted from production RPC stacks) is a per-client
**retry budget**: a token bucket that only successes refill, so a small
loss rate retries freely while systemic failure starves the bucket and
the client fails fast instead of piling on.

Retried attempts never cancel the original receive: the retry *hedges*
-- both attempts stay posted, the server deduplicates by request id
(CTS-replay-cache pattern) and re-sends the cached reply, and whichever
reply lands first completes the request.  This is strictly better than
cancel-and-reissue (a merely-slow original reply still counts) and
makes an explicit hedge (``hedge_ns``) the same mechanism on a faster
trigger.

Everything is deterministic: backoff is a pure function of the attempt
number (no jitter -- the simulator's cost model already decorrelates
timelines), and the bucket is plain arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy", "RetryBudget"]


@dataclass(frozen=True)
class RetryPolicy:
    """When and how often a client re-attempts a timed-out request."""

    #: Total attempts including the first (1 = never retry).
    max_attempts: int = 3
    #: Base retransmission timeout (ns after the attempt's issue).
    rto_ns: float = 150_000.0
    #: Multiplier applied per retry (exponential backoff).
    backoff: float = 2.0
    #: Cap on the backed-off RTO (ns).
    rto_cap_ns: float = 2_000_000.0
    #: Issue a hedged duplicate this long (ns) after the first attempt;
    #: 0 disables hedging.  Hedges do not consume budget tokens.
    hedge_ns: float = 0.0
    #: Token bucket capacity (max banked retries).
    budget_cap: int = 32
    #: Tokens returned per successful reply (the classic "retries may
    #: be at most ``budget_refill`` of traffic" knob).
    budget_refill: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.rto_ns <= 0.0:
            raise ValueError(f"rto_ns must be positive, got {self.rto_ns}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.rto_cap_ns < self.rto_ns:
            raise ValueError(
                f"rto_cap_ns ({self.rto_cap_ns}) must be >= rto_ns ({self.rto_ns})"
            )
        if self.hedge_ns < 0.0:
            raise ValueError(f"hedge_ns must be >= 0, got {self.hedge_ns}")
        if self.budget_cap < 0:
            raise ValueError(f"budget_cap must be >= 0, got {self.budget_cap}")
        if not 0.0 <= self.budget_refill <= 1.0:
            raise ValueError(
                f"budget_refill {self.budget_refill} not in [0, 1]"
            )

    def rto(self, n_retries: int) -> float:
        """Seconds until the next retry decision for an attempt issued
        after ``n_retries`` prior retries (exponential, capped)."""
        ns = min(self.rto_ns * (self.backoff ** n_retries), self.rto_cap_ns)
        return ns * 1e-9


class RetryBudget:
    """Token bucket: retries spend, successes refill.

    Starts full (``cap`` tokens) so a cold client can absorb an early
    loss burst; each success banks ``refill`` of a token back, capped.
    """

    __slots__ = ("cap", "refill", "tokens", "taken", "denied")

    def __init__(self, cap: int = 32, refill: float = 0.1):
        if cap < 0:
            raise ValueError(f"budget cap must be >= 0, got {cap}")
        if not 0.0 <= refill <= 1.0:
            raise ValueError(f"refill {refill} not in [0, 1]")
        self.cap = cap
        self.refill = refill
        self.tokens = float(cap)
        #: Lifetime counters (result accounting).
        self.taken = 0
        self.denied = 0

    @classmethod
    def from_policy(cls, policy: RetryPolicy) -> "RetryBudget":
        return cls(cap=policy.budget_cap, refill=policy.budget_refill)

    def take(self) -> bool:
        """Spend one token for a retry; False = budget exhausted."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.taken += 1
            return True
        self.denied += 1
        return False

    def note_success(self) -> None:
        self.tokens = min(float(self.cap), self.tokens + self.refill)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<RetryBudget {self.tokens:.1f}/{self.cap} "
            f"taken={self.taken} denied={self.denied}>"
        )
