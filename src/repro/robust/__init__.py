"""Overload protection for the service workload (DESIGN.md section 12).

The paper's remedies (lock classes, VCI sharding, continuations) fix
*contention* inside the runtime; this package addresses the layer above:
what a multithreaded MPI service must do when **offered load exceeds
capacity** or the fabric misbehaves.  Four cooperating mechanisms:

* **deadlines** (:mod:`.deadline`) -- every request carries an absolute
  deadline; the client cancels work whose deadline passed instead of
  completing it late (:meth:`repro.mpi.runtime.MpiRuntime.cancel`).
* **retry budgets** (:mod:`.retry`) -- exponential-backoff retries and
  optional hedged duplicates, metered by a token bucket so retries
  cannot amplify an overload into a retry storm.
* **admission control** (:mod:`.admission`) -- server-side load
  shedding: queue caps, deadline-aware drop-expired-first, or a
  CoDel-style target-delay controller.
* **degraded mode** (:mod:`.degrade`) -- a hysteretic state machine
  that sheds a deterministic fraction of traffic when the progress
  watchdog warns or a domain fails, and recovers in stages.

Everything here is deterministic: no RNG, no wall clock.  Decisions are
pure functions of the simulated clock and the observed request stream,
so the zero-fault bit-identity contract extends to runs with the layer
*disabled*: ``RobustConfig.none()`` arms no timers, takes no branches
that consume simulated time, and produces the instruction stream of a
tree that never heard of this package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .admission import (
    ADMISSION_POLICIES,
    AdmissionPolicy,
    CoDelPolicy,
    DeadlineAwarePolicy,
    QueueCapPolicy,
    make_admission,
)
from .deadline import Deadline, DeadlineTimer
from .degrade import DegradeState, DegradedModeController
from .retry import RetryBudget, RetryPolicy

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionPolicy",
    "CoDelPolicy",
    "Deadline",
    "DeadlineAwarePolicy",
    "DeadlineTimer",
    "DegradeState",
    "DegradedModeController",
    "QueueCapPolicy",
    "RetryBudget",
    "RetryPolicy",
    "RobustConfig",
    "make_admission",
]


@dataclass(frozen=True)
class RobustConfig:
    """The full overload-protection configuration for one service run.

    ``RobustConfig.none()`` (or passing ``robust=None`` to
    ``run_service``) disables every mechanism and is bit-identical to a
    build without the package; :meth:`protected` is the standard
    all-remedies-on preset used by ``fig_service``.
    """

    #: Per-request deadline budget (ns from arrival); 0 disables
    #: deadline enforcement entirely (no timers armed).
    deadline_ns: float = 0.0
    #: Client retry/hedging policy; None disables retries.
    retry: Optional[RetryPolicy] = None
    #: Server admission-control spec (see :func:`make_admission`):
    #: ``"none"``, ``"queue-cap:N"``, ``"deadline"``, ``"codel"``.
    admission: str = "none"
    #: Install the degraded-mode controller (watchdog / domain-failure
    #: triggered shedding).
    degrade: bool = False

    def __post_init__(self) -> None:
        if self.deadline_ns < 0.0:
            raise ValueError(f"deadline_ns must be >= 0, got {self.deadline_ns}")
        # Fail malformed admission specs at construction, not on the
        # first request: make_admission raises the explanatory error.
        make_admission(self.admission)

    @property
    def active(self) -> bool:
        """True when any mechanism can change the run at all."""
        return bool(
            self.deadline_ns > 0.0
            or self.retry is not None
            or self.admission != "none"
            or self.degrade
        )

    @classmethod
    def none(cls) -> "RobustConfig":
        """The explicit everything-off config (identical to absent)."""
        return cls()

    @classmethod
    def protected(
        cls,
        deadline_ns: float = 300_000.0,
        admission: str = "deadline",
        degrade: bool = True,
        retry: Optional[RetryPolicy] = None,
    ) -> "RobustConfig":
        """The standard all-remedies-on preset.

        The ablation harness can force the whole preset off
        (``repro.overrides`` key ``"robust"``): experiments keep calling
        ``protected(...)`` and get the everything-off config instead,
        measuring what the protection layer as a whole buys.
        """
        from ..overrides import get_override

        if not get_override("robust", True):
            return cls.none()
        return cls(
            deadline_ns=deadline_ns,
            retry=retry if retry is not None else RetryPolicy(),
            admission=admission,
            degrade=degrade,
        )
