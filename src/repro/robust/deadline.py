"""Per-request deadlines and their cancellable timers.

A :class:`Deadline` is a point on the simulated clock; the client stamps
it on the request at arrival (``t_arrival + budget``) and the server
reads it for deadline-aware admission (**propagation**: the wire payload
carries the absolute deadline, so every hop judges against the same
clock -- the simulation has no clock skew to model).

:class:`DeadlineTimer` wraps the engine's cancellable
:meth:`~repro.sim.engine.Simulator.call_after` handle (the PR-4 timer
machinery) with idempotent cancel/re-arm semantics, which is exactly the
lifecycle a per-request timer has: armed at issue, re-armed at every
retry/hedge decision point, cancelled the instant the reply lands.

Timer callbacks run in **callback context** (no simulated time, no
blocking runtime calls -- the ``continuation-discipline`` lint rule);
they may only do bookkeeping and wake a worker that does the real
cancellation in generator context.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["Deadline", "DeadlineTimer"]


class Deadline:
    """An absolute point on the simulated clock a request must beat."""

    __slots__ = ("at_s",)

    def __init__(self, at_s: float):
        if at_s < 0.0:
            raise ValueError(f"deadline at negative time {at_s}")
        self.at_s = at_s

    @classmethod
    def from_budget(cls, now: float, budget_ns: float) -> "Deadline":
        """Deadline ``budget_ns`` nanoseconds after ``now``."""
        return cls(now + budget_ns * 1e-9)

    def expired(self, now: float) -> bool:
        return now >= self.at_s

    def remaining(self, now: float) -> float:
        """Seconds left (negative once expired)."""
        return self.at_s - now

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Deadline at={self.at_s * 1e6:.1f}us>"


class DeadlineTimer:
    """One re-armable cancellable timer built on ``sim.call_after``.

    ``arm`` replaces any pending timer (cancelling it first), so a
    request always has at most one timer outstanding no matter how many
    retry/hedge/deadline decision points re-arm it.  ``cancel`` is
    idempotent and guarantees the callback never runs afterwards.
    """

    __slots__ = ("sim", "_handle", "at_s")

    def __init__(self, sim):
        self.sim = sim
        self._handle = None
        #: Absolute fire time of the pending timer (None when disarmed).
        self.at_s: Optional[float] = None

    @property
    def armed(self) -> bool:
        return self._handle is not None

    def arm(self, at_s: float, fn: Callable, *args) -> None:
        """Schedule ``fn(*args)`` at absolute simulated time ``at_s``
        (immediately if ``at_s`` is already past), replacing any
        pending arm."""
        self.cancel()
        delay = at_s - self.sim.now
        self._handle = self.sim.call_after(delay if delay > 0.0 else 0.0, fn, *args)
        self.at_s = at_s

    def cancel(self) -> None:
        handle = self._handle
        if handle is not None:
            handle.cancel()
            self._handle = None
            self.at_s = None

    def __repr__(self) -> str:  # pragma: no cover
        if self._handle is None:
            return "<DeadlineTimer disarmed>"
        return f"<DeadlineTimer at={self.at_s * 1e6:.1f}us>"
