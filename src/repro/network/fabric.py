"""The interconnect model: QDR InfiniBand-like fabric plus intranode
shared-memory transport.

The model is deliberately first-order -- the paper's phenomena live in the
*ratio* of critical-section time to network time, not in fabric details:

* per-message injection overhead at the sending rank's NIC (descriptor,
  doorbell),
* FIFO serialization of a node's uplink at link bandwidth (concurrent
  messages from one node pipeline behind each other),
* a constant propagation latency,
* a cheaper, higher-bandwidth path for ranks on the same node.

Delivery appends the packet to the destination rank's receive queue; the
MPI progress engine drains that queue when threads poll (there are no
asynchronous receive interrupts, matching MPICH's polled progress).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from ..sim.engine import Simulator
from .message import Packet

__all__ = ["NetworkConfig", "RankNic", "Fabric"]


@dataclass(frozen=True)
class NetworkConfig:
    """Fabric timing parameters (defaults: Mellanox QDR-like)."""

    #: One-way propagation + switch latency, internode (ns).
    latency_ns: float = 1300.0
    #: Node uplink bandwidth (GB/s).  QDR: 32 Gbit/s raw, ~3.2 GB/s eff.
    bandwidth_gbps: float = 3.2
    #: Per-message injection overhead at the sending NIC (ns).
    inject_ns: float = 250.0
    #: Wire header per packet (bytes).
    header_bytes: int = 48
    #: Intranode (shared-memory) one-way latency (ns).
    shm_latency_ns: float = 250.0
    #: Intranode copy bandwidth (GB/s).
    shm_bandwidth_gbps: float = 6.0
    #: Per-message overhead on the shm path (ns).
    shm_inject_ns: float = 80.0

    def with_overrides(self, **kw) -> "NetworkConfig":
        return replace(self, **kw)


class _FifoServer:
    """Work-conserving FIFO serialization point (busy-until bookkeeping)."""

    __slots__ = ("busy_until",)

    def __init__(self):
        self.busy_until = 0.0

    def reserve(self, now: float, duration: float) -> float:
        """Occupy the server for ``duration`` starting no earlier than
        ``now``; returns the completion time."""
        start = now if now > self.busy_until else self.busy_until
        self.busy_until = start + duration
        return self.busy_until


class RankNic:
    """Per-rank network interface: injection server + per-VCI receive
    queues.

    The NIC is sliced into ``n_vcis`` virtual communication interfaces
    (Zambre et al.): each VCI owns an independent receive queue, drained
    by the matching arbitration domain's progress engine.  A single-VCI
    NIC behaves exactly like the classic single receive queue.
    """

    def __init__(self, rank: int, node: int, n_vcis: int = 1):
        if n_vcis < 1:
            raise ValueError(f"need at least one VCI, got {n_vcis}")
        self.rank = rank
        self.node = node
        self.inject = _FifoServer()
        self.recv_qs: List[deque] = [deque() for _ in range(n_vcis)]
        #: Optional callback ``cb(packet)`` fired on delivery (used by
        #: the runtime's event-driven wait mode).
        self.on_packet = None
        #: Failed-domain re-routing: packets stamped with a failed VCI
        #: are delivered into the fallback domain's queue instead
        #: (installed by ``MpiRuntime.fail_domain``).  Empty = no-op.
        self.vci_redirect: Dict[int, int] = {}
        #: Delivery-time filter ``f(packet) -> bool`` installed by the
        #: reliability layer: returning True absorbs the packet (ACKed /
        #: deduplicated at the NIC, like hardware-level RDMA acks) so it
        #: never enters a receive queue.  None = no-op.
        self.rel_filter = None
        # Counters for metrics/debugging.
        self.sent_packets = 0
        self.sent_bytes = 0
        self.recv_packets = 0
        #: Packets whose VCI was out of range and fell back to VCI 0.
        self.vci_fallbacks = 0

    @property
    def n_vcis(self) -> int:
        return len(self.recv_qs)

    @property
    def recv_q(self) -> deque:
        """The VCI-0 receive queue (the whole NIC for single-VCI runs)."""
        return self.recv_qs[0]

    def has_packets(self) -> bool:
        """True when any VCI queue holds an undelivered packet."""
        return any(self.recv_qs)

    def queued_packets(self) -> int:
        return sum(len(q) for q in self.recv_qs)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<RankNic rank={self.rank} node={self.node} "
            f"vcis={self.n_vcis} rxq={self.queued_packets()}>"
        )


class Fabric:
    """Connects rank NICs across (and within) nodes."""

    def __init__(self, sim: Simulator, config: Optional[NetworkConfig] = None):
        self.sim = sim
        self.config = config or NetworkConfig()
        self._nics: Dict[int, RankNic] = {}
        self._uplinks: Dict[int, _FifoServer] = {}
        #: Optional hooks ``cb(packet)`` run at delivery (tests, tracing).
        self.on_deliver: List[Callable] = []
        #: Fault injector (:class:`repro.faults.FaultInjector`) or None.
        #: None means the fault machinery costs exactly one attribute
        #: check per send -- the pre-faults instruction stream.
        self.faults = None

    # ------------------------------------------------------------------
    def register_rank(self, rank: int, node: int, n_vcis: int = 1) -> RankNic:
        if rank in self._nics:
            raise ValueError(f"rank {rank} already registered")
        nic = RankNic(rank, node, n_vcis=n_vcis)
        self._nics[rank] = nic
        self._uplinks.setdefault(node, _FifoServer())
        return nic

    def nic(self, rank: int) -> RankNic:
        return self._nics[rank]

    # ------------------------------------------------------------------
    def send(self, packet: Packet):
        """Inject ``packet``; returns an Event firing at *local completion*
        (source buffer reusable / data handed to the NIC)."""
        cfg = self.config
        try:
            src = self._nics[packet.src_rank]
        except KeyError:
            raise ValueError(f"unknown source rank {packet.src_rank}") from None
        try:
            dst = self._nics[packet.dst_rank]
        except KeyError:
            raise ValueError(f"unknown destination rank {packet.dst_rank}") from None
        now = self.sim.now
        faults = self.faults
        if faults is not None and faults.block_send(packet, now):
            # A crashed sender's packets never leave; the local-completion
            # event never fires (its buffers are gone with it).
            return self.sim.event(name="send-from-crashed-rank")
        stall = 0.0 if faults is None else faults.inject_penalty(packet.src_rank, now)
        wire_bytes = packet.nbytes + cfg.header_bytes

        if src.node == dst.node:
            serialize = cfg.shm_inject_ns * 1e-9 + stall + wire_bytes / (
                cfg.shm_bandwidth_gbps * 1e9
            )
            inject_done = src.inject.reserve(now, serialize)
            deliver_at = inject_done + cfg.shm_latency_ns * 1e-9
        else:
            inject_done = src.inject.reserve(now, cfg.inject_ns * 1e-9 + stall)
            uplink = self._uplinks[src.node]
            xfer_done = uplink.reserve(
                inject_done, wire_bytes / (cfg.bandwidth_gbps * 1e9)
            )
            inject_done = xfer_done
            deliver_at = xfer_done + cfg.latency_ns * 1e-9

        src.sent_packets += 1
        src.sent_bytes += wire_bytes
        obs = self.sim.obs
        if obs is not None and obs.wants("net"):
            # One async span per packet, matched by sequence number:
            # injection at the source to delivery at the destination.
            obs.async_begin(
                "net", packet.kind.value, span_id=packet.seq,
                rank=packet.src_rank,
                src=packet.src_rank, dst=packet.dst_rank, nbytes=packet.nbytes,
            )
            # Link occupancy: how far behind "now" the serialization
            # point is after this reservation (queueing backlog, us).
            obs.counter("net", "inject.backlog_us",
                        max(0.0, src.inject.busy_until - now) * 1e6,
                        rank=packet.src_rank)
            if src.node != dst.node:
                obs.counter("net", "uplink.backlog_us",
                            max(0.0, self._uplinks[src.node].busy_until - now) * 1e6,
                            rank=packet.src_rank)
        local_done = self.sim.timeout(inject_done - now)
        if faults is None:
            self.sim.call_after(deliver_at - now, self._deliver, dst, packet)
            return local_done
        fate = faults.fate(packet, src.node, dst.node, now, deliver_at)
        if fate.drop:
            # The wire time was spent (reservations stand); only the
            # delivery is lost.  Local completion still fires: a lossy
            # NIC reports injection, not receipt.
            return local_done
        delay = deliver_at - now + fate.extra_delay
        self.sim.call_after(delay, self._deliver, dst, packet)
        if fate.duplicate:
            self.sim.call_after(
                delay + faults.duplicate_gap, self._deliver, dst, packet
            )
        return local_done

    def _deliver(self, nic: RankNic, packet: Packet) -> None:
        if nic.rel_filter is not None and nic.rel_filter(packet):
            # Absorbed by the reliability layer at the NIC (an ACK, or a
            # duplicate data packet): acked/accounted but never queued.
            nic.recv_packets += 1
            obs = self.sim.obs
            if obs is not None and obs.wants("net"):
                obs.async_end(
                    "net", packet.kind.value, span_id=packet.seq,
                    rank=packet.src_rank,
                    src=packet.src_rank, dst=packet.dst_rank,
                    nbytes=packet.nbytes,
                )
            for cb in self.on_deliver:
                cb(packet)
            return
        # Route into the packet's VCI queue; packets addressed past the
        # NIC's VCI count (mixed-policy clusters are a config error, but
        # be defensive) fall back to VCI 0 -- loudly: it is counted on
        # the NIC and warned about on the obs bus (fault category).
        vci = packet.vci
        if vci < 0 or vci >= nic.n_vcis:
            nic.vci_fallbacks += 1
            obs = self.sim.obs
            if obs is not None and obs.wants("fault"):
                obs.instant(
                    "fault", "vci.fallback", rank=nic.rank,
                    args={"vci": vci, "n_vcis": nic.n_vcis,
                          "src": packet.src_rank, "kind": packet.kind.value},
                )
                obs.counter("fault", "vci.fallback", nic.vci_fallbacks,
                            rank=nic.rank)
            vci = 0
        if nic.vci_redirect:
            vci = nic.vci_redirect.get(vci, vci)
        nic.recv_qs[vci].append(packet)
        nic.recv_packets += 1
        obs = self.sim.obs
        if obs is not None and obs.wants("net"):
            obs.async_end(
                "net", packet.kind.value, span_id=packet.seq,
                rank=packet.src_rank,
                src=packet.src_rank, dst=packet.dst_rank, nbytes=packet.nbytes,
            )
        if nic.on_packet is not None:
            nic.on_packet(packet)
        for cb in self.on_deliver:
            cb(packet)
