"""Interconnect model: packets, NICs, and the fabric."""

from .fabric import Fabric, NetworkConfig, RankNic
from .message import Packet, PacketKind
from .trace import PacketRecord, PacketTracer, TrafficSummary

__all__ = [
    "Fabric", "NetworkConfig", "RankNic", "Packet", "PacketKind",
    "PacketTracer", "PacketRecord", "TrafficSummary",
]
