"""Wire packets.

The fabric carries opaque packets between ranks; the MPI layer gives them
meaning through :class:`PacketKind` and the ``payload`` field (a protocol
object owned by :mod:`repro.mpi`).  ``nbytes`` is the *wire* size used for
bandwidth accounting; header overhead is added by the fabric.
"""

from __future__ import annotations

import enum
from itertools import count
from typing import Any

__all__ = ["PacketKind", "Packet"]

_packet_seq = count()


class PacketKind(enum.Enum):
    """Protocol discriminator for the MPI progress engine."""

    EAGER = "eager"            # pt2pt payload, fits the eager protocol
    RTS = "rts"                # rendezvous request-to-send (control)
    CTS = "cts"                # rendezvous clear-to-send (control)
    RNDV_DATA = "rndv_data"    # rendezvous bulk data
    RMA_PUT = "rma_put"        # one-sided put (data + target info)
    RMA_GET = "rma_get"        # one-sided get request (control)
    RMA_GET_REPLY = "rma_get_reply"  # get reply (data)
    RMA_ACC = "rma_acc"        # one-sided accumulate (data)
    RMA_ACK = "rma_ack"        # remote completion ack (control)
    ACK = "ack"                # reliability-layer data ack (control)
    APP = "app"                # application-defined payloads


#: Packet kinds that carry no payload bytes of their own.
CONTROL_KINDS = frozenset(
    {PacketKind.RTS, PacketKind.CTS, PacketKind.RMA_GET, PacketKind.RMA_ACK,
     PacketKind.ACK}
)


class Packet:
    """One message on the wire."""

    __slots__ = ("seq", "kind", "src_rank", "dst_rank", "nbytes", "payload", "vci")

    def __init__(
        self,
        kind: PacketKind,
        src_rank: int,
        dst_rank: int,
        nbytes: int,
        payload: Any = None,
        vci: int = 0,
    ):
        if nbytes < 0:
            raise ValueError(f"negative packet size {nbytes}")
        self.seq = next(_packet_seq)
        self.kind = kind
        self.src_rank = src_rank
        self.dst_rank = dst_rank
        self.nbytes = nbytes
        self.payload = payload
        #: Destination virtual communication interface: selects which of
        #: the receiving NIC's per-VCI queues the packet lands in.  The
        #: sender computes it with the cluster-wide mapping policy, so
        #: both sides agree without negotiation.  0 for single-VCI runs.
        self.vci = vci

    @property
    def is_control(self) -> bool:
        return self.kind in CONTROL_KINDS

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Packet #{self.seq} {self.kind.value} "
            f"{self.src_rank}->{self.dst_rank} {self.nbytes}B>"
        )
