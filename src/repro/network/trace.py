"""Packet tracing: capture and summarize fabric traffic.

Attach a :class:`PacketTracer` to a fabric (or a cluster's fabric) to
record every delivery; the summary breaks traffic down by packet kind --
useful for verifying protocol behaviour (e.g. how much of a run's
traffic is rendezvous control) and for debugging workloads.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .fabric import Fabric
from .message import Packet, PacketKind

__all__ = ["PacketRecord", "TrafficSummary", "PacketTracer"]


@dataclass(frozen=True)
class PacketRecord:
    time: float
    kind: PacketKind
    src_rank: int
    dst_rank: int
    nbytes: int


@dataclass(frozen=True)
class TrafficSummary:
    n_packets: int
    total_bytes: int
    by_kind: Dict[str, int]
    bytes_by_kind: Dict[str, int]
    by_pair: Dict[Tuple[int, int], int]
    span_s: float

    @property
    def packet_rate(self) -> float:
        return self.n_packets / self.span_s if self.span_s > 0 else 0.0


class PacketTracer:
    """Records every packet the fabric delivers.

    Attach directly to a fabric (the historical path) or to the unified
    observability bus with :meth:`from_bus` -- both produce the same
    record stream for the same run.
    """

    def __init__(self, fabric: Optional[Fabric] = None):
        self.fabric = fabric
        self.records: List[PacketRecord] = []
        self._hook = self._on_deliver
        self._bus = None
        if fabric is not None:
            fabric.on_deliver.append(self._hook)

    @classmethod
    def from_bus(cls, bus) -> "PacketTracer":
        """A tracer rebuilt as a thin adapter over ``net`` bus events
        (packet async-span ends are deliveries)."""
        tracer = cls(fabric=None)
        tracer._bus = bus
        bus.subscribe(tracer._on_event, categories=("net",))
        return tracer

    def _on_deliver(self, pkt: Packet) -> None:
        self.records.append(
            PacketRecord(
                time=self.fabric.sim.now,
                kind=pkt.kind,
                src_rank=pkt.src_rank,
                dst_rank=pkt.dst_rank,
                nbytes=pkt.nbytes,
            )
        )

    def _on_event(self, ev) -> None:
        if ev.kind.name != "ASYNC_END" or ev.args is None:
            return
        self.records.append(
            PacketRecord(
                time=ev.ts,
                kind=PacketKind(ev.name),
                src_rank=ev.args["src"],
                dst_rank=ev.args["dst"],
                nbytes=ev.args["nbytes"],
            )
        )

    def detach(self) -> None:
        if self.fabric is not None:
            self.fabric.on_deliver.remove(self._hook)
            self.fabric = None
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            self._bus = None

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    def summary(self) -> TrafficSummary:
        if not self.records:
            return TrafficSummary(0, 0, {}, {}, {}, 0.0)
        by_kind: Counter = Counter()
        bytes_by_kind: Counter = Counter()
        by_pair: Counter = Counter()
        total = 0
        for r in self.records:
            by_kind[r.kind.value] += 1
            bytes_by_kind[r.kind.value] += r.nbytes
            by_pair[(r.src_rank, r.dst_rank)] += 1
            total += r.nbytes
        span = self.records[-1].time - self.records[0].time
        return TrafficSummary(
            n_packets=len(self.records),
            total_bytes=total,
            by_kind=dict(by_kind),
            bytes_by_kind=dict(bytes_by_kind),
            by_pair=dict(by_pair),
            span_s=span,
        )

    def times(self, kind: Optional[PacketKind] = None) -> np.ndarray:
        """Delivery timestamps, optionally filtered by kind."""
        return np.asarray([
            r.time for r in self.records if kind is None or r.kind is kind
        ])
