"""Event recording: the bridge from the live bus to the exporters.

:class:`EventLog` is the canonical subscriber -- an append-only, ordered
record of every event it saw.  :class:`Recording` bundles a bus and a
log for the common "trace this run" case (the ``python -m repro trace``
subcommand is a thin wrapper around it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .bus import Instrument
from .events import EventKind, ObsEvent

__all__ = ["Span", "EventLog", "Recording"]


@dataclass(frozen=True, slots=True)
class Span:
    """A closed duration reconstructed from a begin/end event pair."""

    category: str
    name: str
    rank: int
    tid: int
    t0: float
    t1: float
    args: Optional[dict] = None

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class EventLog:
    """Append-only, emission-ordered event record.

    Parameters
    ----------
    bus:
        Bus to subscribe to (optional: a free-standing log can be fed
        via :meth:`append`, which is how unit tests use it).
    categories:
        Category filter passed to the subscription.
    max_events:
        Soft cap: events beyond it are counted in :attr:`dropped`
        instead of stored, bounding memory on runaway traces.  The cap
        is reported by the exporters, never silently.
    """

    def __init__(
        self,
        bus: Optional[Instrument] = None,
        categories: Optional[Iterable[str]] = None,
        max_events: Optional[int] = None,
    ):
        self.events: List[ObsEvent] = []
        self.dropped = 0
        self.max_events = max_events
        self._bus = bus
        if bus is not None:
            bus.subscribe(self.append, categories=categories)

    def append(self, event: ObsEvent) -> None:
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self.append)
            self._bus = None

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def spans(self, strict: bool = False) -> List[Span]:
        """Pair ``SPAN_BEGIN``/``SPAN_END`` events into closed spans.

        Spans nest LIFO per ``(rank, tid)`` lane.  With ``strict=True``
        a mismatched end (wrong name, or end without begin) raises
        ``ValueError``; otherwise mismatches are skipped and unclosed
        begins are simply not reported.
        """
        stacks: Dict[Tuple[int, int], List[ObsEvent]] = {}
        out: List[Span] = []
        for ev in self.events:
            if ev.kind is EventKind.SPAN_BEGIN:
                stacks.setdefault((ev.rank, ev.tid), []).append(ev)
            elif ev.kind is EventKind.SPAN_END:
                stack = stacks.get((ev.rank, ev.tid))
                if not stack or stack[-1].name != ev.name:
                    if strict:
                        raise ValueError(
                            f"unbalanced span end {ev.category}/{ev.name} on "
                            f"lane r{ev.rank}t{ev.tid} at t={ev.ts}"
                        )
                    continue
                begin = stack.pop()
                out.append(
                    Span(
                        category=begin.category,
                        name=begin.name,
                        rank=begin.rank,
                        tid=begin.tid,
                        t0=begin.ts,
                        t1=ev.ts,
                        args=dict(begin.args) if begin.args else None,
                    )
                )
        if strict:
            open_spans = [ev for stack in stacks.values() for ev in stack]
            if open_spans:
                raise ValueError(f"{len(open_spans)} spans never closed")
        return out

    def counters(self) -> Dict[Tuple[str, str, int], List[Tuple[float, float]]]:
        """Counter series keyed ``(category, name, rank)`` as
        ``[(ts, value), ...]`` in emission order."""
        series: Dict[Tuple[str, str, int], List[Tuple[float, float]]] = {}
        for ev in self.events:
            if ev.kind is EventKind.COUNTER:
                series.setdefault((ev.category, ev.name, ev.rank), []).append(
                    (ev.ts, ev.value)
                )
        return series

    def instants(self, category: Optional[str] = None) -> List[ObsEvent]:
        return [
            ev for ev in self.events
            if ev.kind is EventKind.INSTANT
            and (category is None or ev.category == category)
        ]


#: Default category set traced by :class:`Recording` and the CLI: the
#: ``sim`` category (per-event dispatch / process wake) is opt-in
#: because its volume dwarfs everything else.
DEFAULT_TRACE_CATEGORIES = ("lock", "mpi", "net", "fault", "meta")


class Recording:
    """A bus plus a log, ready to hand to ``run(obs=...)``.

    >>> rec = Recording()
    >>> result = run_experiment("fig2b", obs=rec.bus)
    >>> rec.write_chrome_trace("trace.json")
    """

    def __init__(
        self,
        categories: Optional[Iterable[str]] = DEFAULT_TRACE_CATEGORIES,
        max_events: Optional[int] = None,
    ):
        self.bus = Instrument()
        self.log = EventLog(self.bus, categories=categories,
                            max_events=max_events)

    @property
    def events(self) -> List[ObsEvent]:
        return self.log.events

    def chrome_trace(self) -> dict:
        from .chrome import to_chrome_trace

        return to_chrome_trace(self.log.events, bus=self.bus,
                               dropped=self.log.dropped)

    def write_chrome_trace(self, path) -> None:
        from .chrome import write_chrome_trace

        write_chrome_trace(self.log.events, path, bus=self.bus,
                           dropped=self.log.dropped)

    def counters_dump(self) -> dict:
        from .summary import counters_dump

        return counters_dump(self.log.events)

    def summary(self) -> str:
        from .summary import summarize

        return summarize(self.log.events, dropped=self.log.dropped)
