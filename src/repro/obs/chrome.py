"""Chrome-trace (``chrome://tracing`` / Perfetto) JSON export.

The mapping is direct because the event model was designed for it:

* ``pid``  = MPI rank (one process group per rank),
* ``tid``  = simulated thread id (one lane per thread),
* ``ts``   = simulated clock in **microseconds** (Chrome's unit; the
  cost model works at nanosecond scale, so timestamps are fractional
  and ``displayTimeUnit`` is set to ``ns``),
* span begin/end -> ``B``/``E``, async -> ``b``/``e`` (matched by
  ``id``), counter -> ``C``, instant -> ``i``.

Open the output at ``chrome://tracing`` ("Load") or
https://ui.perfetto.dev -- one lane per simulated thread, lock
wait/hold and critical-section spans nested on the simulated timeline.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional

from .bus import Instrument
from .events import EventKind, ObsEvent

__all__ = ["chrome_trace_events", "to_chrome_trace", "write_chrome_trace"]

_S_TO_US = 1e6


def chrome_trace_events(events: Iterable[ObsEvent]) -> List[dict]:
    """Convert bus events to Chrome ``traceEvents`` dicts."""
    out: List[dict] = []
    for ev in events:
        if ev.category == "meta":
            # Lane metadata travels in-band as instants; the exporter
            # turns it into Chrome "M" records.
            if ev.name in ("thread_name", "process_name") and ev.args:
                out.append({
                    "name": ev.name,
                    "ph": "M",
                    "pid": ev.rank,
                    "tid": ev.tid,
                    "args": {"name": ev.args.get("name", "")},
                })
            continue
        rec = {
            "name": ev.name,
            "cat": ev.category,
            "ph": ev.kind.value,
            "ts": ev.ts * _S_TO_US,
            "pid": ev.rank,
            "tid": ev.tid,
        }
        if ev.kind is EventKind.COUNTER:
            rec["args"] = {"value": ev.value}
        else:
            if ev.args:
                rec["args"] = dict(ev.args)
            if ev.kind in (EventKind.ASYNC_BEGIN, EventKind.ASYNC_END):
                rec["id"] = ev.span_id
            if ev.kind is EventKind.INSTANT:
                rec["s"] = "t"  # thread-scoped instant
        out.append(rec)
    return out


def to_chrome_trace(
    events: Iterable[ObsEvent],
    bus: Optional[Instrument] = None,
    dropped: int = 0,
) -> dict:
    """Build the full Chrome trace document.

    ``bus`` contributes declared process/thread names as metadata
    records; ``dropped`` (events lost to an :class:`EventLog` cap) is
    recorded in ``otherData`` so truncation is never silent.
    """
    trace_events: List[dict] = []
    if bus is not None:
        for rank, name in sorted(bus.process_names.items()):
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": rank, "tid": 0,
                "args": {"name": name},
            })
        for (rank, tid), name in sorted(bus.thread_names.items()):
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": rank, "tid": tid,
                "args": {"name": name},
            })
    trace_events.extend(chrome_trace_events(events))
    doc = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.obs (MPI+Threads runtime-contention reproduction)",
            "clock": "simulated seconds, exported as microseconds",
        },
    }
    if dropped:
        doc["otherData"]["dropped_events"] = dropped
    return doc


def write_chrome_trace(
    events: Iterable[ObsEvent],
    path,
    bus: Optional[Instrument] = None,
    dropped: int = 0,
) -> None:
    doc = to_chrome_trace(events, bus=bus, dropped=dropped)
    with open(path, "w") as fh:
        json.dump(doc, fh)
