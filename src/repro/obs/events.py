"""The observability event model.

Every layer of the reproduction emits the same four primitive event
shapes onto the :class:`~repro.obs.bus.Instrument` bus, keyed by
``(category, name, rank, tid)``:

* **span begin/end** -- a duration on one simulated thread's timeline
  (lock wait, lock hold, critical-section occupancy).  Spans nest per
  ``(rank, tid)`` lane, exactly like Chrome-trace ``B``/``E`` events.
* **async begin/end** -- a duration *not* tied to a thread (a packet in
  flight between ranks), matched by ``id``.
* **counter** -- a sampled numeric series (queue depth, dangling
  requests, link backlog).
* **instant** -- a point event (lock hand-off, empty progress poll).

``kind`` values equal the Chrome-trace phase letters so the exporter is
a direct mapping.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

__all__ = ["EventKind", "ObsEvent", "CATEGORIES"]

#: The categories used by the built-in emitters.  Subscribers may filter
#: on any subset; unknown categories are legal (the bus is open).
CATEGORIES = ("sim", "lock", "mpi", "net", "fault", "check", "service", "meta")


class EventKind(enum.Enum):
    """Primitive event shapes; values are Chrome-trace phase letters."""

    SPAN_BEGIN = "B"
    SPAN_END = "E"
    ASYNC_BEGIN = "b"
    ASYNC_END = "e"
    COUNTER = "C"
    INSTANT = "i"


@dataclass(frozen=True, slots=True)
class ObsEvent:
    """One event on the bus.

    ``ts`` is the *simulated* clock in seconds; ``rank``/``tid`` locate
    the event on a timeline lane (``-1`` = not thread/rank attributed).
    ``value`` is only meaningful for counters, ``span_id`` only for
    async spans.
    """

    kind: EventKind
    category: str
    name: str
    ts: float
    rank: int = -1
    tid: int = -1
    value: Optional[float] = None
    span_id: Optional[int] = None
    args: Optional[Mapping[str, Any]] = field(default=None)

    @property
    def key(self) -> tuple:
        """The ``(category, name, rank, tid)`` series key."""
        return (self.category, self.name, self.rank, self.tid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.value is not None:
            extra = f" value={self.value}"
        if self.span_id is not None:
            extra += f" id={self.span_id}"
        return (
            f"<ObsEvent {self.kind.value} {self.category}/{self.name} "
            f"t={self.ts:.9f} r{self.rank}t{self.tid}{extra}>"
        )
