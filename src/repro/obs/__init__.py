"""``repro.obs`` -- the unified observability bus.

One instrumentation API for every layer of the reproduction.  The
simulator core, the lock framework, the MPI runtime and the network
fabric all emit typed events (span begin/end, async span, counter,
instant) keyed by ``(category, name, rank, tid)`` onto a pub/sub
:class:`Instrument` bus; exporters and the legacy analysis tools
subscribe to it.

Quick start::

    from repro.obs import Recording
    from repro.experiments import run_experiment

    rec = Recording()                              # bus + event log
    res = run_experiment("fig2b", obs=rec.bus)     # run with tracing on
    rec.write_chrome_trace("trace.json")           # open in chrome://tracing
    print(rec.summary())                           # terminal roll-up

or from the shell::

    python -m repro trace fig2a --out trace.json

Event taxonomy (category / notable names):

=========  ============================================================
``sim``    ``dispatch`` (event pop), ``wake`` (process resume) --
           opt-in: high volume, excluded from the default category set
``lock``   ``<lock>.wait`` / ``<lock>.hold`` spans, ``<lock>.grant``
           and ``<lock>.handoff`` instants, ``<lock>.contenders``
           counter
``mpi``    ``cs.main`` / ``cs.progress`` spans (critical-section
           occupancy by entry path), ``dangling`` / ``posted_q`` /
           ``unexp_q`` / ``packets_handled`` counters, ``poll.empty``
           instants
``net``    per-packet in-flight async spans (named by packet kind),
           ``inject.backlog_us`` / ``uplink.backlog_us`` counters
``fault``  injected-fault instants (``drop`` / ``duplicate`` /
           ``reorder`` / ``crash``), reliability ``retransmit`` /
           ``retransmit.giveup``, ``vci.fallback`` warnings,
           ``domain.failover``, ``watchdog.stall`` / ``watchdog.dump``
``meta``   lane naming (``thread_name`` / ``process_name``) and run
           markers
=========  ============================================================

Attaching a bus never changes simulated time: the bus only reads the
clock and is forbidden from scheduling events or consuming RNG streams
(held to bit-identical clocks by ``tests/obs/test_determinism.py``).
"""

from .bus import Instrument
from .chrome import chrome_trace_events, to_chrome_trace, write_chrome_trace
from .events import CATEGORIES, EventKind, ObsEvent
from .recorder import DEFAULT_TRACE_CATEGORIES, EventLog, Recording, Span
from .summary import counters_dump, span_totals, summarize

__all__ = [
    "Instrument",
    "EventKind",
    "ObsEvent",
    "CATEGORIES",
    "EventLog",
    "Recording",
    "Span",
    "DEFAULT_TRACE_CATEGORIES",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "counters_dump",
    "span_totals",
    "summarize",
]
