"""Aggregated views of an event stream: per-run text summary and the
counters/timeseries dump.

These are the "no browser handy" exporters: ``summarize`` answers
"where did the time go" at the terminal, ``counters_dump`` feeds
plotting / regression tooling with plain JSON-able series.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from .events import ObsEvent
from .recorder import EventLog

__all__ = ["span_totals", "counters_dump", "summarize"]


def _as_log(events) -> EventLog:
    if isinstance(events, EventLog):
        return events
    log = EventLog()
    for ev in events:
        log.append(ev)
    return log


def span_totals(events: Iterable[ObsEvent]) -> Dict[Tuple[str, str], dict]:
    """Aggregate closed spans by ``(category, name)``: count, total and
    mean duration in seconds."""
    log = _as_log(events)
    agg: Dict[Tuple[str, str], dict] = {}
    for span in log.spans():
        entry = agg.setdefault(
            (span.category, span.name),
            {"count": 0, "total_s": 0.0, "max_s": 0.0},
        )
        entry["count"] += 1
        entry["total_s"] += span.duration
        if span.duration > entry["max_s"]:
            entry["max_s"] = span.duration
    for entry in agg.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return agg


def counters_dump(events: Iterable[ObsEvent]) -> dict:
    """Counter series as a JSON-able dict:
    ``{"category/name": {"rank": r, "series": [[ts, value], ...]}}``
    (one entry per ``(category, name, rank)``)."""
    log = _as_log(events)
    out: dict = {}
    for (cat, name, rank), series in log.counters().items():
        key = f"{cat}/{name}" + (f"@rank{rank}" if rank >= 0 else "")
        out[key] = {
            "category": cat,
            "name": name,
            "rank": rank,
            "series": [[ts, value] for ts, value in series],
        }
    return out


def summarize(events: Iterable[ObsEvent], dropped: int = 0) -> str:
    """Human-readable per-run roll-up of the event stream."""
    # Imported lazily: repro.analysis pulls in repro.mpi, which imports
    # repro.obs -- a module-level import here would close that cycle.
    from ..analysis.report import format_table

    log = _as_log(events)
    if not len(log) and not dropped:
        return "(no events recorded)"

    n_by_kind: Dict[str, int] = defaultdict(int)
    for ev in log:
        n_by_kind[ev.kind.name] += 1

    sections: List[str] = []
    head = f"{len(log)} events"
    if dropped:
        head += f" (+{dropped} dropped past the event cap)"
    head += "  [" + ", ".join(
        f"{k.lower()}={v}" for k, v in sorted(n_by_kind.items())
    ) + "]"
    sections.append(head)

    totals = span_totals(log)
    if totals:
        rows = [
            [cat, name, entry["count"],
             f"{entry['total_s'] * 1e6:.3f}",
             f"{entry['mean_s'] * 1e9:.1f}",
             f"{entry['max_s'] * 1e9:.1f}"]
            for (cat, name), entry in sorted(
                totals.items(), key=lambda kv: -kv[1]["total_s"]
            )
        ]
        sections.append(format_table(
            ["category", "span", "count", "total (us)", "mean (ns)", "max (ns)"],
            rows, title="Span time on the simulated clock",
        ))

    counter_series = log.counters()
    if counter_series:
        rows = []
        for (cat, name, rank), series in sorted(counter_series.items()):
            values = [v for _ts, v in series]
            rows.append([
                cat, name, rank if rank >= 0 else "-", len(series),
                f"{values[-1]:g}", f"{max(values):g}",
            ])
        sections.append(format_table(
            ["category", "counter", "rank", "samples", "last", "max"],
            rows, title="Counters",
        ))

    instants = log.instants()
    if instants:
        by_name: Dict[Tuple[str, str], int] = defaultdict(int)
        for ev in instants:
            if ev.category != "meta":
                by_name[(ev.category, ev.name)] += 1
        if by_name:
            rows = [
                [cat, name, n]
                for (cat, name), n in sorted(by_name.items(), key=lambda kv: -kv[1])
            ]
            sections.append(format_table(
                ["category", "instant", "count"], rows, title="Instant events",
            ))

    return "\n\n".join(sections)
