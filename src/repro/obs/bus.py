"""The :class:`Instrument` pub/sub bus -- the single instrumentation API.

Design constraints, in order:

1. **Zero overhead when disabled.**  Emitters hold no subscriber state;
   they check ``sim.obs is not None`` (one attribute load) and, for
   anything that allocates (f-strings, args dicts), gate on
   :meth:`Instrument.wants`.  A run without an attached bus executes the
   exact same instruction stream it did before the bus existed.
2. **Never perturb simulated time.**  The bus is a pure observer: it
   reads the clock, it never schedules events, yields, or consumes RNG
   streams.  The determinism regression test
   (``tests/obs/test_determinism.py``) holds this to bit-identical
   simulated clocks.
3. **One API for every layer.**  ``Simulator``, ``SimLock``,
   ``MpiRuntime`` and ``Fabric`` all emit through the same six methods;
   consumers (Chrome-trace export, counter dumps, the legacy
   ``LockTrace``/``PacketTracer``/``DanglingProfiler`` adapters)
   subscribe with an optional category filter.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .events import EventKind, ObsEvent

__all__ = ["Instrument"]

Subscriber = Callable[[ObsEvent], None]


class Instrument:
    """The observability bus: typed events in, subscribers out.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulated time in
        seconds.  Usually installed by :meth:`bind_sim`; defaults to a
        constant ``0.0`` so a free-standing bus is usable in tests.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        #: ``(subscriber, frozenset-of-categories-or-None)`` pairs.
        self._subs: List[Tuple[Subscriber, Optional[frozenset]]] = []
        #: Union of subscribed categories; ``None`` = at least one
        #: subscriber wants everything.
        self._wanted: Optional[frozenset] = frozenset()
        #: Events emitted per category (cheap built-in telemetry,
        #: surfaced in ``ExperimentResult.data["obs"]``).
        self.emitted: Dict[str, int] = {}
        #: Thread/process display names declared by emitters, keyed
        #: ``(rank, tid)`` / ``rank`` -- consumed by the Chrome exporter.
        self.thread_names: Dict[Tuple[int, int], str] = {}
        self.process_names: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind_sim(self, sim) -> "Instrument":
        """Attach this bus to a simulator: the bus reads ``sim.now`` and
        the simulator (and everything holding a reference to it) emits
        through ``sim.obs``.  Rebinding to a fresh simulator is legal --
        multi-cluster experiments reuse one bus across sub-runs."""
        self._clock = lambda: sim.now
        sim.obs = self
        return self

    def subscribe(
        self, fn: Subscriber, categories: Optional[Iterable[str]] = None
    ) -> Subscriber:
        """Register ``fn`` for every event (or only ``categories``).
        Returns ``fn`` so it can be used as a decorator."""
        cats = None if categories is None else frozenset(categories)
        self._subs.append((fn, cats))
        if cats is None:
            self._wanted = None
        elif self._wanted is not None:
            self._wanted = self._wanted | cats
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        # Equality, not identity: bound methods (``log.append``) are
        # re-created on every attribute access and only compare equal.
        self._subs = [(f, c) for f, c in self._subs if f != fn]
        wanted: Optional[frozenset] = frozenset()
        for _f, c in self._subs:
            if c is None:
                wanted = None
                break
            wanted = wanted | c  # type: ignore[operator]
        self._wanted = wanted

    @property
    def enabled(self) -> bool:
        """True when at least one subscriber is attached."""
        return bool(self._subs)

    def wants(self, category: str) -> bool:
        """True when some subscriber will see ``category`` events.

        Emitters use this to skip building event arguments (f-strings,
        dicts) for categories nobody listens to -- the high-frequency
        ``sim`` category stays near-free even with a bus attached.
        """
        if not self._subs:
            return False
        return self._wanted is None or category in self._wanted

    # ------------------------------------------------------------------
    # Emission API (the whole of it)
    # ------------------------------------------------------------------
    def emit(self, event: ObsEvent) -> None:
        """Dispatch a fully-formed event to interested subscribers."""
        cat = event.category
        self.emitted[cat] = self.emitted.get(cat, 0) + 1
        for fn, cats in self._subs:
            if cats is None or cat in cats:
                fn(event)

    def _emit(
        self,
        kind: EventKind,
        category: str,
        name: str,
        rank: int,
        tid: int,
        value: Optional[float] = None,
        span_id: Optional[int] = None,
        args: Optional[dict] = None,
    ) -> None:
        if not self.wants(category):
            return
        self.emit(
            ObsEvent(
                kind=kind,
                category=category,
                name=name,
                ts=self._clock(),
                rank=rank,
                tid=tid,
                value=value,
                span_id=span_id,
                args=args,
            )
        )

    def span_begin(self, category: str, name: str, rank: int = -1, tid: int = -1,
                   **args: Any) -> None:
        """Open a duration on the ``(rank, tid)`` lane.  Must be closed
        by a :meth:`span_end` with the same key; spans nest LIFO per lane."""
        self._emit(EventKind.SPAN_BEGIN, category, name, rank, tid,
                   args=args or None)

    def span_end(self, category: str, name: str, rank: int = -1, tid: int = -1,
                 **args: Any) -> None:
        self._emit(EventKind.SPAN_END, category, name, rank, tid,
                   args=args or None)

    def async_begin(self, category: str, name: str, span_id: int,
                    rank: int = -1, **args: Any) -> None:
        """Open a duration not tied to a thread (e.g. a packet in
        flight), matched to its end by ``span_id``."""
        self._emit(EventKind.ASYNC_BEGIN, category, name, rank, -1,
                   span_id=span_id, args=args or None)

    def async_end(self, category: str, name: str, span_id: int,
                  rank: int = -1, **args: Any) -> None:
        self._emit(EventKind.ASYNC_END, category, name, rank, -1,
                   span_id=span_id, args=args or None)

    def counter(self, category: str, name: str, value: float,
                rank: int = -1, tid: int = -1) -> None:
        """Sample a numeric series at the current simulated time."""
        self._emit(EventKind.COUNTER, category, name, rank, tid,
                   value=float(value))

    def instant(self, category: str, name: str, rank: int = -1, tid: int = -1,
                args: Optional[dict] = None) -> None:
        """A point event (hand-off, empty poll, marker)."""
        self._emit(EventKind.INSTANT, category, name, rank, tid, args=args)

    @contextmanager
    def span(self, category: str, name: str, rank: int = -1, tid: int = -1,
             **args: Any):
        """Context manager for *synchronous* (non-yielding) sections.
        Generator-based emitters pair begin/end manually instead."""
        self.span_begin(category, name, rank, tid, **args)
        try:
            yield self
        finally:
            self.span_end(category, name, rank, tid)

    # ------------------------------------------------------------------
    # Lane metadata
    # ------------------------------------------------------------------
    def declare_thread(self, rank: int, tid: int, name: str) -> None:
        """Give the ``(rank, tid)`` lane a human-readable name in
        exported traces (e.g. ``r0t1``)."""
        self.thread_names[(rank, tid)] = name

    def declare_process(self, rank: int, name: str) -> None:
        self.process_names[rank] = name

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Cheap summary of bus activity (events emitted per category)."""
        return {
            "events_emitted": dict(self.emitted),
            "total": sum(self.emitted.values()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Instrument subs={len(self._subs)} "
            f"emitted={sum(self.emitted.values())}>"
        )
