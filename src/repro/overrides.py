"""Runtime-component override seam for the ablation harness.

The experiment runners hard-code the runtime configuration the paper's
figures call for (``fig2a`` builds mutex clusters, ``fig_service`` picks
its own completion modes, ...).  The ablation harness
(:mod:`repro.analysis.ablation`) needs to ask a different question:
*what does this experiment measure when component X is forced off?* --
without rewriting 21 runners.

This module is that seam: a process-global table of forced knob values,
consulted at the three construction points every experiment funnels
through:

* **cluster keys** (:data:`CLUSTER_KEYS`) are applied on top of whatever
  the runner passed, inside ``ClusterConfig.__post_init__`` -- *before*
  validation/parsing, so a forced ``cs="per-vci:4"`` goes through the
  same policy parser as an explicit one;
* ``"watchdog"`` gates the progress-watchdog install in
  ``Cluster.__init__`` (an active fault plan arms it by default);
* ``"robust"`` gates :meth:`repro.robust.RobustConfig.protected` -- when
  forced off, the preset degrades to :meth:`RobustConfig.none`.

The table is deliberately process-global rather than a context variable:
ablation cells run in worker *processes* (one cell per process), each of
which installs the cell's overrides once before running the experiment.
With the table empty -- the only state any non-ablation run ever sees --
every consultation is a no-op and schedules are bit-identical to a tree
without this module.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Mapping

__all__ = [
    "CLUSTER_KEYS",
    "OVERRIDE_KEYS",
    "active_overrides",
    "clear_overrides",
    "cluster_overrides",
    "forced",
    "get_override",
    "set_overrides",
]

#: Keys applied as forced ``ClusterConfig`` field values.
CLUSTER_KEYS = frozenset({
    "lock", "cs", "scheduler", "completion", "reliability",
    "eager_threshold",
})

#: Every key the seam understands (cluster fields + the two gates).
OVERRIDE_KEYS = CLUSTER_KEYS | frozenset({"watchdog", "robust"})

_active: Dict[str, object] = {}


def set_overrides(overrides: Mapping[str, object]) -> None:
    """Replace the active override table (validating key names)."""
    unknown = sorted(set(overrides) - OVERRIDE_KEYS)
    if unknown:
        raise ValueError(
            f"unknown override key(s) {', '.join(repr(k) for k in unknown)}; "
            f"valid keys: {', '.join(sorted(OVERRIDE_KEYS))}"
        )
    _active.clear()
    _active.update(overrides)


def clear_overrides() -> None:
    """Drop every forced value (the default, bit-identity state)."""
    _active.clear()


def active_overrides() -> Dict[str, object]:
    """Snapshot of the active table (empty outside ablation runs)."""
    return dict(_active)


def cluster_overrides() -> Dict[str, object]:
    """The subset applied to ``ClusterConfig`` fields."""
    return {k: v for k, v in _active.items() if k in CLUSTER_KEYS}


def get_override(key: str, default: object = None) -> object:
    """One forced value, or ``default`` when the key is not forced."""
    if key not in OVERRIDE_KEYS:
        raise ValueError(
            f"unknown override key {key!r}; valid keys: "
            f"{', '.join(sorted(OVERRIDE_KEYS))}"
        )
    return _active.get(key, default)


@contextmanager
def forced(**overrides: object) -> Iterator[None]:
    """Scoped override install (tests and in-process serial execution).

    Restores the previous table on exit, so nesting composes and an
    exception inside the block cannot leak forced values into later
    runs.
    """
    previous = dict(_active)
    set_overrides(overrides)
    try:
        yield
    finally:
        _active.clear()
        _active.update(previous)
