"""The calibrated cost model.

Every latency the simulator charges is defined here, in nanoseconds, and
exposed in seconds through accessor methods.  Defaults are calibrated to a
Nehalem-class dual-socket node (paper Table 1):

* Atomic RMW latency depends on where the target cache line currently
  lives: L1-resident (same core), shared L3 (same socket), or on the other
  package via QPI (remote).  These constants drive both the mutex CAS race
  and the ticket lock's fetch-and-increment.
* Hand-off latency is the time between a releaser's store and a waiter
  *observing* it -- the paper's footnote 1 -- again proximity-dependent.
* A futex round trip (syscall, kernel queue, wake IPI, return to user
  space) is three orders of magnitude slower than a user-space CAS, which
  is what lets a releasing thread barge back in: the mechanism behind lock
  monopolization (paper 2.2, 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from .topology import Proximity

__all__ = ["CostModel", "NS"]

#: One nanosecond in simulator (seconds) units.
NS = 1e-9


@dataclass(frozen=True)
class CostModel:
    """All charged latencies, in nanoseconds unless stated otherwise."""

    # --- cache-coherence / atomics -----------------------------------
    #: Atomic RMW (CAS / fetch&inc) latency indexed by Proximity of the
    #: requester to the cache line's current owner.
    atomic_ns: Tuple[float, float, float] = (8.0, 45.0, 180.0)
    #: Time for a waiter to observe a releaser's store (lock hand-off),
    #: indexed by Proximity between releaser and waiter.
    handoff_ns: Tuple[float, float, float] = (6.0, 40.0, 250.0)
    #: Scale of exponential jitter added to atomic completions (breaks
    #: ties in CAS races; keeps the model non-degenerate).
    jitter_ns: float = 5.0

    # --- futex (NPTL mutex sleep path) --------------------------------
    #: Latency from FUTEX_WAKE to the woken thread retrying its CAS.
    futex_wake_ns: float = 3200.0
    #: Cost of the FUTEX_WAIT syscall before the thread is parked.
    futex_sleep_ns: float = 150.0
    #: Releaser-side cost of a contended unlock (the FUTEX_WAKE syscall).
    futex_wake_syscall_ns: float = 1100.0

    # --- MPI runtime critical-section segments -------------------------
    #: Main-path bookkeeping per MPI operation (descriptor setup, queue
    #: insert) executed while holding the global critical section.
    cs_main_ns: float = 180.0
    #: One progress-engine poll that finds nothing to do.
    cs_poll_empty_ns: float = 90.0
    #: Per-incoming-packet handling in the progress engine (matching,
    #: state transitions) excluding payload copies.
    cs_poll_packet_ns: float = 150.0
    #: Request object allocation/initialization (outside the CS hot part).
    request_alloc_ns: float = 60.0
    #: Per-element scan cost for posted/unexpected queue searches.
    cs_queue_scan_ns: float = 6.0
    #: Accumulate (reduction) compute cost per byte at the RMA target.
    rma_acc_ns_per_byte: float = 0.25
    #: Time a thread spends outside the CS between progress-loop
    #: iterations (the CS_YIELD gap).  Small relative to futex_wake_ns:
    #: that ratio is the monopolization knob.
    progress_gap_ns: float = 25.0
    #: Max packets the progress engine handles per poll (one CS hold).
    #: Real engines process a bounded completion batch per poll.
    progress_batch: int = 4
    #: Latency from an arrival/completion event to a parked waiter
    #: resuming, for the event-driven wait mode (paper 9 future work:
    #: "selective thread wake-up triggered by events such as message
    #: arrival").  Cheaper than a futex round trip: the waker is inside
    #: the runtime and signals directly.
    event_wakeup_ns: float = 900.0
    #: Under "brief" CS granularity, only copies at least this long are
    #: worth the two extra lock transitions of dropping the lock.
    brief_copy_min_ns: float = 100.0
    #: Coherence slowdown of in-CS work per waiting thread: waiters'
    #: retries and spinning bounce the runtime's shared cache lines
    #: (queues, counters), slowing the critical path for *any* lock
    #: (cf. David et al., SOSP'13).  Effective in-CS time is
    #: ``base * (1 + contention_penalty * n_waiters)``, where waiters on
    #: the other socket count ``contention_remote_factor`` times (their
    #: retries cross the QPI, disturbing the holder far more -- this is
    #: what makes scatter bindings slower, paper Fig. 2b).
    contention_penalty: float = 0.14
    contention_remote_factor: float = 4.5

    # --- data movement -------------------------------------------------
    #: memcpy bandwidth for landing payloads into user buffers (GB/s).
    copy_bw_gbps: float = 5.0
    #: Extra copy factor for messages that went through the unexpected
    #: queue (eager buffer -> temp buffer -> user buffer).
    unexpected_copy_factor: float = 2.0

    # ------------------------------------------------------------------
    def atomic(self, prox: Proximity) -> float:
        """Seconds for an atomic RMW at proximity ``prox`` to the line."""
        return self.atomic_ns[prox] * NS

    def handoff(self, prox: Proximity) -> float:
        """Seconds for a waiter to observe a release at proximity ``prox``."""
        return self.handoff_ns[prox] * NS

    @property
    def futex_wake(self) -> float:
        return self.futex_wake_ns * NS

    @property
    def futex_sleep(self) -> float:
        return self.futex_sleep_ns * NS

    @property
    def futex_wake_syscall(self) -> float:
        return self.futex_wake_syscall_ns * NS

    @property
    def cs_main(self) -> float:
        return self.cs_main_ns * NS

    @property
    def cs_poll_empty(self) -> float:
        return self.cs_poll_empty_ns * NS

    @property
    def cs_poll_packet(self) -> float:
        return self.cs_poll_packet_ns * NS

    @property
    def request_alloc(self) -> float:
        return self.request_alloc_ns * NS

    @property
    def progress_gap(self) -> float:
        return self.progress_gap_ns * NS

    @property
    def queue_scan(self) -> float:
        return self.cs_queue_scan_ns * NS

    @property
    def event_wakeup(self) -> float:
        return self.event_wakeup_ns * NS

    def copy_time(self, nbytes: int, unexpected: bool = False) -> float:
        """Seconds to land ``nbytes`` into a user buffer."""
        t = nbytes / (self.copy_bw_gbps * 1e9)
        if unexpected:
            t *= self.unexpected_copy_factor
        return t

    def with_overrides(self, **kw) -> "CostModel":
        """A copy of this model with selected fields replaced."""
        return replace(self, **kw)
