"""Node topology model: sockets, cores, and proximity classes.

The reproduction's default machine mirrors Table 1 of the paper: a
dual-socket Intel Nehalem (Xeon E5540) node with 4 cores per socket and SMT
disabled.  Only the *shape* of the hierarchy matters for lock arbitration:
two cores are either the same core, on the same socket (shared L3), or on
different sockets (cache lines cross the interconnect).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

__all__ = ["Proximity", "MachineSpec", "Core", "Socket", "Machine", "nehalem_node"]


class Proximity(enum.IntEnum):
    """Distance class between two cores, ordered by increasing cost."""

    SAME_CORE = 0
    SAME_SOCKET = 1
    REMOTE = 2


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a node (paper Table 1 by default)."""

    architecture: str = "Nehalem"
    processor: str = "Xeon E5540"
    clock_ghz: float = 2.6
    n_sockets: int = 2
    cores_per_socket: int = 4
    l3_kib: int = 8192
    l2_kib: int = 256
    interconnect: str = "Mellanox QDR"

    @property
    def n_cores(self) -> int:
        return self.n_sockets * self.cores_per_socket


@dataclass(frozen=True, eq=True)
class Core:
    """One physical core.  ``index`` is node-global, ``socket`` its package."""

    node: int
    socket: int
    index: int

    def proximity(self, other: "Core") -> Proximity:
        """Distance class from this core to ``other`` (same node assumed)."""
        if self.node != other.node:
            raise ValueError(
                f"proximity undefined across nodes ({self.node} vs {other.node})"
            )
        if self.index == other.index:
            return Proximity.SAME_CORE
        if self.socket == other.socket:
            return Proximity.SAME_SOCKET
        return Proximity.REMOTE


@dataclass
class Socket:
    node: int
    index: int
    cores: List[Core] = field(default_factory=list)


class Machine:
    """A single cluster node: sockets populated with cores."""

    def __init__(self, node_id: int = 0, spec: MachineSpec | None = None):
        self.node_id = node_id
        self.spec = spec or MachineSpec()
        self.sockets: List[Socket] = []
        self.cores: List[Core] = []
        for s in range(self.spec.n_sockets):
            sock = Socket(node=node_id, index=s)
            for c in range(self.spec.cores_per_socket):
                core = Core(
                    node=node_id,
                    socket=s,
                    index=s * self.spec.cores_per_socket + c,
                )
                sock.cores.append(core)
                self.cores.append(core)
            self.sockets.append(sock)

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    @property
    def n_sockets(self) -> int:
        return len(self.sockets)

    def core(self, index: int) -> Core:
        return self.cores[index]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Machine node={self.node_id} {self.spec.processor} "
            f"{self.n_sockets}x{self.spec.cores_per_socket} cores>"
        )


def nehalem_node(node_id: int = 0) -> Machine:
    """The paper's testbed node (Table 1)."""
    return Machine(node_id=node_id, spec=MachineSpec())
