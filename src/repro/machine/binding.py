"""Thread-to-core binding policies.

The paper's experiments compare *compact* binding (fill one socket before
spilling to the next; the paper's default binds the first four threads to
socket 0) against *scatter* binding (round-robin across sockets), because
the mutex bias is amplified when contenders span sockets (Fig. 2b, 5b).
"""

from __future__ import annotations

from typing import List, Sequence

from .topology import Core, Machine

__all__ = ["compact_binding", "scatter_binding", "explicit_binding", "BINDINGS"]


def compact_binding(machine: Machine, n_threads: int) -> List[Core]:
    """Fill sockets in order: cores 0..3 on socket 0, then socket 1, ..."""
    if n_threads < 1:
        raise ValueError("need at least one thread")
    cores = machine.cores
    return [cores[i % len(cores)] for i in range(n_threads)]


def scatter_binding(machine: Machine, n_threads: int) -> List[Core]:
    """Round-robin across sockets: thread i goes to socket i % n_sockets."""
    if n_threads < 1:
        raise ValueError("need at least one thread")
    per_socket = [list(s.cores) for s in machine.sockets]
    out: List[Core] = []
    slot = [0] * len(per_socket)
    for i in range(n_threads):
        s = i % len(per_socket)
        cores = per_socket[s]
        out.append(cores[slot[s] % len(cores)])
        slot[s] += 1
    return out


def explicit_binding(machine: Machine, core_indices: Sequence[int]) -> List[Core]:
    """Bind thread i to ``machine.cores[core_indices[i]]``."""
    return [machine.core(i) for i in core_indices]


#: Named policies accepted by the experiment configs.
BINDINGS = {
    "compact": compact_binding,
    "scatter": scatter_binding,
}
