"""NUMA machine model: topology, thread binding, and the cost model."""

from .binding import BINDINGS, compact_binding, explicit_binding, scatter_binding
from .costs import NS, CostModel
from .threads import ThreadCtx
from .topology import Core, Machine, MachineSpec, Proximity, Socket, nehalem_node

__all__ = [
    "Core",
    "Socket",
    "Machine",
    "MachineSpec",
    "Proximity",
    "nehalem_node",
    "ThreadCtx",
    "CostModel",
    "NS",
    "compact_binding",
    "scatter_binding",
    "explicit_binding",
    "BINDINGS",
]
