"""Software thread contexts.

A :class:`ThreadCtx` is the identity a simulated thread presents to locks
and to the MPI runtime: a unique id plus the core it is pinned to.  All
experiments in the paper pin threads (via compact/scatter bindings), so a
thread's core never changes during a run.
"""

from __future__ import annotations

from itertools import count
from typing import Optional

from .topology import Core, Proximity

__all__ = ["ThreadCtx"]

_ids = count()


class ThreadCtx:
    """Identity of one simulated OS thread pinned to a core."""

    __slots__ = ("tid", "core", "name", "rank", "held", "socket")

    def __init__(self, core: Core, name: str = "", rank: Optional[int] = None):
        self.tid = next(_ids)
        self.core = core
        self.rank = rank
        self.name = name or f"thread{self.tid}"
        #: Locks currently held by this thread (maintained by
        #: SimLock._grant/_release_checks; read by the simsan lockset
        #: sanitizer).  A plain set of SimLock objects.
        self.held = set()
        #: Cached from the pinned core: threads never migrate, and the
        #: contention model reads this on every acquire.
        self.socket = core.socket

    def proximity(self, other: "ThreadCtx") -> Proximity:
        return self.core.proximity(other.core)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ThreadCtx {self.name} tid={self.tid} core={self.core.index} socket={self.socket}>"
