"""Multithreaded point-to-point latency benchmark (paper 6.1.1).

Derived from ``osu_latency``: thread *i* on rank 0 ping-pongs with thread
*i* on rank 1 (its own tag), all ``T`` pairs concurrently.  The reported
metric is the **aggregate effective latency**: wall time per message with
``T`` concurrent ping-pongs in flight,

    latency = elapsed / (iterations * T)

which reduces to the classic per-message latency for ``T = 1``.  This is
the definition under which the paper's Fig. 8b shapes are self-consistent:
for small messages runtime contention dominates (mutex up to 3.5x worse
than ticket; ticket ~1.66x single-threaded), while above the inline
threshold (128 B) the concurrent transfers pipeline in the fabric and the
multithreaded runs beat single-threaded by feeding the network several
requests at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..mpi.world import Cluster

__all__ = ["LatencyConfig", "LatencyResult", "run_latency"]


@dataclass(frozen=True)
class LatencyConfig:
    msg_size: int = 1
    n_iters: int = 50


@dataclass(frozen=True)
class LatencyResult:
    msg_size: int
    n_threads: int
    n_iters: int
    elapsed_s: float
    #: Aggregate effective latency in microseconds.
    latency_us: float


def _pinger(th, cfg: LatencyConfig, peer: int, tag: int):
    for _ in range(cfg.n_iters):
        yield from th.send(peer, cfg.msg_size, tag=tag)
        yield from th.recv(source=peer, nbytes=cfg.msg_size, tag=tag)


def _ponger(th, cfg: LatencyConfig, peer: int, tag: int):
    for _ in range(cfg.n_iters):
        yield from th.recv(source=peer, nbytes=cfg.msg_size, tag=tag)
        yield from th.send(peer, cfg.msg_size, tag=tag)


def run_latency(
    cluster: Cluster,
    cfg: Optional[LatencyConfig] = None,
    rank_a: int = 0,
    rank_b: int = 1,
) -> LatencyResult:
    cfg = cfg or LatencyConfig()
    n_threads = cluster.config.threads_per_rank
    gens = []
    for i in range(n_threads):
        gens.append(_pinger(cluster.thread(rank_a, i), cfg, rank_b, tag=i))
        gens.append(_ponger(cluster.thread(rank_b, i), cfg, rank_a, tag=i))
    t0 = cluster.sim.now
    cluster.run_workload(gens, name="latency")
    elapsed = cluster.sim.now - t0
    total_msgs = cfg.n_iters * n_threads  # one round trip counted per iter
    return LatencyResult(
        msg_size=cfg.msg_size,
        n_threads=n_threads,
        n_iters=cfg.n_iters,
        elapsed_s=elapsed,
        latency_us=elapsed / total_msgs * 1e6,
    )
