"""The N2N all-to-all streaming benchmark (paper 5.2, Fig. 6b).

Derived from the multithreaded throughput benchmark, except each process
exchanges a continuous stream of messages with *all* other processes.
Receives are posted per-source, so -- unlike the pt2pt benchmark, where
any thread's receive matches any message -- a thread blocked at the
entrance of the main path cannot post its receive while another thread's
polling dumps the incoming message into the unexpected queue.  That is
the window the priority lock closes: favouring main-path entry keeps
receives posted ahead of arrivals (paper: +33% over ticket below 32 KiB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.metrics import message_rate_k
from ..mpi.world import Cluster

__all__ = ["N2NConfig", "N2NResult", "run_n2n"]


@dataclass(frozen=True)
class N2NConfig:
    msg_size: int = 1024
    window: int = 16
    n_windows: int = 4
    #: "windowed": post a full per-peer window then waitall (osu_bw
    #: style).  "rounds": one send+recv per peer per waitall -- a
    #: tighter stream with far more progress-loop polling.
    style: str = "windowed"


@dataclass(frozen=True)
class N2NResult:
    msg_size: int
    n_ranks: int
    n_threads: int
    total_messages: int
    elapsed_s: float
    msg_rate_k: float
    #: Fraction of receives that went through the unexpected queue,
    #: aggregated over ranks (the mechanism behind the priority win).
    unexpected_fraction: float


def _n2n_thread(th, cfg: N2NConfig, peers, tag: int):
    """One thread streams to and from every peer continuously.

    Each round posts one receive and one send per peer, then waits for
    the round -- a *continuous stream*: the next round's receives can
    only be posted after re-entering the main path, so a thread held at
    CS entry leaves incoming messages to the unexpected queue (the
    effect the priority lock mitigates, paper 5.2)."""
    if cfg.style == "windowed":
        for _ in range(cfg.n_windows):
            reqs = []
            for peer in peers:
                for _ in range(cfg.window):
                    r = yield from th.irecv(source=peer, nbytes=cfg.msg_size, tag=tag)
                    reqs.append(r)
            for peer in peers:
                for _ in range(cfg.window):
                    r = yield from th.isend(peer, cfg.msg_size, tag=tag)
                    reqs.append(r)
            yield from th.waitall(reqs)
    elif cfg.style == "rounds":
        for _ in range(cfg.window * cfg.n_windows):
            reqs = []
            for peer in peers:
                r = yield from th.isend(peer, cfg.msg_size, tag=tag)
                reqs.append(r)
            for peer in peers:
                r = yield from th.irecv(source=peer, nbytes=cfg.msg_size, tag=tag)
                reqs.append(r)
            yield from th.waitall(reqs)
    else:
        raise ValueError(f"unknown N2N style {cfg.style!r}")


def run_n2n(cluster: Cluster, cfg: Optional[N2NConfig] = None) -> N2NResult:
    cfg = cfg or N2NConfig()
    n_ranks = cluster.n_ranks
    if n_ranks < 2:
        raise ValueError("N2N needs at least 2 ranks")
    n_threads = cluster.config.threads_per_rank
    gens = []
    for rank in range(n_ranks):
        peers = [r for r in range(n_ranks) if r != rank]
        for i in range(n_threads):
            gens.append(_n2n_thread(cluster.thread(rank, i), cfg, peers, tag=i))
    t0 = cluster.sim.now
    cluster.run_workload(gens, name="n2n")
    elapsed = cluster.sim.now - t0

    total = n_ranks * n_threads * (n_ranks - 1) * cfg.window * cfg.n_windows
    recvs = sum(rt.stats.recvs_issued for rt in cluster.runtimes)
    unexp = sum(rt.stats.unexpected_hits for rt in cluster.runtimes)
    return N2NResult(
        msg_size=cfg.msg_size,
        n_ranks=n_ranks,
        n_threads=n_threads,
        total_messages=total,
        elapsed_s=elapsed,
        msg_rate_k=message_rate_k(total, elapsed),
        unexpected_fraction=unexp / max(1, recvs),
    )
