"""ARMCI-style RMA benchmark with asynchronous progress (paper 6.1.2).

One origin process performs blocking contiguous RMA operations (put, get
or accumulate) to the other processes round-robin; every rank runs
MPICH's forked asynchronous progress thread, so two threads contend for
each rank's critical section -- and the origin's progress thread, which
"does not do useful work most of the time", monopolizes a mutex-guarded
runtime and starves the operation-issuing thread (the paper's 5x case,
Fig. 9).

The metric is the data transfer rate in 10^3 elements/s (one operation
per element, as in the paper's contiguous ARMCI benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..mpi.rma import allocate_windows
from ..mpi.world import Cluster

__all__ = ["RmaConfig", "RmaResult", "run_rma"]


@dataclass(frozen=True)
class RmaConfig:
    op: str = "put"             # put | get | acc
    element_size: int = 8
    n_ops: int = 64


@dataclass(frozen=True)
class RmaResult:
    op: str
    element_size: int
    n_ops: int
    elapsed_s: float
    #: Transfer rate in 10^3 elements/s.
    rate_k: float


_OPS = {"put": "put", "get": "get", "acc": "accumulate"}


def run_rma(cluster: Cluster, cfg: Optional[RmaConfig] = None) -> RmaResult:
    cfg = cfg or RmaConfig()
    if cfg.op not in _OPS:
        raise ValueError(f"unknown RMA op {cfg.op!r}; expected one of {sorted(_OPS)}")
    if cluster.n_ranks < 2:
        raise ValueError("RMA benchmark needs at least 2 ranks")
    if not cluster.config.async_progress:
        raise ValueError(
            "the paper's RMA benchmark runs with async_progress=True "
            "(ClusterConfig(async_progress=True))"
        )
    windows = allocate_windows(cluster.runtimes)
    origin = cluster.thread(0)
    targets = list(range(1, cluster.n_ranks))

    def origin_loop():
        op = getattr(windows[0], _OPS[cfg.op])
        for i in range(cfg.n_ops):
            yield from op(origin, targets[i % len(targets)], cfg.element_size)

    t0 = cluster.sim.now
    cluster.run_workload([origin_loop()], name=f"rma-{cfg.op}")
    elapsed = cluster.sim.now - t0
    return RmaResult(
        op=cfg.op,
        element_size=cfg.element_size,
        n_ops=cfg.n_ops,
        elapsed_s=elapsed,
        rate_k=cfg.n_ops / elapsed / 1e3,
    )
