"""Open-loop RPC service workload (DESIGN.md section 12).

The paper's microbenchmarks are **closed-loop**: a fixed team of threads
issues the next operation only when the previous one finishes, so
offered load self-throttles to capacity and overload is unobservable.
This workload is **open-loop**: arrivals come from a seeded generator
(Poisson / bursty Markov-modulated / diurnal -- stand-ins for external
user traffic) at a configured rate that does *not* slow down when the
service does.  That is the regime where the runtime-contention collapse
the paper measures actually hurts, and the regime the
:mod:`repro.robust` remedies (deadlines, retry budgets, admission
control, degraded mode) are built for.

Topology: the cluster's ranks split into client / server halves, rank
``c`` paired with rank ``P + c``.  Per client rank:

* ``threads_per_rank`` **workers** issue requests open-loop (each owns
  an interleaved slice of the arrival schedule), never blocking on
  replies: each request is an ``isend`` + posted reply ``irecv`` whose
  completion is observed via an attached continuation.
* one **reaper** thread is the rank's completion engine: it drains the
  client NIC (a chained ``nic.on_packet`` hook fires its wake signal),
  runs every action that needs generator context -- deadline expiry
  (:meth:`~repro.mpi.runtime.MpiRuntime.cancel`), retries, hedges,
  request frees -- and keeps timer/continuation callbacks down to
  bookkeeping plus a ``Signal.fire`` (the ``continuation-discipline``
  rule).

Server threads loop ``recv -> dedup -> admission -> compute -> reply``.
Retried/hedged attempts are deduplicated by request id through a
replay cache (the reliability layer's CTS-replay pattern): a duplicate
re-sends the cached reply instead of recomputing.  Termination is a
lossy-safe stop handshake: client worker 0 sends per-server-thread stop
messages and re-sends until acked.

Determinism: all randomness comes from the per-client-rank RNG stream
``"service:<rank>"``; retries, hedges, deadlines, and shedding are
deterministic functions of the simulated clock.  A run's
:attr:`ServiceResult.fingerprint` hashes arrival times, the issue
(retry/hedge) schedule, shed decisions, and outcomes -- the replay
tests pin it across schedulers, and ``RobustConfig.none()`` runs are
bit-identical to runs that never pass a config at all.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..machine import BINDINGS, ThreadCtx
from ..mpi.world import Cluster, ClusterConfig
from ..mpi.runtime import MpiThread
from ..robust import DegradedModeController, RetryBudget, RobustConfig, make_admission
from ..robust.deadline import DeadlineTimer
from ..sim.sync import CompletionLatch, Signal, SimBarrier

__all__ = [
    "ServiceConfig",
    "ServiceResult",
    "arrival_times",
    "run_service",
    "service_cluster",
]

ARRIVAL_SHAPES = ("poisson", "bursty", "diurnal")

#: Tag of the request/stop channel (replies use tag = req_id).
_REQ_TAG = 1
#: Stop-ack tags: ``_STOP_ACK_BASE + server_thread_index``.
_STOP_ACK_BASE = 100
#: First request id (clear of the control tags above).
_REQ_ID_BASE = 1000
_STOP_BYTES = 64
_ACK_BYTES = 16
_STOP_MAX_TRIES = 8
_STOP_RTO_S = 300e-6
_STOP_POLL_S = 20e-6
#: Server reply-send reap batch (one waitall frees the whole batch).
_REAP_BATCH = 32
_EPS = 1e-12


# ======================================================================
# Configuration and result
# ======================================================================
@dataclass(frozen=True)
class ServiceConfig:
    """Traffic shape and per-request costs for one service run."""

    #: Offered arrival rate per client rank (requests/s).
    rate_hz: float = 50_000.0
    #: Open-loop generation horizon (simulated seconds).
    duration_s: float = 0.01
    #: Arrival process: "poisson" | "bursty" | "diurnal".
    shape: str = "poisson"
    #: Bursty: rate multiplier in the high state (MMPP-2), in (1, 4).
    burst_factor: float = 3.0
    #: Bursty: mean dwell per low state (s); 0 = ``duration_s / 8``.
    burst_dwell_s: float = 0.0
    #: Diurnal: modulation depth in [0, 1] (rate swings +-depth).
    diurnal_depth: float = 0.8
    req_bytes: int = 512
    reply_bytes: int = 256
    #: Server compute per admitted request (ns).
    service_ns: float = 20_000.0
    #: End-to-end latency objective (ns from *arrival*).
    slo_ns: float = 250_000.0

    def __post_init__(self) -> None:
        if self.rate_hz <= 0.0:
            raise ValueError(f"rate_hz must be positive, got {self.rate_hz}")
        if self.duration_s <= 0.0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if self.shape not in ARRIVAL_SHAPES:
            raise ValueError(
                f"unknown arrival shape {self.shape!r}; valid shapes: "
                f"{', '.join(ARRIVAL_SHAPES)}"
            )
        if not 1.0 < self.burst_factor < 4.0:
            raise ValueError(
                f"burst_factor must be in (1, 4), got {self.burst_factor}"
            )
        if self.burst_dwell_s < 0.0:
            raise ValueError(f"burst_dwell_s must be >= 0, got {self.burst_dwell_s}")
        if not 0.0 <= self.diurnal_depth <= 1.0:
            raise ValueError(
                f"diurnal_depth {self.diurnal_depth} not in [0, 1]"
            )
        if self.req_bytes <= 0 or self.reply_bytes <= 0:
            raise ValueError("req_bytes and reply_bytes must be positive")
        if self.service_ns < 0.0:
            raise ValueError(f"service_ns must be >= 0, got {self.service_ns}")
        if self.slo_ns <= 0.0:
            raise ValueError(f"slo_ns must be positive, got {self.slo_ns}")


@dataclass(frozen=True)
class ServiceResult:
    """Aggregate outcome of one service run (all client ranks)."""

    offered: int
    ok: int
    ok_within_slo: int
    shed: int
    expired: int
    failed: int
    slo_violations: int
    retries: int
    retries_denied: int
    hedges: int
    dedup_hits: int
    degrade_signals: int
    degrade_shed: int
    #: Successful replies *within SLO* per second of offered horizon.
    goodput_rps: float
    p50_us: float
    p99_us: float
    p999_us: float
    peak_backlog: int
    elapsed_s: float
    #: blake2b over arrivals, issue schedule, shed decisions, outcomes.
    fingerprint: str


# ======================================================================
# Arrival generation
# ======================================================================
def arrival_times(
    rng,
    shape: str,
    rate_hz: float,
    duration_s: float,
    *,
    burst_factor: float = 3.0,
    burst_dwell_s: float = 0.0,
    diurnal_depth: float = 0.8,
) -> List[float]:
    """Generate one rank's arrival schedule on ``[0, duration_s)``.

    All draws come from the caller's RNG stream, one at a time, so the
    schedule is a pure function of (stream, shape, knobs) -- the replay
    contract for the ``"service:<rank>"`` stream.

    * ``poisson`` -- homogeneous, exponential gaps at ``rate_hz``.
    * ``bursty`` -- 2-state MMPP: a high state at ``burst_factor x``
      the mean rate, dwell times exponential, low rate solved so the
      long-run mean stays ``rate_hz``.
    * ``diurnal`` -- one sinusoidal "day" over the horizon (trough at
      t=0, peak mid-run), sampled by thinning a ``(1 + depth) x``
      homogeneous process.
    """
    out: List[float] = []
    t = 0.0
    if shape == "poisson":
        while True:
            t += rng.exponential(1.0 / rate_hz)
            if t >= duration_s:
                break
            out.append(t)
        return out
    if shape == "bursty":
        # High state for a fraction f of time at burst_factor * rate;
        # the low rate is solved so the long-run mean is rate_hz
        # (requires burst_factor < 1/f = 4).
        f = 0.25
        rate_hi = rate_hz * burst_factor
        rate_lo = rate_hz * (1.0 - f * burst_factor) / (1.0 - f)
        dwell_lo = burst_dwell_s or duration_s / 8.0
        dwell_hi = dwell_lo * f / (1.0 - f)
        hi = False
        t_switch = rng.exponential(dwell_lo)
        while t < duration_s:
            rate = rate_hi if hi else rate_lo
            t_next = t + rng.exponential(1.0 / rate)
            if t_next >= t_switch:
                t = t_switch
                hi = not hi
                t_switch = t + rng.exponential(dwell_hi if hi else dwell_lo)
                continue
            t = t_next
            if t < duration_s:
                out.append(t)
        return out
    # diurnal: thinning against the peak rate.
    rate_max = rate_hz * (1.0 + diurnal_depth)
    while True:
        t += rng.exponential(1.0 / rate_max)
        if t >= duration_s:
            break
        inst = rate_hz * (
            1.0 + diurnal_depth * math.sin(
                2.0 * math.pi * t / duration_s - math.pi / 2.0
            )
        )
        if rng.random() * rate_max <= inst:
            out.append(t)
    return out


# ======================================================================
# Wire payloads
# ======================================================================
class _SvcRequest:
    __slots__ = ("req_id", "client", "t_sent", "deadline_s", "service_s",
                 "reply_bytes")

    def __init__(self, req_id, client, t_sent, deadline_s, service_s,
                 reply_bytes):
        self.req_id = req_id
        self.client = client
        #: Issue time of this attempt (CoDel sojourn base).
        self.t_sent = t_sent
        #: Absolute deadline (propagated; None = no deadline).
        self.deadline_s = deadline_s
        self.service_s = service_s
        self.reply_bytes = reply_bytes


class _SvcReply:
    __slots__ = ("req_id", "ok", "t_served")

    def __init__(self, req_id, ok, t_served):
        self.req_id = req_id
        #: False = shed (fail-fast rejection).
        self.ok = ok
        self.t_served = t_served


class _SvcStop:
    __slots__ = ("stop_id",)

    def __init__(self, stop_id):
        #: (client_rank, server_thread_index) -- dedup key for re-sends.
        self.stop_id = stop_id


# ======================================================================
# Per-request record and per-rank state
# ======================================================================
class _Rec:
    """One open-loop request on the client side."""

    __slots__ = ("req_id", "worker", "t_arrival", "deadline_s", "attempts",
                 "n_retries", "hedged", "no_retry", "done", "outcome",
                 "latency_s", "t_first_issue", "t_last_issue", "timer")

    def __init__(self, req_id, worker, t_arrival, deadline_s):
        self.req_id = req_id
        self.worker = worker
        self.t_arrival = t_arrival
        self.deadline_s = deadline_s
        #: (send_req, reply_recv_req) per attempt, in issue order.
        self.attempts: List[tuple] = []
        self.n_retries = 0
        self.hedged = False
        #: Set when the retry budget denied a token (stops re-arming).
        self.no_retry = False
        self.done = False
        self.outcome: Optional[str] = None
        self.latency_s: Optional[float] = None
        self.t_first_issue = 0.0
        self.t_last_issue = 0.0
        self.timer: Optional[DeadlineTimer] = None


class _ClientState:
    """Shared state of one client rank (workers + reaper)."""

    __slots__ = ("cfg", "robust", "sim", "obs", "rank", "server",
                 "n_server_threads", "slo_s", "budget", "actions", "wake",
                 "latches", "barrier", "lingering", "rank_done", "arrivals",
                 "trace", "latencies", "counts", "ok_within_slo", "retries",
                 "retries_denied", "hedges", "_next_req_id", "th_reaper")

    def __init__(self, cfg, robust, sim, obs, rank, server, n_threads):
        self.cfg = cfg
        self.robust = robust
        self.sim = sim
        self.obs = obs
        self.rank = rank
        self.server = server
        self.n_server_threads = n_threads
        self.slo_s = cfg.slo_ns * 1e-9
        pol = robust.retry
        self.budget = RetryBudget.from_policy(pol) if pol is not None else None
        #: Deferred generator-context work: ("finalize" | "due", rec).
        self.actions = []
        self.wake = Signal(sim, name=f"svc-wake@{rank}")
        self.latches = [
            CompletionLatch(sim, name=f"svc-latch@{rank}.{i}")
            for i in range(n_threads)
        ]
        self.barrier = SimBarrier(sim, n_threads, name=f"svc-barrier@{rank}")
        #: Pending sends handed to the reaper's final sweep.
        self.lingering = []
        self.rank_done = False
        self.arrivals: List[float] = []
        #: Fingerprint trace: issue schedule + outcomes.
        self.trace: List[str] = []
        self.latencies: List[float] = []
        self.counts: Dict[str, int] = {}
        self.ok_within_slo = 0
        self.retries = 0
        self.retries_denied = 0
        self.hedges = 0
        self._next_req_id = _REQ_ID_BASE
        self.th_reaper: Optional[MpiThread] = None

    def next_req_id(self) -> int:
        rid = self._next_req_id
        self._next_req_id += 1
        return rid


class _ServerState:
    """Shared state of one server rank (all its worker threads)."""

    __slots__ = ("cfg", "rank", "admission", "degrade", "replay",
                 "stops_seen", "pending_sends", "reaping", "trace",
                 "dedup_hits", "degrade_shed", "peak_backlog", "obs")

    def __init__(self, cfg, rank, admission, degrade, obs):
        self.cfg = cfg
        self.rank = rank
        self.admission = admission
        self.degrade = degrade
        #: req_id -> cached _SvcReply (CTS-replay-cache pattern).
        self.replay: Dict[int, _SvcReply] = {}
        self.stops_seen = set()
        self.pending_sends = []
        #: True while one thread batch-frees completed reply sends.
        self.reaping = False
        #: Fingerprint trace: admit/shed decision per request.
        self.trace: List[str] = []
        self.dedup_hits = 0
        self.degrade_shed = 0
        self.peak_backlog = 0
        self.obs = obs


# ======================================================================
# Client side
# ======================================================================
def _next_due(st: _ClientState, rec: _Rec) -> Optional[float]:
    """Earliest decision point for ``rec``'s timer (None = no timer)."""
    pol = st.robust.retry
    cands = []
    if rec.deadline_s is not None:
        cands.append(rec.deadline_s)
    if pol is not None and len(rec.attempts) < pol.max_attempts and not rec.no_retry:
        if pol.hedge_ns > 0.0 and not rec.hedged:
            cands.append(rec.t_first_issue + pol.hedge_ns * 1e-9)
        cands.append(rec.t_last_issue + pol.rto(rec.n_retries))
    return min(cands) if cands else None


def _arm_timer(st: _ClientState, rec: _Rec) -> None:
    if rec.done:
        return
    due = _next_due(st, rec)
    if due is None:
        if rec.timer is not None:
            rec.timer.cancel()
        return
    if rec.timer is None:
        rec.timer = DeadlineTimer(st.sim)
    rec.timer.arm(due, _on_timer, st, rec)


def _on_timer(st: _ClientState, rec: _Rec) -> None:
    """Timer callback: bookkeeping only, the reaper does the work."""
    if rec.done:
        return
    st.actions.append(("due", rec))
    st.wake.fire()


def _client_on_reply(st: _ClientState, rec: _Rec, rreq) -> None:
    """Reply-recv continuation: classify, then hand off to the reaper.

    Runs in callback context (the runtime's deferred-continuation
    dispatch): no blocking calls, no simulated time -- classification,
    a budget refill, and a wake.
    """
    if rec.done:
        # A hedged/retried duplicate raced the winner; the pending
        # finalize frees every completed attempt.
        return
    rec.done = True
    data = rreq.data
    if rreq.error or not isinstance(data, _SvcReply):
        rec.outcome = "failed"
    elif data.ok:
        rec.outcome = "ok"
        rec.latency_s = st.sim.now - rec.t_arrival
        if st.budget is not None:
            st.budget.note_success()
    else:
        rec.outcome = "shed"
    if rec.timer is not None:
        rec.timer.cancel()
    st.actions.append(("finalize", rec))
    st.wake.fire()


def _issue(st: _ClientState, th: MpiThread, rec: _Rec):
    """Issue one attempt (initial, retry, or hedge) for ``rec``."""
    cfg = st.cfg
    now = th.sim.now
    attempt = len(rec.attempts)
    msg = _SvcRequest(
        rec.req_id, st.rank, now, rec.deadline_s,
        cfg.service_ns * 1e-9, cfg.reply_bytes,
    )
    sreq = yield from th.isend(st.server, cfg.req_bytes, tag=_REQ_TAG, data=msg)
    rreq = yield from th.irecv(
        source=st.server, nbytes=cfg.reply_bytes, tag=rec.req_id,
    )
    rec.attempts.append((sreq, rreq))
    if attempt == 0:
        rec.t_first_issue = now
    rec.t_last_issue = th.sim.now
    st.trace.append(f"i:{rec.req_id}:{attempt}:{now.hex()}")
    # Arm before attaching: if the reply is already in (an inline
    # completion on attach), the continuation cancels this timer.
    _arm_timer(st, rec)
    rreq.attach_continuation(
        lambda r, _st=st, _rec=rec: _client_on_reply(_st, _rec, r)
    )


def _finalize(st: _ClientState, th: MpiThread, rec: _Rec):
    """Free every attempt's requests and account the outcome (reaper,
    generator context)."""
    rec.done = True
    if rec.timer is not None:
        rec.timer.cancel()
    to_free = []
    for sreq, rreq in rec.attempts:
        if not rreq.freed:
            if rreq.complete:
                to_free.append(rreq)
            else:
                # A pending duplicate/expired reply recv: cancel
                # completes it with error and frees it.
                yield from th.cancel(rreq)
        if not sreq.freed:
            if sreq.complete:
                to_free.append(sreq)
            else:
                st.lingering.append(sreq)
    if to_free:
        yield from th.waitall(to_free)
    outcome = rec.outcome or "failed"
    st.counts[outcome] = st.counts.get(outcome, 0) + 1
    if outcome == "ok":
        st.latencies.append(rec.latency_s)
        if rec.latency_s <= st.slo_s + _EPS:
            st.ok_within_slo += 1
    st.trace.append(f"o:{rec.req_id}:{outcome}")
    obs = st.obs
    if obs is not None and obs.wants("service"):
        obs.instant(
            "service", f"req.{outcome}", rank=st.rank,
            args={"req_id": rec.req_id, "attempts": len(rec.attempts)},
        )
    st.latches[rec.worker].fire()


def _handle_due(st: _ClientState, th: MpiThread, rec: _Rec):
    """A timer decision point: expire, hedge, retry, or re-arm."""
    if rec.done:
        return
    now = th.sim.now
    pol = st.robust.retry
    if rec.deadline_s is not None and now >= rec.deadline_s - _EPS:
        rec.done = True
        rec.outcome = "expired"
        yield from _finalize(st, th, rec)
        return
    if pol is not None and len(rec.attempts) < pol.max_attempts and not rec.no_retry:
        if (
            pol.hedge_ns > 0.0 and not rec.hedged
            and now >= rec.t_first_issue + pol.hedge_ns * 1e-9 - _EPS
        ):
            # Hedged duplicate: free (no budget token), original stays
            # posted, first reply wins.
            rec.hedged = True
            st.hedges += 1
            yield from _issue(st, th, rec)
            return
        if now >= rec.t_last_issue + pol.rto(rec.n_retries) - _EPS:
            if st.budget.take():
                rec.n_retries += 1
                st.retries += 1
                yield from _issue(st, th, rec)
                return
            st.retries_denied += 1
            rec.no_retry = True
    _arm_timer(st, rec)


def _client_worker(st: _ClientState, th: MpiThread, widx: int,
                   arrivals: List[float], cluster: Cluster):
    """Open-loop issue loop for one worker's slice of the schedule."""
    sim = th.sim
    latch = st.latches[widx]
    deadline_ns = st.robust.deadline_ns
    for t_arr in arrivals:
        if t_arr > sim.now:
            yield sim.timeout(t_arr - sim.now)
        deadline_s = t_arr + deadline_ns * 1e-9 if deadline_ns > 0.0 else None
        rec = _Rec(st.next_req_id(), widx, t_arr, deadline_s)
        latch.add()
        yield from _issue(st, th, rec)
    while latch.n_pending > 0:
        yield latch.wait()
    yield st.barrier.arrive()
    if widx == 0:
        yield from _stop_servers(st, th)
        st.rank_done = True
        st.wake.fire()


def _stop_servers(st: _ClientState, th: MpiThread):
    """Lossy-safe termination: one stop per server thread, re-sent
    until acked (the ack recv is completed by the reaper's progress)."""
    sim = th.sim
    for k in range(st.n_server_threads):
        stop = _SvcStop((st.rank, k))
        for _ in range(_STOP_MAX_TRIES):
            sreq = yield from th.isend(
                st.server, _STOP_BYTES, tag=_REQ_TAG, data=stop,
            )
            rreq = yield from th.irecv(
                source=st.server, nbytes=_ACK_BYTES, tag=_STOP_ACK_BASE + k,
            )
            t0 = sim.now
            while not rreq.complete and sim.now - t0 < _STOP_RTO_S:
                yield sim.timeout(_STOP_POLL_S)
            if not sreq.freed:
                if sreq.complete:
                    yield from th.test(sreq)
                else:
                    st.lingering.append(sreq)
            if rreq.complete:
                yield from th.test(rreq)
                break
            yield from th.cancel(rreq)
        # On give-up the server thread stays parked; under an active
        # fault plan the watchdog diagnoses the stall.


def _reaper(st: _ClientState, cluster: Cluster):
    """The client rank's completion engine.

    Single loop, strict priority: drain the NIC (progress), run queued
    actions (finalizes / timer decisions), then park on the wake signal
    -- which packets (chained ``nic.on_packet``), continuations, and
    timers all fire.  No yield between the empty-checks and the park,
    so wake-ups cannot be lost.
    """
    th = st.th_reaper
    rt = th.runtime
    while True:
        if rt.nic.has_packets():
            yield from th.progress_poke()
            continue
        if st.actions:
            kind, rec = st.actions.pop(0)
            if kind == "finalize":
                yield from _finalize(st, th, rec)
            else:
                yield from _handle_due(st, th, rec)
            continue
        if st.rank_done:
            break
        yield st.wake.wait()
    pend = [r for r in st.lingering if not r.freed]
    if pend:
        yield from th.waitall(pend)


# ======================================================================
# Server side
# ======================================================================
def _server_send(sst: _ServerState, th: MpiThread, dest: int, nbytes: int,
                 tag: int, payload):
    """Send a reply/ack and batch-reap completed sends.

    Replies are reaped in batches with one ``waitall`` over the already
    -complete subset (no head-of-line blocking on in-flight sends); the
    ``reaping`` flag keeps two server threads from double-freeing."""
    r = yield from th.isend(dest, nbytes, tag=tag, data=payload)
    sst.pending_sends.append(r)
    if len(sst.pending_sends) >= _REAP_BATCH and not sst.reaping:
        sst.reaping = True
        try:
            done = [q for q in sst.pending_sends if q.complete and not q.freed]
            if done:
                yield from th.waitall(done)
            sst.pending_sends = [q for q in sst.pending_sends if not q.freed]
        finally:
            sst.reaping = False


def _server_worker(sst: _ServerState, th: MpiThread, cfg: ServiceConfig):
    """recv -> dedup -> shed/serve -> reply, until stopped."""
    rt = th.runtime
    obs = sst.obs
    while True:
        msg = yield from th.recv(nbytes=cfg.req_bytes)
        now = th.sim.now
        if isinstance(msg, _SvcStop):
            client, k = msg.stop_id
            yield from _server_send(
                sst, th, client, _ACK_BYTES, _STOP_ACK_BASE + k, msg.stop_id,
            )
            if msg.stop_id in sst.stops_seen:
                # Duplicate of a stop another thread honored: re-ack
                # (above) and keep serving.
                continue
            sst.stops_seen.add(msg.stop_id)
            break
        # Backlog = undelivered packets still in the NIC queues plus
        # matched-but-unclaimed messages in the unexpected queues --
        # under overload the queue lives mostly in the NIC (server
        # threads only poll progress between serves).
        depth = 0
        for d in rt.domains:
            if d.recv_q is not None:
                depth += len(d.recv_q)
            depth += len(d.unexp_q)
        if depth > sst.peak_backlog:
            sst.peak_backlog = depth
        if obs is not None and obs.wants("service"):
            obs.counter("service", "backlog", depth, rank=sst.rank)
        cached = sst.replay.get(msg.req_id)
        if cached is not None:
            # Retry/hedge duplicate: replay the decision, skip compute.
            sst.dedup_hits += 1
            yield from _server_send(
                sst, th, msg.client, msg.reply_bytes, msg.req_id, cached,
            )
            continue
        shed = False
        if sst.degrade is not None and sst.degrade.should_shed():
            shed = True
            sst.degrade_shed += 1
            sst.trace.append(f"{msg.req_id}:d")
        elif not sst.admission.admit(
            now, deadline_s=msg.deadline_s, t_sent=msg.t_sent,
            depth=depth, service_s=msg.service_s,
        ):
            shed = True
            sst.trace.append(f"{msg.req_id}:s")
        else:
            sst.trace.append(f"{msg.req_id}:a")
        if shed:
            reply = _SvcReply(msg.req_id, False, now)
        else:
            if msg.service_s > 0.0:
                yield th.compute(msg.service_s)
            reply = _SvcReply(msg.req_id, True, th.sim.now)
        sst.replay[msg.req_id] = reply
        yield from _server_send(
            sst, th, msg.client, msg.reply_bytes, msg.req_id, reply,
        )
    # Exit drain: atomically take the shared pending list (waiting out
    # any in-flight batch reap first) and free what remains.
    while sst.reaping:
        yield th.sim.timeout(1e-6)
    sst.reaping = True
    try:
        mine = [q for q in sst.pending_sends if not q.freed]
        sst.pending_sends = []
        if mine:
            yield from th.waitall(mine)
    finally:
        sst.reaping = False


# ======================================================================
# Orchestration
# ======================================================================
def _reaper_ctx(cluster: Cluster, rank: int) -> ThreadCtx:
    """Bind the reaper past the app threads (and past the async
    progress thread when one exists), like ``_fork_progress_thread``."""
    cfg = cluster.config
    machine = cluster.machines[rank // cfg.ranks_per_node]
    slot = cfg.threads_per_rank + (1 if cfg.async_progress else 0)
    if cfg.ranks_per_node == 1:
        cores = BINDINGS[cfg.binding](machine, slot + 1)
        core = cores[slot]
    else:
        chunk = cluster._rank_cores(machine, rank)
        core = chunk[slot % len(chunk)]
    ctx = ThreadCtx(core, name=f"r{rank}svc", rank=rank)
    if cfg.obs is not None:
        cfg.obs.declare_thread(rank, ctx.tid, ctx.name)
    return ctx


def _chain_wake(rt, wake: Signal) -> None:
    """Fire the reaper's wake on every arriving packet, preserving any
    hook the runtime installed (continuation/event-driven modes)."""
    prev = rt.nic.on_packet
    if prev is None:
        rt.nic.on_packet = lambda pkt, _s=wake: _s.fire()
    else:
        def chained(pkt, _prev=prev, _s=wake):
            _prev(pkt)
            _s.fire()
        rt.nic.on_packet = chained


def _pct(sorted_vals: List[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    i = min(len(sorted_vals) - 1, max(0, math.ceil(q * len(sorted_vals)) - 1))
    return sorted_vals[i]


def run_service(
    cluster: Cluster,
    cfg: Optional[ServiceConfig] = None,
    robust: Optional[RobustConfig] = None,
) -> ServiceResult:
    """Run the open-loop service on ``cluster`` and aggregate results.

    Ranks ``[0, P)`` are clients, ``[P, 2P)`` servers, paired by index.
    ``robust=None`` and ``robust=RobustConfig.none()`` take the same
    code path (normalized at entry): no timers, no budget, no shedding
    -- the disabled-vs-absent bit-identity contract.
    """
    cfg = cfg or ServiceConfig()
    robust = RobustConfig.none() if robust is None else robust
    n = cluster.n_ranks
    if n < 2 or n % 2 != 0:
        raise ValueError(
            f"service needs an even rank count (clients | servers), got {n}"
        )
    pairs = n // 2
    sim = cluster.sim
    obs = cluster.config.obs
    n_threads = cluster.config.threads_per_rank
    t_start = sim.now
    procs = []

    sstates: List[_ServerState] = []
    for s in range(pairs, n):
        ctrl = DegradedModeController() if robust.degrade else None
        if ctrl is not None:
            cluster.runtimes[s].degrade_hooks.append(ctrl.note_signal)
            if cluster.watchdog is not None:
                cluster.watchdog.on_warning.append(ctrl.note_signal)
        sst = _ServerState(cfg, s, make_admission(robust.admission), ctrl, obs)
        sstates.append(sst)
        for k, th in enumerate(cluster.threads[s]):
            procs.append(cluster.spawn(
                _server_worker(sst, th, cfg), name=f"svc-server[{s}.{k}]",
            ))

    cstates: List[_ClientState] = []
    for c in range(pairs):
        rng = sim.rng.stream(f"service:{c}")
        arrivals = arrival_times(
            rng, cfg.shape, cfg.rate_hz, cfg.duration_s,
            burst_factor=cfg.burst_factor, burst_dwell_s=cfg.burst_dwell_s,
            diurnal_depth=cfg.diurnal_depth,
        )
        st = _ClientState(cfg, robust, sim, obs, c, pairs + c, n_threads)
        st.arrivals = arrivals
        rt = cluster.runtimes[c]
        _chain_wake(rt, st.wake)
        st.th_reaper = MpiThread(rt, _reaper_ctx(cluster, c))
        for i, th in enumerate(cluster.threads[c]):
            procs.append(cluster.spawn(
                _client_worker(st, th, i, arrivals[i::n_threads], cluster),
                name=f"svc-client[{c}.{i}]",
            ))
        procs.append(cluster.spawn(_reaper(st, cluster), name=f"svc-reaper[{c}]"))
        cstates.append(st)

    cluster.run(procs)
    elapsed = sim.now - t_start

    offered = sum(len(st.arrivals) for st in cstates)
    counts: Dict[str, int] = {}
    lat: List[float] = []
    for st in cstates:
        for k, v in st.counts.items():
            counts[k] = counts.get(k, 0) + v
        lat.extend(st.latencies)
    lat.sort()
    ok = counts.get("ok", 0)
    ok_slo = sum(st.ok_within_slo for st in cstates)

    h = hashlib.blake2b(digest_size=16)
    for st in cstates:
        h.update(f"client{st.rank}".encode())
        for t in st.arrivals:
            h.update(t.hex().encode())
        for line in st.trace:
            h.update(line.encode())
    for sst in sstates:
        h.update(f"server{sst.rank}".encode())
        for line in sst.trace:
            h.update(line.encode())

    result = ServiceResult(
        offered=offered,
        ok=ok,
        ok_within_slo=ok_slo,
        shed=counts.get("shed", 0),
        expired=counts.get("expired", 0),
        failed=counts.get("failed", 0),
        slo_violations=offered - ok_slo,
        retries=sum(st.retries for st in cstates),
        retries_denied=sum(st.retries_denied for st in cstates),
        hedges=sum(st.hedges for st in cstates),
        dedup_hits=sum(sst.dedup_hits for sst in sstates),
        degrade_signals=sum(
            sst.degrade.signals for sst in sstates if sst.degrade is not None
        ),
        degrade_shed=sum(sst.degrade_shed for sst in sstates),
        goodput_rps=ok_slo / cfg.duration_s,
        p50_us=_pct(lat, 0.50) * 1e6,
        p99_us=_pct(lat, 0.99) * 1e6,
        p999_us=_pct(lat, 0.999) * 1e6,
        peak_backlog=max((sst.peak_backlog for sst in sstates), default=0),
        elapsed_s=elapsed,
        fingerprint=h.hexdigest(),
    )
    if obs is not None and obs.wants("service"):
        obs.counter("service", "goodput_rps", result.goodput_rps)
        obs.counter("service", "p99_us", result.p99_us)
        obs.counter("service", "slo_violations", result.slo_violations)
    return result


def service_cluster(
    lock: str = "mutex",
    threads_per_rank: int = 2,
    pairs: int = 1,
    binding: str = "compact",
    seed: int = 0,
    **overrides,
) -> Cluster:
    """The standard service setup: clients on node 0, servers on node 1.

    Defaults to ``event_driven_wait=True`` -- idle server threads park
    on arrivals instead of spinning the CS_YIELD poll loop, the sane
    regime for a request/reply service (override to study the paper's
    pure polling under load)."""
    overrides.setdefault("event_driven_wait", True)
    return Cluster(
        ClusterConfig(
            n_nodes=2,
            ranks_per_node=pairs,
            threads_per_rank=threads_per_rank,
            lock=lock,
            binding=binding,
            seed=seed,
            **overrides,
        )
    )
