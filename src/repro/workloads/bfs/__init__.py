"""Graph500 BFS kernel: Kronecker generation + hybrid level-sync BFS."""

from .graph_gen import GraphCSR, generate_graph
from .runner import BfsConfig, BfsResult, run_bfs

__all__ = ["GraphCSR", "generate_graph", "BfsConfig", "BfsResult", "run_bfs"]
