"""Hybrid MPI+threads level-synchronized BFS (paper 6.2.1).

Mirrors the paper's Graph500 implementation: a 1-D vertex partition
across ranks; within a rank, threads cooperate on frontier expansion
(lock-free: per-thread buffers, DES-atomic state updates) and
*independently* communicate with remote ranks.  Each thread keeps an
outgoing buffer per remote process, flushed with ``MPI_Isend`` when full,
and polls its incoming receives with ``MPI_Test`` -- so every runtime
entry is a main-path (HIGH priority) call, which is why the paper finds
the priority lock indistinguishable from the ticket lock here.  Under
``completion="continuation"`` the receive loop parks on the runtime's
completion signal instead of the MPI_Test spin (see DESIGN.md §11).

Real graph, real traversal: the frontier expansion operates on numpy CSR
slices and the TEPS numbers come from the simulated clock through a
calibrated per-edge cost (with a NUMA factor for threads on the
non-home socket, reproducing Fig. 10a's 8-core efficiency dip).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ...mpi.collectives import allreduce, alltoall
from ...mpi.envelope import ANY_SOURCE
from ...mpi.world import Cluster
from ...sim.sync import SimBarrier
from .graph_gen import GraphCSR, generate_graph

__all__ = ["BfsConfig", "BfsResult", "run_bfs"]

#: Tag space for BFS level messages (below the collectives' reserved space).
BFS_TAG_BASE = 1 << 16


@dataclass(frozen=True)
class BfsConfig:
    scale: int = 14
    edgefactor: int = 16
    graph_seed: int = 1
    #: BFS root; None picks the first vertex with nonzero degree.
    root: int | None = None
    #: Cost per scanned edge (calibrated: ~20 MTEPS single-threaded).
    edge_ns: float = 25.0
    #: Cost per received remote vertex processed.
    vertex_ns: float = 30.0
    #: Compute slowdown for threads off the graph's home socket
    #: (the implementation "is not socket-aware", paper 6.2.1).
    numa_compute_factor: float = 1.25
    #: Remote vertices per message.
    flush_size: int = 512
    #: Gap between MPI_Test polls in the receive loop.
    test_gap_ns: float = 200.0


@dataclass
class BfsResult:
    scale: int
    n_ranks: int
    n_threads: int
    n_visited: int
    edges_scanned: int
    n_levels: int
    elapsed_s: float
    mteps: float


class _RankState:
    """Shared per-rank BFS state (threads interleave DES-atomically)."""

    def __init__(self, rank: int, base: int, n_local: int,
                 indptr: np.ndarray, indices: np.ndarray, n_threads: int):
        self.rank = rank
        self.base = base
        self.n_local = n_local
        self.indptr = indptr
        self.indices = indices
        self.visited = np.zeros(n_local, dtype=bool)
        self.frontier = np.empty(0, dtype=np.int64)
        self.chunks: List[np.ndarray] = []
        self.next_lists: List[List[np.ndarray]] = [[] for _ in range(n_threads)]
        self.sent_msgs: Dict[int, int] = {}
        self.to_post = 0
        self.done = False
        self.edges_scanned = 0
        self.levels = 0
        self.barrier: SimBarrier | None = None


def _balanced_chunks(st: _RankState, frontier: np.ndarray, n_threads: int):
    """Split the frontier into n_threads chunks with ~equal edge counts
    (static vertex splits straggle badly on skewed Kronecker degrees)."""
    if len(frontier) == 0:
        return [frontier] * n_threads
    deg = st.indptr[frontier + 1] - st.indptr[frontier]
    cum = np.cumsum(deg)
    total = cum[-1]
    bounds = np.searchsorted(cum, total * (np.arange(1, n_threads) / n_threads))
    return np.split(frontier, bounds + 1)


def _expand(st: _RankState, chunk: np.ndarray, vpr: int, n_ranks: int):
    """Scan the adjacency of ``chunk`` (local ids).  Returns
    (edges_scanned, new_local_vertices, {owner: remote_global_ids})."""
    starts = st.indptr[chunk]
    counts = st.indptr[chunk + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return 0, np.empty(0, dtype=np.int64), {}
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    idx = np.arange(total) - offsets + np.repeat(starts, counts)
    nbrs = st.indices[idx]

    owners = nbrs // vpr
    local_mask = owners == st.rank
    loc = np.unique(nbrs[local_mask] - st.base)
    new = loc[~st.visited[loc]]
    remote: Dict[int, np.ndarray] = {}
    if not local_mask.all():
        rem = nbrs[~local_mask]
        rem_owner = owners[~local_mask]
        for owner in np.unique(rem_owner):
            remote[int(owner)] = np.unique(rem[rem_owner == owner])
    return total, new, remote


def _bfs_thread(cluster: Cluster, cfg: BfsConfig, st: _RankState,
                th, tid: int, vpr: int, home_socket: int):
    P = cluster.n_ranks
    T = cluster.config.threads_per_rank
    use_cont = cluster.config.completion == "continuation"
    numa = cfg.numa_compute_factor if th.ctx.socket != home_socket else 1.0
    edge_s = cfg.edge_ns * 1e-9 * numa
    vert_s = cfg.vertex_ns * 1e-9 * numa

    level = 0
    while True:
        ltag = BFS_TAG_BASE + level
        chunk = st.chunks[tid] if tid < len(st.chunks) else np.empty(0, dtype=np.int64)
        send_reqs = []
        bufs: Dict[int, List[np.ndarray]] = {}
        buf_fill: Dict[int, int] = {}
        sent: Dict[int, int] = {}

        # ---- expansion over this thread's share of the frontier -------
        n_sub = max(1, len(chunk) // 2048)
        for sub in np.array_split(chunk, n_sub):
            if len(sub) == 0:
                continue
            scanned, new, remote = _expand(st, sub, vpr, P)
            st.edges_scanned += scanned
            # Mark before yielding so concurrent threads never duplicate
            # frontier work (the real code uses atomic-free bitmaps with
            # the same effect at chunk granularity).
            if len(new):
                st.visited[new] = True
                st.next_lists[tid].append(new)
            if scanned:
                yield th.compute(scanned * edge_s)
            for owner, verts in remote.items():
                bufs.setdefault(owner, []).append(verts)
                buf_fill[owner] = buf_fill.get(owner, 0) + len(verts)
                while buf_fill[owner] >= cfg.flush_size:
                    pending = np.concatenate(bufs[owner])
                    payload = pending[:cfg.flush_size]
                    rest = pending[cfg.flush_size:]
                    r = yield from th.isend(
                        owner, 4 * len(payload), tag=ltag, data=payload
                    )
                    send_reqs.append(r)
                    sent[owner] = sent.get(owner, 0) + 1
                    bufs[owner] = [rest]
                    buf_fill[owner] = len(rest)
        for owner, parts in bufs.items():
            if parts:
                payload = np.concatenate(parts)
                r = yield from th.isend(owner, 4 * len(payload), tag=ltag, data=payload)
                send_reqs.append(r)
                sent[owner] = sent.get(owner, 0) + 1
        for owner, k in sent.items():
            st.sent_msgs[owner] = st.sent_msgs.get(owner, 0) + k

        yield st.barrier.arrive()

        # ---- exchange per-destination message counts -------------------
        if P > 1:
            if tid == 0:
                counts = [st.sent_msgs.get(p, 0) for p in range(P)]
                incoming = yield from alltoall(th, cluster.world, counts, nbytes_each=8)
                st.to_post = sum(incoming[p] for p in range(P) if p != st.rank)
                st.sent_msgs = {}
            yield st.barrier.arrive()

            # ---- receive remote frontier vertices ----------------------
            while True:
                if st.to_post <= 0:
                    break
                st.to_post -= 1
                req = yield from th.irecv(source=ANY_SOURCE, tag=ltag)
                if use_cont:
                    # Continuation form: park until the runtime's
                    # completion path fires instead of spinning
                    # MPI_Test with compute gaps between polls.
                    yield from th.wait(req)
                else:
                    while True:
                        done = yield from th.test(req)
                        if done:
                            break
                        yield th.compute(cfg.test_gap_ns * 1e-9)
                verts = req.data - st.base
                new = np.unique(verts[~st.visited[verts]])
                if len(new):
                    st.visited[new] = True
                    st.next_lists[tid].append(new)
                yield th.compute(len(verts) * vert_s)
            if send_reqs:
                yield from th.waitall(send_reqs)
            yield st.barrier.arrive()

        # ---- build next frontier, check global termination -------------
        if tid == 0:
            parts = [a for lst in st.next_lists for a in lst]
            nxt = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            st.next_lists = [[] for _ in range(T)]
            st.frontier = nxt
            st.chunks = _balanced_chunks(st, nxt, T)
            if P > 1:
                total = yield from allreduce(
                    th, cluster.world, int(len(nxt)), lambda a, b: a + b
                )
            else:
                total = len(nxt)
            st.levels = level + 1
            st.done = total == 0
        yield st.barrier.arrive()
        if st.done:
            return
        level += 1


def run_bfs(cluster: Cluster, cfg: BfsConfig | None = None) -> BfsResult:
    """Run one BFS from ``cfg.root`` over a Kronecker graph partitioned
    across the cluster's ranks."""
    cfg = cfg or BfsConfig()
    P = cluster.n_ranks
    T = cluster.config.threads_per_rank
    n = 1 << cfg.scale
    if n % P != 0:
        raise ValueError(f"2^scale ({n}) must be divisible by n_ranks ({P})")
    vpr = n // P

    graph: GraphCSR = generate_graph(cfg.scale, cfg.edgefactor, seed=cfg.graph_seed)
    root = cfg.root
    if root is None:
        degrees = graph.indptr[1:] - graph.indptr[:-1]
        nz = np.flatnonzero(degrees)
        if len(nz) == 0:
            raise ValueError("graph has no edges")
        root = int(nz[0])
    states: List[_RankState] = []
    for rank in range(P):
        base = rank * vpr
        indptr = (graph.indptr[base:base + vpr + 1] - graph.indptr[base]).copy()
        lo, hi = graph.indptr[base], graph.indptr[base + vpr]
        st = _RankState(rank, base, vpr, indptr, graph.indices[lo:hi], T)
        st.barrier = SimBarrier(cluster.sim, T, name=f"bfs-bar-{rank}")
        states.append(st)

    # Seed the root.
    root_rank = root // vpr
    states[root_rank].visited[root - root_rank * vpr] = True
    states[root_rank].frontier = np.array([root - root_rank * vpr], dtype=np.int64)
    for st in states:
        st.chunks = _balanced_chunks(st, st.frontier, T)

    gens = []
    for rank in range(P):
        home_socket = cluster.threads[rank][0].ctx.socket
        for tid in range(T):
            gens.append(
                _bfs_thread(cluster, cfg, states[rank],
                            cluster.thread(rank, tid), tid, vpr, home_socket)
            )
    t0 = cluster.sim.now
    cluster.run_workload(gens, name="bfs")
    elapsed = cluster.sim.now - t0

    visited = sum(int(st.visited.sum()) for st in states)
    scanned = sum(st.edges_scanned for st in states)
    levels = max(st.levels for st in states)
    return BfsResult(
        scale=cfg.scale,
        n_ranks=P,
        n_threads=T,
        n_visited=visited,
        edges_scanned=scanned,
        n_levels=levels,
        elapsed_s=elapsed,
        mteps=scanned / 2.0 / elapsed / 1e6,
    )
