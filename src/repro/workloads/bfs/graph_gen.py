"""Kronecker (R-MAT) graph generation per the Graph500 specification.

``scale`` is log2 of the vertex count; ``edgefactor`` edges are generated
per vertex with the standard (A, B, C) = (0.57, 0.19, 0.19) initiator.
Generation is fully vectorized and seedable; the edge list is symmetrized
(undirected) and self-loops are removed, then converted to CSR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GraphCSR", "kronecker_edges", "build_csr", "generate_graph"]

A, B, C = 0.57, 0.19, 0.19


@dataclass(frozen=True)
class GraphCSR:
    """Undirected graph in CSR form."""

    scale: int
    n_vertices: int
    indptr: np.ndarray    # int64, len n_vertices + 1
    indices: np.ndarray   # int32/int64 neighbor ids

    @property
    def n_edges_directed(self) -> int:
        return int(self.indices.size)

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v]:self.indptr[v + 1]]


def kronecker_edges(scale: int, edgefactor: int, rng: np.random.Generator) -> np.ndarray:
    """Generate an R-MAT edge list of shape (2, n_edges)."""
    n_edges = edgefactor << scale
    ij = np.zeros((2, n_edges), dtype=np.int64)
    ab = A + B
    c_norm = C / (1.0 - ab)
    a_norm = A / ab
    for bit in range(scale):
        ii_bit = rng.random(n_edges) > ab
        jj_bit = rng.random(n_edges) > np.where(ii_bit, c_norm, a_norm)
        ij[0] += (ii_bit << bit)
        ij[1] += (jj_bit << bit)
    # Permute vertex labels so high-degree vertices are scattered.
    perm = rng.permutation(1 << scale)
    return perm[ij]


def build_csr(scale: int, edges: np.ndarray) -> GraphCSR:
    """Symmetrize, drop self-loops, and build CSR."""
    n = 1 << scale
    src = np.concatenate([edges[0], edges[1]])
    dst = np.concatenate([edges[1], edges[0]])
    keep = src != dst
    src, dst = src[keep], dst[keep]
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return GraphCSR(scale=scale, n_vertices=n, indptr=indptr, indices=dst)


def generate_graph(scale: int, edgefactor: int = 16, seed: int = 1) -> GraphCSR:
    """Graph500-style Kronecker graph as CSR."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    rng = np.random.default_rng(seed)
    return build_csr(scale, kronecker_edges(scale, edgefactor, rng))
