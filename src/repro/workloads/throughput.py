"""Multithreaded point-to-point throughput benchmark (paper 4.1).

Derived from ``osu_bw``, modified exactly as the paper describes: a team
of threads on the sender rank and on the receiver rank; each thread works
a private **window of 64 requests** and calls ``MPI_Waitall`` per window
(Fig. 3b bottom).  Messages are *not* tagged apart, so any receiver
thread's posted receive matches any incoming message from the sender --
the wildcard-equivalent matching of 4.4.

The reported metric is the aggregate message rate in 10^3 msgs/s.

The per-window ``waitall`` dispatches on the cluster's completion mode
(``ClusterConfig(completion=...)``): ``"poll"`` spins the paper's
CS_YIELD loop, ``"continuation"`` parks each thread on the completion
signal and skips the empty critical-section round-trips --
``fig_continuations`` runs this benchmark under both to measure the
difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.dangling import DanglingProfiler, DanglingStats
from ..analysis.metrics import message_rate_k
from ..mpi.world import Cluster, ClusterConfig

__all__ = ["ThroughputConfig", "ThroughputResult", "run_throughput"]


@dataclass(frozen=True)
class ThroughputConfig:
    msg_size: int = 1
    window: int = 64
    n_windows: int = 8
    tag: int = 0


@dataclass(frozen=True)
class ThroughputResult:
    msg_size: int
    n_threads: int
    total_messages: int
    elapsed_s: float
    msg_rate_k: float
    #: Dangling-request stats on the receiver rank (paper Fig. 3c/5a).
    dangling: DanglingStats
    sender_stats: dict
    receiver_stats: dict


def _sender_thread(th, cfg: ThroughputConfig, dest: int):
    for _ in range(cfg.n_windows):
        reqs = []
        for _ in range(cfg.window):
            r = yield from th.isend(dest, cfg.msg_size, tag=cfg.tag)
            reqs.append(r)
        yield from th.waitall(reqs)


def _receiver_thread(th, cfg: ThroughputConfig, source: int):
    for _ in range(cfg.n_windows):
        reqs = []
        for _ in range(cfg.window):
            r = yield from th.irecv(source=source, nbytes=cfg.msg_size, tag=cfg.tag)
            reqs.append(r)
        yield from th.waitall(reqs)


def run_throughput(
    cluster: Cluster,
    cfg: Optional[ThroughputConfig] = None,
    sender_rank: int = 0,
    receiver_rank: int = 1,
) -> ThroughputResult:
    """Run the benchmark on a 2-rank (or larger) cluster and report the
    aggregate message rate."""
    cfg = cfg or ThroughputConfig()
    n_threads = cluster.config.threads_per_rank
    profiler = DanglingProfiler(cluster.runtimes[receiver_rank])

    gens = []
    for i in range(n_threads):
        gens.append(_sender_thread(cluster.thread(sender_rank, i), cfg, receiver_rank))
    for i in range(n_threads):
        gens.append(
            _receiver_thread(cluster.thread(receiver_rank, i), cfg, sender_rank)
        )
    t0 = cluster.sim.now
    cluster.run_workload(gens, name="throughput")
    elapsed = cluster.sim.now - t0
    total = n_threads * cfg.window * cfg.n_windows
    return ThroughputResult(
        msg_size=cfg.msg_size,
        n_threads=n_threads,
        total_messages=total,
        elapsed_s=elapsed,
        msg_rate_k=message_rate_k(total, elapsed),
        dangling=profiler.stats,
        sender_stats=cluster.runtimes[sender_rank].stats.as_dict(),
        receiver_stats=cluster.runtimes[receiver_rank].stats.as_dict(),
    )


def throughput_cluster(
    lock: str = "mutex",
    threads_per_rank: int = 1,
    binding: str = "compact",
    seed: int = 0,
    **overrides,
) -> Cluster:
    """The standard 2-node setup used by the pt2pt experiments."""
    return Cluster(
        ClusterConfig(
            n_nodes=2,
            ranks_per_node=1,
            threads_per_rank=threads_per_rank,
            lock=lock,
            binding=binding,
            seed=seed,
            **overrides,
        )
    )
