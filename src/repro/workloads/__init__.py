"""Benchmarks and application kernels (the paper's evaluation subjects).

* :mod:`throughput` -- multithreaded osu_bw derivative (paper 4.1)
* :mod:`latency`    -- multithreaded osu_latency derivative (paper 6.1.1)
* :mod:`n2n`        -- all-to-all streaming benchmark (paper 5.2)
* :mod:`rma_bench`  -- ARMCI-style RMA with async progress (paper 6.1.2)
* :mod:`bfs`        -- Graph500 BFS kernel (paper 6.2.1)
* :mod:`stencil`    -- 3D 7-point heat stencil (paper 6.2.2)
* :mod:`assembly`   -- mini SWAP genome assembler (paper 6.3)
* :mod:`service`    -- open-loop RPC service with overload protection
  (:mod:`repro.robust`; DESIGN.md section 12)
"""

from .latency import LatencyConfig, LatencyResult, run_latency
from .service import (
    ServiceConfig,
    ServiceResult,
    arrival_times,
    run_service,
    service_cluster,
)
from .n2n import N2NConfig, N2NResult, run_n2n
from .rma_bench import RmaConfig, RmaResult, run_rma
from .throughput import (
    ThroughputConfig,
    ThroughputResult,
    run_throughput,
    throughput_cluster,
)

__all__ = [
    "ThroughputConfig",
    "ThroughputResult",
    "run_throughput",
    "throughput_cluster",
    "LatencyConfig",
    "LatencyResult",
    "run_latency",
    "N2NConfig",
    "N2NResult",
    "run_n2n",
    "RmaConfig",
    "RmaResult",
    "run_rma",
    "ServiceConfig",
    "ServiceResult",
    "arrival_times",
    "run_service",
    "service_cluster",
]
