"""The 7-point heat-equation stencil update (real numpy computation)."""

from __future__ import annotations

import numpy as np

__all__ = ["step_interior", "FLOPS_PER_CELL"]

#: 6 neighbor adds + 1 center multiply-add per cell.
FLOPS_PER_CELL = 8


def step_interior(u: np.ndarray, out: np.ndarray, alpha: float = 0.1) -> int:
    """One Jacobi step of the 3D 7-point heat stencil.

    ``u`` and ``out`` include one ghost cell on every face; only the
    interior of ``out`` is written.  Returns the number of updated cells.
    """
    if u.shape != out.shape:
        raise ValueError(f"shape mismatch {u.shape} vs {out.shape}")
    if any(s < 3 for s in u.shape):
        raise ValueError(f"domain too small for ghost exchange: {u.shape}")
    c = u[1:-1, 1:-1, 1:-1]
    lap = (
        u[:-2, 1:-1, 1:-1] + u[2:, 1:-1, 1:-1]
        + u[1:-1, :-2, 1:-1] + u[1:-1, 2:, 1:-1]
        + u[1:-1, 1:-1, :-2] + u[1:-1, 1:-1, 2:]
        - 6.0 * c
    )
    out[1:-1, 1:-1, 1:-1] = c + alpha * lap
    return int(c.size)
