"""Hybrid MPI+threads 3D 7-point stencil (paper 6.2.2, Fig. 11).

Unlike the common ``MPI_THREAD_FUNNELED`` stencil, *every* thread
independently exchanges the halos of its own z-slab (nonblocking
send/recv + ``MPI_Waitall`` each iteration) and threads synchronize only
at the end of an iteration -- exactly the paper's design, which is what
exposes the runtime's critical-section arbitration.

The computation is a real numpy Jacobi update on the rank's (ghosted)
array; compute time is charged per cell through a calibrated cost with a
NUMA factor for off-home-socket threads.  Per-thread time is attributed
to MPI / computation / OMP_Sync segments for the Fig. 11b breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ...analysis.metrics import TimeBreakdown
from ...mpi.world import Cluster
from ...sim.sync import SimBarrier
from .decomposition import RankBox, decompose
from .kernel import FLOPS_PER_CELL, step_interior

__all__ = ["StencilConfig", "StencilResult", "run_stencil"]

STENCIL_TAG_BASE = 1 << 14


@dataclass(frozen=True)
class StencilConfig:
    #: Global domain (nz, ny, nx).
    n: Tuple[int, int, int] = (32, 32, 32)
    iterations: int = 8
    alpha: float = 0.1
    #: Compute cost per cell update (~0.5 GFLOP/s/core at 16 ns).
    cell_ns: float = 16.0
    numa_compute_factor: float = 1.2
    seed: int = 0


@dataclass
class StencilResult:
    n: Tuple[int, int, int]
    n_ranks: int
    n_threads: int
    iterations: int
    elapsed_s: float
    gflops: float
    #: Aggregate across all threads: "mpi", "compute", "sync" seconds.
    breakdown: TimeBreakdown
    #: Final fields per rank (interior only), for validation.
    fields: List[np.ndarray]


class _RankDomain:
    def __init__(self, box: RankBox, rng: np.random.Generator, n_threads: int, sim):
        self.box = box
        nz, ny, nx = box.shape
        self.u = np.zeros((nz + 2, ny + 2, nx + 2))
        self.v = np.zeros_like(self.u)
        self.u[1:-1, 1:-1, 1:-1] = rng.random((nz, ny, nx))
        self.barrier = SimBarrier(sim, n_threads, name=f"st-bar-{box.rank}")


def _slab_bounds(nz: int, n_threads: int, tid: int) -> Tuple[int, int]:
    if nz % n_threads != 0:
        raise ValueError(
            f"local z extent {nz} must be divisible by {n_threads} threads"
        )
    size = nz // n_threads
    return tid * size, (tid + 1) * size


def _face_tag(axis: int, direction: int, slab: int) -> int:
    return STENCIL_TAG_BASE + ((axis * 2 + (1 if direction > 0 else 0)) * 64) + slab


def _stencil_thread(cluster, cfg, dom: _RankDomain, th, tid: int,
                    home_socket: int, breakdown: TimeBreakdown):
    sim = cluster.sim
    T = cluster.config.threads_per_rank
    box = dom.box
    nz, ny, nx = box.shape
    z0, z1 = _slab_bounds(nz, T, tid)
    numa = cfg.numa_compute_factor if th.ctx.socket != home_socket else 1.0
    cell_s = cfg.cell_ns * 1e-9 * numa

    # (axis, direction, send-slice fn, ghost-slice fn) for this thread.
    def exchanges(u: np.ndarray):
        jobs = []
        # z faces: owned by the edge slabs only.
        if tid == 0 and (nb := box.neighbor_rank(0, -1)) is not None:
            jobs.append((0, -1, nb, u[1, 1:-1, 1:-1], (0,)))
        if tid == T - 1 and (nb := box.neighbor_rank(0, +1)) is not None:
            jobs.append((0, +1, nb, u[nz, 1:-1, 1:-1], (nz + 1,)))
        # y/x faces: each thread exchanges its slab's strip.
        if (nb := box.neighbor_rank(1, -1)) is not None:
            jobs.append((1, -1, nb, u[z0 + 1:z1 + 1, 1, 1:-1], None))
        if (nb := box.neighbor_rank(1, +1)) is not None:
            jobs.append((1, +1, nb, u[z0 + 1:z1 + 1, ny, 1:-1], None))
        if (nb := box.neighbor_rank(2, -1)) is not None:
            jobs.append((2, -1, nb, u[z0 + 1:z1 + 1, 1:-1, 1], None))
        if (nb := box.neighbor_rank(2, +1)) is not None:
            jobs.append((2, +1, nb, u[z0 + 1:z1 + 1, 1:-1, nx], None))
        return jobs

    def apply_ghost(u, axis, direction, data):
        if axis == 0:
            zg = 0 if direction < 0 else nz + 1
            u[zg, 1:-1, 1:-1] = data
        elif axis == 1:
            yg = 0 if direction < 0 else ny + 1
            u[z0 + 1:z1 + 1, yg, 1:-1] = data
        else:
            xg = 0 if direction < 0 else nx + 1
            u[z0 + 1:z1 + 1, 1:-1, xg] = data

    for _ in range(cfg.iterations):
        u, v = dom.u, dom.v
        # ---- halo exchange (MPI) -----------------------------------
        t_mpi0 = sim.now
        reqs = []
        meta = []
        for axis, direction, nb, strip, _ in exchanges(u):
            nbytes = strip.size * 8
            tag = _face_tag(axis, direction, tid if axis != 0 else 0)
            r = yield from th.isend(nb, nbytes, tag=tag, data=strip.copy())
            reqs.append(r)
            # Matching receive: the neighbor sends its opposite face
            # with the tag of *its* direction (towards us).
            rtag = _face_tag(axis, -direction, tid if axis != 0 else 0)
            rr = yield from th.irecv(source=nb, nbytes=nbytes, tag=rtag)
            reqs.append(rr)
            meta.append((axis, direction, rr))
        if reqs:
            yield from th.waitall(reqs)
        for axis, direction, rr in meta:
            apply_ghost(u, axis, direction, rr.data)
        breakdown.add("mpi", sim.now - t_mpi0)

        # ---- compute this slab's interior update (real numpy) -------
        t_c0 = sim.now
        cells = step_interior(
            u[z0:z1 + 2], v[z0:z1 + 2], alpha=cfg.alpha
        )
        yield th.compute(cells * cell_s)
        breakdown.add("compute", sim.now - t_c0)

        # ---- iteration barrier (OMP_Sync) ----------------------------
        t_s0 = sim.now
        yield dom.barrier.arrive()
        if tid == 0:
            dom.u, dom.v = dom.v, dom.u
        yield dom.barrier.arrive()
        breakdown.add("sync", sim.now - t_s0)


def run_stencil(cluster: Cluster, cfg: Optional[StencilConfig] = None) -> StencilResult:
    cfg = cfg or StencilConfig()
    P = cluster.n_ranks
    T = cluster.config.threads_per_rank
    boxes = decompose(cfg.n, P)
    rng = np.random.default_rng(cfg.seed)
    domains = [_RankDomain(box, rng, T, cluster.sim) for box in boxes]
    breakdown = TimeBreakdown()

    gens = []
    for rank in range(P):
        home = cluster.threads[rank][0].ctx.socket
        for tid in range(T):
            gens.append(
                _stencil_thread(
                    cluster, cfg, domains[rank],
                    cluster.thread(rank, tid), tid, home, breakdown,
                )
            )
    t0 = cluster.sim.now
    cluster.run_workload(gens, name="stencil")
    elapsed = cluster.sim.now - t0
    total_cells = np.prod([n - 2 for n in cfg.n]) if P == 0 else sum(
        d.box.n_cells for d in domains
    )
    flops = total_cells * FLOPS_PER_CELL * cfg.iterations
    return StencilResult(
        n=cfg.n,
        n_ranks=P,
        n_threads=T,
        iterations=cfg.iterations,
        elapsed_s=elapsed,
        gflops=flops / elapsed / 1e9,
        breakdown=breakdown,
        fields=[d.u[1:-1, 1:-1, 1:-1].copy() for d in domains],
    )
