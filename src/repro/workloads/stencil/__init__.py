"""3D 7-point heat stencil: decomposition, kernel, hybrid runner."""

from .decomposition import RankBox, decompose, factor_ranks
from .kernel import FLOPS_PER_CELL, step_interior
from .runner import StencilConfig, StencilResult, run_stencil

__all__ = [
    "RankBox", "decompose", "factor_ranks",
    "FLOPS_PER_CELL", "step_interior",
    "StencilConfig", "StencilResult", "run_stencil",
]
