"""3D domain decomposition for the stencil kernel (paper 6.2.2).

The paper divides the global domain along all dimensions to cut internode
communication, while avoiding splits along the most strided dimension for
cache friendliness.  We factor the rank count into a (pz, py, px) grid
preferring to split the slowest-varying axes first (z, then y, then x),
so the unit-stride x axis is split last.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["RankBox", "factor_ranks", "decompose"]


@dataclass(frozen=True)
class RankBox:
    """One rank's subdomain: half-open index ranges per axis (z, y, x)."""

    rank: int
    coords: Tuple[int, int, int]
    grid: Tuple[int, int, int]
    lo: Tuple[int, int, int]
    hi: Tuple[int, int, int]

    @property
    def shape(self) -> Tuple[int, int, int]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def n_cells(self) -> int:
        s = self.shape
        return s[0] * s[1] * s[2]

    def neighbor_rank(self, axis: int, direction: int) -> "int | None":
        """Rank of the face neighbor along ``axis`` (+1/-1), or None at
        the domain boundary (non-periodic)."""
        c = list(self.coords)
        c[axis] += direction
        if not (0 <= c[axis] < self.grid[axis]):
            return None
        pz, py, px = self.grid
        return (c[0] * py + c[1]) * px + c[2]


def factor_ranks(p: int) -> Tuple[int, int, int]:
    """Factor ``p`` into (pz, py, px), splitting z first, x last."""
    if p < 1:
        raise ValueError("need at least one rank")
    dims = [1, 1, 1]
    remaining = p
    # Greedy: repeatedly give the smallest prime factor to the axis with
    # the fewest cuts, preferring z > y > x on ties.
    factors: List[int] = []
    n = remaining
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    for f in sorted(factors, reverse=True):
        axis = min(range(3), key=lambda a: (dims[a], a))
        dims[axis] *= f
    return tuple(dims)


def _split(extent: int, parts: int, idx: int) -> Tuple[int, int]:
    base = extent // parts
    extra = extent % parts
    lo = idx * base + min(idx, extra)
    hi = lo + base + (1 if idx < extra else 0)
    return lo, hi


def decompose(n: Tuple[int, int, int], p: int) -> List[RankBox]:
    """Decompose an (nz, ny, nx) domain over ``p`` ranks."""
    grid = factor_ranks(p)
    for axis in range(3):
        if grid[axis] > n[axis]:
            raise ValueError(
                f"cannot split axis {axis} of extent {n[axis]} into {grid[axis]}"
            )
    boxes = []
    pz, py, px = grid
    for rank in range(p):
        cz = rank // (py * px)
        cy = (rank // px) % py
        cx = rank % px
        lo_hi = [_split(n[a], grid[a], c) for a, c in zip(range(3), (cz, cy, cx))]
        boxes.append(
            RankBox(
                rank=rank,
                coords=(cz, cy, cx),
                grid=grid,
                lo=tuple(lh[0] for lh in lo_hi),
                hi=tuple(lh[1] for lh in lo_hi),
            )
        )
    return boxes
