"""Distributed de Bruijn graph pieces for the mini-SWAP assembler.

Each (k)-mer is owned by ``hash(kmer) % n_ranks``; a rank accumulates its
k-mers' multiplicities and successor/predecessor base sets, from which
unambiguous unitigs (linear chains) can be counted -- the core data
structure of de Bruijn assemblers like SWAP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from ...sim.rng import stable_hash

__all__ = ["kmerize", "kmer_owner", "KmerTable"]


def kmerize(read: str, k: int) -> List[Tuple[str, str, str]]:
    """(kmer, predecessor base or '', successor base or '') per position."""
    if k < 2 or k > len(read):
        raise ValueError(f"bad k={k} for read of length {len(read)}")
    out = []
    for i in range(len(read) - k + 1):
        kmer = read[i:i + k]
        pred = read[i - 1] if i > 0 else ""
        succ = read[i + k] if i + k < len(read) else ""
        out.append((kmer, pred, succ))
    return out


def kmer_owner(kmer: str, n_ranks: int) -> int:
    return stable_hash(kmer) % n_ranks


@dataclass
class KmerNode:
    count: int = 0
    preds: Set[str] = field(default_factory=set)
    succs: Set[str] = field(default_factory=set)


class KmerTable:
    """One rank's shard of the distributed k-mer graph."""

    def __init__(self, rank: int, n_ranks: int, k: int):
        self.rank = rank
        self.n_ranks = n_ranks
        self.k = k
        self.nodes: Dict[str, KmerNode] = {}

    def insert(self, kmer: str, pred: str, succ: str) -> None:
        node = self.nodes.get(kmer)
        if node is None:
            node = self.nodes[kmer] = KmerNode()
        node.count += 1
        if pred:
            node.preds.add(pred)
        if succ:
            node.succs.add(succ)

    def insert_batch(self, items: Iterable[Tuple[str, str, str]]) -> int:
        n = 0
        for kmer, pred, succ in items:
            self.insert(kmer, pred, succ)
            n += 1
        return n

    @property
    def n_kmers(self) -> int:
        return len(self.nodes)

    def n_branching(self) -> int:
        """K-mers with more than one predecessor or successor base."""
        return sum(
            1 for nd in self.nodes.values()
            if len(nd.preds) > 1 or len(nd.succs) > 1
        )

    def count_chain_ends(self) -> int:
        """Local count of unitig endpoints: nodes that terminate or branch.

        Every unitig has two endpoints, so (global sum + 1) // 2 bounds
        the number of unitigs; exact assembly would walk the chains.
        """
        ends = 0
        for nd in self.nodes.values():
            if len(nd.succs) != 1:
                ends += 1
            if len(nd.preds) != 1:
                ends += 1
        return ends
