"""Mini SWAP genome assembler: reads, k-mer graph, 2-thread ranks."""

from .assembler import AssemblyConfig, AssemblyResult, run_assembly
from .kmer_graph import KmerTable, kmer_owner, kmerize
from .reads import ReadSet, generate_reads

__all__ = [
    "AssemblyConfig", "AssemblyResult", "run_assembly",
    "KmerTable", "kmer_owner", "kmerize",
    "ReadSet", "generate_reads",
]
