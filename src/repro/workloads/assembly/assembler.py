"""Mini-SWAP distributed genome assembler (paper 6.3, Fig. 12).

Reproduces the SWAP-Assembler's communication structure: each rank runs
**two threads** -- one sending and one receiving -- using *blocking*
``MPI_Send``/``MPI_Recv``.  The sender k-merizes its share of the reads
and ships each k-mer (with its predecessor/successor bases) to the
owning rank; the receiver inserts incoming batches into the local shard
of the distributed de Bruijn graph.  The receiver lives in the progress
loop and the sender keeps entering the main path: exactly the two-thread
contention whose arbitration the paper shows is worth ~2x end-to-end --
"without any modification in the application or the underlying
hardware".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ...mpi.collectives import allreduce, barrier
from ...mpi.envelope import ANY_SOURCE
from ...mpi.world import Cluster
from .kmer_graph import KmerTable, kmer_owner, kmerize
from .reads import ReadSet, generate_reads

__all__ = ["AssemblyConfig", "AssemblyResult", "run_assembly"]

KMER_TAG = 1 << 12
_END = "__END__"


@dataclass(frozen=True)
class AssemblyConfig:
    genome_length: int = 20_000
    n_reads: int = 4_000
    read_length: int = 36
    k: int = 21
    error_rate: float = 0.0
    seed: int = 7
    #: K-mers per message.
    batch_size: int = 256
    #: Parse cost per k-mer extracted (sender side).
    parse_ns: float = 60.0
    #: Hash-table insert cost per k-mer.
    insert_ns: float = 120.0


@dataclass
class AssemblyResult:
    n_ranks: int
    n_reads: int
    k: int
    total_kmers_inserted: int
    distinct_kmers: int
    branching_kmers: int
    unitig_upper_bound: int
    elapsed_s: float


def _sender(cluster: Cluster, cfg: AssemblyConfig, table: KmerTable,
            th, reads: List[str], out: dict, recv_done):
    P = cluster.n_ranks
    rank = th.rank
    bufs = {p: [] for p in range(P) if p != rank}

    def batch_bytes(batch):
        return len(batch) * (cfg.k + 2)

    for read in reads:
        items = kmerize(read, cfg.k)
        yield th.compute(len(items) * cfg.parse_ns * 1e-9)
        for item in items:
            owner = kmer_owner(item[0], P)
            if owner == rank:
                table.insert(*item)
                yield th.compute(cfg.insert_ns * 1e-9)
            else:
                buf = bufs[owner]
                buf.append(item)
                if len(buf) >= cfg.batch_size:
                    yield from th.send(
                        owner, batch_bytes(buf), tag=KMER_TAG, data=buf
                    )
                    bufs[owner] = []
    for owner, buf in bufs.items():
        if buf:
            yield from th.send(owner, batch_bytes(buf), tag=KMER_TAG, data=buf)
        yield from th.send(owner, 8, tag=KMER_TAG, data=_END)

    # Distribution done: global stats over the shards (collectives run on
    # the sender thread once every receiver has drained).
    yield recv_done  # our own receiver has seen every END marker
    yield from barrier(th, cluster.world)  # ... and so has everyone else's
    def add(a, b):
        return a + b

    out["distinct"] = yield from allreduce(th, cluster.world, table.n_kmers, add)
    out["branching"] = yield from allreduce(th, cluster.world, table.n_branching(), add)
    ends = yield from allreduce(th, cluster.world, table.count_chain_ends(), add)
    out["unitig_bound"] = (ends + 1) // 2
    out["inserted"] = yield from allreduce(
        th, cluster.world, sum(nd.count for nd in table.nodes.values()), add
    )


def _receiver(cluster: Cluster, cfg: AssemblyConfig, table: KmerTable, th,
              recv_done):
    P = cluster.n_ranks
    ends = 0
    while ends < P - 1:
        data = yield from th.recv(source=ANY_SOURCE, tag=KMER_TAG)
        if isinstance(data, str) and data == _END:
            ends += 1
            continue
        table.insert_batch(data)
        yield th.compute(len(data) * cfg.insert_ns * 1e-9)
    recv_done.succeed()


def run_assembly(cluster: Cluster, cfg: Optional[AssemblyConfig] = None,
                 readset: Optional[ReadSet] = None) -> AssemblyResult:
    """Distribute k-mers and build the de Bruijn shards on ``cluster``.

    The cluster should follow the paper's layout: several ranks per node
    with ``threads_per_rank == 2`` (sender + receiver).
    """
    cfg = cfg or AssemblyConfig()
    P = cluster.n_ranks
    if cluster.config.threads_per_rank < 2:
        raise ValueError("mini-SWAP needs 2 threads per rank (sender+receiver)")
    rs = readset or generate_reads(
        cfg.genome_length, cfg.n_reads, cfg.read_length,
        error_rate=cfg.error_rate, seed=cfg.seed,
    )
    tables = [KmerTable(r, P, cfg.k) for r in range(P)]
    shares = [rs.reads[r::P] for r in range(P)]
    out: dict = {}

    gens = []
    for rank in range(P):
        recv_done = cluster.sim.event(name=f"recv-done-{rank}")
        gens.append(
            _sender(cluster, cfg, tables[rank], cluster.thread(rank, 0),
                    shares[rank], out, recv_done)
        )
        gens.append(
            _receiver(cluster, cfg, tables[rank], cluster.thread(rank, 1),
                      recv_done)
        )
    t0 = cluster.sim.now
    cluster.run_workload(gens, name="assembly")
    elapsed = cluster.sim.now - t0
    return AssemblyResult(
        n_ranks=P,
        n_reads=rs.n_reads,
        k=cfg.k,
        total_kmers_inserted=out["inserted"],
        distinct_kmers=out["distinct"],
        branching_kmers=out["branching"],
        unitig_upper_bound=out["unitig_bound"],
        elapsed_s=elapsed,
    )
