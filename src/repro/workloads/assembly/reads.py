"""Synthetic sequencing data (substitute for the paper's 1M-read set).

The paper's SWAP-Assembler experiment processes a synthetic sequence of
1 million 36-nucleotide reads.  We generate an equivalent dataset: a
random reference genome and uniformly sampled fixed-length reads with an
optional per-base error rate, all seeded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReadSet", "generate_reads", "BASES"]

BASES = np.frombuffer(b"ACGT", dtype="S1")


@dataclass(frozen=True)
class ReadSet:
    genome: str
    reads: list
    read_length: int

    @property
    def n_reads(self) -> int:
        return len(self.reads)


def generate_reads(
    genome_length: int = 10_000,
    n_reads: int = 2_000,
    read_length: int = 36,
    error_rate: float = 0.0,
    seed: int = 7,
) -> ReadSet:
    """Sample ``n_reads`` reads of ``read_length`` from a random genome."""
    if read_length > genome_length:
        raise ValueError("reads longer than genome")
    rng = np.random.default_rng(seed)
    genome_arr = BASES[rng.integers(0, 4, genome_length)]
    genome = b"".join(genome_arr).decode()

    starts = rng.integers(0, genome_length - read_length + 1, n_reads)
    reads = []
    for s in starts:
        r = genome[s:s + read_length]
        if error_rate > 0.0:
            chars = list(r)
            errs = rng.random(read_length) < error_rate
            for i in np.flatnonzero(errs):
                chars[i] = "ACGT"[rng.integers(0, 4)]
            r = "".join(chars)
        reads.append(r)
    return ReadSet(genome=genome, reads=reads, read_length=read_length)
