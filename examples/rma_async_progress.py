#!/usr/bin/env python
"""RMA with asynchronous progress: the paper's 5x case (6.1.2, Fig. 9).

One origin rank performs blocking contiguous put/get/accumulate to the
other ranks; every rank forks MPICH's async progress thread.  Under the
mutex the origin's progress thread monopolizes the critical section and
starves the thread issuing the operations.

    python examples/rma_async_progress.py [--ranks 8] [--element 1024]
"""

import argparse

from repro.analysis import format_table
from repro.mpi import Cluster, ClusterConfig
from repro.workloads import RmaConfig, run_rma


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--ranks", type=int, default=8)
    ap.add_argument("--element", type=int, default=1024,
                    help="element size in bytes")
    ap.add_argument("--ops", type=int, default=48)
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    rows = []
    rates = {}
    for op in ("put", "get", "acc"):
        for lock in ("mutex", "ticket", "priority"):
            cluster = Cluster(ClusterConfig(
                n_nodes=args.ranks, threads_per_rank=1, lock=lock,
                async_progress=True, seed=args.seed,
            ))
            res = run_rma(cluster, RmaConfig(
                op=op, element_size=args.element, n_ops=args.ops))
            rates[(op, lock)] = res.rate_k
        rows.append([
            op,
            f"{rates[(op, 'mutex')]:.1f}",
            f"{rates[(op, 'ticket')]:.1f}",
            f"{rates[(op, 'priority')]:.1f}",
            f"{rates[(op, 'ticket')] / rates[(op, 'mutex')]:.2f}x",
        ])
    print(format_table(
        ["op", "mutex", "ticket", "priority", "fairness gain"],
        rows,
        title=f"RMA transfer rate (10^3 elements/s), {args.ranks} ranks, "
              f"{args.element}-byte elements, async progress ON",
    ))


if __name__ == "__main__":
    main()
