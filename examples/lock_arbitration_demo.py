#!/usr/bin/env python
"""Watch a pthread mutex monopolize a critical section on a NUMA node.

Hammers each lock with one thread per core, then prints who actually got
the lock: acquisition share per thread, the longest monopoly run, and
the paper's 4.3 core/socket bias factors.

    python examples/lock_arbitration_demo.py [--lock mutex] [--duration-us 300]
"""

import argparse

from repro.analysis import compute_bias_factors, format_table
from repro.locks import LOCK_CLASSES, LockTrace, make_lock
from repro.machine import NS, CostModel, ThreadCtx, nehalem_node
from repro.sim import Simulator


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--lock", choices=sorted(LOCK_CLASSES), default="mutex")
    ap.add_argument("--threads", type=int, default=8)
    ap.add_argument("--duration-us", type=float, default=300.0)
    ap.add_argument("--hold-ns", type=float, default=200.0)
    ap.add_argument("--gap-ns", type=float, default=30.0)
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    sim = Simulator(seed=args.seed)
    machine = nehalem_node()
    trace = LockTrace()
    lock = make_lock(args.lock, sim, CostModel(), trace=trace)
    horizon = args.duration_us * 1e-6

    threads = [
        ThreadCtx(machine.core(i % machine.n_cores), name=f"t{i}")
        for i in range(args.threads)
    ]

    def worker(ctx):
        while sim.now < horizon:
            yield from lock.acquire(ctx)
            yield sim.timeout(args.hold_ns * NS)
            extra = lock.release(ctx)
            yield sim.timeout(args.gap_ns * NS + extra)

    for t in threads:
        sim.process(worker(t))
    sim.run()

    counts = trace.acquisitions_by_tid()
    total = sum(counts.values())
    rows = [
        [t.name, f"core {t.core.index}", f"socket {t.socket}",
         counts.get(t.tid, 0), f"{100 * counts.get(t.tid, 0) / total:.1f}%"]
        for t in threads
    ]
    print(format_table(
        ["thread", "core", "socket", "acquisitions", "share"],
        rows, title=f"{args.lock} lock, {args.threads} threads, "
                    f"{args.duration_us:.0f} us of contention",
    ))

    run_len = best = 1
    tids = trace.tids
    for a, b in zip(tids, tids[1:]):
        run_len = run_len + 1 if a == b else 1
        best = max(best, run_len)
    print(f"\nconsecutive-reacquire fraction: "
          f"{trace.consecutive_reacquire_fraction():.2f}")
    print(f"longest monopoly run: {best} acquisitions in a row")
    bias = compute_bias_factors(trace)
    print(f"core-level bias factor:   {bias.core_bias:.2f}  (fair = 1.0)")
    print(f"socket-level bias factor: {bias.socket_bias:.2f}  (fair = 1.0)")


if __name__ == "__main__":
    main()
