#!/usr/bin/env python
"""Mini-SWAP distributed genome assembly (paper 6.3).

Generates synthetic reads, distributes k-mers to owner ranks with the
SWAP thread structure (per rank: one sending thread + one receiving
thread, blocking MPI), and reports the end-to-end time per locking
method -- the paper's "2x speedup with no application change".

    python examples/genome_assembly.py [--reads 4000] [--nodes 2]
"""

import argparse

from repro.analysis import format_table
from repro.mpi import Cluster, ClusterConfig
from repro.workloads.assembly import AssemblyConfig, run_assembly


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--reads", type=int, default=4000)
    ap.add_argument("--genome", type=int, default=16000)
    ap.add_argument("--k", type=int, default=21)
    ap.add_argument("--nodes", type=int, default=2)
    ap.add_argument("--ranks-per-node", type=int, default=4)
    ap.add_argument("--locks", nargs="+",
                    default=["mutex", "ticket", "priority"])
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    cfg = AssemblyConfig(
        genome_length=args.genome, n_reads=args.reads, k=args.k, batch_size=8,
    )
    rows = []
    base = None
    for lock in args.locks:
        cluster = Cluster(ClusterConfig(
            n_nodes=args.nodes, ranks_per_node=args.ranks_per_node,
            threads_per_rank=2, lock=lock, seed=args.seed,
        ))
        res = run_assembly(cluster, cfg)
        if base is None:
            base = res.elapsed_s
        rows.append([
            lock, f"{res.elapsed_s * 1e3:.2f}",
            res.distinct_kmers, res.branching_kmers,
            res.unitig_upper_bound, f"{base / res.elapsed_s:.2f}x",
        ])
    print(format_table(
        ["lock", "time (ms)", "distinct k-mers", "branching",
         "unitigs (<=)", f"vs {args.locks[0]}"],
        rows,
        title=f"mini-SWAP assembly: {args.reads} reads, k={args.k}, "
              f"{args.nodes} nodes x {args.ranks_per_node} ranks x 2 threads",
    ))
    print("\nEach rank runs a sender thread (main path) and a receiver "
          "thread\n(progress loop); fair arbitration between just these "
          "two threads\nis the whole speedup -- no application change.")


if __name__ == "__main__":
    main()
