#!/usr/bin/env python
"""3D heat-equation stencil with per-thread halo exchange.

Runs the paper's 6.2.2 hybrid stencil (every thread independently
exchanges its own halos each iteration) and prints GFlops plus the
Fig. 11b-style execution breakdown for each locking method.

    python examples/heat_stencil.py [--extent 32] [--ranks 4] [--threads 8]
"""

import argparse

from repro.analysis import format_table
from repro.mpi import Cluster, ClusterConfig
from repro.workloads.stencil import StencilConfig, run_stencil


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--extent", type=int, default=32,
                    help="global cubic domain edge length")
    ap.add_argument("--iterations", type=int, default=8)
    ap.add_argument("--ranks", type=int, default=4)
    ap.add_argument("--threads", type=int, default=8)
    ap.add_argument("--locks", nargs="+",
                    default=["mutex", "ticket", "priority"])
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    cfg = StencilConfig(
        n=(args.extent, args.extent, args.extent),
        iterations=args.iterations,
    )
    rows = []
    for lock in args.locks:
        cluster = Cluster(ClusterConfig(
            n_nodes=args.ranks, threads_per_rank=args.threads,
            lock=lock, seed=args.seed,
        ))
        res = run_stencil(cluster, cfg)
        pct = res.breakdown.percentages()
        rows.append([
            lock, f"{res.gflops:.2f}",
            f"{pct.get('mpi', 0):.0f}%",
            f"{pct.get('compute', 0):.0f}%",
            f"{pct.get('sync', 0):.0f}%",
            f"{res.elapsed_s * 1e3:.2f}",
        ])
    print(format_table(
        ["lock", "GFlops", "MPI", "compute", "OMP sync", "time (ms)"],
        rows,
        title=f"3D 7-point stencil, {args.extent}^3 domain, "
              f"{args.ranks} ranks x {args.threads} threads, "
              f"{args.iterations} iterations",
    ))
    print("\nSmall domains are communication-bound: fair arbitration wins."
          "\nGrow --extent and the methods converge (computation dominates).")


if __name__ == "__main__":
    main()
