#!/usr/bin/env python
"""Hybrid MPI+threads Graph500 BFS on the simulated cluster.

Generates a Kronecker graph, partitions it across ranks, and runs the
paper's 6.2.1 level-synchronized BFS (threads cooperate on expansion
and communicate independently, polling with MPI_Test).  Reports MTEPS
per locking method.

    python examples/graph500_bfs.py [--scale 14] [--ranks 4] [--threads 4]
"""

import argparse

from repro.analysis import format_table
from repro.mpi import Cluster, ClusterConfig
from repro.workloads.bfs import BfsConfig, run_bfs


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=int, default=14,
                    help="log2 of the vertex count")
    ap.add_argument("--edgefactor", type=int, default=16)
    ap.add_argument("--ranks", type=int, default=4)
    ap.add_argument("--threads", type=int, default=4)
    ap.add_argument("--locks", nargs="+",
                    default=["mutex", "ticket", "priority"])
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    cfg = BfsConfig(scale=args.scale, edgefactor=args.edgefactor,
                    graph_seed=args.seed, flush_size=64)
    rows = []
    for lock in args.locks:
        cluster = Cluster(ClusterConfig(
            n_nodes=args.ranks, threads_per_rank=args.threads,
            lock=lock, seed=args.seed,
        ))
        res = run_bfs(cluster, cfg)
        rows.append([
            lock, f"{res.mteps:.1f}", res.n_visited, res.n_levels,
            f"{res.elapsed_s * 1e3:.2f}",
        ])
    print(format_table(
        ["lock", "MTEPS", "vertices visited", "levels", "time (ms)"],
        rows,
        title=f"Graph500 BFS: scale {args.scale} "
              f"(2^{args.scale} vertices), {args.ranks} ranks x "
              f"{args.threads} threads",
    ))


if __name__ == "__main__":
    main()
