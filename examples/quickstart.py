#!/usr/bin/env python
"""Quickstart: how critical-section arbitration changes MPI throughput.

Runs the paper's multithreaded point-to-point throughput benchmark on a
simulated two-node cluster for each locking method and prints the
comparison -- the core result of the paper in ~20 lines of API use.

    python examples/quickstart.py [--threads 8] [--size 8]
"""

import argparse

from repro.analysis import format_table
from repro.workloads import ThroughputConfig, run_throughput, throughput_cluster


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--threads", type=int, default=8,
                    help="threads per rank (paper: up to 8)")
    ap.add_argument("--size", type=int, default=8, help="message size in bytes")
    ap.add_argument("--windows", type=int, default=6,
                    help="64-request windows per thread")
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    rows = []
    baseline = None
    for method in ("null", "mutex", "ticket", "priority", "mcs"):
        threads = 1 if method == "null" else args.threads
        cluster = throughput_cluster(
            lock=method, threads_per_rank=threads, seed=args.seed
        )
        res = run_throughput(
            cluster,
            ThroughputConfig(msg_size=args.size, n_windows=args.windows),
        )
        if method == "mutex":
            baseline = res.msg_rate_k
        label = "single-threaded" if method == "null" else method
        rows.append([
            label, threads, f"{res.msg_rate_k:.0f}",
            f"{res.dangling.mean:.1f}",
            f"{res.msg_rate_k / baseline:.2f}x" if baseline else "-",
        ])

    print(format_table(
        ["method", "threads", "rate (10^3 msg/s)", "avg dangling", "vs mutex"],
        rows,
        title=f"pt2pt throughput, {args.size}-byte messages "
              f"(simulated dual-socket Nehalem + QDR fabric)",
    ))
    print("\nThe mutex's unfair arbitration (lock monopolization) starves "
          "threads;\nFCFS arbitration (ticket) and the paper's priority "
          "lock recover the loss.")


if __name__ == "__main__":
    main()
