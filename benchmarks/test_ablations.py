"""Ablation benches for the design choices called out in DESIGN.md 5.

These vary one cost-model knob at a time and verify the mechanism behind
each reproduced effect responds in the expected direction.
"""

from __future__ import annotations

import pathlib

from repro.analysis import compute_bias_factors, format_table
from repro.machine import CostModel
from repro.mpi import Cluster, ClusterConfig
from repro.workloads import (
    LatencyConfig,
    N2NConfig,
    ThroughputConfig,
    run_latency,
    run_n2n,
    run_throughput,
    throughput_cluster,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _emit(name: str, table: str) -> None:
    print("\n" + table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")


def test_ablation_numa_free_machine_removes_socket_bias(benchmark):
    """On a hypothetical uniform-memory machine (all proximity classes
    cost the same) the mutex's socket-level bias collapses towards 1 --
    the Fig. 3a bias really is a NUMA effect, not a lock artifact."""

    def run():
        out = []
        for label, cm in (
            ("NUMA (default)", CostModel()),
            ("uniform", CostModel(
                atomic_ns=(45.0, 45.0, 45.0),
                handoff_ns=(40.0, 40.0, 40.0),
                contention_remote_factor=1.0,
            )),
        ):
            # Average over a few seeds: bias estimates are noisy.
            biases = []
            for seed in (1, 2, 3):
                cl = throughput_cluster(lock="mutex", threads_per_rank=8,
                                        seed=seed, costs=cm, trace_locks=True)
                run_throughput(cl, ThroughputConfig(msg_size=512, n_windows=4))
                biases.append(compute_bias_factors(cl.lock_traces[1]).socket_bias)
            out.append((label, sum(biases) / len(biases)))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _emit("ablation_numa_free", format_table(
        ["machine", "socket bias (avg of 3 seeds)"],
        [[label, f"{b:.2f}"] for label, b in rows],
        title="[ablation] socket-level bias: NUMA vs uniform machine",
    ))
    biases = dict(rows)
    assert biases["NUMA (default)"] > biases["uniform"]


def test_ablation_futex_wake_latency_drives_monopolization(benchmark):
    """A slower futex wake strengthens the barging window and worsens
    mutex throughput (the 2.2 mechanism)."""

    def run():
        out = []
        for wake_ns in (400.0, 3200.0, 12000.0):
            cm = CostModel(futex_wake_ns=wake_ns)
            cl = throughput_cluster(lock="mutex", threads_per_rank=8,
                                    seed=1, costs=cm)
            res = run_throughput(cl, ThroughputConfig(msg_size=8, n_windows=4))
            out.append((wake_ns, res.msg_rate_k, res.dangling.mean))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _emit("ablation_futex_wake", format_table(
        ["futex wake (ns)", "rate (k/s)", "dangling"],
        [[w, f"{r:.0f}", f"{d:.1f}"] for w, r, d in rows],
        title="[ablation] futex wake latency vs mutex throughput",
    ))
    assert rows[0][1] > rows[-1][1], "slower wake should reduce throughput"


def test_ablation_eager_threshold_moves_latency_crossover(benchmark):
    """Fig. 8b's crossover (multithreaded beating single-threaded) sits
    near the rendezvous threshold: shrinking the eager window moves the
    benefit to smaller messages."""

    size = 32768

    def run():
        out = []
        for eager in (1024, 16384, 262144):
            mt = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=8,
                                       lock="ticket", seed=1,
                                       eager_threshold=eager))
            st = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=1,
                                       lock="null", seed=1,
                                       eager_threshold=eager))
            l_mt = run_latency(mt, LatencyConfig(msg_size=size, n_iters=20))
            l_st = run_latency(st, LatencyConfig(msg_size=size, n_iters=20))
            out.append((eager, l_mt.latency_us, l_st.latency_us))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _emit("ablation_eager_threshold", format_table(
        ["eager threshold", "MT latency (us)", "single latency (us)"],
        [[e, f"{a:.2f}", f"{b:.2f}"] for e, a, b in rows],
        title=f"[ablation] eager threshold at {size}-byte messages",
    ))
    # With the message under the eager threshold the MT advantage shrinks
    # or reverses relative to the rendezvous case.
    mt_gain_rndv = rows[0][2] / rows[0][1]     # size > eager: rendezvous
    mt_gain_eager = rows[-1][2] / rows[-1][1]  # size < eager: eager
    assert mt_gain_rndv > mt_gain_eager


def test_ablation_unexpected_copy_cost(benchmark):
    """The unexpected-queue penalty scales the mutex's N2N losses."""

    def run():
        out = []
        for factor in (1.0, 4.0):
            cm = CostModel(progress_batch=1, unexpected_copy_factor=factor)
            rates = {}
            for lock in ("mutex", "ticket"):
                cl = Cluster(ClusterConfig(n_nodes=4, threads_per_rank=4,
                                           lock=lock, seed=1, costs=cm))
                res = run_n2n(cl, N2NConfig(msg_size=4096, window=8,
                                            n_windows=2, style="rounds"))
                rates[lock] = res.msg_rate_k
            out.append((factor, rates["mutex"], rates["ticket"]))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _emit("ablation_unexpected_copy", format_table(
        ["unexpected copy factor", "mutex (k/s)", "ticket (k/s)"],
        [[f, f"{m:.0f}", f"{t:.0f}"] for f, m, t in rows],
        title="[ablation] unexpected-copy cost vs N2N rates",
    ))
    # The mutex (which drives messages unexpected) suffers more from a
    # costlier unexpected path.
    mutex_drop = rows[0][1] / rows[1][1]
    ticket_drop = rows[0][2] / rows[1][2]
    assert mutex_drop > ticket_drop


def test_ablation_progress_batch(benchmark):
    """Coarser progress batches amortize poll overhead but lengthen CS
    holds; throughput responds."""

    def run():
        out = []
        for batch in (1, 4, 16):
            cm = CostModel(progress_batch=batch)
            cl = throughput_cluster(lock="ticket", threads_per_rank=8,
                                    seed=1, costs=cm)
            res = run_throughput(cl, ThroughputConfig(msg_size=256, n_windows=4))
            out.append((batch, res.msg_rate_k))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _emit("ablation_progress_batch", format_table(
        ["progress batch", "rate (k/s)"],
        [[b, f"{r:.0f}"] for b, r in rows],
        title="[ablation] progress-poll batch size (ticket, 8 threads)",
    ))
    assert all(r > 0 for _, r in rows)


def test_ablation_event_driven_wakeup(benchmark):
    """Paper 9 future work: selective wake-up on message arrival.

    Parking blocked waiters on arrival/completion events eliminates the
    wasted lock acquisitions of the polling progress loop (empty polls
    drop to ~zero under the mutex) at equal throughput; the price is a
    wake-up latency on sparse paths (visible in the RMA rate).
    """

    def run():
        out = {}
        cm = CostModel(progress_batch=1)
        for ed in (False, True):
            cl = Cluster(ClusterConfig(n_nodes=4, threads_per_rank=8,
                                       lock="mutex", seed=2, costs=cm,
                                       event_driven_wait=ed))
            res = run_n2n(cl, N2NConfig(msg_size=1024, window=8,
                                        n_windows=2, style="rounds"))
            s = cl.runtimes[0].stats
            out[ed] = (res.msg_rate_k, s.cs_entries_progress, s.empty_polls)
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _emit("ablation_event_driven", format_table(
        ["wait mode", "rate (k/s)", "progress CS entries", "empty polls"],
        [["polling", f"{rows[False][0]:.0f}", rows[False][1], rows[False][2]],
         ["event-driven", f"{rows[True][0]:.0f}", rows[True][1], rows[True][2]]],
        title="[ablation] event-driven wake-up (mutex, poll-heavy N2N)",
    ))
    # Wasted work collapses...
    assert rows[True][2] < 0.2 * max(1, rows[False][2])
    # ... without losing throughput.
    assert rows[True][0] > 0.9 * rows[False][0]


def test_ablation_granularity_arbitration_synergy(benchmark):
    """Paper 7: granularity and arbitration are orthogonal and combine.

    "Brief" critical sections (payload copies outside the lock) help
    every arbitration method, and fair arbitration still helps on top --
    the synergistic effect the paper predicts for combining the two.
    """

    def run():
        out = {}
        for lock in ("mutex", "ticket"):
            for gran in ("global", "brief"):
                cl = Cluster(ClusterConfig(
                    n_nodes=2, threads_per_rank=8, lock=lock, seed=1,
                    cs_granularity=gran))
                res = run_throughput(cl, ThroughputConfig(
                    msg_size=4096, n_windows=4))
                out[(lock, gran)] = res.msg_rate_k
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    _emit("ablation_granularity", format_table(
        ["lock", "global CS", "brief CS", "brief/global"],
        [[lk, f"{rates[(lk, 'global')]:.0f}", f"{rates[(lk, 'brief')]:.0f}",
          f"{rates[(lk, 'brief')] / rates[(lk, 'global')]:.2f}x"]
         for lk in ("mutex", "ticket")],
        title="[ablation] CS granularity x arbitration (4 KiB msgs, 8 threads)",
    ))
    # Granularity helps both methods...
    assert rates[("mutex", "brief")] > 1.5 * rates[("mutex", "global")]
    assert rates[("ticket", "brief")] > 1.5 * rates[("ticket", "global")]
    # ... and fair arbitration still helps on top of brief sections.
    assert rates[("ticket", "brief")] > rates[("mutex", "brief")]


def test_ablation_socket_aware_lock_starves(benchmark):
    """The 7-discussion socket-aware variant: lower hand-off cost, but
    one socket can capture the lock -- measured as acquisition imbalance
    vs the plain ticket lock on the same workload."""

    from repro.locks import LockTrace, make_lock
    from repro.machine import NS, ThreadCtx, nehalem_node, scatter_binding
    from repro.sim import Simulator

    def run():
        out = []
        for kind in ("ticket", "socket"):
            s = Simulator(seed=3)
            machine = nehalem_node()
            trace = LockTrace()
            lock = make_lock(kind, s, CostModel(), trace=trace)
            cores = scatter_binding(machine, 4)

            def worker(ctx):
                while s.now < 150e-6:
                    yield from lock.acquire(ctx)
                    yield s.timeout(200 * NS)
                    extra = lock.release(ctx)
                    yield s.timeout(10 * NS + extra)

            for i, c in enumerate(cores):
                s.process(worker(ThreadCtx(c, name=f"t{i}")))
            s.run()
            per_socket = {0: 0, 1: 0}
            arrays = trace.as_arrays()
            for sock, n in zip(arrays["sockets"], [1] * len(trace)):
                per_socket[int(sock)] += n
            lo, hi = sorted(per_socket.values())
            out.append((kind, hi / max(1, lo)))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _emit("ablation_socket_aware", format_table(
        ["lock", "socket acquisition imbalance"],
        [[k, f"{r:.1f}x"] for k, r in rows],
        title="[ablation] socket-aware lock captures one socket",
    ))
    ratios = dict(rows)
    assert ratios["socket"] > 3 * ratios["ticket"]
