"""Fig. 10b: BFS thread scaling with multiple ranks
(paper: fair locks give speedups; mutex does not; priority == ticket
because the kernel only issues immediate MPI_Test calls)."""


def test_fig10b_bfs_threads(figure):
    figure("fig10b")
