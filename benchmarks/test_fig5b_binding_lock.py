"""Fig. 5b: 1-byte throughput by binding and thread count
(paper: ticket +68% at 4 threads compact; slight loss at 2 threads
scatter; benefit grows with concurrency)."""


def test_fig5b_binding_lock(figure):
    figure("fig5b")
