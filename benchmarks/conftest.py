"""Benchmark harness plumbing.

Each bench runs one paper figure's experiment exactly once (these are
deterministic simulations -- repetition adds nothing), prints the figure's
rows, saves them under ``benchmarks/results/``, and fails if any of the
paper's qualitative shape checks fail.

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_PAPER_SCALE=1`` to use the paper-scale presets (slower).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import run_experiment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _quick() -> bool:
    return os.environ.get("REPRO_PAPER_SCALE", "0") != "1"


@pytest.fixture
def figure(benchmark):
    """Returns a runner: ``figure("fig5c")`` executes the experiment under
    pytest-benchmark, records the table, and asserts the shape checks."""

    def run(name: str, seed: int = 1):
        result = benchmark.pedantic(
            run_experiment, args=(name,), kwargs={"quick": _quick(), "seed": seed},
            rounds=1, iterations=1,
        )
        table = result.format()
        print("\n" + table)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
        benchmark.extra_info["checks_passed"] = sum(result.checks.values())
        benchmark.extra_info["checks_total"] = len(result.checks)
        assert result.ok, (
            f"{name}: paper-shape checks failed: {result.failed_checks()}\n{table}"
        )
        return result

    return run
