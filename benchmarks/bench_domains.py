"""Micro-benchmark: simulator cost and simulated payoff of domain sharding.

Runs the N2N streaming workload at 8 threads/rank with the critical
section split into 1/2/4/8 per-VCI arbitration domains and records, per
domain count:

* **events_per_sec** -- host-side simulator throughput (scheduled events
  per wall second): what the domain machinery costs *us*;
* **msg_rate_k** -- simulated N2N message rate (10^3 msgs/s): what the
  sharding buys the *simulated* runtime;
* **peak_dangling** -- rank-wide starvation high-water mark.

The baseline is committed at ``results/BENCH_domains.json`` so future
changes to the domain layer can be diffed against it::

    PYTHONPATH=src python benchmarks/bench_domains.py
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.mpi import Cluster, ClusterConfig
from repro.workloads import N2NConfig, run_n2n

RESULTS = pathlib.Path(__file__).parent / "results" / "BENCH_domains.json"

DOMAIN_COUNTS = (1, 2, 4, 8)
THREADS = 8
CFG = dict(msg_size=1024, window=2, n_windows=2, style="rounds")


def bench_one(n_domains: int, seed: int = 1) -> dict:
    cl = Cluster(ClusterConfig(
        n_nodes=2, threads_per_rank=THREADS, lock="mutex",
        cs=f"per-vci:{n_domains}", seed=seed,
    ))
    # Count scheduled events by wrapping the simulator's scheduler: the
    # engine keeps no processed-event counter and scheduled == processed
    # once the heap runs dry.
    n_events = 0
    schedule = cl.sim._schedule

    def counting_schedule(event, delay):
        nonlocal n_events
        n_events += 1
        return schedule(event, delay)

    cl.sim._schedule = counting_schedule
    t0 = time.perf_counter()  # simlint: disable=wall-clock
    res = run_n2n(cl, N2NConfig(**CFG))
    wall = time.perf_counter() - t0  # simlint: disable=wall-clock
    return {
        "n_domains": n_domains,
        "threads_per_rank": THREADS,
        "events": n_events,
        "wall_s": round(wall, 4),
        "events_per_sec": round(n_events / wall),
        "msg_rate_k": res.msg_rate_k,
        "peak_dangling": max(rt.peak_dangling for rt in cl.runtimes),
    }


def main() -> None:
    rows = [bench_one(n) for n in DOMAIN_COUNTS]
    payload = {
        "bench": "arbitration-domain sharding (N2N, 2 ranks x 8 threads)",
        "workload": CFG,
        "rows": rows,
    }
    RESULTS.parent.mkdir(exist_ok=True)
    RESULTS.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"{'domains':>8} {'events':>9} {'ev/s':>9} {'msg rate (k/s)':>15} "
          f"{'peak dangling':>14}")
    for r in rows:
        print(f"{r['n_domains']:>8} {r['events']:>9} {r['events_per_sec']:>9} "
              f"{r['msg_rate_k']:>15.1f} {r['peak_dangling']:>14}")
    print(f"written to {RESULTS}")


if __name__ == "__main__":
    main()
