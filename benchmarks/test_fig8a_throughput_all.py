"""Fig. 8a: throughput for single/mutex/ticket/priority at 8 threads
(paper: ticket ~ priority > mutex, all below single-threaded)."""


def test_fig8a_throughput_all(figure):
    figure("fig8a")
