"""Fig. 2b: compact vs scatter thread binding under the mutex --
NUMA amplifies runtime contention (paper: scatter 1.5-2x worse)."""


def test_fig2b_numa_binding(figure):
    figure("fig2b")
