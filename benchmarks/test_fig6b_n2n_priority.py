"""Fig. 6b: N2N all-to-all, ticket vs priority lock
(paper: priority +33% below 32 KiB; here direction + mechanism)."""


def test_fig6b_n2n_priority(figure):
    figure("fig6b")
