"""Fig. 10a: BFS single-node thread scaling
(paper: linear to 4 cores, ~10% efficiency loss at 8)."""


def test_fig10a_bfs_node(figure):
    figure("fig10a")
