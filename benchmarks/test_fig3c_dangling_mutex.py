"""Fig. 3c: dangling-request profile under the mutex
(paper: high counts due to starving windows)."""


def test_fig3c_dangling_mutex(figure):
    figure("fig3c")
