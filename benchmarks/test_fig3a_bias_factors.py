"""Fig. 3a: arbitration bias factors from lock traces
(paper: ~2x core-level, ~1.25x socket-level)."""


def test_fig3a_bias_factors(figure):
    figure("fig3a")
