"""Micro-benchmark: continuation-driven completion vs wait polling.

Runs the rendezvous throughput workload (2 ranks x 8 threads, priority
lock -- the fig_continuations gate cell) once per completion mode and
records, per mode:

* **wasted_acquisitions** -- empty progress polls summed over both
  ranks: full CS round-trips that progressed nothing (the paper's
  wasted acquisition);
* **parks** -- empty CS round-trips continuation mode replaced with a
  wait on the completion signal (``wasted_acquisitions_avoided``);
* **msg_rate_k / peak_dangling** -- the simulated throughput and
  starvation high-water mark, to show the savings are not bought with
  rate or backlog;
* **events / wall_s / events_per_sec** -- host-side simulator cost
  (engine dispatch accounting: ``dispatched + skipped``).

The acceptance gate lives here: continuation mode must cut wasted
acquisitions by >= 20% at the gate cell (it typically cuts >90%).  The
baseline is committed at ``results/BENCH_continuations.json``::

    PYTHONPATH=src python benchmarks/bench_continuations.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.mpi import Cluster, ClusterConfig
from repro.workloads import ThroughputConfig, run_throughput

RESULTS = (
    pathlib.Path(__file__).parent / "results" / "BENCH_continuations.json"
)

#: Acceptance gate: wasted-acquisition reduction vs polling at 8
#: threads under the priority lock (the fig_continuations gate cell).
MIN_REDUCTION = 0.20

THREADS = 8
LOCK = "priority"


def bench_one(mode: str, quick: bool, seed: int = 1) -> dict:
    cl = Cluster(ClusterConfig(
        n_nodes=2, threads_per_rank=THREADS, lock=LOCK,
        seed=seed, completion=mode,
    ))
    cfg = ThroughputConfig(
        msg_size=65536, window=8, n_windows=2 if quick else 4,
    )
    t0 = time.perf_counter()  # simlint: disable=wall-clock
    res = run_throughput(cl, cfg)
    wall = time.perf_counter() - t0  # simlint: disable=wall-clock
    n_events = cl.sim.dispatched + cl.sim.skipped
    return {
        "mode": mode,
        "threads_per_rank": THREADS,
        "lock": LOCK,
        "wasted_acquisitions": sum(
            rt.stats.empty_polls for rt in cl.runtimes
        ),
        "parks": sum(
            rt.stats.wasted_acquisitions_avoided for rt in cl.runtimes
        ),
        "msg_rate_k": res.msg_rate_k,
        "peak_dangling": max(rt.peak_dangling for rt in cl.runtimes),
        "events": n_events,
        "wall_s": round(wall, 4),
        "events_per_sec": round(n_events / wall),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI-sized run (half the windows)")
    args = ap.parse_args(argv)

    rows = [bench_one(mode, args.quick) for mode in ("poll", "continuation")]
    poll, cont = rows
    reduction = (
        1.0 - cont["wasted_acquisitions"] / poll["wasted_acquisitions"]
        if poll["wasted_acquisitions"] else 0.0
    )
    payload = {
        "bench": (
            "continuation completion vs wait polling "
            f"(rendezvous throughput, 2 ranks x {THREADS} threads, "
            f"{LOCK} lock)"
        ),
        "gate": {"min_reduction": MIN_REDUCTION, "reduction": round(
            reduction, 4)},
        "rows": rows,
    }
    RESULTS.parent.mkdir(exist_ok=True)
    RESULTS.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"{'mode':>13} {'wasted':>8} {'parks':>7} {'rate (k/s)':>11} "
          f"{'dangling':>9} {'events':>9} {'ev/s':>9}")
    for r in rows:
        print(f"{r['mode']:>13} {r['wasted_acquisitions']:>8} "
              f"{r['parks']:>7} {r['msg_rate_k']:>11.1f} "
              f"{r['peak_dangling']:>9} {r['events']:>9} "
              f"{r['events_per_sec']:>9}")
    print(f"wasted-acquisition reduction: {reduction:.1%} "
          f"(gate >= {MIN_REDUCTION:.0%})")
    print(f"written to {RESULTS}")

    if reduction < MIN_REDUCTION:
        print(f"FAIL: reduction {reduction:.1%} below the "
              f"{MIN_REDUCTION:.0%} gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
