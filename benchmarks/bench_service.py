"""Micro-benchmark: graceful degradation of the open-loop service.

Runs the :mod:`repro.workloads.service` workload at three operating
points and records, per cell:

* **events_per_sec** -- host-side simulator throughput (what the
  service/robustness machinery costs *us*);
* **goodput_rps** -- simulated replies within SLO per second;
* **p50/p99/p999 (us)** -- reply latency percentiles;
* shed / expired / retry counters.

Cells:

* ``prot-0.8x``  -- full protection at 80% of nominal capacity (the
  goodput and latency peak);
* ``prot-1.5x``  -- full protection at 1.5x capacity: deadline-aware
  shedding keeps latency near the deadline;
* ``none-1.5x``  -- no protection at the same overload: the open-loop
  queue grows without bound and p99 explodes.

**Graceful-degradation gate** (enforced by ``perf-smoke`` CI via
``results/BENCH_service.json``): protected p99 at 1.5x saturation must
stay within ``GATE_P99_RATIO`` (5x) of protected p99 at 0.8x.  The
unprotected cell is recorded for contrast and intentionally ungated::

    PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.robust import RobustConfig
from repro.workloads import ServiceConfig, run_service, service_cluster

RESULTS = pathlib.Path(__file__).parent / "results" / "BENCH_service.json"

THREADS = 2
SERVICE_NS = 20_000.0
SLO_NS = 250_000.0
DURATION_S = 0.006
#: Nominal per-rank capacity (requests/s).
CAPACITY = THREADS / (SERVICE_NS * 1e-9)
#: perf-smoke gate: p99(prot @1.5x) <= GATE_P99_RATIO * p99(prot @0.8x).
GATE_P99_RATIO = 5.0

CELLS = (
    ("prot-0.8x", 0.8, True),
    ("prot-1.5x", 1.5, True),
    ("none-1.5x", 1.5, False),
)


def bench_one(name: str, load: float, protected: bool, seed: int = 1) -> dict:
    cl = service_cluster(lock="priority", threads_per_rank=THREADS, seed=seed)
    # Count at _push (the single queue funnel): the pooled-timeout fast
    # path schedules directly through it, bypassing _schedule.  A
    # measurement shim, not a queue consumer, so the encapsulation rule
    # is waived on these two lines only.
    n_events = 0
    push = cl.sim._push  # simlint: disable=queue-encapsulation

    def counting_push(t, seq, event):
        nonlocal n_events
        n_events += 1
        return push(t, seq, event)

    cl.sim._push = counting_push  # simlint: disable=queue-encapsulation
    cfg = ServiceConfig(
        rate_hz=load * CAPACITY, duration_s=DURATION_S,
        service_ns=SERVICE_NS, slo_ns=SLO_NS,
    )
    robust = RobustConfig.protected(deadline_ns=SLO_NS) if protected else None
    t0 = time.perf_counter()  # simlint: disable=wall-clock
    res = run_service(cl, cfg, robust)
    wall = time.perf_counter() - t0  # simlint: disable=wall-clock
    return {
        "cell": name,
        "load": load,
        "protected": protected,
        "events": n_events,
        "wall_s": round(wall, 4),
        "events_per_sec": round(n_events / wall),
        "offered": res.offered,
        "goodput_rps": res.goodput_rps,
        "p50_us": round(res.p50_us, 2),
        "p99_us": round(res.p99_us, 2),
        "p999_us": round(res.p999_us, 2),
        "shed": res.shed,
        "expired": res.expired,
        "retries": res.retries,
        "peak_backlog": res.peak_backlog,
    }


def main() -> None:
    rows = [bench_one(name, load, prot) for name, load, prot in CELLS]
    by = {r["cell"]: r for r in rows}
    ratio = by["prot-1.5x"]["p99_us"] / max(by["prot-0.8x"]["p99_us"], 1e-9)
    gate_ok = ratio <= GATE_P99_RATIO
    payload = {
        "bench": (
            "open-loop service graceful degradation "
            f"(2x1 rank pairs, {THREADS} threads/rank)"
        ),
        "capacity_rps": CAPACITY,
        "slo_ns": SLO_NS,
        "gate_p99_ratio_max": GATE_P99_RATIO,
        "gate_p99_ratio": round(ratio, 4),
        "gate_ok": gate_ok,
        "rows": rows,
    }
    RESULTS.parent.mkdir(exist_ok=True)
    RESULTS.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"{'cell':>10} {'events':>9} {'ev/s':>9} {'goodput':>9} "
          f"{'p50':>7} {'p99':>8} {'p999':>8} {'shed':>5} {'rtry':>5}")
    for r in rows:
        print(f"{r['cell']:>10} {r['events']:>9} {r['events_per_sec']:>9} "
              f"{r['goodput_rps']:>9.0f} {r['p50_us']:>7.1f} "
              f"{r['p99_us']:>8.1f} {r['p999_us']:>8.1f} "
              f"{r['shed']:>5} {r['retries']:>5}")
    print(f"degradation gate: p99 ratio {ratio:.2f} <= {GATE_P99_RATIO} "
          f"-> {'OK' if gate_ok else 'FAIL'}")
    print(f"written to {RESULTS}")
    if not gate_ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()