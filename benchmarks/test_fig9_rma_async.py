"""Fig. 9: RMA put/get/accumulate with async progress
(paper: up to 5x over mutex; progress-thread monopolization)."""


def test_fig9_rma_async(figure):
    figure("fig9")
