"""Sim-core benchmark: what first-class cancellation buys the hot path.

Three scenarios, each reporting wall-clock and the engine's own dispatch
accounting (``Simulator.dispatched`` / ``.skipped`` / ``.compactions``):

* ``retransmit-1pct`` -- engine-level model of the reliability layer's
  timer pattern at 1% drop: every packet arms a retransmit timer; the
  delivery (99% of sends) cancels it, a drop lets it fire and retransmit.
  ``savings`` is the fraction of would-be dispatches eliminated --
  every *skipped* entry is a dead timer the old fire-and-filter
  generation-token scheme popped, dispatched, and discarded by hand.
  The acceptance gate lives here: savings must be >= 20%.
* ``hot-loop`` -- chained timeouts across a few processes: raw dispatch
  throughput (events/sec) of the inlined run loop, no cancellation.
* ``hot-loop-calendar`` -- drain throughput of the calendar queue:
  waves of same-timestamp timers armed up front, only ``sim.run()``
  timed, so the number isolates pop_batch + batched dispatch.  The
  second acceptance gate lives here: best-of-3 must sustain >= 2M
  events/sec.
* ``chaos-macro`` -- the fig_chaos configuration end to end (2 ranks x
  4 threads, 1% internode drop, ACK/retransmit on): the same accounting
  on a real cluster run, where dead retransmit timers ride alongside all
  the lock/progress/fabric events.

The results are committed at ``results/BENCH_simcore.json`` so the perf
trajectory is tracked; CI runs ``--quick`` under a wall-clock budget::

    PYTHONPATH=src python benchmarks/bench_simcore.py [--quick] [--budget S]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.faults import FaultPlan
from repro.mpi import Cluster, ClusterConfig
from repro.sim import Simulator
from repro.workloads import ThroughputConfig, run_throughput

RESULTS = pathlib.Path(__file__).parent / "results" / "BENCH_simcore.json"

#: Acceptance gate: dead-timer dispatches eliminated on the retransmit
#: scenario, as a fraction of what the fire-and-filter scheme dispatched.
MIN_SAVINGS = 0.20

#: Acceptance gate: calendar-queue drain throughput, events per second.
MIN_CALENDAR_EVS = 2_000_000


def _account(sim: Simulator) -> dict:
    would_have = sim.dispatched + sim.skipped
    return {
        "scheduler": sim.queue.kind,
        "dispatched": sim.dispatched,
        "skipped": sim.skipped,
        "compactions": sim.compactions,
        "savings": round(sim.skipped / would_have, 4) if would_have else 0.0,
        "queue": sim.queue.stats(),
    }


def bench_retransmit(n_msgs: int, drop: float = 0.01, seed: int = 1) -> dict:
    """The 1%-drop retransmit pattern, modeled at the engine level.

    Per send attempt: one retransmit timer (RTO) plus, unless the copy is
    dropped, one delivery event that cancels the timer.  Mirrors
    ``ReliabilityLayer.track``/``on_ack`` without the MPI machinery, so
    the numbers isolate the scheduler."""
    sim = Simulator(seed=seed)
    rng = sim.rng.stream("faults")
    rto = 15_000e-9
    wire = 4_000e-9
    gap = 100e-9
    delivered = [0]
    retransmits = [0]

    def send(i: int, attempt: int) -> None:
        if attempt:
            retransmits[0] += 1
        timer = sim.call_after(rto, send, i, attempt + 1)
        if rng.random() >= drop:
            def deliver(t=timer):
                delivered[0] += 1
                t.cancel()
            sim.call_after(wire, deliver)

    for i in range(n_msgs):
        sim.call_after(i * gap, send, i, 0)
    t0 = time.perf_counter()  # simlint: disable=wall-clock
    sim.run()
    wall = time.perf_counter() - t0  # simlint: disable=wall-clock
    return {
        "mode": "retransmit-1pct",
        "n_msgs": n_msgs,
        "drop": drop,
        "delivered": delivered[0],
        "retransmits": retransmits[0],
        "wall_s": round(wall, 4),
        "events_per_sec": round(sim.dispatched / wall),
        **_account(sim),
    }


def bench_hotloop(n_events: int, seed: int = 0) -> dict:
    """Raw dispatch throughput: chained timeouts, zero cancellations."""
    sim = Simulator(seed=seed)
    n_procs = 4
    per_proc = n_events // n_procs

    def looper():
        dt = 10e-9
        for _ in range(per_proc):
            yield sim.timeout(dt)

    for _ in range(n_procs):
        sim.process(looper())
    t0 = time.perf_counter()  # simlint: disable=wall-clock
    sim.run()
    wall = time.perf_counter() - t0  # simlint: disable=wall-clock
    return {
        "mode": "hot-loop",
        "n_procs": n_procs,
        "wall_s": round(wall, 4),
        "events_per_sec": round(sim.dispatched / wall),
        **_account(sim),
    }


def bench_hotloop_calendar(n_events: int, repeats: int = 3,
                           seed: int = 0) -> dict:
    """Calendar-queue drain throughput: batched same-timestamp dispatch.

    Waves of 64 timers share each timestamp, armed before the clock
    starts, so the measurement is pop_batch plus the batch dispatch loop
    with nothing else in the frame.  Best-of-``repeats`` damps scheduler
    noise on shared runners; this is the row the >= 2M ev/s gate reads.
    """
    wave = 64
    n_waves = n_events // wave
    best = None
    for _ in range(repeats):
        sim = Simulator(seed=seed, scheduler="calendar")
        for w in range(n_waves):
            when = w * 100e-9
            for _ in range(wave):
                sim.timeout(when)
        t0 = time.perf_counter()  # simlint: disable=wall-clock
        sim.run()
        wall = time.perf_counter() - t0  # simlint: disable=wall-clock
        if best is None or wall < best[0]:
            best = (wall, sim)
    wall, sim = best
    return {
        "mode": "hot-loop-calendar",
        "wave": wave,
        "n_waves": n_waves,
        "repeats": repeats,
        "wall_s": round(wall, 4),
        "events_per_sec": round(sim.dispatched / wall),
        **_account(sim),
    }


def bench_chaos(quick: bool, seed: int = 1) -> dict:
    """The fig_chaos configuration end to end, with engine accounting."""
    cl = Cluster(ClusterConfig(
        n_nodes=2, threads_per_rank=4, lock="ticket", seed=seed,
        faults=FaultPlan(drop=0.01), reliability=True,
    ))
    cfg = ThroughputConfig(msg_size=1024, window=32,
                           n_windows=4 if quick else 16)
    t0 = time.perf_counter()  # simlint: disable=wall-clock
    res = run_throughput(cl, cfg)
    wall = time.perf_counter() - t0  # simlint: disable=wall-clock
    retx = sum(rt.rel_stats.retransmits for rt in cl.runtimes)
    return {
        "mode": "chaos-macro",
        "threads_per_rank": 4,
        "msg_rate_k": round(res.msg_rate_k, 1),
        "retransmits": retx,
        "wall_s": round(wall, 4),
        "events_per_sec": round(cl.sim.dispatched / wall),
        **_account(cl.sim),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="CI-sized runs (same scenarios, smaller N)")
    ap.add_argument("--budget", type=float, default=120.0,
                    help="wall-clock budget in seconds for the whole run")
    args = ap.parse_args(argv)

    n_retransmit = 20_000 if args.quick else 150_000
    n_hotloop = 40_000 if args.quick else 400_000

    t0 = time.perf_counter()  # simlint: disable=wall-clock
    rows = [
        bench_retransmit(n_retransmit),
        bench_hotloop(n_hotloop),
        bench_hotloop_calendar(n_hotloop),
        bench_chaos(args.quick),
    ]
    total_wall = time.perf_counter() - t0  # simlint: disable=wall-clock

    payload = {
        "bench": "sim-core dispatch: cancellation + hot-path accounting",
        "quick": args.quick,
        "budget_s": args.budget,
        "total_wall_s": round(total_wall, 4),
        "min_savings": MIN_SAVINGS,
        "min_calendar_evs": MIN_CALENDAR_EVS,
        "rows": rows,
    }
    RESULTS.parent.mkdir(exist_ok=True)
    RESULTS.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"{'mode':>18} {'sched':>9} {'dispatched':>11} {'skipped':>9} "
          f"{'savings':>8} {'compact':>8} {'ev/s':>10} {'wall_s':>8}")
    for r in rows:
        print(f"{r['mode']:>18} {r['scheduler']:>9} {r['dispatched']:>11} "
              f"{r['skipped']:>9} {r['savings']:>8.1%} {r['compactions']:>8} "
              f"{r['events_per_sec']:>10} {r['wall_s']:>8.3f}")
    print(f"written to {RESULTS}")

    ok = True
    savings = rows[0]["savings"]
    if savings < MIN_SAVINGS:
        print(f"FAIL: retransmit-1pct savings {savings:.1%} < {MIN_SAVINGS:.0%}")
        ok = False
    else:
        print(f"ok: retransmit-1pct eliminates {savings:.1%} of dispatches "
              f"(gate: >= {MIN_SAVINGS:.0%})")
    cal_evs = next(r for r in rows
                   if r["mode"] == "hot-loop-calendar")["events_per_sec"]
    if cal_evs < MIN_CALENDAR_EVS:
        print(f"FAIL: hot-loop-calendar {cal_evs} ev/s < {MIN_CALENDAR_EVS}")
        ok = False
    else:
        print(f"ok: hot-loop-calendar sustains {cal_evs} ev/s "
              f"(gate: >= {MIN_CALENDAR_EVS})")
    if total_wall > args.budget:
        print(f"FAIL: wall {total_wall:.1f}s over budget {args.budget:.0f}s")
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
