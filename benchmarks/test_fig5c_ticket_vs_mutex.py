"""Fig. 5c: message-size sweep at 8 threads, ticket vs mutex
(paper: +30% below 4 KiB, converging by 32 KiB)."""


def test_fig5c_ticket_vs_mutex(figure):
    figure("fig5c")
