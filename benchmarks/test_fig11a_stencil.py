"""Fig. 11a: 3D stencil strong scaling
(paper: fair locks win for small per-core problems; convergence for
large)."""


def test_fig11a_stencil(figure):
    figure("fig11a")
