"""Fig. 5a: dangling requests, mutex vs ticket
(paper: ticket keeps them very low)."""


def test_fig5a_dangling_ticket(figure):
    figure("fig5a")
