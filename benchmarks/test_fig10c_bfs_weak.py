"""Fig. 10c: BFS weak scaling, 8 threads per rank
(paper: ~2x improvement for fair locks)."""


def test_fig10c_bfs_weak(figure):
    figure("fig10c")
