"""Micro-benchmark: what the reliability layer costs and what it buys.

Runs the pt2pt streaming workload at 4 threads/rank in three modes and
records, per mode:

* **events_per_sec** -- host-side simulator throughput (scheduled events
  per wall second): what the fault/ACK machinery costs *us*;
* **msg_rate_k** -- simulated message rate (10^3 msgs/s);
* **retransmits / acks / drops** -- reliability traffic counters.

Modes:

* ``baseline``        -- no faults, no reliability (the seed behaviour);
* ``rel-no-loss``     -- reliability on over a perfect fabric: the pure
  overhead of ACK tracking (should show zero retransmits);
* ``rel-1pct-drop``   -- reliability on at 1% internode drop: the cost
  of actually recovering.

The baseline is committed at ``results/BENCH_faults.json`` so future
changes to the fault layer can be diffed against it::

    PYTHONPATH=src python benchmarks/bench_faults.py
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.faults import FaultPlan
from repro.mpi import Cluster, ClusterConfig
from repro.workloads import ThroughputConfig, run_throughput

RESULTS = pathlib.Path(__file__).parent / "results" / "BENCH_faults.json"

THREADS = 4
CFG = dict(msg_size=1024, window=32, n_windows=4)

# The lossy mode used to disable the watchdog because its pending timer
# padded the post-workload drain (which run_throughput's elapsed time
# includes); Cluster.run now *cancels* that timer at shutdown, so the
# watchdog can stay on without skewing the measurement.
MODES = (
    ("baseline", None, None),
    ("rel-no-loss", None, True),
    ("rel-1pct-drop", FaultPlan(drop=0.01), True),
)


def bench_one(mode: str, faults, reliability, seed: int = 1) -> dict:
    cl = Cluster(ClusterConfig(
        n_nodes=2, threads_per_rank=THREADS, lock="ticket", seed=seed,
        faults=faults, reliability=reliability,
    ))
    # Count scheduled events by wrapping the simulator's scheduler: the
    # engine keeps no processed-event counter and scheduled == processed
    # once the heap runs dry.
    n_events = 0
    schedule = cl.sim._schedule

    def counting_schedule(event, delay):
        nonlocal n_events
        n_events += 1
        return schedule(event, delay)

    cl.sim._schedule = counting_schedule
    t0 = time.perf_counter()  # simlint: disable=wall-clock
    res = run_throughput(cl, ThroughputConfig(**CFG))
    wall = time.perf_counter() - t0  # simlint: disable=wall-clock
    retx = acks = 0
    for rt in cl.runtimes:
        if rt.rel_stats is not None:
            retx += rt.rel_stats.retransmits
            acks += rt.rel_stats.acks_received
    drops = cl.fault_injector.stats.total_drops if cl.fault_injector else 0
    return {
        "mode": mode,
        "threads_per_rank": THREADS,
        "events": n_events,
        "wall_s": round(wall, 4),
        "events_per_sec": round(n_events / wall),
        "msg_rate_k": res.msg_rate_k,
        "retransmits": retx,
        "acks": acks,
        "drops": drops,
    }


def main() -> None:
    rows = [bench_one(mode, faults, rel) for mode, faults, rel in MODES]
    base = rows[0]["msg_rate_k"]
    for r in rows:
        r["rate_vs_baseline"] = round(r["msg_rate_k"] / base, 4)
    payload = {
        "bench": "fault injection + ACK/retransmit (pt2pt, 2 ranks x 4 threads)",
        "workload": CFG,
        "rows": rows,
    }
    RESULTS.parent.mkdir(exist_ok=True)
    RESULTS.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"{'mode':>14} {'events':>9} {'ev/s':>9} {'msg rate (k/s)':>15} "
          f"{'vs base':>8} {'rtx':>5} {'acks':>6} {'drops':>6}")
    for r in rows:
        print(f"{r['mode']:>14} {r['events']:>9} {r['events_per_sec']:>9} "
              f"{r['msg_rate_k']:>15.1f} {r['rate_vs_baseline']:>8.3f} "
              f"{r['retransmits']:>5} {r['acks']:>6} {r['drops']:>6}")
    print(f"written to {RESULTS}")


if __name__ == "__main__":
    main()
