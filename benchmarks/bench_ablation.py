"""Micro-benchmark: multiprocess ablation sweep vs serial.

The DES is single-threaded, so an ablation matrix is embarrassingly
parallel: the pool's speedup is the wall-time argument for running
paper-scale sweeps (and CI) through ``repro ablate --jobs N``.

Runs the fig2b x (lock, sharding, scheduler) leave-one-out matrix (4
cells) twice -- serial, then through a 2-worker spawn pool -- and
records wall time and per-cell metrics in
``results/BENCH_ablation.json``.

**Identity gate** (deterministic, enforced here): the pooled sweep must
produce record-for-record the same journal as the serial sweep --
worker processes add parallelism, never divergence.  The speedup itself
is recorded but not gated: on a 2-core CI box the spawn/import overhead
of a 4-cell quick matrix can eat most of it.

::

    PYTHONPATH=src python benchmarks/bench_ablation.py
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.analysis.ablation import build_matrix, run_matrix
from repro.analysis.report import format_table

RESULTS = pathlib.Path(__file__).parent / "results" / "BENCH_ablation.json"

EXPERIMENTS = ["fig2b"]
COMPONENTS = ["lock", "sharding", "scheduler"]
JOBS = 2


def sweep(jobs: int) -> tuple:
    cells = build_matrix(EXPERIMENTS, components=COMPONENTS, seed=0,
                         quick=True)
    t0 = time.perf_counter()  # simlint: disable=wall-clock
    records = run_matrix(cells, jobs=jobs)
    wall = time.perf_counter() - t0  # simlint: disable=wall-clock
    return records, wall


def main() -> int:
    serial, serial_wall = sweep(jobs=1)
    pooled, pooled_wall = sweep(jobs=JOBS)

    key = lambda r: r["run_id"]  # noqa: E731
    identical = sorted(serial, key=key) == sorted(pooled, key=key)
    speedup = serial_wall / pooled_wall if pooled_wall else 0.0

    rows = [
        ["serial", f"{serial_wall:.2f}", "1.00x"],
        [f"pool ({JOBS} workers)", f"{pooled_wall:.2f}", f"{speedup:.2f}x"],
    ]
    print(format_table(
        ["executor", "wall (s)", "speedup"], rows,
        title=f"ablation sweep: {len(serial)} cells "
              f"({'+'.join(EXPERIMENTS)} x {len(COMPONENTS)} components)",
    ))
    print(f"pool/serial records identical: {identical}")

    RESULTS.parent.mkdir(exist_ok=True)
    RESULTS.write_text(json.dumps({
        "experiments": EXPERIMENTS,
        "components": COMPONENTS,
        "cells": len(serial),
        "serial_wall_s": round(serial_wall, 3),
        "pool_wall_s": round(pooled_wall, 3),
        "pool_workers": JOBS,
        "speedup": round(speedup, 3),
        "records_identical": identical,
        "cell_metrics": {
            r["label"]: r.get("metrics") for r in serial
        },
    }, indent=2) + "\n")
    print(f"results written to {RESULTS}")

    if not identical:
        print("FAIL: pooled sweep diverged from serial")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
