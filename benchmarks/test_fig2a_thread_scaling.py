"""Fig. 2a: multithreaded throughput vs message size under the mutex --
degradation proportional to thread count (paper: up to 4x)."""


def test_fig2a_thread_scaling(figure):
    figure("fig2a")
