"""Fig. 12b: mini-SWAP assembly strong scaling
(paper: ~2x speedup for fair locks, flat across core counts)."""


def test_fig12b_assembly(figure):
    figure("fig12b")
