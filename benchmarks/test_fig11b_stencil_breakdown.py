"""Fig. 11b: stencil execution breakdown
(paper: MPI share shrinks with problem size)."""


def test_fig11b_stencil_breakdown(figure):
    figure("fig11b")
