"""Fig. 8b: latency for all methods (paper: ticket up to 3.5x lower
than mutex; multithreaded beats single-threaded for large messages)."""


def test_fig8b_latency_all(figure):
    figure("fig8b")
