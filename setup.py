"""Setup shim for environments without the `wheel` package.

Allows ``pip install -e . --no-build-isolation --no-use-pep517`` to fall back
to the legacy ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
