"""Behavioural tests: the arbitration phenomena the paper builds on.

These check that the *mechanisms* of 2.2/4.3 emerge from the timing
model: mutex monopolization by the releasing thread, ticket FIFO order,
priority ordering of the custom lock, and socket capture by the
socket-aware variant.
"""


from repro.locks import (
    LockTrace,
    Priority,
    PriorityTicketLock,
    PthreadMutexModel,
    SocketAwareLock,
    TicketLock,
    make_lock,
)
from repro.machine import NS, compact_binding, scatter_binding

from ..conftest import hammer, make_threads


def test_mutex_monopolization_emerges(sim, machine, costs):
    """A releasing thread re-CASes in ns while futex wakes take us, so
    consecutive reacquisition dominates (paper 4.3)."""
    trace = LockTrace()
    lock = PthreadMutexModel(sim, costs, trace=trace)
    threads = make_threads(machine, 4)
    hammer(sim, lock, threads, n_iters=200, hold_time=150 * NS, gap_time=30 * NS)
    assert trace.consecutive_reacquire_fraction() > 0.5


def test_ticket_no_monopolization(sim, machine, costs):
    """Under the same workload the ticket lock round-robins."""
    trace = LockTrace()
    lock = TicketLock(sim, costs, trace=trace)
    threads = make_threads(machine, 4)
    hammer(sim, lock, threads, n_iters=200, hold_time=150 * NS, gap_time=30 * NS)
    assert trace.consecutive_reacquire_fraction() < 0.1


def _max_run_length(tids):
    best = run = 1
    for a, b in zip(tids, tids[1:]):
        run = run + 1 if a == b else 1
        best = max(best, run)
    return best


def test_mutex_long_monopoly_episodes_ticket_short(machine, costs):
    """Mutex serves the same thread in long bursts (starving the rest for
    that period); ticket never serves anyone twice in a row while others
    wait."""
    from repro.sim import Simulator

    def run(kind):
        s = Simulator(seed=7)
        trace = LockTrace()
        lock = make_lock(kind, s, costs, trace=trace)
        threads = make_threads(machine, 4)

        def worker(ctx):
            while s.now < 200e-6:
                yield from lock.acquire(ctx)
                yield s.timeout(150 * NS)
                lock.release(ctx)
                yield s.timeout(30 * NS)

        for t in threads:
            s.process(worker(t))
        s.run()
        return trace

    mutex_trace = run("mutex")
    ticket_trace = run("ticket")
    assert _max_run_length(mutex_trace.tids) > 10
    assert _max_run_length(ticket_trace.tids) <= 2
    # Ticket still balances totals.
    counts = sorted(ticket_trace.acquisitions_by_tid().values())
    assert counts[-1] <= 1.2 * counts[0]


def test_ticket_fifo_order(sim, machine, costs):
    """Threads that request in a known order acquire in that order."""
    lock = TicketLock(sim, costs)
    threads = make_threads(machine, 4)
    order = []

    def worker(ctx, delay):
        yield sim.timeout(delay)
        yield from lock.acquire(ctx)
        order.append(ctx.name)
        yield sim.timeout(1000 * NS)
        lock.release(ctx)

    # Stagger arrivals by 100ns: t0, t1, t2, t3.
    for i, t in enumerate(threads):
        sim.process(worker(t, i * 100 * NS))
    sim.run()
    assert order == ["t0", "t1", "t2", "t3"]


def test_mutex_barging_beats_fifo(sim, machine, costs):
    """A late-arriving thread grabs a freshly-released mutex ahead of a
    sleeping earlier waiter (fastest-thread-first, paper 2.2)."""
    lock = PthreadMutexModel(sim, costs)
    a, b, c = make_threads(machine, 3)
    order = []

    def holder():
        yield from lock.acquire(a)
        yield sim.timeout(5000 * NS)  # long enough for b to park
        lock.release(a)

    def early_waiter():
        yield sim.timeout(100 * NS)
        yield from lock.acquire(b)  # arrives first, parks in futex
        order.append("early")
        lock.release(b)

    def late_barger():
        # Arrives just as the lock is released: CAS wins vs futex wake.
        yield sim.timeout(5001 * NS)
        yield from lock.acquire(c)
        order.append("late")
        yield sim.timeout(100 * NS)
        lock.release(c)

    sim.process(holder())
    sim.process(early_waiter())
    sim.process(late_barger())
    sim.run()
    assert order == ["late", "early"]


def test_priority_high_preempts_queued_low(sim, machine, costs):
    """With highs and lows queued, all highs run before the lows pass."""
    lock = PriorityTicketLock(sim, costs)
    threads = make_threads(machine, 6)
    order = []

    def worker(ctx, prio, delay, label):
        yield sim.timeout(delay)
        yield from lock.acquire(ctx, priority=prio)
        order.append(label)
        yield sim.timeout(2000 * NS)
        lock.release(ctx)

    # One low takes the lock first; then 2 highs and 2 lows queue up.
    sim.process(worker(threads[0], Priority.LOW, 0.0, "low0"))
    sim.process(worker(threads[1], Priority.LOW, 200 * NS, "low1"))
    sim.process(worker(threads[2], Priority.HIGH, 400 * NS, "high0"))
    sim.process(worker(threads[3], Priority.HIGH, 600 * NS, "high1"))
    sim.process(worker(threads[4], Priority.LOW, 800 * NS, "low2"))
    sim.run()
    assert order[0] == "low0"
    # Both highs run before the queued lows (the B lock blocks the
    # low class while highs keep arriving).
    assert order.index("high0") < order.index("low1")
    assert order.index("high1") < order.index("low1")
    # Lows are FIFO among themselves.
    assert order.index("low1") < order.index("low2")


def test_priority_fair_within_class(sim, machine, costs):
    """All-high workload degenerates to ticket-like fairness (paper 6.2.1)."""
    trace = LockTrace()
    lock = PriorityTicketLock(sim, costs, trace=trace)
    threads = make_threads(machine, 4)
    hammer(sim, lock, threads, n_iters=100, hold_time=150 * NS,
           gap_time=30 * NS, priority=Priority.HIGH)
    counts = sorted(trace.acquisitions_by_tid().values())
    assert counts[-1] <= 1.2 * counts[0]
    assert trace.consecutive_reacquire_fraction() < 0.1


def test_priority_low_only_also_fair(sim, machine, costs):
    trace = LockTrace()
    lock = PriorityTicketLock(sim, costs, trace=trace)
    threads = make_threads(machine, 4)
    hammer(sim, lock, threads, n_iters=50, hold_time=150 * NS,
           gap_time=30 * NS, priority=Priority.LOW)
    counts = sorted(trace.acquisitions_by_tid().values())
    assert counts[-1] <= 1.3 * counts[0]


def test_priority_mixed_classes_no_deadlock(sim, machine, costs):
    """Interleaved high/low acquisitions by the same threads complete."""
    lock = PriorityTicketLock(sim, costs)
    threads = make_threads(machine, 4)
    done = []

    def worker(ctx, i):
        for j in range(50):
            prio = Priority.HIGH if (i + j) % 2 == 0 else Priority.LOW
            yield from lock.acquire(ctx, priority=prio)
            yield sim.timeout(100 * NS)
            lock.release(ctx)
            yield sim.timeout(20 * NS)
        done.append(i)

    for i, t in enumerate(threads):
        sim.process(worker(t, i))
    sim.run()
    assert sorted(done) == [0, 1, 2, 3]


def test_socket_aware_prefers_same_socket(sim, machine, costs):
    """With waiters on both sockets, the same-socket one is served first
    even if it arrived later."""
    lock = SocketAwareLock(sim, costs)
    threads = make_threads(machine, 8)  # compact: 0-3 socket0, 4-7 socket1
    holder, remote, local = threads[0], threads[4], threads[1]
    order = []

    def hold():
        yield from lock.acquire(holder)
        yield sim.timeout(3000 * NS)
        lock.release(holder)

    def waiter(ctx, delay, label):
        yield sim.timeout(delay)
        yield from lock.acquire(ctx)
        order.append(label)
        yield sim.timeout(100 * NS)
        lock.release(ctx)

    sim.process(hold())
    sim.process(waiter(remote, 500 * NS, "remote"))   # arrives first
    sim.process(waiter(local, 1000 * NS, "local"))    # same socket as holder
    sim.run()
    assert order == ["local", "remote"]


def test_socket_aware_can_starve_remote_socket(sim, machine, costs):
    """Continuous same-socket demand captures the lock (paper 7)."""
    from repro.sim import Simulator

    s = Simulator(seed=3)
    trace = LockTrace()
    lock = SocketAwareLock(s, costs, trace=trace)
    threads = make_threads(machine, 4, binding=scatter_binding)
    # threads 0,2 on socket0; 1,3 on socket1
    got = {t.tid: 0 for t in threads}

    def worker(ctx):
        while s.now < 100e-6:
            yield from lock.acquire(ctx)
            got[ctx.tid] += 1
            yield s.timeout(200 * NS)
            lock.release(ctx)
            yield s.timeout(10 * NS)  # re-request almost immediately

    for t in threads:
        s.process(worker(t))
    s.run()
    per_socket = {0: 0, 1: 0}
    for t in threads:
        per_socket[t.socket] += got[t.tid]
    lo, hi = sorted(per_socket.values())
    # One socket ends up with the overwhelming majority.
    assert hi > 5 * max(1, lo)


def test_ticket_scatter_slower_than_compact(machine, costs):
    """Every ticket hand-off pays the line-transfer distance, so a scatter
    binding (hand-offs cross sockets) is slower than compact (paper 5.1:
    'the ticket method incurs more intersocket synchronization')."""
    from repro.sim import Simulator

    def total_time(binding):
        s = Simulator(seed=11)
        lock = TicketLock(s, costs)
        threads = make_threads(machine, 4, binding=binding)

        def worker(ctx):
            for _ in range(300):
                yield from lock.acquire(ctx)
                yield s.timeout(150 * NS)
                lock.release(ctx)
                yield s.timeout(30 * NS)

        for t in threads:
            s.process(worker(t))
        s.run()
        return s.now

    assert total_time(scatter_binding) > 1.1 * total_time(compact_binding)


def test_mutex_cas_race_favours_same_socket(machine, costs):
    """Simultaneous CAS attempts: the thread on the line owner's socket
    completes its RMW sooner and wins the race (paper 4.3: 'the thread
    that releases the lock dirties the cache line holding the lock, which
    makes it most favorable for other threads closest to this cache')."""
    from repro.sim import Simulator

    wins = {"near": 0, "far": 0}
    for seed in range(60):
        s = Simulator(seed=seed)
        lock = PthreadMutexModel(s, costs)
        owner = make_threads(machine, 1)[0]              # core 0
        near = make_threads(machine, 2)[1]               # core 1, socket 0
        far_core = machine.core(4)                       # socket 1
        from repro.machine import ThreadCtx

        far = ThreadCtx(far_core, name="far")
        first = []

        def prime():
            yield from lock.acquire(owner)
            yield s.timeout(100 * NS)
            lock.release(owner)  # line now dirty in core 0's cache

        def racer(ctx, label):
            yield s.timeout(200 * NS)  # both CAS at the same instant
            yield from lock.acquire(ctx)
            first.append(label)
            yield s.timeout(500 * NS)
            lock.release(ctx)

        s.process(prime())
        s.process(racer(near, "near"))
        s.process(racer(far, "far"))
        s.run()
        wins[first[0]] += 1

    assert wins["near"] > 0.85 * sum(wins.values())
