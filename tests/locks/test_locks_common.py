"""Invariants every lock implementation must satisfy."""

import pytest

from repro.locks import LOCK_CLASSES, LockError, LockTrace, make_lock
from repro.machine import NS

from ..conftest import hammer, make_threads

CONTENDED = [k for k in LOCK_CLASSES if k != "null"]


@pytest.mark.parametrize("kind", CONTENDED)
def test_mutual_exclusion_under_contention(kind, sim, machine, costs):
    lock = make_lock(kind, sim, costs)
    threads = make_threads(machine, 8)
    checker = hammer(sim, lock, threads, n_iters=30,
                     hold_time=150 * NS, gap_time=50 * NS)
    assert len(checker.entries) == 8 * 30


@pytest.mark.parametrize("kind", CONTENDED)
def test_all_threads_eventually_acquire(kind, sim, machine, costs):
    lock = make_lock(kind, sim, costs)
    threads = make_threads(machine, 4)
    checker = hammer(sim, lock, threads, n_iters=10,
                     hold_time=100 * NS, gap_time=100 * NS)
    tids = {tid for _, tid in checker.entries}
    assert tids == {t.tid for t in threads}


@pytest.mark.parametrize("kind", sorted(LOCK_CLASSES))
def test_uncontended_acquire_release(kind, sim, machine, costs):
    lock = make_lock(kind, sim, costs)
    (t,) = make_threads(machine, 1)
    done = []

    def proc():
        for _ in range(5):
            yield from lock.acquire(t)
            assert lock.owner is t
            lock.release(t)
            assert lock.owner is None
        done.append(True)

    sim.process(proc())
    sim.run()
    assert done == [True]


@pytest.mark.parametrize("kind", sorted(LOCK_CLASSES))
def test_release_unheld_raises(kind, sim, machine, costs):
    lock = make_lock(kind, sim, costs)
    (t,) = make_threads(machine, 1)
    with pytest.raises(LockError):
        lock.release(t)


@pytest.mark.parametrize("kind", ["mutex", "tas", "null"])
def test_strict_owner_release_by_other_raises(kind, sim, machine, costs):
    lock = make_lock(kind, sim, costs)
    a, b = make_threads(machine, 2)
    seen = []

    def proc():
        yield from lock.acquire(a)
        try:
            lock.release(b)
        except LockError:
            seen.append("raised")
        lock.release(a)

    sim.process(proc())
    sim.run()
    assert seen == ["raised"]


@pytest.mark.parametrize("kind", CONTENDED)
def test_double_acquire_by_same_thread_raises(kind, sim, machine, costs):
    lock = make_lock(kind, sim, costs)
    (t,) = make_threads(machine, 1)
    caught = []

    def holder():  # simlint: disable=lock-pairing (deliberate double acquire)
        yield from lock.acquire(t)
        try:
            yield from lock.acquire(t)
        except LockError:
            caught.append(True)
        lock.release(t)

    sim.process(holder())
    sim.run()
    assert caught == [True]


@pytest.mark.parametrize("kind", CONTENDED)
def test_trace_records_every_acquisition(kind, sim, machine, costs):
    trace = LockTrace()
    lock = make_lock(kind, sim, costs, trace=trace)
    threads = make_threads(machine, 4)
    hammer(sim, lock, threads, n_iters=5, hold_time=100 * NS, gap_time=100 * NS)
    assert len(trace) == 20
    assert len(trace.hold_times) == 20
    arrays = trace.as_arrays()
    assert (arrays["hold_times"] > 0).all()
    assert (arrays["n_contenders"] >= 1).all()
    # Time stamps are non-decreasing.
    assert (arrays["times"][1:] >= arrays["times"][:-1]).all()
    assert sum(trace.acquisitions_by_tid().values()) == 20


@pytest.mark.parametrize("kind", CONTENDED)
def test_acquisition_takes_nonzero_time(kind, sim, machine, costs):
    lock = make_lock(kind, sim, costs)
    (t,) = make_threads(machine, 1)

    def proc():
        t0 = sim.now
        yield from lock.acquire(t)
        assert sim.now > t0  # at least one atomic op was charged
        lock.release(t)

    sim.process(proc())
    sim.run()


def test_make_lock_unknown_kind():
    import pytest as _pytest

    from repro.machine import CostModel
    from repro.sim import Simulator

    with _pytest.raises(ValueError, match="unknown lock kind"):
        make_lock("bogus", Simulator(), CostModel())
