"""Behavioural tests for the CLH and cohort locks (extensions)."""

import pytest

from repro.locks import CLHLock, CohortTicketLock, LockTrace, TicketLock
from repro.machine import NS, scatter_binding
from repro.sim import Simulator

from ..conftest import make_threads


def test_clh_fifo_order(sim, machine, costs):
    lock = CLHLock(sim, costs)
    threads = make_threads(machine, 4)
    order = []

    def worker(ctx, delay):
        yield sim.timeout(delay)
        yield from lock.acquire(ctx)
        order.append(ctx.name)
        yield sim.timeout(1000 * NS)
        lock.release(ctx)

    for i, t in enumerate(threads):
        sim.process(worker(t, i * 100 * NS))
    sim.run()
    assert order == ["t0", "t1", "t2", "t3"]


def test_clh_matches_mcs_performance(machine, costs):
    """CLH and MCS differ only in which line carries the hand-off; the
    model treats them identically."""
    from repro.locks import MCSLock

    def total(cls):
        s = Simulator(seed=2)
        lock = cls(s, costs)
        threads = make_threads(machine, 4)

        def worker(ctx):
            for _ in range(100):
                yield from lock.acquire(ctx)
                yield s.timeout(150 * NS)
                lock.release(ctx)
                yield s.timeout(30 * NS)

        for t in threads:
            s.process(worker(t))
        s.run()
        return s.now

    assert total(CLHLock) == pytest.approx(total(MCSLock), rel=0.05)


def test_cohort_bad_handover_rejected(sim, costs):
    with pytest.raises(ValueError):
        CohortTicketLock(sim, costs, max_handover=0)


def test_cohort_batches_local_handoffs(sim, machine, costs):
    """With waiters on both sockets, hand-offs stay local up to the
    handover bound, so local transfers dominate."""
    lock = CohortTicketLock(sim, costs, max_handover=4)
    threads = make_threads(machine, 8)  # compact: 4 + 4 per socket

    def worker(ctx):
        for _ in range(50):
            yield from lock.acquire(ctx)
            yield sim.timeout(150 * NS)
            lock.release(ctx)
            yield sim.timeout(20 * NS)

    for t in threads:
        sim.process(worker(t))
    sim.run()
    assert lock.local_handoffs > 2 * lock.remote_handoffs
    assert lock.remote_handoffs > 0  # the bound forces migrations


def test_cohort_bounded_starvation(machine, costs):
    """Unlike SocketAwareLock, the cohort lock cannot capture a socket:
    acquisition counts stay balanced across sockets."""
    s = Simulator(seed=3)
    trace = LockTrace()
    lock = CohortTicketLock(s, costs, trace=trace, max_handover=8)
    threads = make_threads(machine, 4, binding=scatter_binding)
    got = {t.tid: 0 for t in threads}

    def worker(ctx):
        while s.now < 100e-6:
            yield from lock.acquire(ctx)
            got[ctx.tid] += 1
            yield s.timeout(200 * NS)
            lock.release(ctx)
            yield s.timeout(10 * NS)

    for t in threads:
        s.process(worker(t))
    s.run()
    per_socket = {0: 0, 1: 0}
    for t in threads:
        per_socket[t.socket] += got[t.tid]
    lo, hi = sorted(per_socket.values())
    assert hi <= 1.5 * lo  # bounded imbalance (socket-aware was > 5x)


def test_cohort_faster_than_ticket_under_scatter(machine, costs):
    """Batching intersocket hand-offs pays off exactly where the paper
    found the ticket lock weakest (scatter bindings, 5.1)."""

    def total(kind_cls, **kw):
        s = Simulator(seed=5)
        lock = kind_cls(s, costs, **kw)
        threads = make_threads(machine, 8, binding=scatter_binding)

        def worker(ctx):
            for _ in range(200):
                yield from lock.acquire(ctx)
                yield s.timeout(150 * NS)
                lock.release(ctx)
                yield s.timeout(20 * NS)

        for t in threads:
            s.process(worker(t))
        s.run()
        return s.now

    t_ticket = total(TicketLock)
    t_cohort = total(CohortTicketLock, max_handover=8)
    assert t_cohort < t_ticket


def test_cohort_streak_resets_when_remote_queue_empty(sim, machine, costs):
    """All-local traffic never migrates (no remote waiters)."""
    lock = CohortTicketLock(sim, costs, max_handover=2)
    threads = make_threads(machine, 4)  # all socket 0

    def worker(ctx):
        for _ in range(20):
            yield from lock.acquire(ctx)
            yield sim.timeout(100 * NS)
            lock.release(ctx)
            yield sim.timeout(20 * NS)

    for t in threads:
        sim.process(worker(t))
    sim.run()
    assert lock.remote_handoffs == 0
