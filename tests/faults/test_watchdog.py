"""The progress watchdog: hangs become diagnosable aborts, and healthy
(or merely degraded) runs are left alone."""

import pytest

from repro.faults import FaultPlan, ProgressStallError, ProgressWatchdog
from repro.mpi import Cluster, ClusterConfig
from repro.obs import Instrument

pytestmark = pytest.mark.faults


def _lossy_cluster(bus=None):
    """1 thread/rank over a total-loss fabric, reliability OFF: the
    receiver's message is gone and nothing will ever retransmit it."""
    return Cluster(ClusterConfig(
        n_nodes=2, ranks_per_node=1, threads_per_rank=1, lock="mutex",
        seed=9, obs=bus,
        faults=FaultPlan(drop=1.0, watchdog_interval_ns=20_000.0,
                         watchdog_grace=3),
    ))


def _lost_message_workload(cl):
    t0, t1 = cl.thread(0), cl.thread(1)

    def sender():
        yield from t0.send(1, 256, tag=0, data="lost")

    def receiver():
        yield from t1.recv(source=0, tag=0)  # pragma: no cover - hangs

    return [sender(), receiver()]


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        ProgressWatchdog(None, interval=0.0)


def test_stall_error_diagnostics_default_empty():
    assert ProgressStallError("boom").diagnostics == {}


def test_lossy_run_without_reliability_aborts_with_dump():
    bus = Instrument()
    events = []
    bus.subscribe(events.append, categories=("fault",))
    cl = _lossy_cluster(bus)
    with pytest.raises(ProgressStallError) as exc_info:
        cl.run_workload(_lost_message_workload(cl))
    diag = exc_info.value.diagnostics
    assert len(diag["ranks"]) == 2
    for rank_dump in diag["ranks"]:
        assert "domains" in rank_dump
        for d in rank_dump["domains"]:
            assert {"recv_q", "posted_q", "unexp_q",
                    "lock_holder", "dangling"} <= set(d)
    assert cl.watchdog.stalled
    assert any(ev.name == "watchdog.stall" for ev in events)
    assert any(ev.name == "watchdog.dump" for ev in events)


def test_harmless_plan_does_not_trip_the_watchdog():
    # Reordering delays packets but loses nothing: the run completes
    # normally under an installed watchdog.
    cl = Cluster(ClusterConfig(
        n_nodes=2, ranks_per_node=1, threads_per_rank=1, lock="ticket",
        seed=4, faults=FaultPlan(reorder=1.0),
    ))
    t0, t1 = cl.thread(0), cl.thread(1)
    got = []

    def sender():
        for i in range(8):
            yield from t0.send(1, 256, tag=i, data=i)

    def receiver():
        for i in range(8):
            got.append((yield from t1.recv(source=0, tag=i)))

    cl.run_workload([sender(), receiver()])
    assert got == list(range(8))
    assert cl.watchdog is not None and not cl.watchdog.stalled


def test_watchdog_can_be_disabled_by_plan():
    cl = Cluster(ClusterConfig(
        n_nodes=2, threads_per_rank=1, lock="ticket", seed=4,
        faults=FaultPlan(reorder=1.0, watchdog_interval_ns=0.0),
    ))
    assert cl.watchdog is None


def test_run_with_only_cancelled_timers_pending_is_idle():
    """Regression: the idle check must read the *live* event count.

    A heap holding nothing but cancelled timers is a finished run; the
    old raw ``queued_events`` (which counted dead entries) kept the
    watchdog sampling a frozen metric until it aborted a run that was
    actually over."""
    from repro.sim import Simulator

    class _StubCluster:
        def __init__(self, sim):
            self.sim = sim
            self.runtimes = []
            self._shutdown = False

    sim = Simulator(seed=0)
    wd = ProgressWatchdog(_StubCluster(sim), interval=10e-6, grace=2).install()
    # Dead timers pending far beyond the grace window.
    timers = [sim.call_after(1.0, lambda: None) for _ in range(5)]
    for t in timers:
        assert t.cancel()
    sim.run()  # must terminate cleanly, not raise ProgressStallError
    assert not wd.stalled
    assert sim.now < 1.0  # the dead timers were never dispatched


def test_stop_cancels_pending_sample_so_drain_is_not_padded():
    """Shutdown cancels the watchdog's next tick: the drain ends at the
    last real event instead of the next sampling interval."""
    cl = Cluster(ClusterConfig(
        n_nodes=2, ranks_per_node=1, threads_per_rank=1, lock="ticket",
        seed=4,
        faults=FaultPlan(reorder=1.0, watchdog_interval_ns=1e9),  # 1 s ticks
    ))
    t0, t1 = cl.thread(0), cl.thread(1)

    def sender():
        yield from t0.send(1, 256, tag=0, data="hi")

    def receiver():
        yield from t1.recv(source=0, tag=0)

    cl.run_workload([sender(), receiver()])
    assert cl.watchdog is not None and not cl.watchdog.stalled
    # A microsecond-scale workload must not drain through a 1 s tick.
    assert cl.sim.now < 0.5
    assert cl.sim.queued_events == 0


def test_backoff_quiet_period_is_not_a_stall():
    # Reliability on, heavy loss, tight watchdog budget: retransmit
    # activity counts as progress, so recovery is never misdiagnosed.
    # The backoff ceiling must stay below the grace window (the
    # ReliabilityConfig invariant), so cap it explicitly here.
    from repro.faults import ReliabilityConfig

    cl = Cluster(ClusterConfig(
        n_nodes=2, threads_per_rank=1, lock="ticket", seed=8,
        faults=FaultPlan(drop=0.3, watchdog_interval_ns=20_000.0,
                         watchdog_grace=3),
        reliability=ReliabilityConfig(rto_ns=5_000.0, rto_max_ns=40_000.0),
    ))
    t0, t1 = cl.thread(0), cl.thread(1)
    got = []

    def sender():
        for i in range(16):
            yield from t0.send(1, 256, tag=i, data=i)

    def receiver():
        for i in range(16):
            got.append((yield from t1.recv(source=0, tag=i)))

    cl.run_workload([sender(), receiver()])
    assert got == list(range(16))
    assert not cl.watchdog.stalled


def test_parked_waiters_under_total_loss_are_a_stall_not_idle():
    """Regression: event-driven waiters park on a bare activity Signal
    and hold no event in the queue.  Under total loss the queue runs
    dry while every thread is parked on a packet that will never come;
    the watchdog's idle check must see the parked waiters and keep
    sampling until it aborts, instead of mistaking the dry queue for a
    finished run and letting the hang surface as a generic
    out-of-events crash (or a silent success)."""
    cl = Cluster(ClusterConfig(
        n_nodes=2, ranks_per_node=1, threads_per_rank=1, lock="mutex",
        seed=9, event_driven_wait=True,
        faults=FaultPlan(drop=1.0, watchdog_interval_ns=20_000.0,
                         watchdog_grace=3),
    ))
    with pytest.raises(ProgressStallError):
        cl.run_workload(_lost_message_workload(cl))
    assert cl.watchdog.stalled
    assert cl.watchdog.diagnostics is not None


def test_on_warning_fires_before_the_abort():
    """The early-warning hook (half the grace period) runs exactly once
    per stall episode, before the ProgressStallError -- the degraded-
    mode controller's trigger."""
    cl = _lossy_cluster()
    warned = []
    cl.watchdog.on_warning.append(warned.append)
    with pytest.raises(ProgressStallError):
        cl.run_workload(_lost_message_workload(cl))
    assert warned == [max(1, cl.watchdog.grace // 2)]


def test_on_warning_not_fired_on_healthy_runs():
    cl = Cluster(ClusterConfig(
        n_nodes=2, ranks_per_node=1, threads_per_rank=1, lock="ticket",
        seed=4, faults=FaultPlan(reorder=1.0),
    ))
    warned = []
    cl.watchdog.on_warning.append(warned.append)
    t0, t1 = cl.thread(0), cl.thread(1)

    def sender():
        yield from t0.send(1, 256, tag=0, data="hi")

    def receiver():
        yield from t1.recv(source=0, tag=0)

    cl.run_workload([sender(), receiver()])
    assert warned == []
