"""The determinism contract of the fault layer.

Two halves:

* **Reproducibility** -- the same seed and the same plan produce the
  same drops, the same retransmits, the same goodput.
* **Zero-fault identity** -- an inactive plan (or ``reliability=None``)
  is bit-identical to a build that never heard of faults: same final
  simulated clock, same message rates, across the eager, rendezvous,
  N2N and RMA paths.  This is what lets the fault machinery ride in the
  hot path at the cost of one attribute check.
"""

import pytest

from repro.faults import FaultPlan
from repro.mpi import Cluster, ClusterConfig
from repro.workloads import (
    N2NConfig,
    RmaConfig,
    ThroughputConfig,
    run_n2n,
    run_rma,
    run_throughput,
    throughput_cluster,
)

pytestmark = pytest.mark.faults

TP_CFG = ThroughputConfig(msg_size=1024, n_windows=4)


def _lossy_run(seed):
    # Watchdog off: its periodic timer quantizes the final drain clock
    # to the sampling interval, masking genuine schedule differences.
    cl = throughput_cluster(
        lock="ticket", threads_per_rank=4, seed=seed,
        faults=FaultPlan(drop=0.01, watchdog_interval_ns=0.0),
        reliability=True,
    )
    res = run_throughput(cl, TP_CFG)
    retx = sum(rt.rel_stats.retransmits for rt in cl.runtimes)
    return res.msg_rate_k, retx, cl.fault_injector.stats.total_drops, cl.sim.now


def test_same_seed_same_plan_is_reproducible():
    assert _lossy_run(seed=5) == _lossy_run(seed=5)


def test_different_seed_differs():
    # Sanity check that the reproducibility test can fail at all: the
    # fault stream really is seeded.
    assert _lossy_run(seed=5)[3] != _lossy_run(seed=6)[3]


def _tp_fingerprint(**kw):
    cl = throughput_cluster(lock="mutex", threads_per_rank=4, seed=2, **kw)
    res = run_throughput(cl, TP_CFG)
    return res.msg_rate_k, res.dangling.mean, cl.sim.now


def test_zero_fault_identity_throughput():
    baseline = _tp_fingerprint()
    assert _tp_fingerprint(faults=FaultPlan.none()) == baseline
    assert _tp_fingerprint(faults="none") == baseline
    assert _tp_fingerprint(reliability=False) == baseline


def test_zero_fault_identity_rndv():
    # 64 KiB messages exercise the RTS/CTS/RNDV_DATA path.
    cfg = ThroughputConfig(msg_size=64 * 1024, window=4, n_windows=2)

    def fp(**kw):
        cl = throughput_cluster(lock="ticket", threads_per_rank=2, seed=3, **kw)
        res = run_throughput(cl, cfg)
        return res.msg_rate_k, cl.sim.now

    assert fp() == fp(faults=FaultPlan.none())


def test_zero_fault_identity_n2n():
    cfg = N2NConfig(msg_size=1024, window=2, n_windows=2)

    def fp(**kw):
        cl = Cluster(ClusterConfig(
            n_nodes=2, threads_per_rank=4, lock="priority", seed=4, **kw))
        res = run_n2n(cl, cfg)
        return res.msg_rate_k, cl.sim.now

    assert fp() == fp(faults=FaultPlan.none())


def test_zero_fault_identity_rma():
    cfg = RmaConfig(op="put", n_ops=32)

    def fp(**kw):
        cl = Cluster(ClusterConfig(
            n_nodes=2, threads_per_rank=2, lock="ticket", seed=6,
            async_progress=True, **kw))
        res = run_rma(cl, cfg)
        return res.rate_k, cl.sim.now

    assert fp() == fp(faults=FaultPlan.none())


def test_inactive_plan_installs_nothing():
    cl = throughput_cluster(lock="mutex", threads_per_rank=1, seed=1,
                            faults=FaultPlan.none())
    assert cl.fault_injector is None
    assert cl.watchdog is None
    assert cl.fabric.faults is None
