"""FaultPlan construction, validation and spec parsing."""

import pytest

from repro.faults import (
    DomainFailure,
    FaultPlan,
    InjectStall,
    LinkOutage,
    RankCrash,
    parse_fault_plan,
)

pytestmark = pytest.mark.faults


def test_default_plan_is_inactive():
    assert not FaultPlan().active
    assert not FaultPlan.none().active


def test_any_fault_source_activates():
    assert FaultPlan(drop=0.01).active
    assert FaultPlan(duplicate=0.5).active
    assert FaultPlan(reorder=0.1).active
    assert FaultPlan(outages=(LinkOutage(0, 0.0, 1.0),)).active
    assert FaultPlan(stalls=(InjectStall(0, 0.0, 1.0),)).active
    assert FaultPlan(crashes=(RankCrash(1, 0.5),)).active
    assert FaultPlan(domain_failures=(DomainFailure(0, 1, 0.5),)).active


def test_probabilities_validated():
    with pytest.raises(ValueError):
        FaultPlan(drop=1.5)
    with pytest.raises(ValueError):
        FaultPlan(duplicate=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(watchdog_grace=0)


def test_schedule_lists_coerced_to_tuples():
    plan = FaultPlan(crashes=[RankCrash(0, 1.0)])
    assert isinstance(plan.crashes, tuple)


def test_outage_validation_and_covers():
    with pytest.raises(ValueError):
        LinkOutage(0, start_s=2.0, end_s=1.0)
    with pytest.raises(ValueError):
        LinkOutage(0, 0.0, 1.0, drop=1.5)
    o = LinkOutage(0, start_s=1.0, end_s=2.0)
    assert not o.covers(0.5)
    assert o.covers(1.0)
    assert o.covers(1.5)
    assert not o.covers(2.0)  # half-open window


def test_stall_validation_and_covers():
    with pytest.raises(ValueError):
        InjectStall(0, 0.0, 1.0, extra_ns=-1.0)
    with pytest.raises(ValueError):
        InjectStall(0, start_s=2.0, end_s=1.0)
    s = InjectStall(0, 0.0, 1.0)
    assert s.covers(0.0)
    assert not s.covers(1.0)


def test_parse_basic_spec():
    plan = parse_fault_plan("drop=0.01,dup=0.001")
    assert plan.drop == 0.01
    assert plan.duplicate == 0.001
    assert plan.internode_only


def test_parse_none_and_empty():
    assert parse_fault_plan("none") == FaultPlan.none()
    assert parse_fault_plan("") == FaultPlan.none()
    assert parse_fault_plan(None) is None


def test_parse_passthrough_plan():
    plan = FaultPlan(drop=0.5)
    assert parse_fault_plan(plan) is plan


def test_parse_intranode_flag():
    assert not parse_fault_plan("drop=0.1,intranode=1").internode_only
    assert parse_fault_plan("drop=0.1,intranode=0").internode_only


def test_parse_int_fields_coerced():
    plan = parse_fault_plan("drop=0.1,watchdog_grace=3")
    assert plan.watchdog_grace == 3
    assert isinstance(plan.watchdog_grace, int)


def test_parse_unknown_key_rejected():
    with pytest.raises(ValueError, match="valid keys"):
        parse_fault_plan("dorp=0.01")


def test_parse_malformed_item_rejected():
    with pytest.raises(ValueError, match="key=value"):
        parse_fault_plan("drop")


def test_spec_round_trips():
    plan = FaultPlan(drop=0.01, duplicate=0.001)
    assert parse_fault_plan(plan.spec()) == plan
    assert str(FaultPlan.none()) == "none"


def test_with_overrides():
    plan = FaultPlan(drop=0.01)
    assert plan.with_overrides(drop=0.02).drop == 0.02
    assert plan.drop == 0.01  # frozen original untouched


# ----------------------------------------------------------------------
# Window and schedule validation (hardened with the robustness layer)
# ----------------------------------------------------------------------
def test_window_start_must_be_non_negative():
    with pytest.raises(ValueError, match="negative time"):
        LinkOutage(0, start_s=-0.1, end_s=1.0)
    with pytest.raises(ValueError, match="negative time"):
        InjectStall(0, start_s=-0.1, end_s=1.0)


def test_zero_length_window_rejected():
    with pytest.raises(ValueError, match="empty or inverted"):
        LinkOutage(0, start_s=1.0, end_s=1.0)
    with pytest.raises(ValueError, match="empty or inverted"):
        InjectStall(0, start_s=1.0, end_s=1.0)


def test_crash_and_domain_failure_times_validated():
    with pytest.raises(ValueError, match="negative time"):
        RankCrash(0, at_s=-1.0)
    with pytest.raises(ValueError, match="negative time"):
        DomainFailure(0, 1, at_s=-1.0)


def test_domain_failure_fallback_must_differ():
    with pytest.raises(ValueError, match="fallback"):
        DomainFailure(0, domain=1, at_s=0.5, fallback=1)
    assert DomainFailure(0, domain=1, at_s=0.5, fallback=0).fallback == 0


def test_overlapping_outages_on_same_node_rejected():
    with pytest.raises(ValueError, match="overlapping outage"):
        FaultPlan(outages=(
            LinkOutage(0, 0.0, 2.0),
            LinkOutage(0, 1.0, 3.0),
        ))


def test_overlapping_stalls_on_same_rank_rejected():
    with pytest.raises(ValueError, match="overlapping stall"):
        FaultPlan(stalls=(
            InjectStall(1, 0.5, 1.5),
            InjectStall(1, 1.0, 2.0),
        ))


def test_identical_windows_are_overlapping():
    with pytest.raises(ValueError, match="overlapping"):
        FaultPlan(outages=(
            LinkOutage(0, 0.0, 1.0),
            LinkOutage(0, 0.0, 1.0),
        ))


def test_back_to_back_windows_are_legal():
    # Half-open windows: one ending exactly where the next starts.
    plan = FaultPlan(outages=(
        LinkOutage(0, 0.0, 1.0),
        LinkOutage(0, 1.0, 2.0),
    ))
    assert len(plan.outages) == 2


def test_overlap_check_is_per_target():
    # The same windows on different nodes/ranks never conflict.
    plan = FaultPlan(
        outages=(LinkOutage(0, 0.0, 2.0), LinkOutage(1, 1.0, 3.0)),
        stalls=(InjectStall(0, 0.0, 2.0), InjectStall(1, 1.0, 3.0)),
    )
    assert plan.active


def test_overlap_check_sorts_before_comparing():
    # Declaration order must not matter.
    with pytest.raises(ValueError, match="overlapping"):
        FaultPlan(outages=(
            LinkOutage(0, 5.0, 6.0),
            LinkOutage(0, 0.0, 9.0),
        ))


def test_negative_delay_knobs_rejected():
    with pytest.raises(ValueError, match="reorder_delay_ns"):
        FaultPlan(reorder_delay_ns=-1.0)
    with pytest.raises(ValueError, match="duplicate_gap_ns"):
        FaultPlan(duplicate_gap_ns=-1.0)
