"""The ACK/retransmit reliability layer, end to end through the runtime."""

import pytest

from repro.faults import FaultPlan, ReliabilityConfig
from repro.mpi import Cluster, ClusterConfig

pytestmark = pytest.mark.faults


def make_cluster(**kw):
    defaults = dict(n_nodes=2, ranks_per_node=1, threads_per_rank=1,
                    lock="ticket", seed=42)
    defaults.update(kw)
    return Cluster(ClusterConfig(**defaults))


def _stream(cl, n_msgs, size=256):
    """Simple n-message stream 0 -> 1; returns the received payloads."""
    t0, t1 = cl.thread(0), cl.thread(1)
    got = []

    def sender():
        for i in range(n_msgs):
            yield from t0.send(1, size, tag=i, data=i)

    def receiver():
        for i in range(n_msgs):
            got.append((yield from t1.recv(source=0, tag=i)))

    cl.run_workload([sender(), receiver()])
    return got


def test_config_validation():
    with pytest.raises(ValueError):
        ReliabilityConfig(rto_ns=0.0)
    with pytest.raises(ValueError):
        ReliabilityConfig(backoff=0.5)
    with pytest.raises(ValueError):
        ReliabilityConfig(rto_max_ns=1.0)
    with pytest.raises(ValueError):
        ReliabilityConfig(max_retries=-1)
    with pytest.raises(ValueError):
        ReliabilityConfig(rts_rto_scale=0.5)


def test_reliable_no_loss_has_no_retransmits():
    cl = make_cluster(reliability=True)
    got = _stream(cl, 8)
    assert got == list(range(8))
    rel = cl.runtimes[0].rel_stats
    assert rel.retransmits == 0
    assert rel.tracked == 8
    assert rel.acks_received == 8


def test_eager_recovers_from_drops():
    cl = make_cluster(faults=FaultPlan(drop=0.2), reliability=True, seed=3)
    got = _stream(cl, 32)
    assert got == list(range(32))
    total_retx = sum(rt.rel_stats.retransmits for rt in cl.runtimes)
    total_drops = cl.fault_injector.stats.total_drops
    assert total_drops > 0, "a 20% drop rate over 32 messages must hit"
    assert total_retx > 0


def test_rndv_recovers_from_drops():
    # 64 KiB forces the rendezvous protocol: RTS/CTS handshake plus bulk
    # data, every leg of which must survive loss.
    cl = make_cluster(faults=FaultPlan(drop=0.15), reliability=True, seed=11)
    got = _stream(cl, 8, size=64 * 1024)
    assert got == list(range(8))
    assert cl.fault_injector.stats.total_drops > 0


def test_duplicates_absorbed_once():
    cl = make_cluster(faults=FaultPlan(duplicate=1.0), reliability=True)
    got = _stream(cl, 8)
    assert got == list(range(8))
    rel = cl.runtimes[1].rel_stats
    assert rel.dup_data > 0, "every duplicated data packet is absorbed"


def test_give_up_fails_request_and_unblocks_waiter():
    cl = make_cluster(
        faults=FaultPlan(drop=1.0, watchdog_interval_ns=0.0),
        reliability=ReliabilityConfig(rto_ns=2000.0, max_retries=2),
    )
    t0 = cl.thread(0)
    out = {}

    def sender():
        req = yield from t0.isend(1, 256, tag=0, data="doomed")
        out["req"] = req
        yield from t0.wait(req)

    cl.run_workload([sender()])
    assert out["req"].complete, "give-up completes the request"
    assert out["req"].error, "...but flags the delivery failure"
    rel = cl.runtimes[0].rel_stats
    assert rel.giveups == 1
    assert rel.retransmits == 2  # the full retry budget was spent


def test_contended_rndv_not_mistaken_for_loss():
    """Regression (found by the ablation harness's no-eager cell): with
    every message forced through rendezvous, a receiver that is slow to
    match -- eight threads funneling through the critical section -- must
    not exhaust the sender's RTS retry budget.  The RTS is *delivered*
    (NIC-level ack); only the software CTS is pending.  Before the
    delivery-confirmation downshift the sender gave up on a lossless
    fabric and the receiver's already-matched recvs waited forever."""
    from repro.workloads.throughput import (
        ThroughputConfig, run_throughput, throughput_cluster,
    )

    cl = throughput_cluster(
        lock="mutex", threads_per_rank=8, seed=0,
        eager_threshold=0,
        # Tight budget: without delivery confirmation this gives up fast.
        reliability=ReliabilityConfig(rto_ns=2000.0, max_retries=2),
    )
    res = run_throughput(cl, ThroughputConfig(msg_size=1, n_windows=1))
    assert res.msg_rate_k > 0
    for rt in cl.runtimes:
        assert rt.rel_stats.giveups == 0, \
            "software match latency exhausted the loss budget"
    assert all(r.complete and not r.error
               for rt in cl.runtimes for r in rt.requests.values())


def test_undelivered_rts_still_gives_up():
    """The delivery-confirmation downshift must not weaken outage
    semantics: an RTS that never reaches the peer's NIC (total loss)
    exhausts max_retries exactly as before."""
    cl = make_cluster(
        faults=FaultPlan(drop=1.0, watchdog_interval_ns=0.0),
        reliability=ReliabilityConfig(rto_ns=2000.0, max_retries=2),
    )
    t0 = cl.thread(0)
    out = {}

    def sender():
        req = yield from t0.isend(1, 64 * 1024, tag=0, data="doomed")
        out["req"] = req
        yield from t0.wait(req)

    cl.run_workload([sender()])
    assert out["req"].complete and out["req"].error
    assert cl.runtimes[0].rel_stats.giveups == 1


def test_reliability_off_is_default():
    cl = make_cluster()
    assert all(rt.rel_stats is None for rt in cl.runtimes)
    assert cl.fabric.nic(0).rel_filter is None
