"""Graceful degradation: failing an arbitration domain re-routes its
traffic to a fallback domain, at runtime and for in-flight packets."""

import pytest

from repro.faults import DomainFailure, FaultPlan
from repro.mpi import Cluster, ClusterConfig
from repro.obs import Instrument
from repro.workloads import ThroughputConfig, run_throughput, throughput_cluster

pytestmark = pytest.mark.faults


def make_vci_cluster(**kw):
    defaults = dict(n_nodes=2, ranks_per_node=1, threads_per_rank=4,
                    lock="ticket", cs="per-vci:4", seed=21)
    defaults.update(kw)
    return Cluster(ClusterConfig(**defaults))


def test_fail_domain_validation():
    cl = make_vci_cluster()
    rt = cl.runtimes[1]
    with pytest.raises(ValueError):
        rt.fail_domain(2, fallback=2)  # cannot fail over to itself
    with pytest.raises(ValueError):
        rt.fail_domain(99)
    rt.fail_domain(2)
    with pytest.raises(ValueError):
        rt.fail_domain(1, fallback=2)  # fallback already failed
    rt.fail_domain(2)  # idempotent: failing twice is a no-op
    assert rt.failed_domains == {2}


def test_fail_domain_installs_redirects():
    cl = make_vci_cluster()
    rt = cl.runtimes[1]
    rt.fail_domain(3, fallback=1)
    assert rt._vci_redirect == {3: 1}
    assert cl.fabric.nic(1).vci_redirect == {3: 1}
    assert all(d.index != 3 for d in rt._active_domains())


def test_chained_failover_points_at_live_fallback():
    cl = make_vci_cluster()
    rt = cl.runtimes[1]
    rt.fail_domain(3, fallback=2)
    rt.fail_domain(2, fallback=0)
    # Domain 3's traffic must not land in (now dead) domain 2.
    assert rt._vci_redirect[3] == 0
    assert rt._vci_redirect[2] == 0


def test_scheduled_domain_failure_mid_run_completes():
    bus = Instrument()
    events = []
    bus.subscribe(events.append, categories=("fault",))
    cl = throughput_cluster(
        lock="ticket", threads_per_rank=4, seed=21, cs="per-vci:4",
        obs=bus,
        faults=FaultPlan(domain_failures=(
            DomainFailure(rank=1, domain=1, at_s=50e-6, fallback=0),
        )),
    )
    res = run_throughput(cl, ThroughputConfig(msg_size=1024, n_windows=4))
    assert res.msg_rate_k > 0
    rt = cl.runtimes[1]
    assert rt.failed_domains == {1}
    # The failed domain must be fully drained: nothing routed there again.
    dead = rt.domains[1]
    assert len(dead.recv_q) == 0
    assert len(dead.posted_q) == 0
    assert len(dead.unexp_q) == 0
    assert any(ev.name == "domain.failover" for ev in events)
