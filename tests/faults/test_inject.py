"""Fabric-level fault injection: drops, duplicates, reorder, outages,
stalls and crashes, each against the raw fabric (no MPI layer)."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    InjectStall,
    LinkOutage,
    RankCrash,
)
from repro.network import Fabric, NetworkConfig, Packet, PacketKind
from repro.sim import Simulator

pytestmark = pytest.mark.faults


def make_fabric(plan=None, n_ranks=2, ranks_per_node=1, seed=7):
    sim = Simulator(seed=seed)
    fab = Fabric(sim, NetworkConfig())
    for r in range(n_ranks):
        fab.register_rank(r, node=r // ranks_per_node)
    if plan is not None:
        fab.faults = FaultInjector(sim, plan)
    return sim, fab


def test_certain_drop_loses_delivery_but_completes_locally():
    sim, fab = make_fabric(FaultPlan(drop=1.0))
    local = []

    def proc():
        done = fab.send(Packet(PacketKind.EAGER, 0, 1, 1000))
        yield done
        local.append(sim.now)

    sim.process(proc())
    sim.run()
    assert local, "local completion must fire even for a dropped packet"
    assert len(fab.nic(1).recv_q) == 0
    assert fab.faults.stats.drops == 1


def test_certain_duplicate_delivers_two_copies():
    plan = FaultPlan(duplicate=1.0, duplicate_gap_ns=1000.0)
    sim, fab = make_fabric(plan)
    arrivals = []
    fab.on_deliver.append(lambda pkt: arrivals.append(sim.now))
    fab.send(Packet(PacketKind.EAGER, 0, 1, 1000))
    sim.run()
    assert len(fab.nic(1).recv_q) == 2
    assert fab.faults.stats.duplicates == 1
    t1, t2 = sorted(arrivals)
    assert t2 - t1 == pytest.approx(plan.duplicate_gap_ns * 1e-9)


def test_reorder_adds_bounded_delay():
    sim0, fab0 = make_fabric()
    fab0.send(Packet(PacketKind.EAGER, 0, 1, 1000))
    sim0.run()
    t_base = sim0.now

    plan = FaultPlan(reorder=1.0, reorder_delay_ns=5000.0)
    sim, fab = make_fabric(plan)
    fab.send(Packet(PacketKind.EAGER, 0, 1, 1000))
    sim.run()
    assert fab.faults.stats.reorders == 1
    assert t_base < sim.now <= t_base + plan.reorder_delay_ns * 1e-9


def test_outage_window_drops_only_inside():
    outage = LinkOutage(node=0, start_s=0.0, end_s=1.0)  # blackout from t=0
    sim, fab = make_fabric(FaultPlan(outages=(outage,)))
    fab.send(Packet(PacketKind.EAGER, 0, 1, 100))
    sim.run()
    assert len(fab.nic(1).recv_q) == 0
    assert fab.faults.stats.outage_drops == 1

    later = LinkOutage(node=0, start_s=1.0, end_s=2.0)  # window in the future
    sim2, fab2 = make_fabric(FaultPlan(outages=(later,)))
    fab2.send(Packet(PacketKind.EAGER, 0, 1, 100))
    sim2.run()
    assert len(fab2.nic(1).recv_q) == 1
    assert fab2.faults.stats.outage_drops == 0


def test_inject_stall_delays_delivery():
    sim0, fab0 = make_fabric()
    fab0.send(Packet(PacketKind.EAGER, 0, 1, 1000))
    sim0.run()
    t_base = sim0.now

    stall = InjectStall(rank=0, start_s=0.0, end_s=1.0, extra_ns=10_000.0)
    sim, fab = make_fabric(FaultPlan(stalls=(stall,)))
    fab.send(Packet(PacketKind.EAGER, 0, 1, 1000))
    sim.run()
    assert fab.faults.stats.stalled_sends == 1
    assert sim.now == pytest.approx(t_base + stall.extra_ns * 1e-9)


def test_crashed_sender_blocks_and_never_completes():
    sim, fab = make_fabric(FaultPlan(crashes=(RankCrash(rank=0, at_s=0.0),)))
    finished = []

    def proc():
        done = fab.send(Packet(PacketKind.EAGER, 0, 1, 100))
        yield done
        finished.append(True)  # pragma: no cover - must not run

    sim.process(proc())
    sim.run()
    assert not finished, "a crashed rank's send must never complete"
    assert len(fab.nic(1).recv_q) == 0
    assert fab.faults.stats.blocked_sends == 1


def test_crashed_receiver_drops_inbound():
    sim, fab = make_fabric(FaultPlan(crashes=(RankCrash(rank=1, at_s=0.0),)))
    local = []

    def proc():
        done = fab.send(Packet(PacketKind.EAGER, 0, 1, 100))
        yield done
        local.append(True)

    sim.process(proc())
    sim.run()
    assert local, "the sender still completes locally"
    assert len(fab.nic(1).recv_q) == 0
    assert fab.faults.stats.crash_drops == 1


def test_internode_only_spares_the_shm_path():
    sim, fab = make_fabric(FaultPlan(drop=1.0), n_ranks=2, ranks_per_node=2)
    fab.send(Packet(PacketKind.EAGER, 0, 1, 100))  # same node
    sim.run()
    assert len(fab.nic(1).recv_q) == 1
    assert fab.faults.stats.drops == 0


def test_intranode_faults_opt_in():
    plan = FaultPlan(drop=1.0, internode_only=False)
    sim, fab = make_fabric(plan, n_ranks=2, ranks_per_node=2)
    fab.send(Packet(PacketKind.EAGER, 0, 1, 100))
    sim.run()
    assert len(fab.nic(1).recv_q) == 0
    assert fab.faults.stats.drops == 1


def test_fault_events_on_obs_bus():
    from repro.obs import Instrument

    sim, fab = make_fabric(FaultPlan(drop=1.0))
    events = []
    bus = Instrument()
    bus.subscribe(events.append, categories=("fault",))
    sim.obs = bus
    fab.send(Packet(PacketKind.EAGER, 0, 1, 100))
    sim.run()
    assert any(ev.name == "drop" for ev in events)
