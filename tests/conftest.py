"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.machine import CostModel, ThreadCtx, compact_binding, nehalem_node
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1234)


@pytest.fixture
def machine():
    return nehalem_node()


@pytest.fixture
def costs():
    return CostModel()


def make_threads(machine, n, binding=compact_binding, rank=0):
    """Create n ThreadCtx bound per the given policy."""
    cores = binding(machine, n)
    return [ThreadCtx(cores[i], name=f"t{i}", rank=rank) for i in range(n)]


class ExclusionChecker:
    """Asserts that at most one thread is ever inside the critical section."""

    def __init__(self):
        self.inside = 0
        self.max_inside = 0
        self.entries = []  # (time, tid)

    def enter(self, now, tid):
        self.inside += 1
        self.max_inside = max(self.max_inside, self.inside)
        self.entries.append((now, tid))

    def exit(self):
        self.inside -= 1
        assert self.inside >= 0


def hammer(sim, lock, threads, n_iters, hold_time, gap_time, priority=None):
    """Spawn one process per thread repeatedly acquiring `lock`.

    Returns an ExclusionChecker with the acquisition history.
    """

    checker = ExclusionChecker()

    def worker(ctx):
        for _ in range(n_iters):
            if priority is None:
                yield from lock.acquire(ctx)
            else:
                yield from lock.acquire(ctx, priority=priority)
            checker.enter(sim.now, ctx.tid)
            yield sim.timeout(hold_time)
            checker.exit()
            release_cost = lock.release(ctx)
            yield sim.timeout(gap_time + release_cost)

    procs = [sim.process(worker(t), name=t.name) for t in threads]
    sim.run()
    assert checker.max_inside == 1, "mutual exclusion violated"
    assert all(p.ok for p in procs)
    return checker
