"""Tests for the fabric model."""

import pytest

from repro.network import Fabric, NetworkConfig, Packet, PacketKind
from repro.sim import Simulator


def make_fabric(n_ranks=2, ranks_per_node=1, **overrides):
    sim = Simulator(seed=0)
    cfg = NetworkConfig().with_overrides(**overrides) if overrides else NetworkConfig()
    fab = Fabric(sim, cfg)
    for r in range(n_ranks):
        fab.register_rank(r, node=r // ranks_per_node)
    return sim, fab


def test_register_duplicate_rank_rejected():
    sim, fab = make_fabric()
    with pytest.raises(ValueError):
        fab.register_rank(0, node=0)


def test_unknown_destination_rejected():
    sim, fab = make_fabric()
    with pytest.raises(ValueError, match="unknown destination rank 99"):
        fab.send(Packet(PacketKind.EAGER, 0, 99, 10))


def test_unknown_source_rejected():
    sim, fab = make_fabric()
    with pytest.raises(ValueError, match="unknown source rank 99"):
        fab.send(Packet(PacketKind.EAGER, 99, 1, 10))


def test_out_of_range_vci_falls_back_loudly():
    from repro.obs import Instrument

    sim, fab = make_fabric()  # single-VCI NICs
    events = []
    bus = Instrument()
    bus.subscribe(events.append, categories=("fault",))
    sim.obs = bus
    fab.send(Packet(PacketKind.EAGER, 0, 1, 100, vci=7))
    sim.run()
    nic = fab.nic(1)
    # Delivered (into VCI 0), but counted and warned about -- never silent.
    assert len(nic.recv_qs[0]) == 1
    assert nic.vci_fallbacks == 1
    fallback = [ev for ev in events if ev.name == "vci.fallback"]
    assert fallback and fallback[0].args["vci"] == 7


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        Packet(PacketKind.EAGER, 0, 1, -1)


def test_internode_delivery_time():
    sim, fab = make_fabric()
    cfg = fab.config
    pkt = Packet(PacketKind.EAGER, 0, 1, 1000)
    fab.send(pkt)
    sim.run()
    expected = (
        cfg.inject_ns * 1e-9
        + (1000 + cfg.header_bytes) / (cfg.bandwidth_gbps * 1e9)
        + cfg.latency_ns * 1e-9
    )
    assert sim.now == pytest.approx(expected, rel=1e-9)
    assert list(fab.nic(1).recv_q) == [pkt]


def test_intranode_uses_shm_path_and_is_faster():
    sim, fab = make_fabric(n_ranks=4, ranks_per_node=2)
    fab.send(Packet(PacketKind.EAGER, 0, 1, 4096))  # same node
    sim.run()
    t_shm = sim.now
    sim2, fab2 = make_fabric(n_ranks=4, ranks_per_node=2)
    fab2.send(Packet(PacketKind.EAGER, 0, 2, 4096))  # cross node
    sim2.run()
    assert t_shm < sim2.now


def test_local_completion_before_delivery():
    sim, fab = make_fabric()
    times = {}

    def proc():
        done = fab.send(Packet(PacketKind.EAGER, 0, 1, 10_000))
        yield done
        times["local"] = sim.now

    fab.on_deliver.append(lambda pkt: times.setdefault("deliver", sim.now))
    sim.process(proc())
    sim.run()
    assert times["local"] < times["deliver"]
    # They differ by exactly the propagation latency.
    assert times["deliver"] - times["local"] == pytest.approx(
        fab.config.latency_ns * 1e-9
    )


def test_uplink_serializes_concurrent_messages():
    """Two big messages from one node pipeline: second arrives one
    transfer-time later, not concurrently."""
    sim, fab = make_fabric(n_ranks=3, ranks_per_node=1)
    # Rank 0 sends to ranks 1 and 2 at the same instant.
    arrivals = []
    fab.on_deliver.append(lambda pkt: arrivals.append((pkt.dst_rank, sim.now)))
    nbytes = 1_000_000
    fab.send(Packet(PacketKind.EAGER, 0, 1, nbytes))
    fab.send(Packet(PacketKind.EAGER, 0, 2, nbytes))
    sim.run()
    (d1, t1), (d2, t2) = sorted(arrivals, key=lambda x: x[1])
    xfer = (nbytes + fab.config.header_bytes) / (fab.config.bandwidth_gbps * 1e9)
    assert t2 - t1 == pytest.approx(xfer, rel=1e-6)


def test_sends_from_different_nodes_do_not_serialize():
    sim, fab = make_fabric(n_ranks=3, ranks_per_node=1)
    arrivals = []
    fab.on_deliver.append(lambda pkt: arrivals.append(sim.now))
    nbytes = 1_000_000
    fab.send(Packet(PacketKind.EAGER, 0, 2, nbytes))
    fab.send(Packet(PacketKind.EAGER, 1, 2, nbytes))
    sim.run()
    assert arrivals[0] == pytest.approx(arrivals[1])


def test_fifo_ordering_per_pair():
    """Messages between a rank pair arrive in send order (MPI
    non-overtaking requirement)."""
    sim, fab = make_fabric()
    sizes = [100, 5000, 1, 20_000, 64]
    for i, s in enumerate(sizes):
        fab.send(Packet(PacketKind.EAGER, 0, 1, s, payload=i))
    sim.run()
    got = [pkt.payload for pkt in fab.nic(1).recv_q]
    assert got == list(range(len(sizes)))


def test_control_packets_flagged():
    assert Packet(PacketKind.RTS, 0, 1, 0).is_control
    assert not Packet(PacketKind.EAGER, 0, 1, 10).is_control


def test_counters_update():
    sim, fab = make_fabric()
    fab.send(Packet(PacketKind.EAGER, 0, 1, 500))
    sim.run()
    assert fab.nic(0).sent_packets == 1
    assert fab.nic(0).sent_bytes == 500 + fab.config.header_bytes
    assert fab.nic(1).recv_packets == 1


def test_bandwidth_scaling_with_size():
    def arrival(nbytes):
        sim, fab = make_fabric()
        fab.send(Packet(PacketKind.EAGER, 0, 1, nbytes))
        sim.run()
        return sim.now

    t_small, t_big = arrival(1000), arrival(1_001_000)
    assert t_big - t_small == pytest.approx(
        1_000_000 / (NetworkConfig().bandwidth_gbps * 1e9), rel=1e-6
    )
