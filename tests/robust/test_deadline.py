"""Deadline stamps and the re-armable cancellable timer."""

import pytest

from repro.robust import Deadline, DeadlineTimer


# ----------------------------------------------------------------------
# Deadline (pure arithmetic)
# ----------------------------------------------------------------------
def test_from_budget_converts_ns():
    d = Deadline.from_budget(1e-3, 250_000.0)
    assert d.at_s == pytest.approx(1e-3 + 250e-6)


def test_expired_is_inclusive_at_the_instant():
    d = Deadline(1.0)
    assert not d.expired(0.999)
    assert d.expired(1.0)
    assert d.expired(1.5)


def test_remaining_goes_negative_past_expiry():
    d = Deadline(1.0)
    assert d.remaining(0.25) == pytest.approx(0.75)
    assert d.remaining(1.25) == pytest.approx(-0.25)


def test_negative_deadline_rejected():
    with pytest.raises(ValueError):
        Deadline(-1e-9)


# ----------------------------------------------------------------------
# DeadlineTimer (engine-backed)
# ----------------------------------------------------------------------
def test_timer_fires_at_absolute_time(sim):
    fired = []
    t = DeadlineTimer(sim)
    t.arm(50e-6, fired.append, "a")
    assert t.armed and t.at_s == 50e-6
    sim.run()
    assert fired == ["a"]
    assert sim.now == pytest.approx(50e-6)


def test_cancel_prevents_the_callback(sim):
    fired = []
    t = DeadlineTimer(sim)
    t.arm(50e-6, fired.append, "a")
    t.cancel()
    assert not t.armed and t.at_s is None
    sim.run()
    assert fired == []


def test_cancel_is_idempotent_and_safe_when_disarmed(sim):
    t = DeadlineTimer(sim)
    t.cancel()  # never armed
    t.arm(10e-6, lambda: None)
    t.cancel()
    t.cancel()
    assert not t.armed


def test_rearm_replaces_the_pending_timer(sim):
    fired = []
    t = DeadlineTimer(sim)
    t.arm(50e-6, fired.append, "early")
    t.arm(80e-6, fired.append, "late")  # replaces, never fires "early"
    sim.run()
    assert fired == ["late"]
    assert sim.now == pytest.approx(80e-6)


def test_arm_in_the_past_fires_immediately(sim):
    fired = []
    first = DeadlineTimer(sim)
    first.arm(30e-6, lambda: None)
    sim.run()
    assert sim.now == pytest.approx(30e-6)
    t = DeadlineTimer(sim)
    t.arm(10e-6, fired.append, "x")  # already past: zero-delay fire
    sim.run()
    assert fired == ["x"]
    assert sim.now == pytest.approx(30e-6)  # no time travel


def test_timer_is_reusable_after_firing(sim):
    fired = []
    t = DeadlineTimer(sim)
    t.arm(10e-6, fired.append, 1)
    sim.run()
    t.arm(20e-6, fired.append, 2)
    sim.run()
    assert fired == [1, 2]
