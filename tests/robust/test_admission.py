"""Admission-control policies: each state machine and the spec parser."""

import pytest

from repro.robust import (
    ADMISSION_POLICIES,
    AdmissionPolicy,
    CoDelPolicy,
    DeadlineAwarePolicy,
    QueueCapPolicy,
    make_admission,
)


def admit(policy, now=0.0, deadline_s=None, t_sent=0.0, depth=0,
          service_s=20e-6):
    return policy.admit(
        now, deadline_s=deadline_s, t_sent=t_sent, depth=depth,
        service_s=service_s,
    )


# ----------------------------------------------------------------------
# none
# ----------------------------------------------------------------------
def test_none_admits_everything():
    p = AdmissionPolicy()
    for depth in (0, 10_000):
        assert admit(p, depth=depth, deadline_s=-1.0)
    assert p.admitted == 2 and p.shed == 0


# ----------------------------------------------------------------------
# queue-cap
# ----------------------------------------------------------------------
def test_queue_cap_sheds_above_cap():
    p = QueueCapPolicy(cap=4)
    assert admit(p, depth=4)   # at cap: admitted
    assert not admit(p, depth=5)
    assert admit(p, depth=0)   # recovers instantly once drained
    assert p.admitted == 2 and p.shed == 1


def test_queue_cap_validation():
    with pytest.raises(ValueError):
        QueueCapPolicy(cap=0)


# ----------------------------------------------------------------------
# deadline-aware
# ----------------------------------------------------------------------
def test_deadline_aware_sheds_unmeetable_requests():
    p = DeadlineAwarePolicy(margin=2.0)
    # Needs 2 * 20us = 40us of headroom.
    assert admit(p, now=0.0, deadline_s=41e-6)
    assert not admit(p, now=0.0, deadline_s=39e-6)
    assert not admit(p, now=100e-6, deadline_s=50e-6)  # already expired


def test_deadline_aware_admits_without_deadline():
    p = DeadlineAwarePolicy()
    assert admit(p, now=1e9, deadline_s=None)
    assert p.shed == 0


def test_deadline_margin_validation():
    with pytest.raises(ValueError):
        DeadlineAwarePolicy(margin=0.5)


# ----------------------------------------------------------------------
# CoDel
# ----------------------------------------------------------------------
def test_codel_quiet_queue_never_sheds():
    p = CoDelPolicy(target_ns=100_000.0, interval_ns=1_000_000.0)
    for i in range(50):
        # Sojourn 50us < 100us target.
        assert admit(p, now=i * 1e-5, t_sent=i * 1e-5 - 50e-6)
    assert p.shed == 0


def test_codel_sheds_after_a_full_interval_above_target():
    p = CoDelPolicy(target_ns=100_000.0, interval_ns=1_000_000.0)
    # Sojourn permanently 200us > target.  First above-target arrival
    # starts the interval clock; arrivals inside the interval are still
    # admitted; the first arrival past it is shed.
    assert admit(p, now=0.0, t_sent=-200e-6)
    assert admit(p, now=0.5e-3, t_sent=0.5e-3 - 200e-6)
    assert not admit(p, now=1.1e-3, t_sent=1.1e-3 - 200e-6)
    # In the dropping state the next shed comes interval/sqrt(2) later;
    # an arrival before that is admitted, one after is shed.
    assert admit(p, now=1.2e-3, t_sent=1.2e-3 - 200e-6)
    assert not admit(p, now=2.2e-3, t_sent=2.2e-3 - 200e-6)
    assert p.shed == 2


def test_codel_exits_dropping_when_sojourn_dips_below_target():
    p = CoDelPolicy(target_ns=100_000.0, interval_ns=1_000_000.0)
    admit(p, now=0.0, t_sent=-200e-6)
    admit(p, now=0.5e-3, t_sent=0.5e-3 - 200e-6)
    assert not admit(p, now=1.1e-3, t_sent=1.1e-3 - 200e-6)  # dropping
    # One good sojourn resets the whole state machine...
    assert admit(p, now=1.2e-3, t_sent=1.2e-3 - 10e-6)
    # ...so the next above-target arrival gets a fresh full interval.
    assert admit(p, now=1.3e-3, t_sent=1.3e-3 - 200e-6)
    assert admit(p, now=2.0e-3, t_sent=2.0e-3 - 200e-6)
    assert p.shed == 1


def test_codel_validation():
    with pytest.raises(ValueError):
        CoDelPolicy(target_ns=0.0)
    with pytest.raises(ValueError):
        CoDelPolicy(interval_ns=-1.0)


# ----------------------------------------------------------------------
# make_admission (spec parsing)
# ----------------------------------------------------------------------
def test_registry_matches_parser():
    assert set(ADMISSION_POLICIES) == {"none", "queue-cap", "deadline", "codel"}


@pytest.mark.parametrize("spec,cls", [
    ("none", AdmissionPolicy),
    ("queue-cap", QueueCapPolicy),
    ("queue-cap:8", QueueCapPolicy),
    ("deadline", DeadlineAwarePolicy),
    ("deadline:3", DeadlineAwarePolicy),
    ("codel", CoDelPolicy),
    ("codel:50000", CoDelPolicy),
    ("codel:50000:500000", CoDelPolicy),
])
def test_specs_parse_to_expected_class(spec, cls):
    assert type(make_admission(spec)) is cls


def test_spec_args_reach_the_policy():
    assert make_admission("queue-cap:8").cap == 8
    assert make_admission("deadline:3").margin == 3.0
    p = make_admission("codel:50000:500000")
    assert p.target_s == pytest.approx(50e-6)
    assert p.interval_s == pytest.approx(500e-6)


def test_empty_spec_means_none():
    assert type(make_admission("")) is AdmissionPolicy
    assert type(make_admission("  ")) is AdmissionPolicy


def test_each_call_returns_fresh_state():
    a, b = make_admission("queue-cap"), make_admission("queue-cap")
    assert a is not b
    admit(a, depth=10_000)
    assert b.shed == 0


def test_unknown_policy_listed_in_error():
    with pytest.raises(ValueError, match="valid policies"):
        make_admission("lifo")


def test_malformed_specs_rejected():
    with pytest.raises(ValueError):
        make_admission("none:3")
    with pytest.raises(ValueError):
        make_admission("queue-cap:many")
    with pytest.raises(ValueError):
        make_admission("queue-cap:0")  # policy's own validation
