"""The degraded-mode state machine: hysteresis and deterministic shedding."""

import pytest

from repro.robust import DegradedModeController, DegradeState


def drain(ctrl, n):
    """Run n shed decisions, return how many were shed."""
    return sum(1 for _ in range(n) if ctrl.should_shed())


def test_normal_never_sheds():
    ctrl = DegradedModeController()
    assert drain(ctrl, 1000) == 0
    assert ctrl.state is DegradeState.NORMAL
    assert ctrl.passed == 1000


def test_signal_enters_degraded_and_sheds_modularly():
    ctrl = DegradedModeController(shed_every=2, exit_streak=10_000)
    ctrl.note_signal()
    assert ctrl.state is DegradeState.DEGRADED
    assert ctrl.signals == 1
    # Every 2nd request shed, deterministically.
    decisions = [ctrl.should_shed() for _ in range(8)]
    assert decisions == [False, True, False, True, False, True, False, True]


def test_signal_accepts_both_hook_shapes():
    # watchdog.on_warning calls hook(frozen); degrade_hooks call
    # hook(index); both must land in the same controller.
    ctrl = DegradedModeController()
    ctrl.note_signal(3)      # watchdog shape
    ctrl.note_signal()       # bare call
    assert ctrl.signals == 2
    assert ctrl.state is DegradeState.DEGRADED


def test_staged_recovery_degraded_to_recovering_to_normal():
    ctrl = DegradedModeController(shed_every=2, recover_shed_every=4,
                                  exit_streak=4)
    ctrl.note_signal()
    # 4 consecutive *admits* step down one level; with shed_every=2
    # every other decision sheds and resets nothing (only signals reset
    # the streak), so 8 decisions bank the 4 admits.
    drain(ctrl, 8)
    assert ctrl.state is DegradeState.RECOVERING
    # RECOVERING sheds every 4th and needs another streak to clear.
    drain(ctrl, 6)
    assert ctrl.state is DegradeState.NORMAL
    assert drain(ctrl, 100) == 0  # fully recovered


def test_new_signal_snaps_back_to_degraded_and_resets_streak():
    ctrl = DegradedModeController(shed_every=2, exit_streak=4)
    ctrl.note_signal()
    drain(ctrl, 8)
    assert ctrl.state is DegradeState.RECOVERING
    ctrl.note_signal()
    assert ctrl.state is DegradeState.DEGRADED
    # Streak restarts: 3 admits (6 decisions minus sheds) are not enough.
    drain(ctrl, 6)
    assert ctrl.state is DegradeState.DEGRADED


def test_recovering_sheds_lighter_than_degraded():
    shed_deg = DegradedModeController(shed_every=2, exit_streak=10_000)
    shed_deg.note_signal()
    shed_rec = DegradedModeController(shed_every=2, recover_shed_every=4,
                                      exit_streak=1)
    shed_rec.note_signal()
    shed_rec.should_shed()  # one admit: exit_streak=1 -> RECOVERING
    assert shed_rec.state is DegradeState.RECOVERING
    assert drain(shed_deg, 100) > drain(shed_rec, 100)


def test_counters_account_every_decision():
    ctrl = DegradedModeController(shed_every=3, exit_streak=10_000)
    ctrl.note_signal()
    n = 99
    shed = drain(ctrl, n)
    assert ctrl.shed == shed
    assert ctrl.passed == n - shed


def test_validation():
    with pytest.raises(ValueError):
        DegradedModeController(shed_every=1)  # would starve the streak
    with pytest.raises(ValueError):
        DegradedModeController(recover_shed_every=0)
    with pytest.raises(ValueError):
        DegradedModeController(exit_streak=0)
