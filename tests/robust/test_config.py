"""RobustConfig: validation, presets and the `active` contract."""

import pytest

from repro.robust import RetryPolicy, RobustConfig


def test_default_and_none_are_inactive():
    assert not RobustConfig().active
    assert not RobustConfig.none().active
    assert RobustConfig.none() == RobustConfig()


def test_any_mechanism_activates():
    assert RobustConfig(deadline_ns=100_000.0).active
    assert RobustConfig(retry=RetryPolicy()).active
    assert RobustConfig(admission="deadline").active
    assert RobustConfig(degrade=True).active


def test_protected_preset_turns_everything_on():
    r = RobustConfig.protected(deadline_ns=250_000.0)
    assert r.active
    assert r.deadline_ns == 250_000.0
    assert r.retry == RetryPolicy()
    assert r.admission == "deadline"
    assert r.degrade


def test_protected_accepts_a_custom_retry_policy():
    p = RetryPolicy(max_attempts=5)
    assert RobustConfig.protected(retry=p).retry is p


def test_negative_deadline_rejected():
    with pytest.raises(ValueError):
        RobustConfig(deadline_ns=-1.0)


def test_malformed_admission_spec_fails_at_construction():
    with pytest.raises(ValueError, match="valid policies"):
        RobustConfig(admission="fifo")
    with pytest.raises(ValueError):
        RobustConfig(admission="queue-cap:0")
