"""Retry policy validation, the backoff schedule, and the token budget."""

import pytest

from repro.robust import RetryBudget, RetryPolicy


# ----------------------------------------------------------------------
# RetryPolicy validation
# ----------------------------------------------------------------------
def test_defaults_are_valid():
    p = RetryPolicy()
    assert p.max_attempts == 3
    assert p.hedge_ns == 0.0


@pytest.mark.parametrize("kw", [
    dict(max_attempts=0),
    dict(rto_ns=0.0),
    dict(rto_ns=-1.0),
    dict(backoff=0.5),
    dict(rto_cap_ns=100.0, rto_ns=200.0),
    dict(hedge_ns=-1.0),
    dict(budget_cap=-1),
    dict(budget_refill=-0.1),
    dict(budget_refill=1.5),
])
def test_invalid_policy_rejected(kw):
    with pytest.raises(ValueError):
        RetryPolicy(**kw)


def test_single_attempt_policy_is_legal():
    # max_attempts=1 means "deadline only, never retry".
    assert RetryPolicy(max_attempts=1).max_attempts == 1


def test_rto_schedule_is_exponential_and_capped():
    p = RetryPolicy(rto_ns=100_000.0, backoff=2.0, rto_cap_ns=350_000.0)
    assert p.rto(0) == pytest.approx(100e-6)
    assert p.rto(1) == pytest.approx(200e-6)
    # 400us would exceed the cap: clamped.
    assert p.rto(2) == pytest.approx(350e-6)
    assert p.rto(10) == pytest.approx(350e-6)


def test_rto_with_unit_backoff_is_flat():
    p = RetryPolicy(rto_ns=50_000.0, backoff=1.0)
    assert p.rto(0) == p.rto(5) == pytest.approx(50e-6)


# ----------------------------------------------------------------------
# RetryBudget (token bucket)
# ----------------------------------------------------------------------
def test_budget_starts_full_and_spends():
    b = RetryBudget(cap=2, refill=0.5)
    assert b.take() and b.take()
    assert not b.take()  # exhausted
    assert b.taken == 2 and b.denied == 1


def test_successes_refill_fractionally_up_to_cap():
    b = RetryBudget(cap=2, refill=0.5)
    b.take(), b.take()
    assert not b.take()
    b.note_success()  # +0.5: still below a whole token
    assert not b.take()
    b.note_success()  # 1.0 banked: one retry available again
    assert b.take()
    # Refill never exceeds the cap.
    for _ in range(100):
        b.note_success()
    assert b.tokens == pytest.approx(2.0)


def test_zero_cap_budget_denies_everything():
    b = RetryBudget(cap=0, refill=1.0)
    assert not b.take()
    b.note_success()
    assert not b.take()
    assert b.denied == 2


def test_budget_validation():
    with pytest.raises(ValueError):
        RetryBudget(cap=-1)
    with pytest.raises(ValueError):
        RetryBudget(cap=1, refill=2.0)


def test_from_policy_copies_knobs():
    b = RetryBudget.from_policy(RetryPolicy(budget_cap=7, budget_refill=0.25))
    assert b.cap == 7 and b.refill == 0.25
    assert b.tokens == 7.0
