"""Arbitration domains: routing policies, wildcard spanning, and
per-domain dangling-request accounting."""

import pytest

from repro.locks.domain import aggregate_domain_stats
from repro.mpi import Cluster, ClusterConfig
from repro.mpi.envelope import ANY_SOURCE, ANY_TAG, Envelope
from repro.mpi.vci import CsGranularity, CsPolicy, parse_cs_policy
from repro.workloads.n2n import N2NConfig, run_n2n


# ----------------------------------------------------------------------
# CsGranularity (the single registry replacing duplicated string checks)
# ----------------------------------------------------------------------
def test_granularity_parse():
    assert CsGranularity.parse("global") is CsGranularity.GLOBAL
    assert CsGranularity.parse("brief") is CsGranularity.BRIEF
    assert CsGranularity.parse(CsGranularity.BRIEF) is CsGranularity.BRIEF


def test_granularity_parse_rejects_unknown():
    with pytest.raises(ValueError, match="cs_granularity"):
        CsGranularity.parse("fine")


# ----------------------------------------------------------------------
# Policy parsing and routing
# ----------------------------------------------------------------------
def test_parse_policy_specs():
    assert parse_cs_policy("global") == CsPolicy()
    assert parse_cs_policy("per-vci:4") == CsPolicy(kind="per-vci", n_domains=4)
    assert parse_cs_policy("per-vci:4:ticket") == CsPolicy(
        kind="per-vci", n_domains=4, lock="ticket")
    assert parse_cs_policy("per-tag:8") == CsPolicy(kind="per-tag", n_domains=8)
    # per-peer defaults its domain count to the rank count.
    assert parse_cs_policy("per-peer", n_ranks=6).n_domains == 6


def test_parse_policy_roundtrip():
    for spec in ("global", "per-peer:2", "per-tag:8", "per-vci:4:ticket"):
        assert parse_cs_policy(spec).spec() == spec


def test_parse_policy_rejects_garbage():
    with pytest.raises(ValueError, match="valid policies"):
        parse_cs_policy("per-rainbow:4")
    with pytest.raises(ValueError, match="domain count"):
        parse_cs_policy("per-vci:many")
    with pytest.raises(ValueError, match="malformed"):
        parse_cs_policy("per-vci:4:ticket:extra")
    with pytest.raises(ValueError):
        CsPolicy(kind="per-vci", n_domains=0)
    with pytest.raises(ValueError):
        CsPolicy(kind="global", n_domains=2)


def test_routing_is_deterministic_and_in_range():
    pol = CsPolicy(kind="per-vci", n_domains=4)
    for peer in range(6):
        for tag in range(6):
            r = pol.route(peer, tag)
            assert 0 <= r < 4
            assert r == pol.route(peer, tag)


def test_global_policy_routes_everything_to_zero():
    pol = CsPolicy()
    assert pol.route(17, 93, 5) == 0
    assert pol.route_recv(Envelope(source=ANY_SOURCE, tag=ANY_TAG)) == 0


def test_wildcards_unroutable_only_in_hashed_fields():
    per_peer = CsPolicy(kind="per-peer", n_domains=4)
    assert per_peer.route_recv(Envelope(source=ANY_SOURCE, tag=3)) is None
    assert per_peer.route_recv(Envelope(source=2, tag=ANY_TAG)) == 2
    per_tag = CsPolicy(kind="per-tag", n_domains=4)
    assert per_tag.route_recv(Envelope(source=ANY_SOURCE, tag=3)) == 3
    assert per_tag.route_recv(Envelope(source=2, tag=ANY_TAG)) is None


def test_sender_and_receiver_agree_on_route():
    pol = CsPolicy(kind="per-vci", n_domains=4)
    # The sender stamps route_msg(envelope); the receiver routes its
    # matching receive by (source, tag, comm) -- same domain.
    env = Envelope(source=3, tag=7, comm=1)
    assert pol.route_msg(env) == pol.route_recv(env)


def test_cluster_rejects_bad_policy_and_bad_policy_lock():
    with pytest.raises(ValueError, match="valid policies"):
        ClusterConfig(cs="per-rainbow")
    with pytest.raises(ValueError, match="unknown lock"):
        ClusterConfig(cs="per-vci:4:rainbow")


# ----------------------------------------------------------------------
# End-to-end traffic over sharded domains
# ----------------------------------------------------------------------
def _exchange(cluster, n_msgs=6, nbytes=256, wildcard=False):
    def sender(th):
        for i in range(n_msgs):
            yield from th.send(1, nbytes, tag=i)

    def recver(th):
        for i in range(n_msgs):
            if wildcard:
                yield from th.recv(source=ANY_SOURCE, nbytes=nbytes, tag=ANY_TAG)
            else:
                yield from th.recv(source=0, nbytes=nbytes, tag=i)

    cluster.run_workload([
        sender(cluster.thread(0, 0)), recver(cluster.thread(1, 0)),
    ])


@pytest.mark.parametrize("cs", ["per-peer", "per-tag:3", "per-vci:4"])
def test_sharded_exchange_completes(cs):
    cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=1, cs=cs, seed=0))
    _exchange(cl)
    rt = cl.runtimes[1]
    assert rt.stats.completed == rt.stats.freed
    assert rt.dangling_count == 0
    assert all(len(d.posted_q) == 0 for d in rt.domains)


@pytest.mark.parametrize("nbytes", [256, 100_000])  # eager and rendezvous
def test_wildcard_recv_spans_domains(nbytes):
    cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=1, cs="per-vci:4",
                               seed=0))
    _exchange(cl, nbytes=nbytes, wildcard=True)
    rt = cl.runtimes[1]
    assert rt.stats.recvs_issued == 6
    assert rt.stats.completed == rt.stats.freed
    # No stale wildcard postings left in any domain.
    assert all(len(d.posted_q) == 0 for d in rt.domains)


def test_messages_spread_across_domains():
    cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=4, cs="per-vci:4",
                               seed=0))
    run_n2n(cl, N2NConfig(msg_size=512, window=2, n_windows=1, style="rounds"))
    rt = cl.runtimes[0]
    active = sum(1 for d in rt.domains if d.stats.packets_handled > 0)
    assert active > 1, "per-vci routing left all traffic in one domain"


# ----------------------------------------------------------------------
# Dangling accounting across domains (satellite: RuntimeStats under
# brief granularity + multi-domain routing)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("gran", ["global", "brief"])
@pytest.mark.parametrize("cs", ["global", "per-vci:4"])
def test_dangling_sums_across_domains(gran, cs):
    cl = Cluster(ClusterConfig(
        n_nodes=2, threads_per_rank=4, cs=cs, cs_granularity=gran, seed=2,
    ))
    run_n2n(cl, N2NConfig(msg_size=2048, window=2, n_windows=2,
                          style="rounds"))
    for rt in cl.runtimes:
        agg = aggregate_domain_stats(rt.domains)
        # The rank-level counters must equal the sum over domains.
        assert agg["completed"] == rt.stats.completed
        assert agg["freed"] == rt.stats.freed
        assert agg["packets_handled"] == rt.stats.packets_handled
        assert agg["cs_entries_main"] == rt.stats.cs_entries_main
        assert agg["cs_entries_progress"] == rt.stats.cs_entries_progress
        # Everything drained: dangling is zero rank-wide and per domain.
        assert rt.dangling_count == 0
        assert agg["dangling"] == 0
        assert all(d.stats.dangling == 0 for d in rt.domains)
        # The rank peak is bounded by the domain peaks: concurrent
        # domain peaks sum to at least the rank-wide peak they produce.
        assert rt.peak_dangling <= sum(d.stats.peak_dangling for d in rt.domains)
        assert rt.peak_dangling >= max(d.stats.peak_dangling for d in rt.domains)


def test_domain_stats_snapshot_keys():
    cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=1, cs="per-vci:2",
                               seed=0))
    _exchange(cl, n_msgs=2)
    rt = cl.runtimes[1]
    snaps = rt.domain_stats()
    assert len(snaps) == 2
    assert all("dangling" in s and "completed" in s for s in snaps)


def test_policy_lock_override_builds_that_lock():
    from repro.locks.ticket import TicketLock

    cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=1, lock="mutex",
                               cs="per-vci:2:ticket", seed=0))
    rt = cl.runtimes[0]
    assert all(isinstance(d.lock, TicketLock) for d in rt.domains)
    # Multi-domain locks get distinct names (they key RNG streams).
    names = [d.lock.name for d in rt.domains]
    assert len(set(names)) == len(names)
