"""Tests for the brief-global critical-section granularity (paper Fig. 1)."""

import pytest

from repro.mpi import Cluster, ClusterConfig
from repro.mpi.runtime import MpiRuntime
from repro.workloads import ThroughputConfig, run_throughput


def make_cluster(gran="brief", **kw):
    defaults = dict(n_nodes=2, threads_per_rank=2, lock="ticket",
                    seed=7, cs_granularity=gran)
    defaults.update(kw)
    return Cluster(ClusterConfig(**defaults))


def test_invalid_granularity_rejected():
    with pytest.raises(ValueError, match="cs_granularity"):
        make_cluster(gran="fine")


def test_pt2pt_semantics_unchanged():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def sender():
        yield from t0.send(1, 4096, tag=2, data=[1, 2, 3])

    def receiver():
        out["v"] = yield from t1.recv(source=0, tag=2)

    cl.run_workload([sender(), receiver()])
    assert out["v"] == [1, 2, 3]


def test_unexpected_path_with_brief_sections():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def sender():
        yield from t0.send(1, 2048, tag=1, data="early")
        yield from t0.send(1, 64, tag=9, data="marker")

    def receiver():
        yield from t1.recv(source=0, tag=9)
        req = yield from t1.irecv(source=0, tag=1)
        out["unexpected"] = req.unexpected
        yield from t1.wait(req)
        out["v"] = req.data

    cl.run_workload([sender(), receiver()])
    assert out["unexpected"] is True
    assert out["v"] == "early"


def test_message_counts_preserved_under_contention():
    cfg = ThroughputConfig(msg_size=4096, n_windows=3)
    for gran in ("global", "brief"):
        cl = make_cluster(gran=gran, threads_per_rank=4)
        res = run_throughput(cl, cfg)
        assert res.total_messages == 4 * 64 * 3
        for rt in cl.runtimes:
            assert rt.dangling_count == 0


def test_brief_improves_copy_bound_throughput():
    cfg = ThroughputConfig(msg_size=8192, n_windows=3)
    g = run_throughput(make_cluster(gran="global", threads_per_rank=8), cfg)
    b = run_throughput(make_cluster(gran="brief", threads_per_rank=8), cfg)
    assert b.msg_rate_k > 1.3 * g.msg_rate_k


def test_brief_no_effect_on_inline_messages():
    """Inline sends have no payload copy, so granularity is moot."""
    cfg = ThroughputConfig(msg_size=8, n_windows=3)
    g = run_throughput(make_cluster(gran="global", threads_per_rank=4), cfg)
    b = run_throughput(make_cluster(gran="brief", threads_per_rank=4), cfg)
    assert b.msg_rate_k == pytest.approx(g.msg_rate_k, rel=0.05)


def test_runtime_rejects_bad_granularity_directly():
    from repro.machine import CostModel
    from repro.network import Fabric
    from repro.sim import Simulator
    from repro.locks import make_lock

    sim = Simulator()
    fab = Fabric(sim)
    nic = fab.register_rank(0, 0)
    with pytest.raises(ValueError):
        MpiRuntime(sim, 0, fab, nic, make_lock("ticket", sim, CostModel()),
                   CostModel(), cs_granularity="nope")
