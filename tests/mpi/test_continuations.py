"""The continuation completion core: attach/detach/fire semantics,
degenerate-continuation blocking calls, the dangling-continuation
guard, waitany/testany edge cases, and continuation-mode waits."""

import pytest

from repro.mpi import (
    Cluster,
    ClusterConfig,
    Envelope,
    ReqKind,
    ReqState,
    Request,
    RequestError,
)
from repro.sim import CompletionLatch, Simulator


def make_cluster(**kw):
    defaults = dict(n_nodes=2, ranks_per_node=1, threads_per_rank=1,
                    lock="ticket", seed=42)
    defaults.update(kw)
    return Cluster(ClusterConfig(**defaults))


def make_req(**kw):
    defaults = dict(
        kind=ReqKind.RECV, rank=0, owner_tid=1,
        envelope=Envelope(0, 0, 0), nbytes=100, now=0.0,
    )
    defaults.update(kw)
    return Request(**defaults)


# ======================================================================
# Unit level: the Continuation handle on a bare Request
# ======================================================================
def test_attach_requires_callable():
    with pytest.raises(TypeError, match="callable"):
        make_req().attach_continuation("not a function")


def test_attach_to_freed_request_raises():
    r = make_req()
    r.mark_complete(1.0)
    r.mark_freed(2.0)
    with pytest.raises(RequestError, match="dangling continuation"):
        r.attach_continuation(lambda req: None)


def test_attach_to_complete_request_fires_immediately():
    r = make_req()
    r.mark_complete(1.0)
    fired = []
    h = r.attach_continuation(fired.append)
    assert fired == [r]
    assert h.fired and not h.detached
    # Too late to detach: the callback already ran.
    assert h.detach() is False


def test_detach_before_completion_unlinks():
    r = make_req()
    calls = []
    h = r.attach_continuation(calls.append)
    assert r._continuations == [h]
    assert h.detach() is True
    assert r._continuations == []
    assert h.detach() is False  # second detach: losing side, not an error
    r.mark_complete(1.0)
    assert calls == []


def test_detach_continuation_checks_ownership():
    r1, r2 = make_req(), make_req()
    h = r1.attach_continuation(lambda req: None)
    with pytest.raises(ValueError, match="does not belong"):
        r2.detach_continuation(h)
    assert r1.detach_continuation(h) is True


def test_free_clears_attached_continuations():
    r = make_req()
    h = r.attach_continuation(lambda req: None)
    r.mark_complete(1.0)
    r.mark_freed(2.0)
    assert r._continuations is None
    # The handle survived but is inert; detach is a clean no-op race loss.
    assert not h.fired
    assert h.detach() is False or h.detached


# ======================================================================
# Unit level: CompletionLatch
# ======================================================================
def test_latch_counts_and_predicates():
    sim = Simulator(seed=0)
    latch = CompletionLatch(sim, n_pending=2)
    assert not latch.done and not latch.any_fired
    latch.fire()
    assert not latch.done and latch.any_fired
    latch.fire()
    assert latch.done and latch.n_fired == 2


def test_latch_note_fired_counts_pre_complete():
    sim = Simulator(seed=0)
    latch = CompletionLatch(sim)
    latch.note_fired()
    assert latch.done and latch.any_fired


def test_latch_rejects_negative_pending():
    with pytest.raises(ValueError):
        CompletionLatch(Simulator(seed=0), n_pending=-1)


def test_latch_wait_wakes_on_fire():
    sim = Simulator(seed=0)
    latch = CompletionLatch(sim, n_pending=1)
    woke = []

    def waiter():
        yield latch.wait()
        woke.append(sim.now)

    def firer():
        yield sim.timeout(1e-6)
        latch.fire()

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert woke == [1e-6]


# ======================================================================
# Runtime integration: deferred continuations through _complete
# ======================================================================
def test_deferred_continuation_fires_with_request():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    fired = []

    def sender():
        yield from t0.send(1, 256, tag=3, data="payload")
        yield from t0.send(1, 256, tag=4, data="chaser")

    def receiver():
        req = yield from t1.irecv(source=0, tag=3)
        chaser = yield from t1.irecv(source=0, tag=4)
        req.attach_continuation(lambda r: fired.append((cl.sim.now, r)))
        # Wait on the *chaser* so the deferred dispatch for `req` drains
        # before `req` itself is freed (a wait on `req` could discover
        # completion in its own poll and cancel the fire via the free).
        yield from t1.wait(chaser)
        yield from t1.wait(req)

    cl.run_workload([sender(), receiver()])
    assert len(fired) == 1
    t, r = fired[0]
    assert r.data == "payload"
    assert r.t_completed is not None
    # Deferred dispatch runs at the completion timestamp.
    assert t == r.t_completed
    assert cl.runtimes[1].stats.continuations_fired >= 1


def test_continuations_fire_in_attach_order_then_completion_order():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    order = []

    def sender():
        for tag in (1, 2, 3):
            yield from t0.send(1, 256, tag=tag, data=tag)

    def receiver():
        r1 = yield from t1.irecv(source=0, tag=1)
        r2 = yield from t1.irecv(source=0, tag=2)
        r3 = yield from t1.irecv(source=0, tag=3)
        # Two callbacks on r1 (attach order within a request), one on r2.
        r1.attach_continuation(lambda r: order.append("r1-first"))
        r1.attach_continuation(lambda r: order.append("r1-second"))
        r2.attach_continuation(lambda r: order.append("r2"))
        # Wait on the last-sent request so both dispatches drain before
        # r1/r2 are freed below.
        yield from t1.wait(r3)
        yield from t1.waitall((r1, r2))

    cl.run_workload([sender(), receiver()])
    # tag 1 is sent (and arrives) before tag 2: completion order, and
    # within r1 the attach order, both deterministic by (time, seq).
    assert order == ["r1-first", "r1-second", "r2"]


def test_detached_deferred_continuation_never_runs():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    fired = []

    def sender():
        yield from t0.send(1, 256, tag=3, data=None)

    def receiver():
        req = yield from t1.irecv(source=0, tag=3)
        h = req.attach_continuation(fired.append)
        assert h.detach() is True
        yield from t1.wait(req)

    cl.run_workload([sender(), receiver()])
    assert fired == []


def test_sync_continuation_runs_inside_completion_path():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    seen = []

    def sender():
        yield from t0.send(1, 256, tag=3, data=None)

    def receiver():
        req = yield from t1.irecv(source=0, tag=3)
        req.attach_continuation(
            lambda r: seen.append(r.dangling), sync=True
        )
        yield from t1.wait(req)

    cl.run_workload([sender(), receiver()])
    # Fired synchronously at completion: the request was dangling
    # (complete, not yet freed) at that instant.
    assert seen == [True]


def test_free_cancels_inflight_deferred_fire_cleanly():
    """A legitimate free overtaking the deferred dispatch (same
    timestamp) detaches cleanly: the callback never runs."""
    cl = make_cluster()
    rt = cl.runtimes[0]
    sim = cl.sim
    req = make_req(rank=0)
    rt.requests[req.req_id] = req
    fired = []
    h = req.attach_continuation(fired.append)

    def proc():
        yield sim.timeout(1e-6)
        rt._complete(req)   # schedules the deferred dispatch at `now`
        rt._free(req)       # same slot: free wins, fire is cancelled

    sim.process(proc())
    sim.run()
    assert fired == []
    assert req.freed and h.detached and not h.fired
    assert rt.stats.continuations_fired == 0


def test_dangling_continuation_guard_raises_on_freed_fire():
    """A fire that finds its request freed means the free bypassed the
    detach in ``mark_freed``: raise, never silently run against a dead
    request."""
    cl = make_cluster()
    rt = cl.runtimes[0]
    sim = cl.sim
    req = make_req(rank=0)
    rt.requests[req.req_id] = req
    req.attach_continuation(lambda r: None)

    def proc():
        yield sim.timeout(1e-6)
        rt._complete(req)          # schedules the deferred dispatch
        req.state = ReqState.FREED  # rogue free: skips mark_freed's detach

    sim.process(proc())
    with pytest.raises(RequestError, match="dangling continuation"):
        sim.run()


def test_guard_not_triggered_when_detached_in_flight():
    cl = make_cluster()
    rt = cl.runtimes[0]
    sim = cl.sim
    req = make_req(rank=0)
    rt.requests[req.req_id] = req
    fired = []
    h = req.attach_continuation(fired.append)

    def proc():
        yield sim.timeout(1e-6)
        rt._complete(req)
        assert h.detach() is True  # cancels the in-flight dispatch
        rt._free(req)

    sim.process(proc())
    sim.run()
    assert fired == []


# ======================================================================
# waitany / testany edge cases
# ======================================================================
def test_waitany_empty_sequence_raises():
    cl = make_cluster()
    gen = cl.thread(0).waitany([])
    with pytest.raises(ValueError, match="empty request sequence"):
        next(gen)


def test_testany_empty_sequence_raises():
    cl = make_cluster()
    gen = cl.thread(0).testany(())
    with pytest.raises(ValueError, match="empty request sequence"):
        next(gen)


def test_waitall_empty_sequence_returns_empty():
    cl = make_cluster()
    out = {}

    def proc():
        out["data"] = yield from cl.thread(0).waitall([])
        out["all"] = yield from cl.thread(0).testall([])

    cl.run_workload([proc()])
    assert out["data"] == []
    assert out["all"] is True


def test_waitany_already_complete_returns_first_and_frees_only_it():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def sender():
        for tag in (1, 2):
            yield from t0.send(1, 256, tag=tag, data=tag)

    def receiver():
        # Let both messages arrive, then drain the NIC so they land in
        # the unexpected queue before posting.
        yield t1.compute(1e-3)
        yield from t1.progress_poke()
        r1 = yield from t1.irecv(source=0, tag=1)
        r2 = yield from t1.irecv(source=0, tag=2)
        assert r1.complete and r2.complete  # unexpected-queue hits
        idx = yield from t1.waitany((r1, r2))
        out["idx"] = idx
        out["r1_freed"] = r1.freed
        out["r2_freed"] = r2.freed
        yield from t1.wait(r2)

    cl.run_workload([sender(), receiver()])
    assert out["idx"] == 0
    assert out["r1_freed"] is True
    assert out["r2_freed"] is False  # waitany frees exactly one


def test_testany_already_complete_and_none_pending():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def sender():
        yield from t0.send(1, 256, tag=1, data="x")

    def receiver():
        yield t1.compute(1e-3)
        r1 = yield from t1.irecv(source=0, tag=1)
        r2 = yield from t1.irecv(source=0, tag=9)  # never matched
        idx = yield from t1.testany((r2, r1))
        out["idx"] = idx
        # r2 still pending: a second testany finds nothing new.
        out["again"] = yield from t1.testany((r2,))
        r2.claimed = False
        cl.runtimes[1].requests.pop(r2.req_id, None)

    cl.run_workload([sender(), receiver()])
    assert out["idx"] == 1
    assert out["again"] is None


def test_waitall_with_duplicate_requests():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def sender():
        yield from t0.send(1, 256, tag=5, data="dup")

    def receiver():
        req = yield from t1.irecv(source=0, tag=5)
        out["data"] = yield from t1.waitall((req, req, req))
        out["freed"] = req.freed

    cl.run_workload([sender(), receiver()])
    assert out["data"] == ["dup", "dup", "dup"]
    assert out["freed"] is True


def test_waitany_with_duplicate_requests_returns_first_index():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def sender():
        yield from t0.send(1, 256, tag=5, data=None)

    def receiver():
        req = yield from t1.irecv(source=0, tag=5)
        out["idx"] = yield from t1.waitany((req, req))
        out["freed"] = req.freed

    cl.run_workload([sender(), receiver()])
    assert out["idx"] == 0
    assert out["freed"] is True


def test_testall_with_duplicates_frees_once():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def sender():
        yield from t0.send(1, 256, tag=5, data=None)

    def receiver():
        yield t1.compute(1e-3)
        req = yield from t1.irecv(source=0, tag=5)
        out["done"] = yield from t1.testall((req, req))
        out["freed"] = req.freed

    cl.run_workload([sender(), receiver()])
    assert out["done"] is True
    assert out["freed"] is True


# ======================================================================
# Continuation-mode blocking calls
# ======================================================================
def test_continuation_mode_rejects_bad_value():
    with pytest.raises(ValueError, match="completion"):
        make_cluster(completion="callback")


@pytest.mark.parametrize("mode", ["poll", "continuation"])
def test_modes_deliver_identical_data(mode):
    cl = make_cluster(completion=mode)
    t0, t1 = cl.thread(0), cl.thread(1)
    got = []

    def sender():
        reqs = []
        for i in range(8):
            r = yield from t0.isend(1, 1024, tag=i, data=i)
            reqs.append(r)
        yield from t0.waitall(reqs)

    def receiver():
        reqs = []
        for i in range(8):
            r = yield from t1.irecv(source=0, tag=i)
            reqs.append(r)
        got.extend((yield from t1.waitall(reqs)))

    cl.run_workload([sender(), receiver()])
    assert got == list(range(8))


def test_continuation_mode_avoids_wasted_acquisitions():
    # Rendezvous-sized messages force real waiting on both sides.
    results = {}
    for mode in ("poll", "continuation"):
        cl = make_cluster(completion=mode, threads_per_rank=2)
        t0a, t0b = cl.thread(0, 0), cl.thread(0, 1)
        t1a, t1b = cl.thread(1, 0), cl.thread(1, 1)

        def sender(th):
            reqs = []
            for i in range(4):
                r = yield from th.isend(1, 65536, tag=i, data=i)
                reqs.append(r)
            yield from th.waitall(reqs)

        def receiver(th):
            reqs = []
            for i in range(4):
                r = yield from th.irecv(source=0, nbytes=65536, tag=i)
                reqs.append(r)
            yield from th.waitall(reqs)

        cl.run_workload(
            [sender(t0a), sender(t0b), receiver(t1a), receiver(t1b)]
        )
        results[mode] = {
            "wasted": sum(rt.stats.empty_polls for rt in cl.runtimes),
            "avoided": sum(
                rt.stats.wasted_acquisitions_avoided for rt in cl.runtimes
            ),
        }
    assert results["poll"]["wasted"] > 0
    assert results["poll"]["avoided"] == 0
    assert results["continuation"]["avoided"] > 0
    assert results["continuation"]["wasted"] < results["poll"]["wasted"]


def test_continuation_mode_waitany():
    cl = make_cluster(completion="continuation")
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def sender():
        yield t0.compute(1e-4)
        yield from t0.send(1, 256, tag=2, data="late")

    def receiver():
        r1 = yield from t1.irecv(source=0, tag=1)  # never matched
        r2 = yield from t1.irecv(source=0, tag=2)
        idx = yield from t1.waitany((r1, r2))
        out["idx"] = idx
        out["r2"] = r2.data
        # Clean up the never-matched request.
        r1.claimed = False
        cl.runtimes[1].requests.pop(r1.req_id, None)

    cl.run_workload([sender(), receiver()])
    assert out["idx"] == 1
    assert out["r2"] == "late"
