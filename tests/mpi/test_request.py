"""Request lifecycle (paper Fig. 3b state diagram)."""

import pytest

from repro.mpi import Envelope, ReqKind, ReqState, Request, RequestError
from repro.mpi.request import Protocol


def make_req(**kw):
    defaults = dict(
        kind=ReqKind.RECV, rank=0, owner_tid=1,
        envelope=Envelope(0, 0, 0), nbytes=100, now=0.0,
    )
    defaults.update(kw)
    return Request(**defaults)


def test_initial_state_is_issued():
    r = make_req()
    assert r.state is ReqState.ISSUED
    assert not r.complete and not r.freed and not r.dangling


def test_issue_post_complete_free_path():
    r = make_req()
    r.mark_posted()
    assert r.state is ReqState.POSTED
    r.mark_complete(1.0)
    assert r.complete and r.dangling and not r.freed
    assert r.t_completed == 1.0
    r.mark_freed(2.0)
    assert r.freed and not r.dangling
    assert r.t_freed == 2.0


def test_issue_complete_directly():
    """Unexpected-queue hit: request completes without being posted."""
    r = make_req()
    r.mark_complete(1.0)
    assert r.complete


def test_pending_transition_for_sends():
    r = make_req(kind=ReqKind.SEND)
    r.mark_pending()
    assert r.state is ReqState.PENDING
    r.mark_complete(1.0)
    assert r.complete


def test_posted_then_pending_for_rendezvous():
    r = make_req()
    r.mark_posted()
    r.mark_pending()
    assert r.state is ReqState.PENDING


def test_double_complete_rejected():
    r = make_req()
    r.mark_complete(1.0)
    with pytest.raises(RequestError):
        r.mark_complete(2.0)


def test_free_before_complete_rejected():
    r = make_req()
    with pytest.raises(RequestError):
        r.mark_freed(1.0)
    r.mark_posted()
    with pytest.raises(RequestError):
        r.mark_freed(1.0)


def test_double_free_rejected():
    r = make_req()
    r.mark_complete(1.0)
    r.mark_freed(2.0)
    with pytest.raises(RequestError):
        r.mark_freed(3.0)


def test_post_after_complete_rejected():
    r = make_req()
    r.mark_complete(1.0)
    with pytest.raises(RequestError):
        r.mark_posted()


def test_pending_after_complete_rejected():
    r = make_req()
    r.mark_complete(1.0)
    with pytest.raises(RequestError):
        r.mark_pending()


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        make_req(nbytes=-1)


def test_request_ids_unique():
    assert make_req().req_id != make_req().req_id


def test_protocol_field():
    r = make_req(protocol=Protocol.RNDV)
    assert r.protocol is Protocol.RNDV
