"""Posted/unexpected queue semantics."""

from repro.mpi import ANY_SOURCE, ANY_TAG, Envelope, ReqKind, Request
from repro.mpi.queues import PostedQueue, UnexpectedMsg, UnexpectedQueue


def recv_req(source=ANY_SOURCE, tag=ANY_TAG, comm=0):
    return Request(
        ReqKind.RECV, rank=0, owner_tid=0,
        envelope=Envelope(source, tag, comm), nbytes=8, now=0.0,
    )


class TestPostedQueue:
    def test_fifo_matching(self):
        q = PostedQueue()
        a, b = recv_req(), recv_req()
        q.post(a)
        q.post(b)
        got, _ = q.match(Envelope(1, 1, 0))
        assert got is a
        got, _ = q.match(Envelope(1, 1, 0))
        assert got is b
        assert len(q) == 0

    def test_skips_non_matching(self):
        q = PostedQueue()
        specific = recv_req(source=5, tag=1)
        anyr = recv_req()
        q.post(specific)
        q.post(anyr)
        got, scanned = q.match(Envelope(2, 1, 0))
        assert got is anyr
        assert scanned == 2
        assert len(q) == 1  # 'specific' still posted

    def test_no_match_returns_none_and_scans_all(self):
        q = PostedQueue()
        q.post(recv_req(source=5))
        q.post(recv_req(source=6))
        got, scanned = q.match(Envelope(7, 0, 0))
        assert got is None
        assert scanned == 2

    def test_max_len_tracked(self):
        q = PostedQueue()
        for _ in range(5):
            q.post(recv_req())
        q.match(Envelope(0, 0, 0))
        q.post(recv_req())
        assert q.max_len == 5


class TestUnexpectedQueue:
    def msg(self, source=1, tag=1, comm=0, **kw):
        return UnexpectedMsg(Envelope(source, tag, comm), 64, source, **kw)

    def test_fifo_matching_with_wildcard_pattern(self):
        q = UnexpectedQueue()
        m1, m2 = self.msg(tag=1), self.msg(tag=2)
        q.add(m1)
        q.add(m2)
        got, _ = q.match(Envelope(ANY_SOURCE, ANY_TAG, 0))
        assert got is m1

    def test_specific_pattern_skips(self):
        q = UnexpectedQueue()
        m1, m2 = self.msg(tag=1), self.msg(tag=2)
        q.add(m1)
        q.add(m2)
        got, scanned = q.match(Envelope(ANY_SOURCE, 2, 0))
        assert got is m2
        assert scanned == 2
        assert len(q) == 1

    def test_no_match(self):
        q = UnexpectedQueue()
        q.add(self.msg(tag=1))
        got, _ = q.match(Envelope(ANY_SOURCE, 9, 0))
        assert got is None
        assert len(q) == 1

    def test_counters(self):
        q = UnexpectedQueue()
        q.add(self.msg())
        q.add(self.msg())
        assert q.total_enqueued == 2
        assert q.max_len == 2
        q.match(Envelope(ANY_SOURCE, ANY_TAG, 0))
        assert q.total_scanned == 1

    def test_rndv_entry_fields(self):
        m = self.msg(rndv=True, sender_req_id=42)
        assert m.rndv and m.sender_req_id == 42
