"""Tests for the event-driven wait mode (paper 9 future work)."""


from repro.machine import CostModel
from repro.mpi import Cluster, ClusterConfig
from repro.workloads import (
    N2NConfig,
    RmaConfig,
    ThroughputConfig,
    run_n2n,
    run_rma,
    run_throughput,
)


def make_cluster(**kw):
    defaults = dict(n_nodes=2, threads_per_rank=2, lock="ticket",
                    seed=5, event_driven_wait=True)
    defaults.update(kw)
    return Cluster(ClusterConfig(**defaults))


def test_pt2pt_still_correct():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def sender():
        yield from t0.send(1, 1024, tag=3, data="payload")

    def receiver():
        out["v"] = yield from t1.recv(source=0, tag=3)

    cl.run_workload([sender(), receiver()])
    assert out["v"] == "payload"


def test_rendezvous_still_correct():
    """Parked waiters must be woken by CTS/data arrivals."""
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def sender():
        yield from t0.send(1, 1 << 18, tag=1, data="big")

    def receiver():
        out["v"] = yield from t1.recv(source=0, tag=1)

    cl.run_workload([sender(), receiver()])
    assert out["v"] == "big"


def test_send_completion_wakes_parked_waiter():
    """A send completing locally (no packet arrival at the sender) must
    still wake its parked owner."""
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)

    def sender():
        req = yield from t0.isend(1, 8192, tag=0, data="x")
        yield from t0.wait(req)  # parks until local completion fires

    def receiver():
        yield from t1.recv(source=0, tag=0)

    cl.run_workload([sender(), receiver()])
    assert cl.runtimes[0].dangling_count == 0


def test_throughput_results_match_polling_mode():
    """Event-driven waiting changes scheduling, not semantics."""
    polled = run_throughput(
        make_cluster(threads_per_rank=4, event_driven_wait=False),
        ThroughputConfig(msg_size=64, n_windows=2),
    )
    evented = run_throughput(
        make_cluster(threads_per_rank=4, event_driven_wait=True),
        ThroughputConfig(msg_size=64, n_windows=2),
    )
    assert polled.total_messages == evented.total_messages
    assert evented.msg_rate_k > 0


def test_reduces_empty_polls_under_mutex():
    cm = CostModel(progress_batch=1)

    def empty_polls(ed):
        cl = Cluster(ClusterConfig(
            n_nodes=3, threads_per_rank=4, lock="mutex", seed=2,
            costs=cm, event_driven_wait=ed))
        run_n2n(cl, N2NConfig(msg_size=512, window=4, n_windows=2,
                              style="rounds"))
        return sum(rt.stats.empty_polls for rt in cl.runtimes)

    assert empty_polls(True) < empty_polls(False)


def test_rma_with_event_driven_async_progress():
    cl = Cluster(ClusterConfig(
        n_nodes=4, threads_per_rank=1, lock="ticket", seed=5,
        async_progress=True, event_driven_wait=True))
    res = run_rma(cl, RmaConfig(op="get", element_size=256, n_ops=10))
    assert res.rate_k > 0


def test_deterministic():
    vals = set()
    for _ in range(2):
        r = run_throughput(
            make_cluster(threads_per_rank=4),
            ThroughputConfig(msg_size=64, n_windows=2),
        )
        vals.add(r.elapsed_s)
    assert len(vals) == 1
