"""Tests for the extended MPI API: testall/testany/waitany/probe/sendrecv."""


from repro.mpi import Cluster, ClusterConfig


def make_cluster(**kw):
    defaults = dict(n_nodes=2, threads_per_rank=1, lock="ticket", seed=11)
    defaults.update(kw)
    return Cluster(ClusterConfig(**defaults))


def test_testall_completes_and_frees():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    tries = []

    def sender():
        yield t0.compute(5e-4)
        for i in range(3):
            yield from t0.send(1, 64, tag=i, data=i)

    def receiver():
        reqs = []
        for i in range(3):
            reqs.append((yield from t1.irecv(source=0, tag=i)))
        while True:
            done = yield from t1.testall(reqs)
            tries.append(done)
            if done:
                break
            yield t1.compute(1e-5)
        assert all(r.freed for r in reqs)

    cl.run_workload([sender(), receiver()])
    assert tries[-1] is True
    assert tries.count(True) == 1
    assert len(tries) > 1


def test_testall_partial_completion_is_false():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    observed = {}

    def sender():
        yield from t0.send(1, 64, tag=0, data="first")
        yield t0.compute(1e-3)
        yield from t0.send(1, 64, tag=1, data="second")

    def receiver():
        r0 = yield from t1.irecv(source=0, tag=0)
        r1 = yield from t1.irecv(source=0, tag=1)
        # Wait for the first message; the second is still in flight, so
        # testall over both must be False and must free nothing.
        yield from t1.wait(r0)
        done = yield from t1.testall((r1,))
        observed["after_first"] = done
        observed["r1_freed_early"] = r1.freed
        yield from t1.wait(r1)

    cl.run_workload([sender(), receiver()])
    assert observed["after_first"] is False
    assert observed["r1_freed_early"] is False



def test_waitany_returns_first_completed():
    cl = make_cluster(threads_per_rank=2)
    t0, t1 = cl.thread(0, 0), cl.thread(1, 0)
    t0b = cl.thread(0, 1)
    out = {}

    def sender():
        yield t0.compute(2e-4)
        yield from t0.send(1, 64, tag=7, data="late-tag-first")

    def receiver():
        r_slow = yield from t1.irecv(source=0, tag=3)   # arrives much later
        r_soon = yield from t1.irecv(source=0, tag=7)
        idx = yield from t1.waitany((r_slow, r_soon))
        out["idx"] = idx
        out["freed"] = r_soon.freed and not r_slow.freed
        yield from t1.wait(r_slow)  # drain the slow one too

    def late_sender():
        yield t0b.compute(2e-3)
        yield from t0b.send(1, 8, tag=3, data="cleanup")

    cl.run_workload([sender(), receiver(), late_sender()])
    assert out["idx"] == 1
    assert out["freed"] is True


def test_testany_none_then_index():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    seen = []

    def sender():
        yield t0.compute(5e-4)
        yield from t0.send(1, 64, tag=1, data="x")

    def receiver():
        r = yield from t1.irecv(source=0, tag=1)
        while True:
            idx = yield from t1.testany((r,))
            seen.append(idx)
            if idx is not None:
                break
            yield t1.compute(1e-5)

    cl.run_workload([sender(), receiver()])
    assert seen[-1] == 0
    assert seen.count(None) >= 1


def test_iprobe_sees_unexpected_only():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def sender():
        yield from t0.send(1, 512, tag=4, data="probe-me")

    def receiver():
        # Let the message land, then probe before posting a receive.
        found = yield from t1.probe(source=0, tag=4)
        out["probe"] = found
        # Probing is non-destructive: the receive still matches.
        out["data"] = yield from t1.recv(source=0, tag=4)

    cl.run_workload([sender(), receiver()])
    assert out["probe"] == (0, 4, 512)
    assert out["data"] == "probe-me"


def test_iprobe_returns_none_when_nothing_matches():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def sender():
        yield from t0.send(1, 64, tag=8, data="other")

    def receiver():
        yield from t1.probe(source=0, tag=8)  # ensure msg is in UQ
        out["miss"] = yield from t1.iprobe(source=0, tag=9)
        yield from t1.recv(source=0, tag=8)

    cl.run_workload([sender(), receiver()])
    assert out["miss"] is None


def test_sendrecv_exchanges_without_deadlock():
    """Head-to-head blocking exchange: plain send+recv would deadlock for
    rendezvous sizes; sendrecv must not."""
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def a():
        out[0] = yield from t0.sendrecv(1, 1, 1 << 18, tag=5, data="from-0")

    def b():
        out[1] = yield from t1.sendrecv(0, 0, 1 << 18, tag=5, data="from-1")

    cl.run_workload([a(), b()])
    assert out[0] == "from-1"
    assert out[1] == "from-0"


def test_sendrecv_distinct_tags_and_sizes():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def a():
        out[0] = yield from t0.sendrecv(
            1, 1, 64, tag=1, data="ping", recv_nbytes=128, recv_tag=2)

    def b():
        out[1] = yield from t1.sendrecv(
            0, 0, 128, tag=2, data="pong", recv_nbytes=64, recv_tag=1)

    cl.run_workload([a(), b()])
    assert out == {0: "pong", 1: "ping"}
