"""End-to-end pt2pt communication through the simulated runtime."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, Cluster, ClusterConfig, Protocol


def make_cluster(**kw):
    defaults = dict(n_nodes=2, ranks_per_node=1, threads_per_rank=1,
                    lock="ticket", seed=42)
    defaults.update(kw)
    return Cluster(ClusterConfig(**defaults))


def test_blocking_send_recv_delivers_data():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def sender():
        yield from t0.send(1, 1024, tag=7, data={"hello": "world"})

    def receiver():
        out["data"] = yield from t1.recv(source=0, tag=7)

    cl.run_workload([sender(), receiver()])
    assert out["data"] == {"hello": "world"}


def test_isend_irecv_waitall():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    got = []

    def sender():
        reqs = []
        for i in range(10):
            r = yield from t0.isend(1, 256, tag=i, data=i)
            reqs.append(r)
        yield from t0.waitall(reqs)

    def receiver():
        reqs = []
        for i in range(10):
            r = yield from t1.irecv(source=0, tag=i)
            reqs.append(r)
        vals = yield from t1.waitall(reqs)
        got.extend(vals)

    cl.run_workload([sender(), receiver()])
    assert got == list(range(10))


def test_wildcard_receive_matches_any():
    cl = make_cluster(n_nodes=3)
    got = []

    def sender(rank, tag):
        th = cl.thread(rank)

        def gen():
            yield from th.send(2, 64, tag=tag, data=(rank, tag))
        return gen()

    def receiver():
        th = cl.thread(2)
        for _ in range(2):
            v = yield from th.recv(source=ANY_SOURCE, tag=ANY_TAG)
            got.append(v)

    cl.run_workload([sender(0, 5), sender(1, 9), receiver()])
    assert sorted(got) == [(0, 5), (1, 9)]


def test_message_ordering_same_pair_same_tag():
    """Non-overtaking: messages with the same envelope arrive in order."""
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    got = []

    def sender():
        for i in range(20):
            yield from t0.send(1, 64, tag=0, data=i)

    def receiver():
        for _ in range(20):
            got.append((yield from t1.recv(source=0, tag=0)))

    cl.run_workload([sender(), receiver()])
    assert got == list(range(20))


@pytest.mark.parametrize("nbytes,proto", [
    (64, Protocol.INLINE),
    (128, Protocol.INLINE),
    (129, Protocol.EAGER),
    (16384, Protocol.EAGER),
    (16385, Protocol.RNDV),
    (1 << 20, Protocol.RNDV),
])
def test_protocol_selection_by_size(nbytes, proto):
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    seen = {}

    def sender():
        req = yield from t0.isend(1, nbytes, tag=0, data=b"x")
        seen["proto"] = req.protocol
        yield from t0.wait(req)

    def receiver():
        yield from t1.recv(source=0, tag=0)

    cl.run_workload([sender(), receiver()])
    assert seen["proto"] is proto


def test_rendezvous_transfers_data():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    payload = list(range(1000))
    out = {}

    def sender():
        yield from t0.send(1, 1 << 20, tag=3, data=payload)

    def receiver():
        out["v"] = yield from t1.recv(source=0, tag=3)

    cl.run_workload([sender(), receiver()])
    assert out["v"] == payload


def test_unexpected_path_flags_request():
    """Message arrives before the receive is posted -> unexpected queue."""
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    flags = {}

    def sender():
        yield from t0.send(1, 512, tag=1, data="早い")
        yield from t0.send(1, 64, tag=9, data="marker")

    def receiver():
        # Blocking on tag 9 polls the progress engine, which drains the
        # tag-1 message into the unexpected queue first.
        yield from t1.recv(source=0, tag=9)
        req = yield from t1.irecv(source=0, tag=1)
        flags["unexpected"] = req.unexpected
        flags["complete_at_irecv"] = req.complete
        yield from t1.wait(req)
        flags["data"] = req.data

    cl.run_workload([sender(), receiver()])
    assert flags["unexpected"] is True
    assert flags["complete_at_irecv"] is True
    assert flags["data"] == "早い"
    assert cl.runtimes[1].stats.unexpected_hits == 1


def test_posted_path_flags_request():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    flags = {}

    def sender():
        yield t0.compute(1e-3)  # receiver posts first
        yield from t0.send(1, 512, tag=1, data=1)

    def receiver():
        req = yield from t1.irecv(source=0, tag=1)
        flags["unexpected_before"] = req.unexpected
        yield from t1.wait(req)
        flags["unexpected"] = req.unexpected

    cl.run_workload([sender(), receiver()])
    assert flags["unexpected"] is False
    assert cl.runtimes[1].stats.posted_hits == 1


def test_unexpected_rendezvous_roundtrip():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def sender():
        sreq = yield from t0.isend(1, 1 << 18, tag=2, data="big")
        yield from t0.send(1, 64, tag=9, data="marker")
        yield from t0.wait(sreq)

    def receiver():
        # Drain the RTS into the unexpected queue by blocking on tag 9.
        yield from t1.recv(source=0, tag=9)
        req = yield from t1.irecv(source=0, tag=2)
        out["unexpected"] = req.unexpected
        yield from t1.wait(req)
        out["v"] = req.data

    cl.run_workload([sender(), receiver()])
    assert out["unexpected"] is True
    assert out["v"] == "big"


def test_mpi_test_polls_and_frees():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    polls = []

    def sender():
        yield t0.compute(5e-4)
        yield from t0.send(1, 64, tag=0, data="x")

    def receiver():
        req = yield from t1.irecv(source=0, tag=0)
        while True:
            done = yield from t1.test(req)
            polls.append(done)
            if done:
                break
            yield t1.compute(1e-5)
        assert req.freed

    cl.run_workload([sender(), receiver()])
    assert polls[-1] is True
    assert polls.count(True) == 1
    assert len(polls) > 1  # at least one unsuccessful poll happened


def test_dangling_count_returns_to_zero():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)

    def sender():
        reqs = []
        for i in range(8):
            reqs.append((yield from t0.isend(1, 256, tag=i, data=i)))
        yield from t0.waitall(reqs)

    def receiver():
        reqs = []
        for i in range(8):
            reqs.append((yield from t1.irecv(source=0, tag=i)))
        yield from t1.waitall(reqs)

    cl.run_workload([sender(), receiver()])
    assert cl.runtimes[0].dangling_count == 0
    assert cl.runtimes[1].dangling_count == 0
    assert cl.runtimes[1].stats.completed == cl.runtimes[1].stats.freed


def test_self_send_same_rank_two_threads():
    """Two threads of one rank can exchange via their own runtime."""
    cl = make_cluster(n_nodes=1, threads_per_rank=2)
    a, b = cl.thread(0, 0), cl.thread(0, 1)
    out = {}

    def sender():
        yield from a.send(0, 64, tag=1, data="loop")

    def receiver():
        out["v"] = yield from b.recv(source=0, tag=1)

    cl.run_workload([sender(), receiver()])
    assert out["v"] == "loop"


def test_multithreaded_concurrent_sends(sim=None):
    """8 threads per rank all communicating concurrently, mutex lock."""
    cl = make_cluster(lock="mutex", threads_per_rank=4)
    n_msgs = 10
    results = []

    def sender(i):
        th = cl.thread(0, i)

        def gen():
            reqs = []
            for j in range(n_msgs):
                reqs.append((yield from th.isend(1, 128, tag=i * 100 + j, data=j)))
            yield from th.waitall(reqs)
        return gen()

    def receiver(i):
        th = cl.thread(1, i)

        def gen():
            reqs = []
            for j in range(n_msgs):
                reqs.append((yield from th.irecv(source=0, tag=i * 100 + j)))
            vals = yield from th.waitall(reqs)
            results.append(vals)
        return gen()

    cl.run_workload(
        [sender(i) for i in range(4)] + [receiver(i) for i in range(4)]
    )
    assert len(results) == 4
    for vals in results:
        assert vals == list(range(n_msgs))


def test_single_thread_null_lock_runs():
    cl = make_cluster(lock="null")
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def sender():
        yield from t0.send(1, 1024, tag=0, data=b"s")

    def receiver():
        out["v"] = yield from t1.recv(source=0)

    cl.run_workload([sender(), receiver()])
    assert out["v"] == b"s"
