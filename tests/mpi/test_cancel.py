"""MPI_Cancel, receive side: the deadline-expiry primitive.

A cancelled receive completes-with-error and is freed in one step, so
latches and continuations observe it exactly like a reliability
give-up; a cancel that loses the race to completion reports False but
still frees.  The rendezvous race (data arriving after the CTS'd
receive was cancelled) is counted, never silently dropped.
"""

import pytest

from repro.mpi import Cluster, ClusterConfig


def make_cluster(**kw):
    defaults = dict(n_nodes=2, ranks_per_node=1, threads_per_rank=1,
                    lock="ticket", seed=42)
    defaults.update(kw)
    return Cluster(ClusterConfig(**defaults))


def test_cancel_pending_recv_completes_with_error_and_frees():
    cl = make_cluster()
    t1 = cl.thread(1)
    out = {}

    def receiver():
        req = yield from t1.irecv(source=0, tag=0)
        seen = []
        # sync: fire inline at completion (the latch discipline) -- a
        # deferred fire would be dropped by the free half of cancel.
        req.attach_continuation(lambda r: seen.append(r.error), sync=True)
        out["cancelled"] = yield from t1.cancel(req)
        out["error"], out["freed"] = req.error, req.freed
        out["continuation_saw_error"] = seen == [True]

    cl.run_workload([receiver()])
    assert out == {
        "cancelled": True, "error": True, "freed": True,
        "continuation_saw_error": True,
    }
    rt = cl.runtimes[1]
    assert rt.stats.cancelled == 1
    assert rt.dangling_count == 0


def test_cancel_is_recv_only():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)

    def sender():
        req = yield from t0.isend(1, 256, tag=0, data="x")
        with pytest.raises(ValueError, match="only receive requests"):
            yield from t0.cancel(req)
        yield from t0.wait(req)

    def receiver():
        yield from t1.recv(source=0, tag=0)

    cl.run_workload([sender(), receiver()])


def test_cancel_after_completion_returns_false_but_frees():
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def sender():
        yield from t0.send(1, 256, tag=0, data="hello")

    def receiver():
        req = yield from t1.irecv(source=0, tag=0)
        # Let the eager message land and match: once complete, cancel
        # must lose the race -- but still leave one cleanup path.
        while not req.complete:
            yield t1.compute(5e-6)
            yield from t1.progress_poke()
        out["cancelled"] = yield from t1.cancel(req)
        out["error"], out["freed"] = req.error, req.freed
        out["data"] = req.data

    cl.run_workload([sender(), receiver()])
    assert out["cancelled"] is False
    assert out["error"] is False  # completed normally
    assert out["freed"] is True
    assert out["data"] == "hello"
    assert cl.runtimes[1].stats.cancelled == 0
    assert cl.runtimes[1].dangling_count == 0


def test_cancel_twice_second_call_is_a_noop():
    cl = make_cluster()
    t1 = cl.thread(1)
    out = {}

    def receiver():
        req = yield from t1.irecv(source=0, tag=0)
        out["first"] = yield from t1.cancel(req)
        out["second"] = yield from t1.cancel(req)

    cl.run_workload([receiver()])
    assert out == {"first": True, "second": False}
    assert cl.runtimes[1].stats.cancelled == 1


def test_cancelled_recv_never_matches_a_late_message():
    # The message arrives after the cancel: it must land in the
    # unexpected queue (for some future recv), not resurrect the
    # cancelled request.
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def sender():
        yield t0.compute(200e-6)  # give the cancel a head start
        yield from t0.send(1, 256, tag=0, data="late")

    def receiver():
        req = yield from t1.irecv(source=0, tag=0)
        out["cancelled"] = yield from t1.cancel(req)
        # A fresh receive picks the late message up instead.
        out["data"] = yield from t1.recv(source=0, tag=0)
        out["stale"] = req.data

    cl.run_workload([sender(), receiver()])
    assert out["cancelled"] is True
    assert out["data"] == "late"
    assert out["stale"] is None


def test_rndv_data_racing_a_cancel_is_counted_not_delivered():
    # Rendezvous: the receiver matches the RTS and sends its CTS, then
    # cancels while the bulk data is in flight.  The data must be
    # dropped and counted, and nothing dangles.
    cl = make_cluster()
    t0, t1 = cl.thread(0), cl.thread(1)
    big = 256 * 1024  # far past the eager threshold
    out = {}

    def sender():
        yield from t0.send(1, big, tag=0, data="bulk")

    def receiver():
        req = yield from t1.irecv(source=0, nbytes=big, tag=0)
        # Poll until the RTS is matched (CTS out, data inbound).
        while not cl.runtimes[1].stats.packets_handled:
            yield t1.compute(2e-6)
            yield from t1.progress_poke()
        out["cancelled"] = yield from t1.cancel(req)
        # Drain the in-flight data packet.
        for _ in range(200):
            yield t1.compute(5e-6)
            yield from t1.progress_poke()

    cl.run_workload([sender(), receiver()])
    rt = cl.runtimes[1]
    assert out["cancelled"] is True
    assert rt.stats.stale_rndv_data == 1
    assert rt.dangling_count == 0


def test_cancel_wakes_a_parked_event_driven_waiter():
    # Event-driven wait parks on the runtime's activity signal; a
    # cancel is a completion and must wake the waiter like any other.
    cl = make_cluster(threads_per_rank=2, event_driven_wait=True)
    th_wait, th_cancel = cl.threads[1][0], cl.threads[1][1]
    out = {}
    shared = {}

    def waiter():
        req = yield from th_wait.irecv(source=0, tag=0)
        shared["req"] = req
        yield from th_wait.wait(req)
        out["error"] = req.error

    def canceller():
        yield th_cancel.compute(100e-6)  # let the waiter park first
        out["cancelled"] = yield from th_cancel.cancel(shared["req"])

    cl.run_workload([waiter(), canceller()])
    assert out == {"cancelled": True, "error": True}
