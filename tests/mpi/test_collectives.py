"""Collective operations over the simulated runtime."""

import operator

import pytest

from repro.mpi import Cluster, ClusterConfig, Communicator
from repro.mpi.collectives import allreduce, alltoall, barrier, bcast, reduce


def make_cluster(n_ranks, **kw):
    defaults = dict(n_nodes=n_ranks, ranks_per_node=1, lock="ticket", seed=9)
    defaults.update(kw)
    return Cluster(ClusterConfig(**defaults))


@pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8])
def test_barrier_synchronizes(p):
    cl = make_cluster(p)
    exit_times = {}

    def party(rank, delay):
        th = cl.thread(rank)

        def gen():
            yield th.compute(delay)
            yield from barrier(th, cl.world)
            exit_times[rank] = cl.sim.now
        return gen()

    cl.run_workload([party(r, r * 1e-4) for r in range(p)])
    slowest_entry = (p - 1) * 1e-4
    for r in range(p):
        assert exit_times[r] >= slowest_entry


@pytest.mark.parametrize("p", [2, 4, 5, 8])
@pytest.mark.parametrize("root", [0, 1])
def test_bcast_delivers_root_value(p, root):
    cl = make_cluster(p)
    got = {}

    def party(rank):
        th = cl.thread(rank)

        def gen():
            v = "payload" if rank == root else None
            v = yield from bcast(th, cl.world, v, root=root, nbytes=64)
            got[rank] = v
        return gen()

    cl.run_workload([party(r) for r in range(p)])
    assert got == {r: "payload" for r in range(p)}


@pytest.mark.parametrize("p", [2, 3, 4, 8])
def test_reduce_sums_to_root(p):
    cl = make_cluster(p)
    got = {}

    def party(rank):
        th = cl.thread(rank)

        def gen():
            v = yield from reduce(th, cl.world, rank + 1, operator.add, root=0)
            got[rank] = v
        return gen()

    cl.run_workload([party(r) for r in range(p)])
    assert got[0] == p * (p + 1) // 2
    for r in range(1, p):
        assert got[r] is None


@pytest.mark.parametrize("p", [1, 2, 4, 6, 8])
def test_allreduce_everyone_gets_total(p):
    cl = make_cluster(p)
    got = {}

    def party(rank):
        th = cl.thread(rank)

        def gen():
            got[rank] = yield from allreduce(th, cl.world, 2 ** rank, operator.add)
        return gen()

    cl.run_workload([party(r) for r in range(p)])
    expected = 2 ** p - 1
    assert all(v == expected for v in got.values())


def test_allreduce_with_max_op():
    p = 4
    cl = make_cluster(p)
    got = {}

    def party(rank):
        th = cl.thread(rank)

        def gen():
            got[rank] = yield from allreduce(th, cl.world, rank * 10, max)
        return gen()

    cl.run_workload([party(r) for r in range(p)])
    assert set(got.values()) == {30}


@pytest.mark.parametrize("p", [2, 3, 4, 8])
def test_alltoall_exchanges_all_pairs(p):
    cl = make_cluster(p)
    got = {}

    def party(rank):
        th = cl.thread(rank)

        def gen():
            vals = [f"{rank}->{d}" for d in range(p)]
            got[rank] = yield from alltoall(th, cl.world, vals, nbytes_each=32)
        return gen()

    cl.run_workload([party(r) for r in range(p)])
    for r in range(p):
        assert got[r] == [f"{s}->{r}" for s in range(p)]


def test_alltoall_wrong_arity_raises():
    cl = make_cluster(2)
    th = cl.thread(0)

    def gen():
        yield from alltoall(th, cl.world, ["only-one"], nbytes_each=8)

    p = cl.sim.process(gen())
    with pytest.raises(ValueError):
        cl.sim.run(until=p)


def test_consecutive_collectives_do_not_cross_match():
    """Back-to-back collectives use distinct tag generations."""
    p = 4
    cl = make_cluster(p)
    got = {}

    def party(rank):
        th = cl.thread(rank)

        def gen():
            a = yield from allreduce(th, cl.world, rank, operator.add)
            yield from barrier(th, cl.world)
            b = yield from allreduce(th, cl.world, rank * 100, operator.add)
            got[rank] = (a, b)
        return gen()

    cl.run_workload([party(r) for r in range(p)])
    assert all(v == (6, 600) for v in got.values())


def test_subcommunicator_collective():
    """A collective over a strict subset of ranks leaves others alone."""
    cl = make_cluster(4)
    sub = Communicator(id=1, ranks=(1, 3))
    got = {}

    def party(rank):
        th = cl.thread(rank)

        def gen():
            got[rank] = yield from allreduce(th, sub, rank, operator.add)
        return gen()

    cl.run_workload([party(1), party(3)])
    assert got == {1: 4, 3: 4}
