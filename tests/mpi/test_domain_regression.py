"""The global policy must reproduce the pre-domain runtime bit-for-bit.

These values were captured on the seed runtime *before* the critical
section was refactored into arbitration domains.  The refactor's core
promise is that one ``global`` domain is the identical simulated system
-- same RNG consumption order, same lock names (they key RNG streams),
same event schedule -- so these must match to the last bit, not "about".

Every pin runs under both event-queue implementations: the calendar
queue is only admissible because it preserves the (time, seq) total
order exactly, and these are the tests that hold it to that.

If an intentional behaviour change breaks them, recapture deliberately
and say so in the commit; never loosen to approximate comparison.
"""

import pytest

from repro.mpi.world import Cluster, ClusterConfig
from repro.workloads.n2n import N2NConfig, run_n2n
from repro.workloads.rma_bench import RmaConfig, run_rma
from repro.workloads.throughput import (
    ThroughputConfig,
    run_throughput,
    throughput_cluster,
)

pytestmark = pytest.mark.parametrize("scheduler", ["heap", "calendar"])


def test_fig2_style_throughput_pinned(scheduler):
    cl = throughput_cluster(lock="mutex", threads_per_rank=4, seed=0,
                            scheduler=scheduler)
    r = run_throughput(cl, ThroughputConfig(msg_size=1024, n_windows=3))
    assert r.msg_rate_k == 696.10674635968
    assert r.elapsed_s == 0.0011032790646208917


def test_fig2_style_scatter_binding_pinned(scheduler):
    cl = throughput_cluster(lock="mutex", threads_per_rank=2,
                            binding="scatter", seed=0, scheduler=scheduler)
    r = run_throughput(cl, ThroughputConfig(msg_size=8, n_windows=3))
    assert r.msg_rate_k == 1257.6182379921245
    assert r.elapsed_s == 0.000305339083355759


def test_fig9_style_rma_put_ticket_pinned(scheduler):
    cl = Cluster(ClusterConfig(n_nodes=4, threads_per_rank=1, lock="ticket",
                               async_progress=True, seed=0,
                               scheduler=scheduler))
    r = run_rma(cl, RmaConfig(op="put", element_size=64, n_ops=40))
    assert r.rate_k == 248.95221290666464


def test_fig9_style_rma_get_mutex_pinned(scheduler):
    cl = Cluster(ClusterConfig(n_nodes=4, threads_per_rank=1, lock="mutex",
                               async_progress=True, seed=0,
                               scheduler=scheduler))
    r = run_rma(cl, RmaConfig(op="get", element_size=64, n_ops=40))
    assert r.rate_k == 143.42775188390408


def test_n2n_priority_brief_pinned(scheduler):
    cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=4, lock="priority",
                               seed=3, cs_granularity="brief",
                               scheduler=scheduler))
    r = run_n2n(cl, N2NConfig(msg_size=4096, window=4, n_windows=2,
                              style="rounds"))
    assert r.msg_rate_k == 1041.3505012246992
    assert r.unexpected_fraction == 0.0625


def test_one_vci_domain_is_the_global_cs(scheduler):
    """per-vci with a single domain must schedule identically to global
    (same lock name, same routing, same RNG order)."""
    results = []
    for cs in ("global", "per-vci:1"):
        cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=4,
                                   lock="mutex", cs=cs, seed=1,
                                   scheduler=scheduler))
        r = run_n2n(cl, N2NConfig(msg_size=1024, window=2, n_windows=2,
                                  style="rounds"))
        results.append((r.msg_rate_k, r.elapsed_s, r.unexpected_fraction))
    assert results[0] == results[1]
