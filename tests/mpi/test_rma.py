"""One-sided (RMA) operations with asynchronous progress."""

import pytest

from repro.mpi import Cluster, ClusterConfig, allocate_windows


def make_cluster(n_ranks=2, **kw):
    defaults = dict(
        n_nodes=n_ranks, ranks_per_node=1, lock="ticket",
        async_progress=True, seed=5,
    )
    defaults.update(kw)
    return Cluster(ClusterConfig(**defaults))


def test_put_completes_remotely():
    cl = make_cluster()
    wins = allocate_windows(cl.runtimes)
    th = cl.thread(0)

    def origin():
        yield from wins[0].put(th, 1, 4096)

    cl.run_workload([origin()])
    assert wins[1].puts_served == 1


def test_get_roundtrip():
    cl = make_cluster()
    wins = allocate_windows(cl.runtimes)
    th = cl.thread(0)
    t_done = {}

    def origin():
        yield from wins[0].get(th, 1, 4096)
        t_done["t"] = cl.sim.now

    cl.run_workload([origin()])
    assert wins[1].gets_served == 1
    # A get is a full round trip: at least two propagation latencies.
    assert t_done["t"] >= 2 * cl.config.net.latency_ns * 1e-9


def test_accumulate_served_and_costs_more_than_put():
    def run(op_name):
        cl = make_cluster()
        wins = allocate_windows(cl.runtimes)
        th = cl.thread(0)

        def origin():
            for _ in range(10):
                op = getattr(wins[0], op_name)
                yield from op(th, 1, 65536)

        cl.run_workload([origin()])
        return cl.sim.now

    assert run("accumulate") > run("put")


def test_put_to_many_targets():
    cl = make_cluster(n_ranks=4)
    wins = allocate_windows(cl.runtimes)
    th = cl.thread(0)

    def origin():
        for target in (1, 2, 3):
            for _ in range(3):
                yield from wins[0].put(th, target, 1024)

    cl.run_workload([origin()])
    for target in (1, 2, 3):
        assert wins[target].puts_served == 3


def test_self_rma_rejected():
    cl = make_cluster()
    wins = allocate_windows(cl.runtimes)
    th = cl.thread(0)

    def origin():
        yield from wins[0].put(th, 0, 64)

    p = cl.sim.process(origin())
    with pytest.raises(ValueError):
        cl.sim.run(until=p)
    cl._shutdown = True
    cl.sim.run()


def test_duplicate_window_id_rejected():
    cl = make_cluster()
    allocate_windows(cl.runtimes, win_id=3)
    with pytest.raises(ValueError):
        allocate_windows(cl.runtimes, win_id=3)
    cl._shutdown = True
    cl.sim.run()


def test_rma_without_async_progress_still_works_between_active_ranks():
    """Without a progress thread, the target only serves RMA while it is
    itself inside the progress loop -- model that with a target that
    blocks on a receive that arrives at the end."""
    cl = make_cluster(async_progress=False)
    wins = allocate_windows(cl.runtimes)
    t0, t1 = cl.thread(0), cl.thread(1)

    def origin():
        yield from wins[0].put(t0, 1, 2048)
        yield from t0.send(1, 64, tag=1, data="done")

    def target():
        # Blocks in the progress loop, serving the put meanwhile.
        yield from t1.recv(source=0, tag=1)

    cl.run_workload([origin(), target()])
    assert wins[1].puts_served == 1


def test_rma_ops_interleave_with_pt2pt():
    cl = make_cluster()
    wins = allocate_windows(cl.runtimes)
    t0, t1 = cl.thread(0), cl.thread(1)
    out = {}

    def origin():
        yield from wins[0].put(t0, 1, 1024)
        yield from t0.send(1, 128, tag=4, data="mixed")
        yield from wins[0].get(t0, 1, 1024)

    def target():
        out["v"] = yield from t1.recv(source=0, tag=4)

    cl.run_workload([origin(), target()])
    assert out["v"] == "mixed"
    assert wins[1].puts_served == 1 and wins[1].gets_served == 1
