"""Tests for the cluster builder: validation, core assignment, lifecycle."""

import pytest

from repro.mpi import Cluster, ClusterConfig


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        Cluster(ClusterConfig(n_nodes=0))
    with pytest.raises(ValueError):
        Cluster(ClusterConfig(ranks_per_node=0))
    with pytest.raises(ValueError):
        Cluster(ClusterConfig(threads_per_rank=0))
    with pytest.raises(ValueError):
        Cluster(ClusterConfig(binding="diagonal"))
    with pytest.raises(ValueError):
        Cluster(ClusterConfig(lock="bogus"))


def test_n_ranks_property():
    cfg = ClusterConfig(n_nodes=3, ranks_per_node=4)
    assert cfg.n_ranks == 12
    assert Cluster(cfg).n_ranks == 12


def test_single_rank_per_node_binding_spans_machine():
    cl = Cluster(ClusterConfig(n_nodes=1, threads_per_rank=8,
                               binding="compact"))
    cores = [t.ctx.core.index for t in cl.threads[0]]
    assert cores == list(range(8))
    cl = Cluster(ClusterConfig(n_nodes=1, threads_per_rank=4,
                               binding="scatter"))
    sockets = [t.ctx.socket for t in cl.threads[0]]
    assert sockets == [0, 1, 0, 1]


def test_multi_rank_per_node_core_chunking():
    """4 ranks x 2 threads on one 8-core node: contiguous chunks, as in
    the paper's Fig. 12 layout."""
    cl = Cluster(ClusterConfig(n_nodes=1, ranks_per_node=4, threads_per_rank=2))
    for rank in range(4):
        cores = [t.ctx.core.index for t in cl.threads[rank]]
        assert cores == [2 * rank, 2 * rank + 1]
    # Ranks 0-1 on socket 0, ranks 2-3 on socket 1.
    assert cl.threads[0][0].ctx.socket == 0
    assert cl.threads[3][0].ctx.socket == 1


def test_threads_wrap_when_oversubscribed():
    cl = Cluster(ClusterConfig(n_nodes=1, ranks_per_node=1, threads_per_rank=10))
    cores = [t.ctx.core.index for t in cl.threads[0]]
    assert cores[8] == cores[0] and cores[9] == cores[1]


def test_ranks_map_to_nodes_in_order():
    cl = Cluster(ClusterConfig(n_nodes=2, ranks_per_node=2))
    assert [cl.fabric.nic(r).node for r in range(4)] == [0, 0, 1, 1]


def test_trace_locks_populates_per_rank_traces():
    cl = Cluster(ClusterConfig(n_nodes=2, trace_locks=True))
    assert set(cl.lock_traces) == {0, 1}
    cl2 = Cluster(ClusterConfig(n_nodes=2))
    assert cl2.lock_traces == {}


def test_world_communicator_covers_all_ranks():
    cl = Cluster(ClusterConfig(n_nodes=3, ranks_per_node=2))
    assert cl.world.ranks == tuple(range(6))
    assert cl.world.size == 6


def test_async_progress_thread_gets_spare_core():
    cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=1,
                               async_progress=True))
    # App thread on core 0, progress thread on core 1.
    assert cl.threads[0][0].ctx.core.index == 0
    assert cl._progress_ctxs[0].core.index == 1


def test_run_workload_returns_results_in_order():
    cl = Cluster(ClusterConfig(n_nodes=1))

    def worker(i):
        yield cl.sim.timeout(1e-6 * (3 - i))
        return i * 10

    results = cl.run_workload([worker(i) for i in range(3)])
    assert results == [0, 10, 20]


def test_shutdown_stops_async_progress():
    cl = Cluster(ClusterConfig(n_nodes=2, async_progress=True))
    t0, t1 = cl.thread(0), cl.thread(1)

    def sender():
        yield from t0.send(1, 64, tag=0, data="x")

    def receiver():
        yield from t1.recv(source=0, tag=0)

    cl.run_workload([sender(), receiver()])
    # run() returned: the heap drained, so progress threads exited.
    assert cl._shutdown is True
    assert cl.sim.queued_events == 0
