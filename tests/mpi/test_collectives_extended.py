"""Tests for the extended collectives: gather, scatter, allgather, scan."""

import operator

import pytest

from repro.mpi import Cluster, ClusterConfig, Communicator
from repro.mpi.collectives import allgather, gather, scan, scatter


def make_cluster(n_ranks, **kw):
    defaults = dict(n_nodes=n_ranks, ranks_per_node=1, lock="ticket", seed=13)
    defaults.update(kw)
    return Cluster(ClusterConfig(**defaults))


@pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8])
@pytest.mark.parametrize("root", [0, 1])
def test_gather_collects_in_rank_order(p, root):
    if root >= p:
        pytest.skip("root outside communicator")
    cl = make_cluster(p)
    got = {}

    def party(rank):
        th = cl.thread(rank)

        def gen():
            got[rank] = yield from gather(th, cl.world, rank * 11, root=root)
        return gen()

    cl.run_workload([party(r) for r in range(p)])
    assert got[root] == [r * 11 for r in range(p)]
    for r in range(p):
        if r != root:
            assert got[r] is None


@pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8])
@pytest.mark.parametrize("root", [0, 2])
def test_scatter_distributes_in_rank_order(p, root):
    if root >= p:
        pytest.skip("root outside communicator")
    cl = make_cluster(p)
    got = {}
    values = [f"slice-{i}" for i in range(p)]

    def party(rank):
        th = cl.thread(rank)

        def gen():
            v = values if rank == root else None
            got[rank] = yield from scatter(th, cl.world, v, root=root)
        return gen()

    cl.run_workload([party(r) for r in range(p)])
    assert got == {r: f"slice-{r}" for r in range(p)}


def test_scatter_root_must_supply_all_values():
    cl = make_cluster(2)
    th = cl.thread(0)

    def gen():
        yield from scatter(th, cl.world, ["only-one"], root=0)

    proc = cl.sim.process(gen())
    with pytest.raises(ValueError, match="must supply"):
        cl.sim.run(until=proc)


@pytest.mark.parametrize("p", [1, 2, 4, 6, 8])
def test_allgather_everyone_gets_everything(p):
    cl = make_cluster(p)
    got = {}

    def party(rank):
        th = cl.thread(rank)

        def gen():
            got[rank] = yield from allgather(th, cl.world, rank ** 2)
        return gen()

    cl.run_workload([party(r) for r in range(p)])
    expected = [r ** 2 for r in range(p)]
    assert all(v == expected for v in got.values())


@pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
def test_scan_inclusive_prefix_sums(p):
    cl = make_cluster(p)
    got = {}

    def party(rank):
        th = cl.thread(rank)

        def gen():
            got[rank] = yield from scan(th, cl.world, rank + 1, operator.add)
        return gen()

    cl.run_workload([party(r) for r in range(p)])
    for r in range(p):
        assert got[r] == sum(range(1, r + 2))


def test_scan_with_noncommutative_op():
    """Scan must apply the operator in rank order (string concat)."""
    p = 4
    cl = make_cluster(p)
    got = {}

    def party(rank):
        th = cl.thread(rank)

        def gen():
            got[rank] = yield from scan(th, cl.world, chr(ord("a") + rank),
                                        operator.add)
        return gen()

    cl.run_workload([party(r) for r in range(p)])
    assert got == {0: "a", 1: "ab", 2: "abc", 3: "abcd"}


def test_gather_then_scatter_roundtrip():
    p = 4
    cl = make_cluster(p)
    got = {}

    def party(rank):
        th = cl.thread(rank)

        def gen():
            vals = yield from gather(th, cl.world, rank * 3, root=0)
            out = yield from scatter(th, cl.world, vals, root=0)
            got[rank] = out
        return gen()

    cl.run_workload([party(r) for r in range(p)])
    assert got == {r: r * 3 for r in range(p)}


def test_collectives_on_subcommunicator():
    cl = make_cluster(4)
    sub = Communicator(id=2, ranks=(3, 1))
    got = {}

    def party(rank):
        th = cl.thread(rank)

        def gen():
            got[rank] = yield from allgather(th, sub, rank)
        return gen()

    cl.run_workload([party(3), party(1)])
    # Ordered by position in the communicator: (3, 1).
    assert got[3] == [3, 1] and got[1] == [3, 1]
