"""Envelope matching semantics."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, Envelope, matches


def test_exact_match():
    assert matches(Envelope(1, 5, 0), Envelope(1, 5, 0))


def test_source_mismatch():
    assert not matches(Envelope(1, 5, 0), Envelope(2, 5, 0))


def test_tag_mismatch():
    assert not matches(Envelope(1, 5, 0), Envelope(1, 6, 0))


def test_comm_mismatch_never_matches():
    assert not matches(Envelope(1, 5, 0), Envelope(1, 5, 1))
    # ... even with wildcards
    assert not matches(Envelope(ANY_SOURCE, ANY_TAG, 0), Envelope(1, 5, 1))


def test_any_source_wildcard():
    assert matches(Envelope(ANY_SOURCE, 5, 0), Envelope(3, 5, 0))
    assert not matches(Envelope(ANY_SOURCE, 5, 0), Envelope(3, 4, 0))


def test_any_tag_wildcard():
    assert matches(Envelope(2, ANY_TAG, 0), Envelope(2, 99, 0))
    assert not matches(Envelope(2, ANY_TAG, 0), Envelope(3, 99, 0))


def test_double_wildcard():
    assert matches(Envelope(ANY_SOURCE, ANY_TAG, 0), Envelope(7, 42, 0))


def test_incoming_must_be_concrete():
    with pytest.raises(ValueError):
        matches(Envelope(1, 1, 0), Envelope(ANY_SOURCE, 1, 0))
    with pytest.raises(ValueError):
        matches(Envelope(1, 1, 0), Envelope(1, ANY_TAG, 0))


def test_is_concrete():
    assert Envelope(0, 0, 0).is_concrete()
    assert not Envelope(ANY_SOURCE, 0, 0).is_concrete()
    assert not Envelope(0, ANY_TAG, 0).is_concrete()
