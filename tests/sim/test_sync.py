"""Tests for sim-level synchronization helpers."""

import pytest

from repro.sim import Mailbox, Signal, SimBarrier, SimSemaphore, Simulator


def test_barrier_releases_all_at_last_arrival():
    sim = Simulator()
    bar = SimBarrier(sim, parties=3)
    times = []

    def party(delay):
        yield sim.timeout(delay)
        yield bar.arrive()
        times.append(sim.now)

    for d in (1.0, 2.0, 5.0):
        sim.process(party(d))
    sim.run()
    assert times == [pytest.approx(5.0)] * 3


def test_barrier_is_reusable_across_generations():
    sim = Simulator()
    bar = SimBarrier(sim, parties=2)
    gens = []

    def party():
        for _ in range(3):
            yield sim.timeout(1.0)
            gen = yield bar.arrive()
            gens.append(gen)

    sim.process(party())
    sim.process(party())
    sim.run()
    assert sorted(gens) == [1, 1, 2, 2, 3, 3]
    assert bar.generation == 3


def test_barrier_single_party_never_blocks():
    sim = Simulator()
    bar = SimBarrier(sim, parties=1)
    done = []

    def party():
        yield bar.arrive()
        done.append(True)

    sim.process(party())
    sim.run()
    assert done == [True]


def test_barrier_invalid_parties():
    with pytest.raises(ValueError):
        SimBarrier(Simulator(), parties=0)


def test_semaphore_mutual_exclusion_and_fifo():
    sim = Simulator()
    sem = SimSemaphore(sim, value=1)
    order = []

    def worker(i):
        yield sim.timeout(i * 0.1)
        yield sem.acquire()
        order.append(("in", i))
        yield sim.timeout(10.0)
        order.append(("out", i))
        sem.release()

    for i in range(3):
        sim.process(worker(i))
    sim.run()
    assert order == [
        ("in", 0), ("out", 0),
        ("in", 1), ("out", 1),
        ("in", 2), ("out", 2),
    ]


def test_semaphore_counting():
    sim = Simulator()
    sem = SimSemaphore(sim, value=2)
    active = []
    peak = []

    def worker(i):
        yield sem.acquire()
        active.append(i)
        peak.append(len(active))
        yield sim.timeout(1.0)
        active.remove(i)
        sem.release()

    for i in range(4):
        sim.process(worker(i))
    sim.run()
    assert max(peak) == 2


def test_semaphore_negative_value_rejected():
    with pytest.raises(ValueError):
        SimSemaphore(Simulator(), value=-1)


def test_mailbox_put_then_get():
    sim = Simulator()
    box = Mailbox(sim)
    got = []

    def consumer():
        got.append((yield box.get()))
        got.append((yield box.get()))

    box.put("a")
    box.put("b")
    sim.process(consumer())
    sim.run()
    assert got == ["a", "b"]


def test_mailbox_get_blocks_until_put():
    sim = Simulator()
    box = Mailbox(sim)
    got = []

    def consumer():
        item = yield box.get()
        got.append((item, sim.now))

    def producer():
        yield sim.timeout(3.0)
        box.put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("x", pytest.approx(3.0))]


def test_mailbox_try_get_nonblocking():
    sim = Simulator()
    box = Mailbox(sim)
    assert box.try_get() is None
    box.put(1)
    assert len(box) == 1
    assert box.try_get() == 1
    assert box.try_get() is None


def test_signal_broadcast_and_rearm():
    sim = Simulator()
    sig = Signal(sim)
    got = []

    def listener(i):
        v = yield sig.wait()
        got.append((i, v))

    sim.process(listener(0))
    sim.process(listener(1))

    def firer():
        yield sim.timeout(1.0)
        sig.fire("first")
        # New waiters attach to the re-armed event.
        sim.process(listener(2))
        yield sim.timeout(1.0)
        sig.fire("second")

    sim.process(firer())
    sim.run()
    assert sorted(got) == [(0, "first"), (1, "first"), (2, "second")]
