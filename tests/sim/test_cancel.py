"""First-class event cancellation: semantics, lazy deletion, compaction."""

import pytest

from repro.sim import Simulator
from repro.sim.engine import _COMPACT_MIN_DEAD


# ----------------------------------------------------------------------
# Cancellation semantics
# ----------------------------------------------------------------------
def test_cancelled_timer_never_runs():
    sim = Simulator()
    fired = []
    handle = sim.call_after(1e-6, fired.append, "x")
    assert handle.cancel() is True
    sim.run()
    assert fired == []
    assert sim.now == 0.0  # the dead timer never advanced the clock


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.call_after(1e-6, lambda: None)
    assert handle.cancel() is True
    assert handle.cancel() is False
    assert handle.cancelled


def test_cancel_after_fire_is_noop_not_error():
    sim = Simulator()
    fired = []
    handle = sim.call_after(1e-6, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert handle.cancel() is False
    assert not handle.cancelled


def test_cancel_after_trigger_is_noop():
    # succeed() wins the race: callbacks still run at dispatch.
    sim = Simulator()
    got = []
    ev = sim.event()
    ev.add_callback(lambda e: got.append(e.value))
    ev.succeed("v")
    assert ev.cancel() is False
    sim.run()
    assert got == ["v"]


def test_trigger_after_cancel_is_noop():
    sim = Simulator()
    got = []
    ev = sim.event()
    ev.add_callback(lambda e: got.append("ran"))
    assert ev.cancel() is True
    ev.succeed("v")  # loses the race: no-op, never scheduled
    ev.fail(ValueError("boom"))  # same
    sim.run()
    assert got == []
    assert not ev.triggered


def test_add_callback_on_cancelled_event_is_noop():
    sim = Simulator()
    got = []
    ev = sim.timeout(1e-6)
    ev.cancel()
    ev.add_callback(lambda e: got.append("ran"))
    sim.run()
    assert got == []


def test_waiting_process_is_parked_by_cancel():
    # Cancelling the event a process waits on parks the process forever:
    # the documented teardown idiom for service loops.
    sim = Simulator()
    reached = []
    pending = sim.timeout(5e-6)

    def service():
        reached.append("start")
        yield pending
        reached.append("never")  # pragma: no cover

    p = sim.process(service())
    sim.call_after(1e-6, pending.cancel)
    sim.run()
    assert reached == ["start"]
    assert p.is_alive  # parked, not crashed
    assert sim.now == pytest.approx(1e-6)  # drained past the dead timer


# ----------------------------------------------------------------------
# Heap accounting: live vs dead, skipping, compaction
# ----------------------------------------------------------------------
def test_queued_events_counts_only_live():
    sim = Simulator()
    handles = [sim.call_after(1e-6 * (i + 1), lambda: None) for i in range(5)]
    assert sim.queued_events == 5
    assert sim.dead_events == 0
    handles[0].cancel()
    handles[3].cancel()
    assert sim.queued_events == 3
    assert sim.dead_events == 2
    assert sim.heap_size == 5
    sim.run()
    assert sim.queued_events == 0
    assert sim.dead_events == 0
    assert sim.heap_size == 0


def test_dispatch_and_skip_counters():
    sim = Simulator()
    live = [sim.call_after(1e-6 * (i + 1), lambda: None) for i in range(4)]
    dead = [sim.call_after(1e-6 * (i + 5), lambda: None) for i in range(3)]
    for h in dead:
        h.cancel()
    sim.run()
    assert sim.dispatched == len(live)
    assert sim.skipped == len(dead)
    assert live  # silence unused warning


def test_cancelled_head_does_not_block_run_until_horizon():
    sim = Simulator()
    fired = []
    head = sim.call_after(1e-6, fired.append, "dead")
    sim.call_after(3e-6, fired.append, "live")
    head.cancel()
    sim.run(until=2e-6)
    assert fired == []
    assert sim.now == 2e-6
    sim.run(until=4e-6)
    assert fired == ["live"]


def test_run_until_event_past_cancelled_timers():
    sim = Simulator()

    def proc():
        yield sim.timeout(2e-6)
        return "done"

    for _ in range(10):
        sim.call_after(1e-6, lambda: None).cancel()
    p = sim.process(proc())
    assert sim.run(until=p) == "done"


def test_compaction_rebuilds_heap_in_place():
    sim = Simulator()
    n = 4 * _COMPACT_MIN_DEAD
    handles = [sim.call_after(1e-6 * (i + 1), lambda: None) for i in range(n)]
    # Cancel just over half: the sweep must trigger and reset the books.
    for h in handles[: n // 2 + 1]:
        h.cancel()
    assert sim.compactions == 1
    assert sim.dead_events == 0
    assert sim.heap_size == n - (n // 2 + 1)
    assert sim.queued_events == n - (n // 2 + 1)
    sim.run()
    assert sim.dispatched == n - (n // 2 + 1)
    assert sim.skipped == n // 2 + 1


def test_compaction_preserves_dispatch_order():
    sim = Simulator()
    order = []
    n = 3 * _COMPACT_MIN_DEAD
    handles = [
        sim.call_after(1e-6 * (i + 1), order.append, i) for i in range(n)
    ]
    # Kill all even-indexed timers plus enough to cross the threshold.
    victims = [h for i, h in enumerate(handles) if i % 2 == 0]
    for h in victims:
        h.cancel()
    sim.run()
    assert order == [i for i in range(n) if i % 2 == 1]
    assert order == sorted(order)


def test_run_drains_heap_holding_only_dead_entries():
    sim = Simulator()
    for i in range(5):
        sim.call_after(1e-6 * (i + 1), lambda: None).cancel()
    sim.run()  # must terminate, not IndexError
    assert sim.heap_size == 0
    assert sim.skipped == 5
    assert sim.dispatched == 0


def test_step_raises_indexerror_when_only_dead_entries_remain():
    sim = Simulator()
    sim.call_after(1e-6, lambda: None).cancel()
    with pytest.raises(IndexError):
        sim.step()
    assert sim.heap_size == 0


# ----------------------------------------------------------------------
# Cancellation composes with conditions
# ----------------------------------------------------------------------
def test_anyof_detaches_stale_check_callbacks_from_losers():
    sim = Simulator()
    long_lived = sim.event(name="signal")

    def proc():
        for _ in range(50):
            yield sim.any_of([long_lived, sim.timeout(1e-6)])

    sim.process(proc())
    sim.run()
    # Without detach-on-trigger every losing race leaks one _check
    # callback onto the long-lived child.
    assert long_lived.callbacks == []


def test_allof_detaches_on_fail_fast():
    sim = Simulator()
    long_lived = sim.event(name="signal")

    def proc():
        for _ in range(20):
            failing = sim.event()
            sim.call_after(1e-6, failing.fail, RuntimeError("x"))
            try:
                yield sim.all_of([long_lived, failing])
            except RuntimeError:
                pass

    sim.process(proc())
    sim.run()
    assert long_lived.callbacks == []
